#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end fleet smoke test against REAL processes.
#
# The in-process e2e suite (internal/server/fleet_e2e_test.go) proves the
# routing semantics; this script proves the deployment story: three
# `cmd/serve` replicas started exactly as docs/cluster.md says, on real
# loopback ports, with flags instead of test hooks. It asserts the one
# observable claim that needs real processes — a key computed through one
# replica is a warm cache hit through another, with the forward visible
# in csm_fleet_forwards_total.
#
# Exit 0 on success; non-zero with a diagnostic otherwise. Used by
# `make fleet-smoke` and the CI "Fleet smoke" step.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_A=18081
PORT_B=18082
PORT_C=18083
PEERS="a=127.0.0.1:${PORT_A},b=127.0.0.1:${PORT_B},c=127.0.0.1:${PORT_C}"
# The warmup only pre-computes agreement group=all threshold=2, so this
# key is cold fleet-wide when the replicas come up.
QUERY="/api/v1/agreement?group=ds&threshold=3"

WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
    kill "${PIDS[@]}" >/dev/null 2>&1 || true
    wait >/dev/null 2>&1 || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "fleet smoke FAIL: $*" >&2
    for id in a b c; do
        log="$WORKDIR/serve-$id.log"
        if [ -s "$log" ]; then
            echo "--- last lines of replica $id ---" >&2
            tail -n 5 "$log" >&2
        fi
    done
    exit 1
}

echo "building cmd/serve..."
go build -o "$WORKDIR/serve" ./cmd/serve

for id in a b c; do
    port_var="PORT_$(echo "$id" | tr '[:lower:]' '[:upper:]')"
    "$WORKDIR/serve" -addr "127.0.0.1:${!port_var}" -node-id "$id" -peers "$PEERS" \
        >"$WORKDIR/serve-$id.log" 2>&1 &
    PIDS+=($!)
done

# Wait for every replica to warm up and pass readiness.
for port in "$PORT_A" "$PORT_B" "$PORT_C"; do
    ready=0
    for _ in $(seq 1 100); do
        if curl -fsS "http://127.0.0.1:${port}/readyz" >/dev/null 2>&1; then
            ready=1
            break
        fi
        sleep 0.2
    done
    [ "$ready" = 1 ] || fail "replica on port $port never became ready"
done

# Cold through replica a: whoever owns the key computes it once.
first="$(curl -fsS "http://127.0.0.1:${PORT_A}${QUERY}")" || fail "first request through a failed"
echo "$first" | grep -q '"cache": "miss"' || fail "first request was not a cold miss: $first"

# Same key through replica b: routed to the same owner, served from the
# cache entry the first request created — the cross-replica warm hit.
second="$(curl -fsS "http://127.0.0.1:${PORT_B}${QUERY}")" || fail "second request through b failed"
echo "$second" | grep -q '"cache": "hit"' || fail "cross-replica request was not a warm hit: $second"

# Both replicas must be relaying the same owner's bytes.
owner_a="$(curl -fsSi "http://127.0.0.1:${PORT_A}${QUERY}" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-csm-owner"{print $2}')"
owner_b="$(curl -fsSi "http://127.0.0.1:${PORT_B}${QUERY}" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-csm-owner"{print $2}')"
[ -n "$owner_a" ] || fail "replica a response carries no X-CSM-Owner header"
[ "$owner_a" = "$owner_b" ] || fail "replicas disagree on the owner: a says '$owner_a', b says '$owner_b'"

# At least one of a/b is a non-owner for this key (3 nodes, 1 owner), so
# some replica must have counted a forward to it.
forwards=0
for port in "$PORT_A" "$PORT_B" "$PORT_C"; do
    if curl -fsS "http://127.0.0.1:${port}/metrics" \
        | grep -E "^csm_fleet_forwards_total\{peer=\"${owner_a}\"\} [1-9]" >/dev/null; then
        forwards=1
    fi
done
[ "$forwards" = 1 ] || fail "no replica recorded csm_fleet_forwards_total toward owner '$owner_a'"

echo "fleet smoke OK: owner=$owner_a, cold miss via a, warm hit via b, forwards recorded"
