// Apiclient: drive the v1 HTTP API end-to-end against an in-process
// httptest.Server — paginated course listing, a course's anchor
// recommendations, the cached NNMF typing (watch meta.cache flip from
// miss to hit), a parallel analysis batch (POST /api/v1/batch), a
// legacy-path redirect, and the /debug/metrics report.
//
// The server is started with fault injection enabled, and every call
// goes through a retrying client (exponential backoff with jitter,
// honouring Retry-After on 429/503), so the demo also shows the
// resilience ladder absorbing injected 503s and degrading to stale
// results while a circuit is open.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"csmaterials/internal/resilience/faultinject"
	"csmaterials/internal/server"
	"csmaterials/internal/serving"
)

// client retries transient failures: 429 (shed) and 503 (circuit open
// or unready) are retried with exponential backoff plus jitter, and a
// Retry-After header, when present, overrides the computed backoff.
type client struct {
	base     string
	http     *http.Client
	retries  int
	backoff  time.Duration // first-retry backoff; doubles per attempt
	maxSleep time.Duration
	rng      *rand.Rand
	verbose  bool
}

func newClient(base string) *client {
	return &client{
		base:     base,
		http:     &http.Client{Timeout: 30 * time.Second},
		retries:  5,
		backoff:  50 * time.Millisecond,
		maxSleep: 2 * time.Second,
		rng:      rand.New(rand.NewSource(7)),
		verbose:  true,
	}
}

func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// sleepFor picks the delay before retry attempt (1-based): the
// server's Retry-After if it sent one, otherwise exponential backoff
// with full jitter.
func (c *client) sleepFor(attempt int, resp *http.Response) time.Duration {
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	d := c.backoff << (attempt - 1)
	if d > c.maxSleep {
		d = c.maxSleep
	}
	return time.Duration(c.rng.Int63n(int64(d) + 1))
}

// get fetches path, retrying shed/unavailable responses. It returns
// the final response's status, headers, and body.
func (c *client) get(path string) (*http.Response, []byte, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.http.Get(c.base + path)
		if err != nil {
			return nil, nil, err
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		if !retryable(resp.StatusCode) || attempt == c.retries {
			return resp, body, nil
		}
		sleep := c.sleepFor(attempt+1, resp)
		if c.verbose {
			fmt.Printf("  [retry] GET %s -> %s, backing off %s\n", path, resp.Status, sleep.Round(time.Millisecond))
		}
		time.Sleep(sleep)
	}
}

// envelope mirrors the v1 {"data","meta"} response shape.
type envelope struct {
	Data json.RawMessage `json:"data"`
	Meta struct {
		Total  int    `json:"total"`
		Limit  int    `json:"limit"`
		Offset int    `json:"offset"`
		Cache  string `json:"cache"`
		Key    string `json:"key"`
		Stale  bool   `json:"stale"`
	} `json:"meta"`
}

func (c *client) getEnvelope(path string) (envelope, error) {
	var e envelope
	resp, body, err := c.get(path)
	if err != nil {
		return e, err
	}
	if resp.StatusCode != http.StatusOK {
		return e, fmt.Errorf("GET %s: %s\n%s", path, resp.Status, body)
	}
	return e, json.Unmarshal(body, &e)
}

func main() {
	// Inject faults: every agreement compute fails while these rules
	// are in force. The seed makes the run reproducible.
	faults := faultinject.New(42)
	s, err := server.NewWithOptions(server.Options{Faults: faults})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := newClient(ts.URL)
	fmt.Printf("in-process API at %s\n\n", ts.URL)

	// 0. Readiness: the client waits for /readyz before real traffic
	// (503 while the dataset loads and the warmup analysis runs).
	for {
		resp, _, err := c.get("/readyz")
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			fmt.Println("server is ready")
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// 1. Paginated course listing.
	e, err := c.getEnvelope("/api/v1/courses?limit=5&offset=0")
	if err != nil {
		log.Fatal(err)
	}
	var courses []struct {
		ID    string `json:"id"`
		Name  string `json:"name"`
		Group string `json:"group"`
	}
	if err := json.Unmarshal(e.Data, &courses); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncourses page 1 (total %d, showing %d):\n", e.Meta.Total, len(courses))
	for _, c := range courses {
		fmt.Printf("  %-22s %-6s %s\n", c.ID, c.Group, c.Name)
	}

	// 2. Anchor-point recommendations for one course (§5.2).
	e, err = c.getEnvelope("/api/v1/courses/" + courses[0].ID + "/anchors")
	if err != nil {
		log.Fatal(err)
	}
	var anchors []struct {
		Rule  string  `json:"rule"`
		Title string  `json:"title"`
		Score float64 `json:"score"`
	}
	if err := json.Unmarshal(e.Data, &anchors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop anchor recommendations for %s:\n", courses[0].ID)
	for i, a := range anchors {
		if i == 3 {
			break
		}
		fmt.Printf("  %.2f  %-24s %s\n", a.Score, a.Rule, a.Title)
	}

	// 3. The cached NNMF typing: the first request computes, the
	// second is served from the LRU cache.
	for i := 1; i <= 2; i++ {
		e, err = c.getEnvelope("/api/v1/types?group=cs1&k=3")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntypes request %d: cache=%s key=%s\n", i, e.Meta.Cache, e.Meta.Key)
	}
	var typing struct {
		K     int `json:"k"`
		Types []struct {
			Label string `json:"label"`
		} `json:"types"`
	}
	if err := json.Unmarshal(e.Data, &typing); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CS1 splits into %d types:", typing.K)
	for _, t := range typing.Types {
		fmt.Printf(" %q", t.Label)
	}
	fmt.Println()

	// 4. One round trip, many analyses: POST /api/v1/batch runs the
	// items on the server's worker pool with the same per-item cache
	// and breaker semantics as the GET endpoints, and answers in input
	// order. The types item was cached by step 3 — watch it come back
	// as a hit while the others compute; the bogus item fails alone.
	batchBody := `{"items": [
		{"analysis": "types",     "params": {"group": "cs1", "k": "3"}},
		{"analysis": "cluster",   "params": {"group": "all", "k": "4"}},
		{"analysis": "agreement", "params": {"group": "pdc"}},
		{"analysis": "bogus"}
	]}`
	resp, err := http.Post(ts.URL+"/api/v1/batch", "application/json", strings.NewReader(batchBody))
	if err != nil {
		log.Fatal(err)
	}
	var batch struct {
		Data []struct {
			Analysis string `json:"analysis"`
			Key      string `json:"key"`
			Cache    string `json:"cache"`
			Error    *struct {
				Code string `json:"code"`
			} `json:"error"`
		} `json:"data"`
		Meta struct {
			Items   int `json:"items"`
			Workers int `json:"workers"`
		} `json:"meta"`
	}
	err = json.NewDecoder(resp.Body).Decode(&batch)
	_ = resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch of %d items on %d workers:\n", batch.Meta.Items, batch.Meta.Workers)
	for _, item := range batch.Data {
		if item.Error != nil {
			fmt.Printf("  %-10s error=%s\n", item.Analysis, item.Error.Code)
			continue
		}
		fmt.Printf("  %-10s key=%-16s cache=%s\n", item.Analysis, item.Key, item.Cache)
	}

	// 5. Degradation under injected faults: prime the agreement
	// analysis, then make every agreement compute fail. The server
	// answers from the last known good copy, flagged stale, and the
	// retrying client rides out any 503s.
	if _, err := c.getEnvelope("/api/v1/agreement?group=CS1&threshold=4"); err != nil {
		log.Fatal(err)
	}
	s.Cache().Reset() // force the next request back to the compute path
	faults.SetRules(faultinject.Rule{Match: "compute/agreement", Probability: 1, Status: 500})
	e, err = c.getEnvelope("/api/v1/agreement?group=CS1&threshold=4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nagreement with compute faults injected: cache=%s stale=%v\n", e.Meta.Cache, e.Meta.Stale)
	faults.SetRules()

	// 6. Legacy paths still work via permanent redirect.
	resp, err = http.Get(ts.URL + "/api/agreement?group=CS1&threshold=4")
	if err != nil {
		log.Fatal(err)
	}
	final := resp.Request.URL.Path
	_ = resp.Body.Close()
	fmt.Printf("\nlegacy /api/agreement redirected to %s (%s)\n", final, resp.Status)

	// 7. Observability: per-route counters, cache accounting, and the
	// resilience ladder's own numbers.
	resp, err = http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var snap serving.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	_ = resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n/debug/metrics:")
	for route, rs := range snap.Routes {
		fmt.Printf("  %-32s count=%d p99=%.1fms\n", route, rs.Count, rs.P99MS)
	}
	if snap.Cache != nil {
		fmt.Printf("  cache: hits=%d misses=%d size=%d/%d stale_served=%d\n",
			snap.Cache.Hits, snap.Cache.Misses, snap.Cache.Size, snap.Cache.Capacity, snap.Cache.StaleServed)
	}
	if snap.Resilience != nil {
		fmt.Printf("  shedder: admitted=%d shed=%d\n", snap.Resilience.Shedder.Admitted, snap.Resilience.Shedder.Shed)
		for name, b := range snap.Resilience.Breakers {
			fmt.Printf("  breaker %-12s state=%s failures=%d\n", name, b.State, b.Failures)
		}
	}
}
