// Apiclient: drive the v1 HTTP API end-to-end against an in-process
// httptest.Server — paginated course listing, a course's anchor
// recommendations, the cached NNMF typing (watch meta.cache flip from
// miss to hit), a legacy-path redirect, and the /debug/metrics report.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"csmaterials/internal/server"
	"csmaterials/internal/serving"
)

// envelope mirrors the v1 {"data","meta"} response shape.
type envelope struct {
	Data json.RawMessage `json:"data"`
	Meta struct {
		Total  int    `json:"total"`
		Limit  int    `json:"limit"`
		Offset int    `json:"offset"`
		Cache  string `json:"cache"`
		Key    string `json:"key"`
	} `json:"meta"`
}

func getEnvelope(base, path string) (envelope, error) {
	var e envelope
	resp, err := http.Get(base + path)
	if err != nil {
		return e, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return e, err
	}
	if resp.StatusCode != http.StatusOK {
		return e, fmt.Errorf("GET %s: %s\n%s", path, resp.Status, body)
	}
	return e, json.Unmarshal(body, &e)
}

func main() {
	s, err := server.New()
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	fmt.Printf("in-process API at %s\n\n", ts.URL)

	// 1. Paginated course listing.
	e, err := getEnvelope(ts.URL, "/api/v1/courses?limit=5&offset=0")
	if err != nil {
		log.Fatal(err)
	}
	var courses []struct {
		ID    string `json:"id"`
		Name  string `json:"name"`
		Group string `json:"group"`
	}
	if err := json.Unmarshal(e.Data, &courses); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("courses page 1 (total %d, showing %d):\n", e.Meta.Total, len(courses))
	for _, c := range courses {
		fmt.Printf("  %-22s %-6s %s\n", c.ID, c.Group, c.Name)
	}

	// 2. Anchor-point recommendations for one course (§5.2).
	e, err = getEnvelope(ts.URL, "/api/v1/courses/"+courses[0].ID+"/anchors")
	if err != nil {
		log.Fatal(err)
	}
	var anchors []struct {
		Rule  string  `json:"rule"`
		Title string  `json:"title"`
		Score float64 `json:"score"`
	}
	if err := json.Unmarshal(e.Data, &anchors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop anchor recommendations for %s:\n", courses[0].ID)
	for i, a := range anchors {
		if i == 3 {
			break
		}
		fmt.Printf("  %.2f  %-24s %s\n", a.Score, a.Rule, a.Title)
	}

	// 3. The cached NNMF typing: the first request computes, the
	// second is served from the LRU cache.
	for i := 1; i <= 2; i++ {
		e, err = getEnvelope(ts.URL, "/api/v1/types?group=cs1&k=3")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntypes request %d: cache=%s key=%s\n", i, e.Meta.Cache, e.Meta.Key)
	}
	var typing struct {
		K     int `json:"k"`
		Types []struct {
			Label string `json:"label"`
		} `json:"types"`
	}
	if err := json.Unmarshal(e.Data, &typing); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CS1 splits into %d types:", typing.K)
	for _, t := range typing.Types {
		fmt.Printf(" %q", t.Label)
	}
	fmt.Println()

	// 4. Legacy paths still work via permanent redirect.
	resp, err := http.Get(ts.URL + "/api/agreement?group=CS1&threshold=4")
	if err != nil {
		log.Fatal(err)
	}
	final := resp.Request.URL.Path
	resp.Body.Close()
	fmt.Printf("\nlegacy /api/agreement redirected to %s (%s)\n", final, resp.Status)

	// 5. Observability: per-route counters and cache accounting.
	resp, err = http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var snap serving.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n/debug/metrics:")
	for route, rs := range snap.Routes {
		fmt.Printf("  %-32s count=%d p99=%.1fms\n", route, rs.Count, rs.P99MS)
	}
	if snap.Cache != nil {
		fmt.Printf("  cache: hits=%d misses=%d size=%d/%d\n",
			snap.Cache.Hits, snap.Cache.Misses, snap.Cache.Size, snap.Cache.Capacity)
	}
}
