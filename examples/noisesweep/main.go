// noisesweep runs the classification-noise sensitivity analysis that
// addresses the paper's §5.3 threats to validity: how robust is the NNMF
// course typing (Figure 2) to instructors under- or over-classifying
// their materials? The sweep perturbs every course's tag set at
// increasing rates and reports how much the typing survives.
package main

import (
	"fmt"
	"log"
	"strings"

	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/ontology"
	"csmaterials/internal/robustness"
)

func main() {
	courses := dataset.Courses()

	fmt.Println("classification-noise sensitivity of the k=4 course typing")
	fmt.Println("(fraction of course pairs whose co-clustering is preserved)")
	fmt.Println()
	fmt.Printf("  %-10s %-18s\n", "drop rate", "typing agreement")
	rates := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5}
	results, err := robustness.Sweep(courses, 4, factorize.PaperOptions(), rates, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		bar := strings.Repeat("#", int(r.Typing*40))
		fmt.Printf("  %-10.2f %.3f %s\n", r.DropRate, r.Typing, bar)
	}

	// Zoom in on one perturbation: which figure-3 statistics move?
	fmt.Println("\nagreement drift for the DS courses at 10% drops:")
	perturbed := robustness.Perturb(dataset.CoursesByID(dataset.DSCourseIDs()),
		robustness.Perturbation{DropRate: 0.1, Seed: 42})
	drift, err := robustness.AgreementDrift(dataset.CoursesByID(dataset.DSCourseIDs()), perturbed,
		ontology.CS2013(), ontology.PDC12())
	if err != nil {
		log.Fatal(err)
	}
	for k := 2; k <= 5; k++ {
		fmt.Printf("  tags in >=%d courses: %+.1f%%\n", k, drift[k]*100)
	}

	fmt.Println("\nreading: the paper's typing conclusions survive realistic")
	fmt.Println("classification noise; the agreement counts shrink roughly in")
	fmt.Println("proportion to the drop rate, without changing the figure shapes.")
}
