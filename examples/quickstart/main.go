// Quickstart: build the 20-course dataset, factorize it with NNMF, and
// print which type of course each one is — the paper's Figure 2 pipeline
// in thirty lines.
package main

import (
	"fmt"
	"log"

	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/ontology"
)

func main() {
	// The dataset is deterministic: 20 courses classified against the
	// ACM/IEEE CS2013 and NSF/IEEE-TCPP PDC12 guidelines.
	courses := dataset.Courses()
	fmt.Printf("dataset: %d courses, %d materials\n\n",
		len(courses), dataset.Repository().NumMaterials())

	// Factorize the course × curriculum matrix into k=4 types.
	model, err := factorize.Analyze(courses, 4, factorize.PaperOptions(),
		ontology.CS2013(), ontology.PDC12())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("course types discovered by NNMF:")
	for i, c := range model.Courses {
		t := model.DominantType(i)
		fmt.Printf("  %-28s [%-7s] -> type %d (%s)\n",
			c.ID, c.Group, t+1, model.TypeLabel(t))
	}

	fmt.Println("\nwhat characterizes each type (top curriculum entries):")
	for t := 0; t < model.K; t++ {
		fmt.Printf("  type %d:\n", t+1)
		for _, tw := range model.TopTags(t, 3) {
			fmt.Printf("    %.2f  %s\n", tw.Weight, tw.Tag)
		}
	}
}
