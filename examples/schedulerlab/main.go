// schedulerlab is the concrete PDC assignment §5.2 proposes for Data
// Structures courses: model a computation as a parallel task graph,
// topologically sort it to derive a feasible order of tasks, compute the
// critical path to get a sense of how parallel the graph is, and run a
// list-scheduling simulator built on a priority queue. It finishes by
// executing the graph for real on goroutines and comparing the measured
// speedup to the simulation.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"csmaterials/internal/taskgraph"
	"csmaterials/internal/viz"
)

func main() {
	// Part 1: a task graph students can reason about — a small build
	// system: parse 4 files, compile each, link, test.
	g := taskgraph.NewGraph()
	check(g.AddTask("parse", 1))
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("compile%d", i)
		check(g.AddTask(id, 3))
		check(g.AddDep("parse", id))
	}
	check(g.AddTask("link", 2))
	for i := 0; i < 4; i++ {
		check(g.AddDep(fmt.Sprintf("compile%d", i), "link"))
	}
	check(g.AddTask("test", 2))
	check(g.AddDep("link", "test"))

	order, err := g.TopoSort()
	check(err)
	fmt.Printf("feasible order: %v\n", order)
	_, cp, err := g.CriticalPath()
	check(err)
	fmt.Println("\ntask graph in Graphviz dot (critical path in red):")
	fmt.Print(g.DOT("build", cp))

	span, path, err := g.CriticalPath()
	check(err)
	par, _ := g.Parallelism()
	fmt.Printf("work = %.0f, span (critical path) = %.0f via %v\n", g.TotalWork(), span, path)
	fmt.Printf("average parallelism = work/span = %.2f\n\n", par)

	// Part 2: simulate list scheduling on 1..4 machines.
	fmt.Println("list-scheduling simulation (critical-path priority):")
	fmt.Printf("  %-9s %-9s %-8s %-10s\n", "machines", "makespan", "speedup", "efficiency")
	for _, m := range []int{1, 2, 3, 4} {
		s, err := taskgraph.ListSchedule(g, m, taskgraph.CriticalPathPriority)
		check(err)
		fmt.Printf("  %-9d %-9.1f %-8.2f %-10.2f\n", m, s.Makespan, s.Speedup(), s.Efficiency())
	}

	s2, err := taskgraph.ListSchedule(g, 2, taskgraph.CriticalPathPriority)
	check(err)
	fmt.Println("\nGantt chart on 2 machines:")
	fmt.Print(viz.ASCIIGantt(s2, 64))

	// Part 3: priorities matter — compare policies on a random DAG.
	rng := rand.New(rand.NewSource(42))
	big := taskgraph.Layered(8, 12, 0.25, rng)
	fmt.Printf("\npolicy comparison on a random layered DAG (%d tasks, %d edges):\n",
		big.Len(), big.NumEdges())
	for _, p := range []taskgraph.Policy{taskgraph.FIFO, taskgraph.LPT, taskgraph.CriticalPathPriority} {
		s, err := taskgraph.ListSchedule(big, 4, p)
		check(err)
		fmt.Printf("  %-14s makespan %.1f  speedup %.2f\n", p, s.Makespan, s.Speedup())
	}

	// Part 3b: heterogeneous machines — HEFT with communication costs.
	fmt.Println("\nHEFT on a heterogeneous platform {2.0, 1.0, 1.0, 0.5} speeds:")
	for _, comm := range []float64{0, 1, 4} {
		s, err := taskgraph.HEFT(big, []taskgraph.Machine{{Speed: 2}, {Speed: 1}, {Speed: 1}, {Speed: 0.5}}, comm)
		check(err)
		fmt.Printf("  comm=%.0f  makespan %.1f  speedup %.2f\n", comm, s.Makespan, s.Speedup())
	}

	// Part 4: run it for real on goroutines. Each task spins for
	// work × 2ms; measure wall-clock speedup.
	fmt.Printf("\nreal execution on goroutines (GOMAXPROCS=%d):\n", runtime.GOMAXPROCS(0))
	unit := 2 * time.Millisecond
	burn := func(id string) error {
		deadline := time.Now().Add(time.Duration(float64(big.Task(id).Work) * float64(unit)))
		for time.Now().Before(deadline) {
		}
		return nil
	}
	var serial time.Duration
	for _, workers := range []int{1, 2, 4} {
		start := time.Now()
		check(big.Execute(workers, burn))
		elapsed := time.Since(start)
		if workers == 1 {
			serial = elapsed
		}
		fmt.Printf("  workers=%d  elapsed=%v  speedup=%.2f\n",
			workers, elapsed.Round(time.Millisecond), float64(serial)/float64(elapsed))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
