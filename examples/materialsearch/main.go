// materialsearch demonstrates the CS Materials search workflow of §3.1.2:
// search the repository for materials matching curriculum topics, build
// the similarity graph between the query results, and embed them in 2D
// with MDS so that similar materials cluster together.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/search"
	"csmaterials/internal/simgraph"
)

func main() {
	engine := search.NewEngine(dataset.Repository())

	// An instructor looks for sorting material to borrow.
	query := search.Query{
		TagPrefixes: []string{"AL/fundamental-data-structures-and-algorithms/"},
		Limit:       8,
	}
	fmt.Println("query: materials on fundamental data structures and algorithms")
	results := engine.Search(query)
	var ms []*materials.Material
	for _, r := range results {
		fmt.Printf("  %5.2f  %-30s %-10s by %s\n", r.Score, r.Material.ID, r.Material.Type, r.Material.Author)
		ms = append(ms, r.Material)
	}

	// "It can be difficult to understand how good the result of a search
	// is" — build the similarity graph over the results.
	g, err := simgraph.Build(ms, simgraph.Jaccard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstrongest similarity edges among the results:")
	edges := g.Edges(0.01)
	for i, e := range edges {
		if i == 5 {
			break
		}
		fmt.Printf("  %.2f  %s <-> %s\n", e.Weight, e.From, e.To)
	}
	if len(edges) == 0 {
		fmt.Println("  (no overlapping results)")
	}

	// MDS maps the materials to 2D locations where similar materials are
	// naturally clustered together.
	pts, err := g.Embed(dataset.Seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n2D map of the result set (classical MDS + SMACOF):")
	plot(pts)

	// Faceted search: the same query narrowed to one author.
	narrowed := query
	narrowed.Author = "KRS"
	fmt.Println("\nsame query, author=KRS facet:")
	for _, r := range engine.Search(narrowed) {
		fmt.Printf("  %5.2f  %s\n", r.Score, r.Material.ID)
	}
}

// plot renders points on a small ASCII canvas.
func plot(pts []simgraph.Point) {
	const w, h = 60, 16
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	// maxX >= minX by construction, so <= is the collapsed-range test
	// without an exact float equality.
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for i, p := range pts {
		x := int((p.X - minX) / (maxX - minX) * float64(w-1))
		y := int((p.Y - minY) / (maxY - minY) * float64(h-1))
		grid[y][x] = byte('A' + i)
	}
	for _, row := range grid {
		fmt.Printf("  |%s|\n", row)
	}
	for i, p := range pts {
		fmt.Printf("  %c = %s\n", 'A'+i, p.Material.ID)
	}
}
