// cs1flavors reproduces §4.4 of the paper interactively: is there one
// "CS1", or several? It runs the model selection across k, prints the
// three flavors with their knowledge-area signatures, and names which
// instructor's course falls where — ending with the same observation the
// paper makes about courses called "CS1" that are not first courses.
package main

import (
	"fmt"
	"log"

	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/ontology"
	"csmaterials/internal/viz"
)

func main() {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	guidelines := []*ontology.Guideline{ontology.CS2013(), ontology.PDC12()}

	// Model selection: the paper inspected k = 2, 3, 4 and found k=3 most
	// revealing — k=4 produced two nearly identical dimensions.
	diag, err := factorize.CompareK(courses, []int{2, 3, 4}, factorize.PaperOptions(), guidelines...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model selection over k:")
	for _, d := range diag {
		note := ""
		if d.Redundancy > 0.4 {
			note = "  <- redundant dimensions: overfit"
		}
		fmt.Printf("  k=%d  error=%.4f  H-row redundancy=%.3f%s\n", d.K, d.Err, d.Redundancy, note)
	}

	model, err := factorize.Analyze(courses, 3, factorize.PaperOptions(), guidelines...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nW matrix (how much of each flavor each course is):")
	labels := make([]string, len(model.Courses))
	for i, c := range model.Courses {
		labels[i] = c.Instructor
	}
	fmt.Print(viz.ASCIIHeatmap(model.W.NormalizeRowsL1(), labels, 10))

	fmt.Println("\nthe three flavors of CS1:")
	names := map[string]string{}
	for t := 0; t < 3; t++ {
		kas := model.DominantKAs(t)
		flavor := "imperative programming"
		switch kas[0].Tag {
		case "AL":
			flavor = "algorithmic thinking (data structures and algorithms)"
		case "PL":
			flavor = "object-oriented programming"
		default:
			if len(kas) > 1 && kas[1].Tag == "AR" {
				flavor = "imperative programming with data representation"
			}
		}
		names[fmt.Sprint(t)] = flavor
		fmt.Printf("  type %d = %s\n", t+1, flavor)
		for _, kw := range kas[:3] {
			fmt.Printf("      %-4s %.0f%% of the type's curriculum mass\n", kw.Tag, kw.Weight*100)
		}
	}

	fmt.Println("\nwhere each course falls:")
	for i, c := range model.Courses {
		t := model.DominantType(i)
		fmt.Printf("  %-10s (%s): type %d — %s\n", c.Instructor, c.ID, t+1, names[fmt.Sprint(t)])
	}

	// The paper's punchline: UCF's course is called "Computer Science 1"
	// but is purely data structures and algorithms — it is not the first
	// course of its sequence.
	ahmed := model.CourseIndex("ucf-cop3502-ahmed")
	kas := model.DominantKAs(model.DominantType(ahmed))
	fmt.Printf("\nnote: %s is dominated by the %s knowledge area —\n",
		model.Courses[ahmed].Name, kas[0].Tag)
	fmt.Println("a 'CS1' that assumes programming was taught in an earlier course.")
}
