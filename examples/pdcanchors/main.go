// pdcanchors runs the anchor-point recommender (§5.2) over the early CS
// courses of the dataset: for every CS1 and Data Structures course it
// prints the PDC content that fits what the course already covers,
// together with the PDC12 entries the content would teach.
//
// Dataset courses are analyzed through the registered "anchors" engine
// analysis — the same computation the API serves at
// /api/v1/courses/{id}/anchors, dispatched by name — while the final
// section drops to the recommender directly to score a course that is
// not in the dataset at all.
package main

import (
	"context"
	"fmt"
	"log"
	"net/url"

	"csmaterials/internal/anchor"
	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
	"csmaterials/internal/engine/analyses"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/serving"
)

// recommend dispatches the registered anchors analysis for one dataset
// course.
func recommend(exec *engine.Executor, courseID string) []analyses.AnchorRec {
	v, _, err := exec.Run(context.Background(), "anchors", url.Values{"course": []string{courseID}})
	if err != nil {
		log.Fatal(err)
	}
	return v.([]analyses.AnchorRec)
}

func main() {
	rec, err := anchor.NewRecommender(ontology.CS2013(), ontology.PDC12())
	if err != nil {
		log.Fatal(err)
	}
	reg, err := analyses.Default()
	if err != nil {
		log.Fatal(err)
	}
	exec := engine.NewExecutor(reg, engine.ExecutorOptions{
		Repo:  dataset.Repository(),
		Cache: serving.NewCache(32),
	})

	fmt.Printf("rule base: %d PDC content insertion opportunities\n", len(rec.Rules()))
	for _, r := range rec.Rules() {
		fmt.Printf("  %-28s -> %s\n", r.ID, r.Audience)
	}

	groups := []struct {
		name string
		ids  []string
	}{
		{"CS1 courses", dataset.CS1CourseIDs()},
		{"Data Structures courses", dataset.DSCourseIDs()},
	}
	for _, grp := range groups {
		fmt.Printf("\n================ %s ================\n", grp.name)
		for _, c := range dataset.CoursesByID(grp.ids) {
			recs := recommend(exec, c.ID)
			fmt.Printf("\n--- %s (%s)\n", c.Name, c.Instructor)
			if len(recs) == 0 {
				fmt.Println("    no high-confidence anchor points; this course's coverage")
				fmt.Println("    does not support the rule base's prerequisites")
				continue
			}
			for _, r := range recs {
				fmt.Printf("    [%3.0f%%] %s\n", r.Score*100, r.Title)
				fmt.Printf("           %s\n", r.Activity)
			}
		}
	}

	// Aggregate view: which rules apply most broadly? This is what a PDC
	// content author would use to prioritize material development.
	fmt.Println("\n================ rule applicability across all 20 courses ================")
	applicability := map[string]int{}
	for _, c := range dataset.Courses() {
		for _, r := range recommend(exec, c.ID) {
			applicability[r.Rule]++
		}
	}
	for _, r := range rec.Rules() {
		n := applicability[r.ID]
		bar := ""
		for i := 0; i < n; i++ {
			bar += "#"
		}
		fmt.Printf("  %-28s %2d courses %s\n", r.ID, n, bar)
	}

	// Where would a brand-new OOP-flavored course anchor? A course that
	// is not in the dataset cannot go through the repository-backed
	// analysis, so this one uses the recommender directly.
	custom := &materials.Course{
		ID: "example-oop-course", Name: "A new OOP course", Group: materials.GroupOOP,
		Materials: []*materials.Material{{
			ID: "ex-m1", Title: "Classes and interfaces", Type: materials.Lecture,
			Tags: []string{
				"PL/object-oriented-programming/object-oriented-design-classes-and-objects",
				"PL/object-oriented-programming/encapsulation-and-information-hiding",
				"PL/object-oriented-programming/object-interfaces-and-abstract-classes",
				"PL/object-oriented-programming/collection-classes-and-iterators",
				"PL/object-oriented-programming/generics-and-parameterized-types",
			},
		}},
	}
	fmt.Println("\n================ a course not in the dataset ================")
	fmt.Print(anchor.Report(rec.Recommend(custom)))
}
