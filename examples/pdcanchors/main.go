// pdcanchors runs the anchor-point recommender (§5.2) over the early CS
// courses of the dataset: for every CS1 and Data Structures course it
// prints the PDC content that fits what the course already covers,
// together with the PDC12 entries the content would teach.
package main

import (
	"fmt"
	"log"

	"csmaterials/internal/anchor"
	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

func main() {
	rec, err := anchor.NewRecommender(ontology.CS2013(), ontology.PDC12())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rule base: %d PDC content insertion opportunities\n", len(rec.Rules()))
	for _, r := range rec.Rules() {
		fmt.Printf("  %-28s -> %s\n", r.ID, r.Audience)
	}

	groups := []struct {
		name string
		ids  []string
	}{
		{"CS1 courses", dataset.CS1CourseIDs()},
		{"Data Structures courses", dataset.DSCourseIDs()},
	}
	for _, grp := range groups {
		fmt.Printf("\n================ %s ================\n", grp.name)
		for _, c := range dataset.CoursesByID(grp.ids) {
			recs := rec.Recommend(c)
			fmt.Printf("\n--- %s (%s)\n", c.Name, c.Instructor)
			if len(recs) == 0 {
				fmt.Println("    no high-confidence anchor points; this course's coverage")
				fmt.Println("    does not support the rule base's prerequisites")
				continue
			}
			for _, r := range recs {
				fmt.Printf("    [%3.0f%%] %s\n", r.Score*100, r.Rule.Title)
				fmt.Printf("           %s\n", r.Rule.Activity)
			}
		}
	}

	// Aggregate view: which rules apply most broadly? This is what a PDC
	// content author would use to prioritize material development.
	fmt.Println("\n================ rule applicability across all 20 courses ================")
	applicability := map[string]int{}
	for _, c := range dataset.Courses() {
		for _, r := range rec.Recommend(c) {
			applicability[r.Rule.ID]++
		}
	}
	for _, r := range rec.Rules() {
		n := applicability[r.ID]
		bar := ""
		for i := 0; i < n; i++ {
			bar += "#"
		}
		fmt.Printf("  %-28s %2d courses %s\n", r.ID, n, bar)
	}

	// Where would a brand-new OOP-flavored course anchor? Demonstrate the
	// recommender on a course that is not in the dataset.
	custom := &materials.Course{
		ID: "example-oop-course", Name: "A new OOP course", Group: materials.GroupOOP,
		Materials: []*materials.Material{{
			ID: "ex-m1", Title: "Classes and interfaces", Type: materials.Lecture,
			Tags: []string{
				"PL/object-oriented-programming/object-oriented-design-classes-and-objects",
				"PL/object-oriented-programming/encapsulation-and-information-hiding",
				"PL/object-oriented-programming/object-interfaces-and-abstract-classes",
				"PL/object-oriented-programming/collection-classes-and-iterators",
				"PL/object-oriented-programming/generics-and-parameterized-types",
			},
		}},
	}
	fmt.Println("\n================ a course not in the dataset ================")
	fmt.Print(anchor.Report(rec.Recommend(custom)))
}
