GO ?= go

.PHONY: build vet lint test race race-engine bench bench-batch bench-datasets bench-check fleet-smoke serve tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project lint engine (internal/lint via cmd/lint): the full
# interprocedural rule set — determinism, floatcompare, errdrop,
# httpwrite, lockdiscipline, ctxflow, goroutinelife, metriclabel — over
# the module call graph, with the committed baseline applied. Non-zero
# exit on any non-baselined diagnostic; see DESIGN §8 for the contracts
# and docs/operations.md for reading findings.
lint:
	$(GO) run ./cmd/lint -baseline lint-baseline.json ./...

test:
	$(GO) test ./...

# Whole-module race detection, not just hand-picked packages — the
# lockdiscipline analyzer catches static mistakes, the race detector
# catches the dynamic ones.
race:
	$(GO) test -race ./...

# The engine executor (singleflight, breakers, batch pool) is the
# concurrency hot spot; race it first, with caching disabled, so a
# regression there fails fast before the whole-module pass.
race-engine:
	$(GO) test -race -count=1 ./internal/engine/... ./internal/server/...

bench: bench-datasets
	$(GO) test -bench=. -benchmem ./...

# The batch worker pool's scaling numbers (cold vs warm, 1 vs N workers).
bench-batch:
	$(GO) test -bench=BenchmarkBatchParallel -benchmem ./internal/engine/

# Dataset-scoped cold/warm serving latencies, the NNMF core (cold vs
# warm-seeded factorize), batch worker scaling, and fleet local vs
# forwarded serving, snapshotted to BENCH_datasets.json at the repo
# root so the perf trajectory accumulates across commits (ROADMAP
# item 4). Order matters: the engine run rewrites the snapshot
# wholesale, the server run merges its fleet/* scenarios into it.
bench-datasets:
	BENCH_JSON=$(CURDIR)/BENCH_datasets.json $(GO) test -bench='BenchmarkDatasetServing|BenchmarkNNMFCore|BenchmarkBatchScaling' -run '^$$' -benchmem ./internal/engine/
	BENCH_JSON=$(CURDIR)/BENCH_datasets.json $(GO) test -bench='BenchmarkFleetServing' -run '^$$' -benchmem ./internal/server/

# Perf regression gate (CI): re-run the dataset benchmarks into a
# scratch snapshot and compare the compute-bound scenarios against the
# committed BENCH_datasets.json, failing past 3x — plus the two
# current-snapshot ratio gates: warm-start convergence (nnmf warm <=
# 10% of cold) and fleet forwarding overhead (forwarded <= 8x local).
# The committed baseline is only rewritten by an explicit
# `make bench-datasets`.
bench-check:
	BENCH_JSON=$(CURDIR)/BENCH_current.json $(GO) test -bench='BenchmarkDatasetServing|BenchmarkNNMFCore|BenchmarkBatchScaling' -run '^$$' -benchmem ./internal/engine/
	BENCH_JSON=$(CURDIR)/BENCH_current.json $(GO) test -bench='BenchmarkFleetServing' -run '^$$' -benchmem ./internal/server/
	$(GO) run ./cmd/benchcheck -baseline $(CURDIR)/BENCH_datasets.json -current $(CURDIR)/BENCH_current.json

# Three real cmd/serve replicas on loopback ports: proves the fleet
# wiring end to end outside the test harness — cross-replica
# cache-hit-after-forward and csm_fleet_forwards_total movement.
fleet-smoke:
	bash scripts/fleet_smoke.sh

serve:
	$(GO) run ./cmd/serve

# Everything the repo's tier-1 gate runs, plus vet, lint, and race.
tier1: build vet lint test race-engine race
