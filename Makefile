GO ?= go

.PHONY: build vet lint test race bench serve tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project lint engine (internal/lint via cmd/lint): determinism,
# floatcompare, errdrop, httpwrite, and lockdiscipline analyzers.
# Non-zero exit on any diagnostic; see DESIGN §8 for the contracts.
lint:
	$(GO) run ./cmd/lint ./...

test:
	$(GO) test ./...

# Whole-module race detection, not just hand-picked packages — the
# lockdiscipline analyzer catches static mistakes, the race detector
# catches the dynamic ones.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

serve:
	$(GO) run ./cmd/serve

# Everything the repo's tier-1 gate runs, plus vet, lint, and race.
tier1: build vet lint test race
