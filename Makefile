GO ?= go

.PHONY: build vet test race bench serve tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-sensitive packages under the race detector: the serving
# cache/singleflight/metrics, the resilience primitives and fault
# injector, the HTTP handlers on top of them, and the goroutine
# task-graph executor.
race:
	$(GO) test -race ./internal/serving/ ./internal/resilience/... ./internal/server/ ./internal/taskgraph/

bench:
	$(GO) test -bench=. -benchmem ./...

serve:
	$(GO) run ./cmd/serve

# Everything the repo's tier-1 gate runs, plus vet and race.
tier1: build vet test race
