// Command lint runs the project's static-analysis suite (internal/lint)
// over the module and prints file:line:col: [rule] message diagnostics.
//
// Usage:
//
//	go run ./cmd/lint ./...                  # whole module
//	go run ./cmd/lint ./internal/nnmf        # specific package dirs
//	go run ./cmd/lint -rules determinism,floatcompare ./...
//	go run ./cmd/lint -exclude examples/ -json ./...
//	go run ./cmd/lint -baseline lint-baseline.json ./...
//	go run ./cmd/lint -summary ./internal/engine
//
// -baseline points at a committed JSON suppression file; every entry
// must carry a justification, and entries that no longer match any
// finding are reported as stale so the file shrinks over time.
// -summary skips the analyzers and dumps the call-graph summary facts
// (DESIGN §8) computed for every function in the loaded packages.
//
// Exit status: 0 when clean, 1 when any diagnostic was reported, 2 when
// the module failed to load or type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"csmaterials/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	exclude := fs.String("exclude", "", "comma-separated path substrings to suppress diagnostics from")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	baselinePath := fs.String("baseline", "", "JSON suppression file; every entry requires a justification")
	summary := fs.Bool("summary", false, "dump per-function call-graph summaries instead of running analyzers")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: lint [flags] [./... | dirs]\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.Select(*rules)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	pkgs, err := loadTargets(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	status := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "lint: %s: %v\n", pkg.Path, terr)
			status = 2
		}
	}

	if *summary {
		if status != 0 {
			return status
		}
		return dumpSummaries(pkgs, stdout)
	}

	diags := lint.Run(pkgs, analyzers)
	diags = filterExcluded(diags, root, *exclude)

	if *baselinePath != "" {
		baseline, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		var suppressed int
		var stale []BaselineEntry
		diags, suppressed, stale = baseline.apply(diags, root)
		if suppressed > 0 {
			fmt.Fprintf(stderr, "lint: %d finding(s) suppressed by %s\n", suppressed, *baselinePath)
		}
		for _, e := range stale {
			fmt.Fprintf(stderr, "lint: stale baseline entry: [%s] %s (%q) no longer matches any finding — remove it\n",
				e.Rule, e.File, e.Message)
		}
	}

	if *asJSON {
		type jsonDiag struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: relTo(root, d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relTo(root, d.Pos.Filename)
			fmt.Fprintln(stdout, d.String())
		}
	}

	if status == 0 && len(diags) > 0 {
		status = 1
	}
	return status
}

// dumpSummaries builds the module call graph and prints one line per
// declared function: its stable key and the summary facts the
// interprocedural analyzers would consume ("-" when none).
func dumpSummaries(pkgs []*lint.Package, stdout *os.File) int {
	graph := lint.NewModule(pkgs).Graph
	for _, n := range graph.Nodes() {
		if n.IsTest() {
			continue
		}
		fmt.Fprintf(stdout, "%s: %s\n", n.Key, n.Describe())
	}
	return 0
}

// loadTargets loads either the whole module (no args or a ./... pattern)
// or the specific directories named.
func loadTargets(loader *lint.Loader, args []string) ([]*lint.Package, error) {
	wholeModule := len(args) == 0
	for _, a := range args {
		if strings.HasSuffix(a, "...") {
			wholeModule = true
		}
	}
	if wholeModule {
		return loader.LoadAll()
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		dir, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.Root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module root %s", arg, loader.Root)
		}
		path := loader.ModPath
		if rel != "." {
			path = loader.ModPath + "/" + filepath.ToSlash(rel)
		}
		loaded, err := loader.LoadDirAs(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

// filterExcluded drops diagnostics whose module-relative path contains
// any of the comma-separated substrings.
func filterExcluded(diags []lint.Diagnostic, root, exclude string) []lint.Diagnostic {
	var pats []string
	for _, p := range strings.Split(exclude, ",") {
		if p = strings.TrimSpace(p); p != "" {
			pats = append(pats, p)
		}
	}
	if len(pats) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		rel := relTo(root, d.Pos.Filename)
		skip := false
		for _, p := range pats {
			if strings.Contains(rel, p) {
				skip = true
				break
			}
		}
		if !skip {
			kept = append(kept, d)
		}
	}
	return kept
}

// relTo renders path relative to root when possible.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above working directory")
		}
		dir = parent
	}
}
