package main

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"csmaterials/internal/lint"
)

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBaselineRequiresJustification(t *testing.T) {
	path := writeBaseline(t, `{"entries": [
		{"rule": "ctxflow", "file": "internal/x/y.go", "message": "detached context", "justification": ""}
	]}`)
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("baseline entry without justification must be rejected")
	}
}

func TestLoadBaselineRequiresMessage(t *testing.T) {
	path := writeBaseline(t, `{"entries": [
		{"rule": "ctxflow", "file": "internal/x/y.go", "message": "", "justification": "legacy"}
	]}`)
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("baseline entry without a message must be rejected (it would match everything)")
	}
}

func TestLoadBaselineRejectsUnknownFields(t *testing.T) {
	path := writeBaseline(t, `{"entries": [
		{"rule": "r", "file": "f.go", "message": "m", "justification": "j", "oops": true}
	]}`)
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("unknown baseline fields must be rejected, not silently ignored")
	}
}

func diagAt(root, rel, rule, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Pos:     token.Position{Filename: filepath.Join(root, rel), Line: 10, Column: 2},
		Rule:    rule,
		Message: msg,
	}
}

func TestBaselineApply(t *testing.T) {
	root := "/mod"
	b := &Baseline{Entries: []BaselineEntry{
		{Rule: "goroutinelife", File: "internal/server/server.go", Message: "no reachable stop", Justification: "migration in flight"},
		{Rule: "metriclabel", File: "internal/server/prom.go", Message: "never matches anything", Justification: "stale on purpose"},
	}}
	diags := []lint.Diagnostic{
		diagAt(root, "internal/server/server.go", "goroutinelife", "goroutine launched here has no reachable stop or wait path"),
		// Same file, same rule, different message: must survive.
		diagAt(root, "internal/server/server.go", "goroutinelife", "goroutine launches a dynamic function value"),
		// Same message, different file: must survive.
		diagAt(root, "internal/server/datasets.go", "goroutinelife", "goroutine launched here has no reachable stop or wait path"),
	}
	kept, suppressed, stale := b.apply(diags, root)
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	if len(kept) != 2 {
		t.Fatalf("kept %d findings, want 2: %v", len(kept), kept)
	}
	if kept[0].Message != "goroutine launches a dynamic function value" {
		t.Errorf("wrong finding suppressed: kept[0] = %v", kept[0])
	}
	if len(stale) != 1 || stale[0].Rule != "metriclabel" {
		t.Errorf("stale = %v, want the metriclabel entry only", stale)
	}
}

func TestBaselineEmptyIsValid(t *testing.T) {
	path := writeBaseline(t, `{"entries": []}`)
	b, err := loadBaseline(path)
	if err != nil {
		t.Fatalf("empty baseline must load: %v", err)
	}
	kept, suppressed, stale := b.apply([]lint.Diagnostic{diagAt("/mod", "a.go", "r", "m")}, "/mod")
	if len(kept) != 1 || suppressed != 0 || len(stale) != 0 {
		t.Errorf("empty baseline must be a no-op: kept=%d suppressed=%d stale=%d", len(kept), suppressed, len(stale))
	}
}
