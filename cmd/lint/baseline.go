package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"csmaterials/internal/lint"
)

// Baseline is the committed suppression file (-baseline). Each entry
// names one known finding that is accepted for now; entries without a
// justification are rejected so a suppression can never be silent.
// Matching is deliberately narrow — rule and module-relative file must
// match exactly, and the entry's message must be a substring of the
// diagnostic's — so a baseline entry cannot swallow a new, different
// finding in the same file.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry suppresses diagnostics of one rule in one file whose
// message contains Message.
type BaselineEntry struct {
	Rule string `json:"rule"`
	File string `json:"file"`
	// Message is matched as a substring of the diagnostic message; ""
	// is rejected (it would suppress every finding of the rule in the
	// file without saying which).
	Message string `json:"message"`
	// Justification explains why the finding is accepted rather than
	// fixed. Required and non-empty.
	Justification string `json:"justification"`
}

// loadBaseline parses and validates the suppression file.
func loadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var b Baseline
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		switch {
		case e.Rule == "" || e.File == "":
			return nil, fmt.Errorf("lint: baseline %s entry %d: rule and file are required", path, i)
		case strings.TrimSpace(e.Message) == "":
			return nil, fmt.Errorf("lint: baseline %s entry %d (%s in %s): message is required", path, i, e.Rule, e.File)
		case strings.TrimSpace(e.Justification) == "":
			return nil, fmt.Errorf("lint: baseline %s entry %d (%s in %s): justification is required", path, i, e.Rule, e.File)
		}
	}
	return &b, nil
}

// matches reports whether the entry suppresses the diagnostic (whose
// filename has already been made module-relative).
func (e BaselineEntry) matches(relFile string, d lint.Diagnostic) bool {
	return e.Rule == d.Rule && e.File == relFile && strings.Contains(d.Message, e.Message)
}

// apply partitions diags into kept findings and suppressed ones, and
// returns the baseline entries that matched nothing — stale entries the
// caller should warn about so the file shrinks as findings are fixed.
func (b *Baseline) apply(diags []lint.Diagnostic, root string) (kept []lint.Diagnostic, suppressed int, stale []BaselineEntry) {
	used := make([]bool, len(b.Entries))
	for _, d := range diags {
		rel := relTo(root, d.Pos.Filename)
		hit := false
		for i, e := range b.Entries {
			if e.matches(rel, d) {
				used[i] = true
				hit = true
			}
		}
		if hit {
			suppressed++
		} else {
			kept = append(kept, d)
		}
	}
	for i, e := range b.Entries {
		if !used[i] {
			stale = append(stale, e)
		}
	}
	return kept, suppressed, stale
}
