package main

import (
	"os"
	"testing"
)

func TestGroupIDs(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"CS1", 6}, {"cs1", 6},
		{"DS", 5}, {"dsalgo", 7}, {"DS+Algo", 7},
		{"PDC", 3}, {"all", 20},
	}
	for _, c := range cases {
		ids, err := groupIDs(c.in)
		if err != nil {
			t.Errorf("groupIDs(%q): %v", c.in, err)
			continue
		}
		if len(ids) != c.want {
			t.Errorf("groupIDs(%q) = %d IDs, want %d", c.in, len(ids), c.want)
		}
	}
	if _, err := groupIDs("bogus"); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestSubcommandsRunWithoutError(t *testing.T) {
	// The subcommands print to stdout; here we only assert they complete
	// without error on valid inputs.
	if err := cmdCourses(); err != nil {
		t.Errorf("courses: %v", err)
	}
	if err := cmdShow([]string{"-course", "uncc-2214-krs"}); err != nil {
		t.Errorf("show: %v", err)
	}
	if err := cmdSearch([]string{"-prefix", "AL/basic-analysis/", "-limit", "3"}); err != nil {
		t.Errorf("search: %v", err)
	}
	if err := cmdAgree([]string{"-group", "DS"}); err != nil {
		t.Errorf("agree: %v", err)
	}
	if err := cmdTypes([]string{"-group", "CS1"}); err != nil {
		t.Errorf("types: %v", err)
	}
	if err := cmdAnchors([]string{"-course", "vcu-cmsc256-duke"}); err != nil {
		t.Errorf("anchors: %v", err)
	}
	if err := cmdAudit([]string{"-course", "ccc-csci40-kerney"}); err != nil {
		t.Errorf("audit: %v", err)
	}
	if err := cmdPDCMaterials([]string{"-course", "uncc-2214-krs"}); err != nil {
		t.Errorf("pdcmaterials: %v", err)
	}
}

func TestSubcommandsRejectBadInput(t *testing.T) {
	if err := cmdShow([]string{"-course", "ghost"}); err == nil {
		t.Error("show accepted unknown course")
	}
	if err := cmdShow(nil); err == nil {
		t.Error("show accepted missing -course")
	}
	if err := cmdAgree([]string{"-group", "bogus"}); err == nil {
		t.Error("agree accepted unknown group")
	}
	if err := cmdAudit(nil); err == nil {
		t.Error("audit accepted missing -course")
	}
	if err := cmdPDCMaterials([]string{"-course", "ghost"}); err == nil {
		t.Error("pdcmaterials accepted unknown course")
	}
}

func TestExportWritesFile(t *testing.T) {
	path := t.TempDir() + "/dataset.json"
	if err := cmdExport([]string{"-file", path}); err != nil {
		t.Fatal(err)
	}
	// The export is valid JSON loadable by the repository — covered by
	// the integration tests; here just check it is non-trivial.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 10000 {
		t.Fatalf("export suspiciously small: %d bytes", fi.Size())
	}
}

func TestClassifySubcommand(t *testing.T) {
	path := t.TempDir() + "/ds.json"
	if err := cmdExport([]string{"-file", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdClassify([]string{"-file", path, "-group", "CS1"}); err != nil {
		t.Fatalf("classify: %v", err)
	}
	if err := cmdClassify(nil); err == nil {
		t.Error("classify accepted missing -file")
	}
	if err := cmdClassify([]string{"-file", "/nonexistent.json"}); err == nil {
		t.Error("classify accepted missing file")
	}
}

func TestClusterSubcommand(t *testing.T) {
	if err := cmdCluster([]string{"-group", "PDC", "-k", "2"}); err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if err := cmdCluster([]string{"-group", "bogus"}); err == nil {
		t.Error("cluster accepted unknown group")
	}
	if err := cmdCluster([]string{"-group", "PDC", "-linkage", "bogus"}); err == nil {
		t.Error("cluster accepted unknown linkage")
	}
}

func TestAlignSubcommand(t *testing.T) {
	svg := t.TempDir() + "/a.svg"
	if err := cmdAlign([]string{"-left", "uncc-2214-krs", "-right", "uncc-2214-saule", "-svg", svg}); err != nil {
		t.Fatalf("align: %v", err)
	}
	if _, err := os.Stat(svg); err != nil {
		t.Fatalf("align SVG not written: %v", err)
	}
	if err := cmdAlign(nil); err == nil {
		t.Error("align accepted missing flags")
	}
}
