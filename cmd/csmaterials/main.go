// Command csmaterials is a CLI over the CS Materials reproduction: list
// the dataset's courses, inspect a course's classification, search
// materials, run the agreement and factorization analyses, and produce
// PDC anchor-point recommendations.
//
// Usage:
//
//	csmaterials courses
//	csmaterials show   -course ID
//	csmaterials search -tags T1,T2 [-prefix P] [-author A] [-language L] [-limit N]
//	csmaterials agree  -group CS1|DS|PDC [-threshold K]
//	csmaterials types  -group all|CS1|DS [-k K]
//	csmaterials anchors [-course ID]
//	csmaterials export -file PATH
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"csmaterials/internal/agreement"
	"csmaterials/internal/anchor"
	"csmaterials/internal/audit"
	"csmaterials/internal/catalog"
	"csmaterials/internal/cluster"
	"csmaterials/internal/core"
	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/search"
	"csmaterials/internal/viz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "courses":
		err = cmdCourses()
	case "show":
		err = cmdShow(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "agree":
		err = cmdAgree(os.Args[2:])
	case "types":
		err = cmdTypes(os.Args[2:])
	case "anchors":
		err = cmdAnchors(os.Args[2:])
	case "audit":
		err = cmdAudit(os.Args[2:])
	case "pdcmaterials":
		err = cmdPDCMaterials(os.Args[2:])
	case "align":
		err = cmdAlign(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "csmaterials: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: csmaterials <command> [flags]

commands:
  courses            list the 20 dataset courses (Figure 1)
  show    -course ID print a course's materials and curriculum coverage
  search  -tags ...  search materials by curriculum tags and facets
  agree   -group G   tag-agreement analysis for a course group (Figures 3/4/6/8)
  types   -group G   NNMF course-type analysis (Figures 2/5/7)
  anchors [-course]  PDC anchor-point recommendations (§5.2)
  audit   -course ID CS2013 tier-coverage audit and PDC readiness
  pdcmaterials -course ID  recommend public PDC materials (Nifty/Peachy/Unplugged)
  align   -left ID -right ID [-svg F]  radial alignment view of two courses
  cluster [-group G] [-k K] hierarchical clustering dendrogram of courses
  classify -file F [-group G] [-k K]  project a new course onto a fitted model
  export  -file F    write the dataset as JSON`)
}

func groupIDs(group string) ([]string, error) {
	switch strings.ToLower(group) {
	case "cs1":
		return dataset.CS1CourseIDs(), nil
	case "ds":
		return dataset.DSCourseIDs(), nil
	case "dsalgo", "ds+algo":
		return dataset.DSAlgoCourseIDs(), nil
	case "pdc":
		return dataset.PDCCourseIDs(), nil
	case "all":
		return dataset.AllCourseIDs(), nil
	default:
		return nil, fmt.Errorf("unknown group %q (want CS1, DS, DSAlgo, PDC, or all)", group)
	}
}

func cmdCourses() error {
	fmt.Printf("%-28s %-8s %-8s %5s %5s\n", "ID", "group", "also", "tags", "mats")
	for _, c := range dataset.Courses() {
		fmt.Printf("%-28s %-8s %-8s %5d %5d\n", c.ID, c.Group, c.SecondaryGroup, len(c.TagSet()), len(c.Materials))
	}
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	id := fs.String("course", "", "course ID")
	_ = fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("show: -course is required")
	}
	c := dataset.Repository().Course(*id)
	if c == nil {
		return fmt.Errorf("unknown course %q", *id)
	}
	fmt.Printf("%s\n  %s — %s (%s)\n", c.ID, c.Name, c.Institution, c.Group)
	fmt.Printf("  %d materials, %d distinct curriculum tags\n\n", len(c.Materials), len(c.TagSet()))
	counts := map[string]int{}
	cs := ontology.CS2013()
	pdc := ontology.PDC12()
	for tag := range c.TagSet() {
		if n := cs.Lookup(tag); n != nil {
			counts[ontology.AreaOf(n).ID]++
		} else if n := pdc.Lookup(tag); n != nil {
			counts["PDC12:"+ontology.AreaOf(n).ID]++
		}
	}
	var areas []string
	for ka := range counts {
		areas = append(areas, ka)
	}
	sort.Slice(areas, func(i, j int) bool { return counts[areas[i]] > counts[areas[j]] })
	fmt.Println("  coverage by knowledge area:")
	for _, ka := range areas {
		fmt.Printf("    %-30s %3d tags\n", ka, counts[ka])
	}
	return nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	tags := fs.String("tags", "", "comma-separated curriculum tag IDs")
	prefix := fs.String("prefix", "", "tag prefix, e.g. AL/basic-analysis/")
	author := fs.String("author", "", "author facet")
	language := fs.String("language", "", "programming language facet")
	level := fs.String("level", "", "course level facet")
	text := fs.String("text", "", "free-text match on title/description")
	limit := fs.Int("limit", 10, "maximum results")
	_ = fs.Parse(args)

	q := search.Query{
		Text: *text, Author: *author, Language: *language,
		CourseLevel: *level, Limit: *limit,
	}
	if *tags != "" {
		q.Tags = strings.Split(*tags, ",")
	}
	if *prefix != "" {
		q.TagPrefixes = []string{*prefix}
	}
	engine := search.NewEngine(dataset.Repository())
	results := engine.Search(q)
	if len(results) == 0 {
		fmt.Println("no materials found")
		return nil
	}
	for _, r := range results {
		fmt.Printf("%6.2f  %-28s %-10s %s\n", r.Score, r.Material.ID, r.Material.Type, r.Material.Title)
		for _, t := range r.MatchedTags {
			fmt.Printf("        · %s\n", t)
		}
	}
	return nil
}

func cmdAgree(args []string) error {
	fs := flag.NewFlagSet("agree", flag.ExitOnError)
	group := fs.String("group", "CS1", "course group")
	threshold := fs.Int("threshold", 2, "agreement threshold for the tree")
	_ = fs.Parse(args)
	ids, err := groupIDs(*group)
	if err != nil {
		return err
	}
	a, err := agreement.Analyze(dataset.CoursesByID(ids), ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d distinct tags across %d courses\n", *group, a.NumTags(), len(ids))
	for k := 2; k <= len(ids); k++ {
		fmt.Printf("  in >=%d courses: %d tags\n", k, a.AtLeast(k))
	}
	fmt.Println()
	fmt.Print(viz.ASCIISeries(a.Series(), 8))
	fmt.Printf("\nknowledge areas with agreement >= %d: %v\n", *threshold, a.KASpan(*threshold))
	return nil
}

func cmdTypes(args []string) error {
	fs := flag.NewFlagSet("types", flag.ExitOnError)
	group := fs.String("group", "all", "course group")
	k := fs.Int("k", 0, "number of types (default: 4 for all, 3 otherwise)")
	_ = fs.Parse(args)
	ids, err := groupIDs(*group)
	if err != nil {
		return err
	}
	if *k == 0 {
		*k = 3
		if strings.EqualFold(*group, "all") {
			*k = 4
		}
	}
	m, err := factorize.Analyze(dataset.CoursesByID(ids), *k, factorize.PaperOptions(),
		ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return err
	}
	labels := make([]string, len(m.Courses))
	for i, c := range m.Courses {
		labels[i] = fmt.Sprintf("%s [%s]", c.ID, c.Group)
	}
	fmt.Print(viz.ASCIIHeatmap(m.W.NormalizeRowsL1(), labels, 36))
	fmt.Println()
	for t := 0; t < *k; t++ {
		kas := m.DominantKAs(t)
		top := kas
		if len(top) > 4 {
			top = top[:4]
		}
		var parts []string
		for _, kw := range top {
			parts = append(parts, fmt.Sprintf("%s %.0f%%", kw.Tag, kw.Weight*100))
		}
		fmt.Printf("type %d: %s\n", t+1, strings.Join(parts, ", "))
	}
	return nil
}

func cmdAnchors(args []string) error {
	fs := flag.NewFlagSet("anchors", flag.ExitOnError)
	id := fs.String("course", "", "course ID (default: all courses)")
	_ = fs.Parse(args)
	rec, err := anchor.NewRecommender(ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return err
	}
	var courses []*materials.Course
	if *id != "" {
		c := dataset.Repository().Course(*id)
		if c == nil {
			return fmt.Errorf("unknown course %q", *id)
		}
		courses = []*materials.Course{c}
	} else {
		courses = dataset.Courses()
	}
	for _, c := range courses {
		recs := rec.Recommend(c)
		if len(recs) == 0 && *id == "" {
			continue
		}
		fmt.Printf("=== %s [%s]\n", c.ID, c.Group)
		fmt.Print(anchor.Report(recs))
	}
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	id := fs.String("course", "", "course ID")
	_ = fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("audit: -course is required")
	}
	c := dataset.Repository().Course(*id)
	if c == nil {
		return fmt.Errorf("unknown course %q", *id)
	}
	report := audit.Audit(c, ontology.CS2013())
	fmt.Print(report.String())
	readiness := audit.AssessPDCReadiness(c)
	fmt.Printf("\nPDC readiness:\n")
	fmt.Printf("  PDC12 core topics covered: %d/%d\n", readiness.CoreCovered, readiness.CoreTotal)
	fmt.Printf("  prerequisite score: %.0f%%\n", 100*readiness.PrerequisiteScore())
	for _, p := range audit.PrerequisiteTags() {
		mark := " "
		if readiness.Prerequisites[p] {
			mark = "x"
		}
		fmt.Printf("  [%s] %s\n", mark, p)
	}
	return nil
}

func cmdPDCMaterials(args []string) error {
	fs := flag.NewFlagSet("pdcmaterials", flag.ExitOnError)
	id := fs.String("course", "", "course ID")
	limit := fs.Int("limit", 8, "maximum recommendations")
	_ = fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("pdcmaterials: -course is required")
	}
	c := dataset.Repository().Course(*id)
	if c == nil {
		return fmt.Errorf("unknown course %q", *id)
	}
	recs := catalog.Recommend(c, *limit)
	if len(recs) == 0 {
		fmt.Println("no catalog materials fit this course")
		return nil
	}
	fmt.Printf("public PDC materials for %s:\n", c.ID)
	for _, r := range recs {
		fmt.Printf("  %5.2f  [%-14s] %s\n", r.Score, r.Entry.Source, r.Entry.Material.Title)
		fmt.Printf("         fits %d covered entries, introduces %d new PDC12 entries\n",
			len(r.SharedTags), r.NewPDC)
	}
	return nil
}

func cmdAlign(args []string) error {
	fs := flag.NewFlagSet("align", flag.ExitOnError)
	left := fs.String("left", "", "left course ID")
	right := fs.String("right", "", "right course ID")
	svg := fs.String("svg", "", "write the radial alignment SVG to this path")
	_ = fs.Parse(args)
	if *left == "" || *right == "" {
		return fmt.Errorf("align: -left and -right are required")
	}
	art, err := core.AlignmentArtifact(*left, *right)
	if err != nil {
		return err
	}
	fmt.Print(art.Text)
	if *svg != "" {
		if err := os.WriteFile(*svg, []byte(art.SVGs["alignment.svg"]), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *svg)
	}
	return nil
}

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	group := fs.String("group", "all", "course group")
	k := fs.Int("k", 0, "also print the clusters from cutting into k groups")
	linkage := fs.String("linkage", "average", "average, single, or complete")
	_ = fs.Parse(args)
	ids, err := groupIDs(*group)
	if err != nil {
		return err
	}
	var link cluster.Linkage
	switch strings.ToLower(*linkage) {
	case "average":
		link = cluster.Average
	case "single":
		link = cluster.Single
	case "complete":
		link = cluster.Complete
	default:
		return fmt.Errorf("unknown linkage %q", *linkage)
	}
	d, err := cluster.Build(dataset.CoursesByID(ids), link)
	if err != nil {
		return err
	}
	fmt.Print(d.Render())
	if *k > 0 {
		clusters, err := d.CutK(*k)
		if err != nil {
			return err
		}
		fmt.Printf("\ncut into %d clusters:\n", *k)
		for i, cl := range clusters {
			fmt.Printf("  cluster %d:", i+1)
			for _, c := range cl {
				fmt.Printf(" %s", c.ID)
			}
			fmt.Println()
		}
	}
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	file := fs.String("file", "", "JSON file with the course(s) to classify (export format)")
	group := fs.String("group", "CS1", "course group defining the model")
	k := fs.Int("k", 3, "number of types in the model")
	_ = fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("classify: -file is required")
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	incoming := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	if err := incoming.LoadJSON(f); err != nil {
		return err
	}
	if len(incoming.Courses()) == 0 {
		return fmt.Errorf("classify: no courses in %s", *file)
	}
	ids, err := groupIDs(*group)
	if err != nil {
		return err
	}
	model, err := factorize.Analyze(dataset.CoursesByID(ids), *k, factorize.PaperOptions(),
		ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return err
	}
	for _, c := range incoming.Courses() {
		shares := model.Project(c, 0)
		dominant := model.ProjectDominant(c)
		fmt.Printf("%s:\n", c.ID)
		for t, sh := range shares {
			marker := " "
			if t == dominant {
				marker = "*"
			}
			fmt.Printf("  %s type %d (%s): %.0f%%\n", marker, t+1, model.TypeLabel(t), sh*100)
		}
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	file := fs.String("file", "dataset.json", "output path")
	_ = fs.Parse(args)
	f, err := os.Create(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.Repository().SaveJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *file)
	return nil
}
