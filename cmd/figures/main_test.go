package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "", true); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var txt, svg int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".txt":
			txt++
		case ".svg":
			svg++
		}
	}
	if txt != 10 {
		t.Fatalf("%d text artifacts, want 10 (9 figures + anchors)", txt)
	}
	if svg < 10 {
		t.Fatalf("%d SVG artifacts, want >= 10", svg)
	}
}

func TestRunSingleFigure(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "3a", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure3-cs1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "CS1: 6 courses") {
		t.Fatalf("figure 3a content wrong: %s", data)
	}
	// No other figure was generated.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "figure7") {
			t.Fatal("figure 7 generated for -fig 3a")
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(t.TempDir(), "99", true); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
