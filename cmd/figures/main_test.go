package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	dir := t.TempDir()
	if err := run(io.Discard, dir, "", true); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var txt, svg int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".txt":
			txt++
		case ".svg":
			svg++
		}
	}
	if txt != 10 {
		t.Fatalf("%d text artifacts, want 10 (9 figures + anchors)", txt)
	}
	if svg < 10 {
		t.Fatalf("%d SVG artifacts, want >= 10", svg)
	}
}

func TestRunSingleFigure(t *testing.T) {
	dir := t.TempDir()
	if err := run(io.Discard, dir, "3a", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure3-cs1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "CS1: 6 courses") {
		t.Fatalf("figure 3a content wrong: %s", data)
	}
	// No other figure was generated.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "figure7") {
			t.Fatal("figure 7 generated for -fig 3a")
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(io.Discard, t.TempDir(), "99", true); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestRunGoldenOutput pins the echoed figure text byte for byte: the
// generation pipeline is deterministic, so any drift is a real change.
// Regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./cmd/figures/
func TestRunGoldenOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, t.TempDir(), "3a", false); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "figure3a.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out.Bytes(), want)
	}
}

// TestQuietOutputListsArtifacts: -q reports what was written instead of
// echoing figure bodies.
func TestQuietOutputListsArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(&out, dir, "3a", true); err != nil {
		t.Fatal(err)
	}
	want := "wrote " + filepath.Join(dir, "figure3-cs1.txt") + " (1 SVGs)\n"
	if out.String() != want {
		t.Fatalf("quiet output = %q, want %q", out.String(), want)
	}
}
