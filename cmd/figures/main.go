// Command figures regenerates every figure of the paper from the
// synthesized dataset and writes text plus SVG artifacts to an output
// directory.
//
// Usage:
//
//	figures [-out DIR] [-fig ID]
//
// With no -fig, every figure is produced. Figure IDs: 1, 2, 3a, 3b, 4, 5,
// 6, 7, 8, anchors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"csmaterials/internal/core"
)

func main() {
	out := flag.String("out", "out", "output directory for text and SVG artifacts")
	fig := flag.String("fig", "", "single figure ID to generate (default: all)")
	quiet := flag.Bool("q", false, "do not echo figure text to stdout")
	flag.Parse()

	if err := run(*out, *fig, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

func run(outDir, only string, quiet bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	found := false
	for _, f := range core.Figures() {
		if only != "" && f.ID != only {
			continue
		}
		found = true
		art, err := f.Gen()
		if err != nil {
			return fmt.Errorf("figure %s: %w", f.ID, err)
		}
		txtPath := filepath.Join(outDir, art.ID+".txt")
		if err := os.WriteFile(txtPath, []byte(art.Text), 0o644); err != nil {
			return err
		}
		for name, svg := range art.SVGs {
			if err := os.WriteFile(filepath.Join(outDir, name), []byte(svg), 0o644); err != nil {
				return err
			}
		}
		if !quiet {
			fmt.Printf("=== figure %s ===\n%s\n", f.ID, art.Text)
		} else {
			fmt.Printf("wrote %s (%d SVGs)\n", txtPath, len(art.SVGs))
		}
	}
	if !found {
		return fmt.Errorf("unknown figure ID %q", only)
	}
	return nil
}
