// Command figures regenerates every figure of the paper from the
// synthesized dataset and writes text plus SVG artifacts to an output
// directory.
//
// Figure generation goes through the same registered "figures" engine
// analysis the HTTP API serves at /api/v1/figures/{id}: the command
// enumerates the figure IDs and dispatches each by name, so the CLI
// and the API cannot drift apart on what a figure is.
//
// Usage:
//
//	figures [-out DIR] [-fig ID]
//
// With no -fig, every figure is produced. Figure IDs: 1, 2, 3a, 3b, 4, 5,
// 6, 7, 8, anchors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"

	"csmaterials/internal/core"
	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
	"csmaterials/internal/engine/analyses"
	"csmaterials/internal/serving"
)

func main() {
	out := flag.String("out", "out", "output directory for text and SVG artifacts")
	fig := flag.String("fig", "", "single figure ID to generate (default: all)")
	quiet := flag.Bool("q", false, "do not echo figure text to stdout")
	flag.Parse()

	if err := run(os.Stdout, *out, *fig, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, outDir, only string, quiet bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	reg, err := analyses.Default()
	if err != nil {
		return err
	}
	exec := engine.NewExecutor(reg, engine.ExecutorOptions{
		Repo:  dataset.Repository(),
		Cache: serving.NewCache(16),
	})

	found := false
	for _, f := range core.Figures() {
		if only != "" && f.ID != only {
			continue
		}
		found = true
		v, _, err := exec.Run(context.Background(), "figures", url.Values{"id": []string{f.ID}})
		if err != nil {
			return fmt.Errorf("figure %s: %w", f.ID, err)
		}
		art := v.(*core.Artifact)
		txtPath := filepath.Join(outDir, art.ID+".txt")
		if err := os.WriteFile(txtPath, []byte(art.Text), 0o644); err != nil {
			return err
		}
		for name, svg := range art.SVGs {
			if err := os.WriteFile(filepath.Join(outDir, name), []byte(svg), 0o644); err != nil {
				return err
			}
		}
		// Console/test-buffer echo; a failed write has no recovery path.
		if !quiet {
			_, _ = fmt.Fprintf(w, "=== figure %s ===\n%s\n", f.ID, art.Text)
		} else {
			_, _ = fmt.Fprintf(w, "wrote %s (%d SVGs)\n", txtPath, len(art.SVGs))
		}
	}
	if !found {
		return fmt.Errorf("unknown figure ID %q", only)
	}
	return nil
}
