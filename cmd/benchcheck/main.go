// Command benchcheck compares two BENCH_datasets.json snapshots (the
// committed baseline vs a freshly benchmarked one) and exits non-zero
// when a compute-bound scenario regressed beyond -max-ratio. Cache-hit
// warm scenarios are measured in nanoseconds — far too noisy for a CI
// gate — so only the compute-bound modes (cold, contended, and the
// batch-scaling serial/parallel pair) are compared. Scenarios present
// on one side only are reported but never fail the gate: a new
// scenario has no baseline yet, and a retired one has no current
// sample.
//
// The nnmf cold/warm pair carries one additional check on the CURRENT
// snapshot alone: a warm-started factorization (seeded with its own
// fitted factors) must cost at most -warm-ratio of the cold 10-restart
// run. That is the incremental pipeline's convergence contract — if
// warm-start stops short-circuiting, the ratio collapses toward 1 and
// the gate fails even though nothing "regressed" against the baseline.
//
// The fleet local/forwarded pair works the same way: a request
// forwarded one hop to its owner must cost at most -fleet-ratio of the
// same request served by the owner directly. Absolute loopback
// latencies drift with the runner, but the ratio only moves when the
// forwarding path itself regresses (lost keep-alives, double body
// reads, extra round trips), which is exactly what the gate is for.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// scenario mirrors one entry of the snapshot's scenarios array.
type scenario struct {
	Dataset    string `json:"dataset"`
	Mode       string `json:"mode"`
	NsPerOp    int64  `json:"ns_per_op"`
	Iterations int    `json:"iterations"`
}

type snapshot struct {
	Benchmark string     `json:"benchmark"`
	Scenarios []scenario `json:"scenarios"`
}

// gatedModes are the compute-bound modes stable enough to gate on.
// Warm cache hits stay ungated; the nnmf warm factorize is gated
// separately against its cold sibling (see warmStartCheck), and the
// fleet local/forwarded pair against each other (see fleetOverheadCheck)
// — loopback HTTP latencies are runner-dependent, but their ratio holds.
var gatedModes = map[string]bool{"cold": true, "contended": true, "serial": true, "parallel": true}

// warmStartCheck verifies the nnmf cold/warm convergence contract on
// the current snapshot: warm ns/op must not exceed maxWarmRatio of the
// cold run. Returns "" when the pair is absent (older snapshots) or
// the contract holds.
func warmStartCheck(current snapshot, maxWarmRatio float64) string {
	var cold, warm scenario
	for _, sc := range current.Scenarios {
		if sc.Dataset == "nnmf" && sc.Mode == "cold" {
			cold = sc
		}
		if sc.Dataset == "nnmf" && sc.Mode == "warm" {
			warm = sc
		}
	}
	if cold.NsPerOp <= 0 || warm.NsPerOp <= 0 {
		return ""
	}
	ratio := float64(warm.NsPerOp) / float64(cold.NsPerOp)
	if ratio > maxWarmRatio {
		return fmt.Sprintf("nnmf warm factorize costs %.1f%% of cold (%d vs %d ns/op), want <= %.1f%%",
			ratio*100, warm.NsPerOp, cold.NsPerOp, maxWarmRatio*100)
	}
	return ""
}

// fleetOverheadCheck verifies the fleet routing tax on the current
// snapshot: a forwarded warm hit (origin -> owner -> origin) must not
// exceed maxFleetRatio times the owner-local warm hit. Returns "" when
// the pair is absent (single-process snapshots) or the contract holds.
func fleetOverheadCheck(current snapshot, maxFleetRatio float64) string {
	var local, forwarded scenario
	for _, sc := range current.Scenarios {
		if sc.Dataset == "fleet" && sc.Mode == "local" {
			local = sc
		}
		if sc.Dataset == "fleet" && sc.Mode == "forwarded" {
			forwarded = sc
		}
	}
	if local.NsPerOp <= 0 || forwarded.NsPerOp <= 0 {
		return ""
	}
	ratio := float64(forwarded.NsPerOp) / float64(local.NsPerOp)
	if ratio > maxFleetRatio {
		return fmt.Sprintf("fleet forwarded serve costs %.1fx a local one (%d vs %d ns/op), want <= %.1fx",
			ratio, forwarded.NsPerOp, local.NsPerOp, maxFleetRatio)
	}
	return ""
}

func loadSnapshot(path string) (snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	var s snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// compare returns one line per gated scenario present in both
// snapshots, plus the list of regressions (ratio > maxRatio).
func compare(baseline, current snapshot, maxRatio float64) (report, regressions []string) {
	base := make(map[string]scenario, len(baseline.Scenarios))
	for _, sc := range baseline.Scenarios {
		base[sc.Dataset+"/"+sc.Mode] = sc
	}
	seen := map[string]bool{}
	for _, cur := range current.Scenarios {
		key := cur.Dataset + "/" + cur.Mode
		seen[key] = true
		if !gatedModes[cur.Mode] {
			continue
		}
		b, ok := base[key]
		if !ok {
			report = append(report, fmt.Sprintf("%-20s new scenario, no baseline", key))
			continue
		}
		if b.NsPerOp <= 0 {
			report = append(report, fmt.Sprintf("%-20s unusable baseline (%d ns/op)", key, b.NsPerOp))
			continue
		}
		ratio := float64(cur.NsPerOp) / float64(b.NsPerOp)
		line := fmt.Sprintf("%-20s %12d -> %12d ns/op  (%.2fx)", key, b.NsPerOp, cur.NsPerOp, ratio)
		report = append(report, line)
		if ratio > maxRatio {
			regressions = append(regressions, line)
		}
	}
	for key, sc := range base {
		if gatedModes[sc.Mode] && !seen[key] {
			report = append(report, fmt.Sprintf("%-20s missing from current run", key))
		}
	}
	return report, regressions
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_datasets.json", "committed benchmark snapshot")
	currentPath := fs.String("current", "", "freshly generated benchmark snapshot")
	maxRatio := fs.Float64("max-ratio", 3, "fail when current/baseline ns/op exceeds this")
	warmRatio := fs.Float64("warm-ratio", 0.1, "fail when the nnmf warm factorize exceeds this fraction of its cold run")
	fleetRatio := fs.Float64("fleet-ratio", 8, "fail when a forwarded fleet serve exceeds this multiple of a local one")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -current is required")
		return 2
	}
	current, err := loadSnapshot(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		return 2
	}
	if msg := warmStartCheck(current, *warmRatio); msg != "" {
		fmt.Fprintln(os.Stderr, "benchcheck: "+msg)
		return 1
	}
	if msg := fleetOverheadCheck(current, *fleetRatio); msg != "" {
		fmt.Fprintln(os.Stderr, "benchcheck: "+msg)
		return 1
	}
	baseline, err := loadSnapshot(*baselinePath)
	if err != nil {
		// No baseline is not a failure: the first run on a branch that
		// never committed a snapshot has nothing to regress against.
		fmt.Fprintf(os.Stderr, "benchcheck: no usable baseline (%v); skipping gate\n", err)
		return 0
	}
	report, regressions := compare(baseline, current, *maxRatio)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d scenario(s) regressed beyond %.1fx:\n", len(regressions), *maxRatio)
		for _, line := range regressions {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:])) }
