// Command benchcheck compares two BENCH_datasets.json snapshots (the
// committed baseline vs a freshly benchmarked one) and exits non-zero
// when a compute-bound scenario regressed beyond -max-ratio. Warm
// scenarios are cache hits measured in nanoseconds — far too noisy for
// a CI gate — so only the cold and contended modes are compared.
// Scenarios present on one side only are reported but never fail the
// gate: a new scenario has no baseline yet, and a retired one has no
// current sample.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// scenario mirrors one entry of the snapshot's scenarios array.
type scenario struct {
	Dataset    string `json:"dataset"`
	Mode       string `json:"mode"`
	NsPerOp    int64  `json:"ns_per_op"`
	Iterations int    `json:"iterations"`
}

type snapshot struct {
	Benchmark string     `json:"benchmark"`
	Scenarios []scenario `json:"scenarios"`
}

// gatedModes are the compute-bound modes stable enough to gate on.
var gatedModes = map[string]bool{"cold": true, "contended": true}

func loadSnapshot(path string) (snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	var s snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// compare returns one line per gated scenario present in both
// snapshots, plus the list of regressions (ratio > maxRatio).
func compare(baseline, current snapshot, maxRatio float64) (report, regressions []string) {
	base := make(map[string]scenario, len(baseline.Scenarios))
	for _, sc := range baseline.Scenarios {
		base[sc.Dataset+"/"+sc.Mode] = sc
	}
	seen := map[string]bool{}
	for _, cur := range current.Scenarios {
		key := cur.Dataset + "/" + cur.Mode
		seen[key] = true
		if !gatedModes[cur.Mode] {
			continue
		}
		b, ok := base[key]
		if !ok {
			report = append(report, fmt.Sprintf("%-20s new scenario, no baseline", key))
			continue
		}
		if b.NsPerOp <= 0 {
			report = append(report, fmt.Sprintf("%-20s unusable baseline (%d ns/op)", key, b.NsPerOp))
			continue
		}
		ratio := float64(cur.NsPerOp) / float64(b.NsPerOp)
		line := fmt.Sprintf("%-20s %12d -> %12d ns/op  (%.2fx)", key, b.NsPerOp, cur.NsPerOp, ratio)
		report = append(report, line)
		if ratio > maxRatio {
			regressions = append(regressions, line)
		}
	}
	for key, sc := range base {
		if gatedModes[sc.Mode] && !seen[key] {
			report = append(report, fmt.Sprintf("%-20s missing from current run", key))
		}
	}
	return report, regressions
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_datasets.json", "committed benchmark snapshot")
	currentPath := fs.String("current", "", "freshly generated benchmark snapshot")
	maxRatio := fs.Float64("max-ratio", 3, "fail when current/baseline ns/op exceeds this")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -current is required")
		return 2
	}
	current, err := loadSnapshot(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		return 2
	}
	baseline, err := loadSnapshot(*baselinePath)
	if err != nil {
		// No baseline is not a failure: the first run on a branch that
		// never committed a snapshot has nothing to regress against.
		fmt.Fprintf(os.Stderr, "benchcheck: no usable baseline (%v); skipping gate\n", err)
		return 0
	}
	report, regressions := compare(baseline, current, *maxRatio)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d scenario(s) regressed beyond %.1fx:\n", len(regressions), *maxRatio)
		for _, line := range regressions {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:])) }
