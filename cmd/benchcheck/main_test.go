package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(scs ...scenario) snapshot {
	return snapshot{Benchmark: "BenchmarkDatasetServing", Scenarios: scs}
}

func TestCompareGatesColdRegressions(t *testing.T) {
	baseline := snap(
		scenario{Dataset: "default", Mode: "cold", NsPerOp: 1000},
		scenario{Dataset: "default", Mode: "warm", NsPerOp: 10},
		scenario{Dataset: "mixed", Mode: "contended", NsPerOp: 2000},
	)
	// Within the 3x budget: no regressions.
	current := snap(
		scenario{Dataset: "default", Mode: "cold", NsPerOp: 2900},
		scenario{Dataset: "default", Mode: "warm", NsPerOp: 500}, // warm is never gated
		scenario{Dataset: "mixed", Mode: "contended", NsPerOp: 1000},
	)
	report, regressions := compare(baseline, current, 3)
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", regressions)
	}
	if len(report) != 2 {
		t.Fatalf("report = %v, want the two gated scenarios", report)
	}

	// Past the budget: the cold scenario fails the gate.
	current.Scenarios[0].NsPerOp = 3100
	_, regressions = compare(baseline, current, 3)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "default/cold") {
		t.Fatalf("regressions = %v, want default/cold", regressions)
	}
}

func TestCompareHandlesMissingScenarios(t *testing.T) {
	baseline := snap(scenario{Dataset: "default", Mode: "cold", NsPerOp: 1000})
	current := snap(scenario{Dataset: "alt", Mode: "cold", NsPerOp: 9_000_000})
	report, regressions := compare(baseline, current, 3)
	if len(regressions) != 0 {
		t.Fatalf("scenarios without a counterpart must not fail the gate: %v", regressions)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "alt/cold") || !strings.Contains(joined, "no baseline") {
		t.Fatalf("report missing new-scenario note:\n%s", joined)
	}
	if !strings.Contains(joined, "default/cold") || !strings.Contains(joined, "missing from current") {
		t.Fatalf("report missing retired-scenario note:\n%s", joined)
	}
}

func TestCompareGatesBatchScaling(t *testing.T) {
	baseline := snap(
		scenario{Dataset: "batch", Mode: "serial", NsPerOp: 4000},
		scenario{Dataset: "batch", Mode: "parallel", NsPerOp: 1000},
	)
	current := snap(
		scenario{Dataset: "batch", Mode: "serial", NsPerOp: 4500},
		scenario{Dataset: "batch", Mode: "parallel", NsPerOp: 3500},
	)
	_, regressions := compare(baseline, current, 3)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "batch/parallel") {
		t.Fatalf("regressions = %v, want batch/parallel", regressions)
	}
}

func TestWarmStartCheck(t *testing.T) {
	// Pair absent (older snapshots): no verdict.
	if msg := warmStartCheck(snap(scenario{Dataset: "default", Mode: "cold", NsPerOp: 1000}), 0.1); msg != "" {
		t.Fatalf("snapshot without nnmf pair: %q", msg)
	}
	healthy := snap(
		scenario{Dataset: "nnmf", Mode: "cold", NsPerOp: 100_000},
		scenario{Dataset: "nnmf", Mode: "warm", NsPerOp: 5_000},
	)
	if msg := warmStartCheck(healthy, 0.1); msg != "" {
		t.Fatalf("5%% warm ratio flagged: %q", msg)
	}
	broken := snap(
		scenario{Dataset: "nnmf", Mode: "cold", NsPerOp: 100_000},
		scenario{Dataset: "nnmf", Mode: "warm", NsPerOp: 60_000},
	)
	if msg := warmStartCheck(broken, 0.1); msg == "" {
		t.Fatal("60% warm ratio must fail the convergence gate")
	}
}

func TestFleetOverheadCheck(t *testing.T) {
	// Pair absent (single-process snapshots): no verdict.
	if msg := fleetOverheadCheck(snap(scenario{Dataset: "fleet", Mode: "local", NsPerOp: 50_000}), 8); msg != "" {
		t.Fatalf("snapshot without the forwarded half: %q", msg)
	}
	healthy := snap(
		scenario{Dataset: "fleet", Mode: "local", NsPerOp: 50_000},
		scenario{Dataset: "fleet", Mode: "forwarded", NsPerOp: 150_000},
	)
	if msg := fleetOverheadCheck(healthy, 8); msg != "" {
		t.Fatalf("3x forwarding overhead flagged: %q", msg)
	}
	broken := snap(
		scenario{Dataset: "fleet", Mode: "local", NsPerOp: 50_000},
		scenario{Dataset: "fleet", Mode: "forwarded", NsPerOp: 500_000},
	)
	if msg := fleetOverheadCheck(broken, 8); msg == "" {
		t.Fatal("10x forwarding overhead must fail the gate")
	}
	// The pair never enters the baseline comparison: forwarded/local are
	// not gated modes, so runner-to-runner latency drift can't fail CI.
	_, regressions := compare(snap(), broken, 3)
	if len(regressions) != 0 {
		t.Fatalf("fleet modes leaked into the baseline gate: %v", regressions)
	}
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", `{"scenarios":[{"dataset":"default","mode":"cold","ns_per_op":1000}]}`)
	slow := write("slow.json", `{"scenarios":[{"dataset":"default","mode":"cold","ns_per_op":5000}]}`)
	fast := write("fast.json", `{"scenarios":[{"dataset":"default","mode":"cold","ns_per_op":1200}]}`)

	if code := run([]string{"-baseline", base, "-current", fast}); code != 0 {
		t.Fatalf("healthy run exited %d", code)
	}
	if code := run([]string{"-baseline", base, "-current", slow}); code != 1 {
		t.Fatalf("5x regression exited %d, want 1", code)
	}
	// A missing baseline skips the gate instead of failing the build.
	if code := run([]string{"-baseline", filepath.Join(dir, "absent.json"), "-current", fast}); code != 0 {
		t.Fatalf("missing baseline exited %d, want 0", code)
	}
	// A missing or malformed current snapshot is a hard usage error.
	if code := run([]string{"-baseline", base, "-current", filepath.Join(dir, "absent.json")}); code != 2 {
		t.Fatal("missing current snapshot must exit 2")
	}
	if code := run([]string{"-baseline", base}); code != 2 {
		t.Fatal("missing -current must exit 2")
	}
}
