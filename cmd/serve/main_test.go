package main

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"csmaterials/internal/engine"
	"csmaterials/internal/obs"
	"csmaterials/internal/resilience"
	"csmaterials/internal/server"
)

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := parseConfig(nil)
	if err != nil {
		t.Fatalf("parseConfig(nil): %v", err)
	}
	if cfg.addr != ":8080" {
		t.Errorf("addr = %q, want :8080", cfg.addr)
	}
	if cfg.cacheSize != server.DefaultCacheSize {
		t.Errorf("cacheSize = %d, want %d", cfg.cacheSize, server.DefaultCacheSize)
	}
	if cfg.requestTimeout != 30*time.Second {
		t.Errorf("requestTimeout = %s, want 30s", cfg.requestTimeout)
	}
	if cfg.shutdownTimeout != 10*time.Second {
		t.Errorf("shutdownTimeout = %s, want 10s", cfg.shutdownTimeout)
	}
	if cfg.maxInFlight != server.DefaultMaxInFlight {
		t.Errorf("maxInFlight = %d, want %d", cfg.maxInFlight, server.DefaultMaxInFlight)
	}
	if cfg.breakerThreshold != resilience.DefaultBreakerThreshold {
		t.Errorf("breakerThreshold = %d, want %d", cfg.breakerThreshold, resilience.DefaultBreakerThreshold)
	}
	if cfg.breakerCooldown != resilience.DefaultBreakerCooldown {
		t.Errorf("breakerCooldown = %s, want %s", cfg.breakerCooldown, resilience.DefaultBreakerCooldown)
	}
	if !cfg.staleServe {
		t.Error("staleServe = false, want true by default")
	}
	if cfg.batchWorkers != engine.DefaultBatchWorkers {
		t.Errorf("batchWorkers = %d, want %d", cfg.batchWorkers, engine.DefaultBatchWorkers)
	}
	if cfg.traceBuffer != server.DefaultTraceBuffer {
		t.Errorf("traceBuffer = %d, want %d", cfg.traceBuffer, server.DefaultTraceBuffer)
	}
	if cfg.debugAddr != "" {
		t.Errorf("debugAddr = %q, want disabled by default", cfg.debugAddr)
	}
	if cfg.dataDir != "" {
		t.Errorf("dataDir = %q, want disabled by default", cfg.dataDir)
	}
	if cfg.traceSample != 1 { // lint:exact — flag default is the literal 1, not a computed value
		t.Errorf("traceSample = %v, want 1 (sample everything) by default", cfg.traceSample)
	}
	if cfg.nodeID != "" || cfg.peers != "" {
		t.Errorf("nodeID/peers = %q/%q, want single-process mode by default", cfg.nodeID, cfg.peers)
	}
}

func TestParseConfigOverrides(t *testing.T) {
	cfg, err := parseConfig([]string{
		"-addr", "127.0.0.1:9999",
		"-cache-size", "7",
		"-request-timeout", "2s",
		"-shutdown-timeout", "1s",
		"-max-inflight", "3",
		"-breaker-threshold", "-1",
		"-breaker-cooldown", "5s",
		"-stale-serve=false",
		"-batch-workers", "9",
		"-trace-buffer", "13",
		"-debug-addr", "127.0.0.1:6060",
		"-data-dir", "/tmp/datasets",
		"-trace-sample", "0.25",
		"-node-id", "a",
		"-peers", "a=127.0.0.1:8080,b=127.0.0.1:8081",
	})
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	want := config{
		addr:             "127.0.0.1:9999",
		cacheSize:        7,
		requestTimeout:   2 * time.Second,
		shutdownTimeout:  time.Second,
		maxInFlight:      3,
		breakerThreshold: -1,
		breakerCooldown:  5 * time.Second,
		staleServe:       false,
		batchWorkers:     9,
		traceBuffer:      13,
		debugAddr:        "127.0.0.1:6060",
		dataDir:          "/tmp/datasets",
		traceSample:      0.25,
		nodeID:           "a",
		peers:            "a=127.0.0.1:8080,b=127.0.0.1:8081",
	}
	if cfg != want {
		t.Errorf("parseConfig = %+v, want %+v", cfg, want)
	}
}

func TestParseConfigError(t *testing.T) {
	if _, err := parseConfig([]string{"-request-timeout", "not-a-duration"}); err == nil {
		t.Fatal("expected error for malformed duration")
	}
	if _, err := parseConfig([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected error for unknown flag")
	}
	if _, err := parseConfig([]string{"-node-id", "a"}); err == nil {
		t.Fatal("expected error for -node-id without -peers")
	}
}

// TestServerOptionsFleet pins the multi-replica wiring: -peers builds a
// fleet whose membership, identity, and ring version come from the peer
// table, and a malformed table (or a -node-id missing from it) fails
// startup rather than silently serving single-process.
func TestServerOptionsFleet(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	events := obs.NewLogger(io.Discard)
	cfg := config{
		nodeID:      "b",
		peers:       "a=127.0.0.1:8080,b=127.0.0.1:8081,c=127.0.0.1:8082",
		traceSample: 1,
	}
	opts, err := cfg.serverOptions(logger, events)
	if err != nil {
		t.Fatalf("serverOptions: %v", err)
	}
	if opts.Fleet == nil {
		t.Fatal("Fleet = nil, want a fleet when -peers is set")
	}
	if opts.Fleet.Self() != "b" {
		t.Errorf("Self = %q, want b", opts.Fleet.Self())
	}
	if got := len(opts.Fleet.Peers()); got != 3 {
		t.Errorf("len(Peers) = %d, want 3", got)
	}

	cfg.peers = "a=127.0.0.1:8080" // node-id b not in the table
	if _, err := cfg.serverOptions(logger, events); err == nil {
		t.Fatal("expected error when -node-id is not in -peers")
	}

	cfg.peers = "not-a-peer-table"
	if _, err := cfg.serverOptions(logger, events); err == nil {
		t.Fatal("expected error for malformed -peers")
	}

	cfg.peers = ""
	cfg.nodeID = ""
	opts, err = cfg.serverOptions(logger, events)
	if err != nil {
		t.Fatalf("serverOptions: %v", err)
	}
	if opts.Fleet != nil {
		t.Error("Fleet must stay nil without -peers")
	}
}

// TestServerOptionsTraceSample pins that -trace-sample reaches the
// tracer: at rate 0 every request is sampled out.
func TestServerOptionsTraceSample(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	events := obs.NewLogger(io.Discard)
	cfg := config{traceBuffer: 4, traceSample: 0}
	opts, err := cfg.serverOptions(logger, events)
	if err != nil {
		t.Fatalf("serverOptions: %v", err)
	}
	if got := opts.Tracer.Stats().SampleRate; got != 0 {
		t.Errorf("SampleRate = %v, want 0", got)
	}
}

func TestServerOptionsMapping(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	events := obs.NewLogger(io.Discard)
	cfg := config{
		cacheSize:        11,
		maxInFlight:      22,
		breakerThreshold: 33,
		breakerCooldown:  44 * time.Second,
		staleServe:       false,
		batchWorkers:     6,
		traceBuffer:      5,
		dataDir:          "/tmp/datasets",
	}
	opts, err := cfg.serverOptions(logger, events)
	if err != nil {
		t.Fatalf("serverOptions: %v", err)
	}
	if opts.CacheSize != 11 || opts.MaxInFlight != 22 || opts.BreakerThreshold != 33 || opts.BreakerCooldown != 44*time.Second || opts.BatchWorkers != 6 {
		t.Errorf("options mismatch: %+v", opts)
	}
	if opts.DataDir != "/tmp/datasets" {
		t.Errorf("DataDir = %q, want /tmp/datasets", opts.DataDir)
	}
	if opts.Logger != logger {
		t.Error("logger not propagated")
	}
	if opts.Events != events {
		t.Error("events logger not propagated")
	}
	if opts.Tracer == nil || opts.Tracer.Stats().Capacity != 5 {
		t.Errorf("tracer capacity not mapped from -trace-buffer: %+v", opts.Tracer)
	}
	// The flag is phrased positively (-stale-serve) but the option is a
	// disable switch; the inversion is the part worth pinning.
	if !opts.DisableStaleServe {
		t.Error("staleServe=false must set DisableStaleServe")
	}
	cfg.staleServe = true
	opts, err = cfg.serverOptions(logger, events)
	if err != nil {
		t.Fatalf("serverOptions: %v", err)
	}
	if opts.DisableStaleServe {
		t.Error("staleServe=true must clear DisableStaleServe")
	}
}

// TestDebugHandler pins the -debug-addr surface: pprof endpoints are
// served, and everything else falls through to the main handler.
func TestDebugHandler(t *testing.T) {
	main := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	h := debugHandler(main)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("fallback: status %d, want main handler's 418", rec.Code)
	}
}

func TestNewHTTPServerWiring(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	cfg := config{addr: ":0", requestTimeout: 50 * time.Millisecond}
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	srv := newHTTPServer(cfg, handler, logger)
	if srv.Addr != ":0" {
		t.Errorf("Addr = %q, want :0", srv.Addr)
	}
	if srv.WriteTimeout != cfg.requestTimeout+5*time.Second {
		t.Errorf("WriteTimeout = %s, want request timeout + 5s", srv.WriteTimeout)
	}
	if srv.ErrorLog != logger {
		t.Error("ErrorLog not propagated")
	}

	// The handler above outlives the deadline, so the TimeoutHandler
	// wrapper must answer with 503 and the JSON timeout body.
	rec := httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/courses", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 from TimeoutHandler", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, `"code":"timeout"`) {
		t.Errorf("timeout body = %q, want JSON error envelope", body)
	}
}
