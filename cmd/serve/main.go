// Command serve runs the CS Materials reproduction as a versioned JSON
// HTTP API — the "public resource" form of the system (§3.1) — with
// production hardening: a bounded LRU cache with singleflight over the
// analyses, per-route metrics, panic recovery, structured access logs,
// per-request timeouts, and graceful shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	serve [-addr :8080] [-cache-size 256] [-request-timeout 30s] [-shutdown-timeout 10s]
//
// Endpoints (all GET; every /api/v1 response is a {"data","meta"}
// envelope, errors are {"error":{"code","message"}}):
//
//	GET /healthz
//	GET /api/v1/courses?limit=N&offset=M
//	GET /api/v1/courses/{id}
//	GET /api/v1/courses/{id}/materials
//	GET /api/v1/courses/{id}/anchors
//	GET /api/v1/courses/{id}/audit
//	GET /api/v1/courses/{id}/pdcmaterials?limit=N
//	GET /api/v1/search?tags=...&prefix=...&author=...&limit=N&offset=M
//	GET /api/v1/agreement?group=CS1|DS|DSAlgo|PDC|all&threshold=K
//	GET /api/v1/types?group=...&k=K
//	GET /api/v1/cluster?group=...&k=K
//	GET /api/v1/figures/{id}[?svg=name.svg]
//	GET /debug/metrics
//
// Legacy /api/... paths permanently redirect to /api/v1/... .
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"csmaterials/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache-size", server.DefaultCacheSize, "analysis cache capacity in entries (negative disables retention)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request handler deadline")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	flag.Parse()

	logger := log.New(os.Stderr, "serve ", log.LstdFlags|log.LUTC)
	s, err := server.NewWithOptions(server.Options{CacheSize: *cacheSize, Logger: logger})
	if err != nil {
		logger.Fatalf("startup: %v", err)
	}

	const timeoutBody = `{"error":{"code":"timeout","message":"request timed out"}}`
	srv := &http.Server{
		Addr:              *addr,
		Handler:           http.TimeoutHandler(s, *requestTimeout, timeoutBody),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// The handler deadline fires first; leave headroom to flush.
		WriteTimeout: *requestTimeout + 5*time.Second,
		IdleTimeout:  2 * time.Minute,
		ErrorLog:     logger,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Propagate the signal context into every request so in-flight
	// handlers observe cancellation during shutdown.
	srv.BaseContext = func(net.Listener) context.Context { return ctx }

	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		logger.Printf("shutdown: signal received, draining for up to %s", *shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v (forcing close)", err)
			_ = srv.Close()
		}
	}()

	logger.Printf("csmaterials API listening on %s (cache=%d entries, request timeout %s)", *addr, *cacheSize, *requestTimeout)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Fatalf("serve: %v", err)
	}
	<-done
	logger.Printf("shutdown: complete")
}
