// Command serve runs the CS Materials reproduction as a JSON HTTP API —
// the "public resource" form of the system (§3.1).
//
// Usage:
//
//	serve [-addr :8080]
//
// Endpoints:
//
//	GET /healthz
//	GET /api/courses
//	GET /api/courses/{id}
//	GET /api/courses/{id}/materials
//	GET /api/courses/{id}/anchors
//	GET /api/courses/{id}/audit
//	GET /api/courses/{id}/pdcmaterials
//	GET /api/search?tags=...&prefix=...&author=...&limit=...
//	GET /api/agreement?group=CS1|DS|DSAlgo|PDC|all&threshold=K
//	GET /api/types?group=...&k=K
//	GET /api/figures/{id}[?svg=name.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"csmaterials/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	s, err := server.New()
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("csmaterials API listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("serve: %v", err)
	}
}
