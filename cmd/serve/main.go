// Command serve runs the CS Materials reproduction as a versioned JSON
// HTTP API — the "public resource" form of the system (§3.1) — with
// production hardening: a bounded LRU cache with singleflight over the
// analyses, per-route metrics, panic recovery, structured access logs,
// per-request timeouts, graceful shutdown on SIGINT/SIGTERM, and a
// resilience ladder (load shedding, per-analysis circuit breakers,
// stale-serve degradation).
//
// Usage:
//
//	serve [-addr :8080] [-cache-size 256] [-request-timeout 30s] [-shutdown-timeout 10s]
//	      [-max-inflight 256] [-breaker-threshold 5] [-breaker-cooldown 30s] [-stale-serve=true]
//	      [-batch-workers 4] [-trace-buffer 256] [-trace-sample 1] [-debug-addr ""] [-data-dir ""]
//	      [-api-keys-file ""] [-idle-ttl 0] [-node-id ""] [-peers ""]
//
// Beyond -max-inflight concurrent /api/v1 requests the server sheds
// load with 429 + Retry-After. Each analysis family has a circuit
// breaker that opens after -breaker-threshold consecutive compute
// failures and probes again after -breaker-cooldown; while a breaker
// is open (or a compute fails) the server degrades to the last known
// good result — marked meta.stale:true and X-Served-Stale — unless
// -stale-serve=false.
//
// Endpoints (every /api/v1 response is a {"data","meta"} envelope,
// errors are {"error":{"code","message"}}):
//
//	GET  /healthz
//	GET  /readyz
//	GET  /api/v1/courses?limit=N&offset=M
//	GET  /api/v1/courses/{id}
//	GET  /api/v1/courses/{id}/materials
//	GET  /api/v1/courses/{id}/anchors
//	GET  /api/v1/courses/{id}/audit
//	GET  /api/v1/courses/{id}/pdcmaterials?limit=N
//	GET  /api/v1/search?tags=...&prefix=...&author=...&limit=N&offset=M
//	GET  /api/v1/agreement?group=CS1|DS|DSAlgo|PDC|all&threshold=K
//	GET  /api/v1/types?group=...&k=K
//	GET  /api/v1/cluster?group=...&k=K
//	GET  /api/v1/figures/{id}[?svg=name.svg]
//	POST /api/v1/batch          {"items":[{"analysis":"types","dataset":"d","params":{"group":"cs1"}}, ...]}
//	GET  /api/v1/datasets?limit=N&offset=M
//	GET  /api/v1/datasets/{id}              dataset metadata (revision, courses, materials)
//	PUT  /api/v1/datasets/{id}              ingest/replace a dataset ({"courses":[...]})
//	PATCH /api/v1/datasets/{id}             apply a delta ({"events":[...]}); incremental refresh
//	DELETE /api/v1/datasets/{id}            remove a dataset ("default" is protected, 409)
//	POST /api/v1/keys/reload                re-read -api-keys-file (admin key; SIGHUP equivalent)
//	GET  /api/v1/datasets/{id}/...          every query/analysis route, dataset-scoped
//	GET  /metrics               Prometheus text exposition
//	GET  /debug/metrics         JSON metrics
//	GET  /debug/trace           retained trace IDs
//	GET  /debug/trace/{id}      one request's span record
//
// Every API response carries an X-Trace header naming its request
// trace; the last -trace-buffer traces are retained for
// /debug/trace/{id}. Operational output (startup, shutdown) is
// structured JSON on stderr, one event per line, matching the
// per-request wide events. With -debug-addr set, a second listener
// serves Go pprof under /debug/pprof/ (plus everything the main
// listener serves), so profiling stays off the public port.
//
// The analysis endpoints are registry-driven (internal/engine): each
// registered analysis is served at /api/v1/<name> and is addressable
// by name in a batch. Batch items run on a -batch-workers pool with
// per-item cache/breaker semantics and per-item error envelopes, in
// input order.
//
// The API is multi-dataset: the synthetic seed corpus is dataset
// "default", -data-dir loads additional *.json dataset documents at
// startup (each named after its file stem), and PUT /api/v1/datasets/{id}
// ingests or replaces a dataset live. The un-scoped routes above are
// permanent aliases for the default dataset; each also exists under
// /api/v1/datasets/{id}/... scoped to any dataset. Caches, breakers,
// and metrics partition per (dataset, analysis).
//
// Multi-replica mode: start every replica with the same -peers list
// ("id=host:port,...") and its own -node-id from that list. Replicas
// route each analysis request to the key's owner on a consistent-hash
// ring (ownership = cache locality; the owner's singleflight becomes
// cluster-wide dedup), fan batch items out by owner, and broadcast
// ingest invalidations, degrading to local compute whenever a peer is
// unreachable or draining. GET /api/v1/fleet reports membership and
// routing counters; docs/cluster.md is the operator guide. At fleet
// scale -trace-sample thins request tracing to a deterministic
// fraction; sampled-out requests still log a wide event.
//
// Legacy /api/... paths permanently redirect to /api/v1/... .
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"csmaterials/internal/engine"
	"csmaterials/internal/fleet"
	"csmaterials/internal/obs"
	"csmaterials/internal/resilience"
	"csmaterials/internal/server"
)

// config is the parsed command line, split from main so tests can cover
// flag parsing and server wiring without binding a socket.
type config struct {
	addr             string
	cacheSize        int
	requestTimeout   time.Duration
	shutdownTimeout  time.Duration
	maxInFlight      int
	breakerThreshold int
	breakerCooldown  time.Duration
	staleServe       bool
	batchWorkers     int
	traceBuffer      int
	debugAddr        string
	dataDir          string
	apiKeysFile      string
	idleTTL          time.Duration
	nodeID           string
	peers            string
	traceSample      float64
}

// fleetFlagNames are the flags that exist only for multi-replica
// deployments. docs/cluster.md must document every one of them — the
// docs drift test walks this list, so adding a fleet flag without a
// cluster-doc entry fails the build.
var fleetFlagNames = []string{"node-id", "peers", "trace-sample"}

// newFlagSet builds the serve flag set over cfg. Split from
// parseConfig so the docs drift test can introspect the registered
// flags without parsing a command line.
func newFlagSet(cfg *config) *flag.FlagSet {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.cacheSize, "cache-size", server.DefaultCacheSize, "analysis cache capacity in entries (negative disables retention)")
	fs.DurationVar(&cfg.requestTimeout, "request-timeout", 30*time.Second, "per-request handler deadline")
	fs.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	fs.IntVar(&cfg.maxInFlight, "max-inflight", server.DefaultMaxInFlight, "max concurrent /api/v1 requests before shedding with 429 (negative disables)")
	fs.IntVar(&cfg.breakerThreshold, "breaker-threshold", resilience.DefaultBreakerThreshold, "consecutive compute failures before an analysis circuit opens (negative disables breakers)")
	fs.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", resilience.DefaultBreakerCooldown, "how long an open circuit waits before a half-open probe")
	fs.BoolVar(&cfg.staleServe, "stale-serve", true, "serve last-known-good results (meta.stale) when a compute fails or its circuit is open")
	fs.IntVar(&cfg.batchWorkers, "batch-workers", engine.DefaultBatchWorkers, "worker pool size for POST /api/v1/batch")
	fs.IntVar(&cfg.traceBuffer, "trace-buffer", server.DefaultTraceBuffer, "finished request traces retained for GET /debug/trace/{id}")
	fs.StringVar(&cfg.debugAddr, "debug-addr", "", "optional second listen address serving /debug/pprof/ (empty disables)")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "optional directory of *.json dataset documents registered at startup")
	fs.StringVar(&cfg.apiKeysFile, "api-keys-file", "", "optional JSON keyring locking dataset PUT/DELETE behind API keys (CSM_ADMIN_KEY adds an admin key; empty + unset env = open mode)")
	fs.DurationVar(&cfg.idleTTL, "idle-ttl", 0, "reclaim idle datasets' search indexes and warm caches after this long without queries (0 disables)")
	fs.StringVar(&cfg.nodeID, "node-id", "", "this replica's node ID in the -peers list (required with -peers)")
	fs.StringVar(&cfg.peers, "peers", "", "fleet membership as comma-separated id=host:port entries, including this node; empty = single-process mode")
	fs.Float64Var(&cfg.traceSample, "trace-sample", 1, "fraction of requests to trace, 0..1 (sampled-out requests still log wide events)")
	return fs
}

// parseConfig parses args (excluding the program name).
func parseConfig(args []string) (config, error) {
	cfg := config{}
	fs := newFlagSet(&cfg)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if cfg.peers == "" && cfg.nodeID != "" {
		return config{}, errors.New("-node-id is set but -peers is empty")
	}
	return cfg, nil
}

// serverOptions maps the command line onto the server package's
// options. events carries the per-request wide events; logger keeps
// receiving panic stacks and http.Server errors. API keys come from
// -api-keys-file folded with the CSM_ADMIN_KEY environment variable;
// when neither is set the mutating dataset surface stays open.
func (c config) serverOptions(logger *log.Logger, events *obs.Logger) (server.Options, error) {
	var keys *server.KeysFile
	if c.apiKeysFile != "" {
		kf, err := server.LoadKeysFile(c.apiKeysFile)
		if err != nil {
			return server.Options{}, err
		}
		keys = kf
	}
	keys = server.KeysFromEnv(keys)
	var reload func() (*server.KeysFile, error)
	if c.apiKeysFile != "" {
		// Rotation without restart: SIGHUP and POST /api/v1/keys/reload
		// re-read the same file (CSM_ADMIN_KEY is folded back in by the
		// server on every reload).
		path := c.apiKeysFile
		reload = func() (*server.KeysFile, error) { return server.LoadKeysFile(path) }
	}
	tracer := obs.NewTracer(c.traceBuffer, nil)
	tracer.SetSampleRate(c.traceSample)
	var fl *fleet.Fleet
	if c.peers != "" {
		fcfg, err := fleet.ParsePeers(c.nodeID, c.peers)
		if err != nil {
			return server.Options{}, err
		}
		// Per-peer forwarding breakers reuse the analysis breaker
		// tuning: a peer that keeps failing transport stops being
		// forwarded to for the same cooldown an analysis would get.
		fl, err = fleet.New(fcfg, fleet.Options{
			BreakerThreshold: c.breakerThreshold,
			BreakerCooldown:  c.breakerCooldown,
		})
		if err != nil {
			return server.Options{}, err
		}
	}
	return server.Options{
		CacheSize:         c.cacheSize,
		Logger:            logger,
		MaxInFlight:       c.maxInFlight,
		BreakerThreshold:  c.breakerThreshold,
		BreakerCooldown:   c.breakerCooldown,
		DisableStaleServe: !c.staleServe,
		BatchWorkers:      c.batchWorkers,
		Tracer:            tracer,
		Events:            events,
		DataDir:           c.dataDir,
		APIKeys:           keys,
		ReloadKeys:        reload,
		IdleTTL:           c.idleTTL,
		Fleet:             fl,
	}, nil
}

// debugHandler serves Go pprof under /debug/pprof/ and falls back to
// the main handler for everything else, so the debug listener also
// answers /metrics, /debug/trace, and /debug/metrics.
func debugHandler(main http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", main)
	return mux
}

// newHTTPServer wraps the handler with the per-request timeout and the
// hardening timeouts around it.
func newHTTPServer(cfg config, handler http.Handler, logger *log.Logger) *http.Server {
	const timeoutBody = `{"error":{"code":"timeout","message":"request timed out"}}`
	return &http.Server{
		Addr:              cfg.addr,
		Handler:           http.TimeoutHandler(handler, cfg.requestTimeout, timeoutBody),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// The handler deadline fires first; leave headroom to flush.
		WriteTimeout: cfg.requestTimeout + 5*time.Second,
		IdleTimeout:  2 * time.Minute,
		ErrorLog:     logger,
	}
}

func main() {
	cfg, err := parseConfig(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}

	// All operational output is structured: one JSON event per line on
	// stderr, the same stream and shape as the per-request wide events.
	// The plain logger remains for panic stacks and http.Server errors,
	// which are multi-line by nature.
	events := obs.NewLogger(os.Stderr)
	logger := log.New(os.Stderr, "serve ", log.LstdFlags|log.LUTC)
	fail := func(event string, err error) {
		events.Event(event, map[string]interface{}{"error": err.Error()})
		os.Exit(1)
	}

	opts, err := cfg.serverOptions(logger, events)
	if err != nil {
		fail("startup-failed", err)
	}
	s, err := server.NewWithOptions(opts)
	if err != nil {
		fail("startup-failed", err)
	}
	srv := newHTTPServer(cfg, s, logger)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Idle-dataset reclamation runs for the process lifetime; servers
	// embedded in tests never start it.
	s.StartIdleReaper(ctx)
	// Ingest-triggered warmups spawned after this point are cancelled by
	// the signal context and awaited before shutdown-complete.
	s.BindLifecycle(ctx)
	// Propagate the signal context into every request so in-flight
	// handlers observe cancellation during shutdown.
	srv.BaseContext = func(net.Listener) context.Context { return ctx }

	// SIGHUP rotates the API keyring in place when -api-keys-file is
	// set: revoked keys stop authenticating on the next request without
	// dropping a single connection.
	if cfg.apiKeysFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-ctx.Done():
					signal.Stop(hup)
					return
				case <-hup:
					if err := s.ReloadAPIKeys(); err != nil {
						events.Event("keys-reload-failed", map[string]interface{}{"error": err.Error()})
					} else {
						events.Event("keys-reloaded", map[string]interface{}{"file": cfg.apiKeysFile})
					}
				}
			}
		}()
	}

	if cfg.debugAddr != "" {
		dbg := &http.Server{Addr: cfg.debugAddr, Handler: debugHandler(s), ErrorLog: logger}
		go func() {
			events.Event("debug-listening", map[string]interface{}{"addr": cfg.debugAddr})
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				events.Event("debug-failed", map[string]interface{}{"error": err.Error()})
			}
		}()
		go func() {
			<-ctx.Done()
			_ = dbg.Close()
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		// In fleet mode, stop accepting newly forwarded computes (503
		// node_draining, peers fall back locally) before the listener
		// starts its graceful drain.
		s.StartDraining()
		events.Event("shutdown-draining", map[string]interface{}{"grace": cfg.shutdownTimeout.String()})
		shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			events.Event("shutdown-forced", map[string]interface{}{"error": err.Error()})
			_ = srv.Close()
		}
	}()

	listening := map[string]interface{}{
		"addr":            cfg.addr,
		"cache_entries":   cfg.cacheSize,
		"request_timeout": cfg.requestTimeout.String(),
		"max_in_flight":   cfg.maxInFlight,
		"trace_buffer":    cfg.traceBuffer,
	}
	if fl := s.Fleet(); fl != nil {
		listening["node_id"] = fl.Self()
		listening["ring_version"] = fl.RingVersion()
		listening["peers"] = len(fl.Peers())
	}
	events.Event("listening", listening)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fail("serve-failed", err)
	}
	<-done
	s.DrainBackground()
	events.Event("shutdown-complete", nil)
}
