package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestClusterDocsCoverFleetFlags pins docs/cluster.md to the live flag
// surface: every fleet flag the binary registers must be documented,
// and fleetFlagNames itself must stay in sync with the flag set — a new
// -fleet-something flag that is neither listed nor documented fails CI.
func TestClusterDocsCoverFleetFlags(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "cluster.md"))
	if err != nil {
		t.Fatalf("docs/cluster.md unreadable: %v", err)
	}
	doc := string(raw)

	var cfg config
	fs := newFlagSet(&cfg)
	for _, name := range fleetFlagNames {
		if fs.Lookup(name) == nil {
			t.Errorf("fleetFlagNames lists -%s, which cmd/serve does not register", name)
			continue
		}
		if !strings.Contains(doc, "-"+name) {
			t.Errorf("docs/cluster.md does not document the -%s flag", name)
		}
	}
}
