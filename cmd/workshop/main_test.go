package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWorkshopRunsForEveryDatasetCourse(t *testing.T) {
	// The workshop flow must complete for any course an attendee brings.
	for _, id := range []string{"uncc-2214-krs", "ccc-csci40-kerney", "uncc-3145-saule", "utsa-bopana"} {
		var out bytes.Buffer
		if err := run(&out, id); err != nil {
			t.Errorf("workshop failed for %s: %v", id, err)
			continue
		}
		for _, step := range []string{
			"Day 1:", "Day 2, step 1:", "Day 2, step 5:", "Day 2, step 6:", "Day 2, step 7:",
		} {
			if !strings.Contains(out.String(), step) {
				t.Errorf("workshop for %s skipped %q", id, step)
			}
		}
	}
}

func TestWorkshopRejectsUnknownCourse(t *testing.T) {
	if err := run(io.Discard, "ghost"); err == nil {
		t.Fatal("unknown course accepted")
	}
}

// TestWorkshopGoldenOutput pins the full workshop transcript for the
// default course byte for byte: every analysis in the flow is
// deterministic, so any drift is a real behaviour change. Regenerate
// with:
//
//	UPDATE_GOLDEN=1 go test ./cmd/workshop/
func TestWorkshopGoldenOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "uncc-2214-krs"); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "workshop-uncc-2214-krs.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out.Bytes(), want)
	}
}
