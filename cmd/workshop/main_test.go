package main

import "testing"

func TestWorkshopRunsForEveryDatasetCourse(t *testing.T) {
	// The workshop flow must complete for any course an attendee brings.
	for _, id := range []string{"uncc-2214-krs", "ccc-csci40-kerney", "uncc-3145-saule", "utsa-bopana"} {
		if err := run(id); err != nil {
			t.Errorf("workshop failed for %s: %v", id, err)
		}
	}
}

func TestWorkshopRejectsUnknownCourse(t *testing.T) {
	if err := run("ghost"); err == nil {
		t.Fatal("unknown course accepted")
	}
}
