// Command workshop simulates the paper's two-day course analysis workshop
// (§3.2) end to end for a single course: day one classifies the course's
// materials against the guidelines (here: loads one dataset course and
// validates it into a fresh repository); day two runs the analyses the
// attendees are taught — coverage, alignment between material types,
// finding related materials, and the course's anchor points for PDC
// content.
//
// The per-course analyses (anchor points, guideline audit, public PDC
// material recommendations) are the same registered engine analyses
// the HTTP API serves: the workshop dispatches them by name through an
// engine.Executor rather than wiring the analysis packages directly.
//
// Usage:
//
//	workshop [-course ID]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"sort"

	"csmaterials/internal/agreement"
	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
	"csmaterials/internal/engine/analyses"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/search"
	"csmaterials/internal/serving"
	"csmaterials/internal/simgraph"
)

func main() {
	course := flag.String("course", "uncc-2214-krs", "course to analyze")
	flag.Parse()
	if err := run(os.Stdout, *course); err != nil {
		fmt.Fprintf(os.Stderr, "workshop: %v\n", err)
		os.Exit(1)
	}
}

// newExecutor builds the analysis engine the workshop dispatches
// through — the same registry the API serves, minus the serving
// middleware it does not need.
func newExecutor() (*engine.Executor, error) {
	reg, err := analyses.Default()
	if err != nil {
		return nil, err
	}
	return engine.NewExecutor(reg, engine.ExecutorOptions{
		Repo:  dataset.Repository(),
		Cache: serving.NewCache(16),
	}), nil
}

// printer writes the workshop transcript. Output goes to the console or
// a test buffer, where a failed write has no recovery path, so write
// errors are discarded explicitly.
type printer struct{ w io.Writer }

func (p printer) printf(format string, args ...interface{}) {
	_, _ = fmt.Fprintf(p.w, format, args...)
}

func (p printer) println(args ...interface{}) {
	_, _ = fmt.Fprintln(p.w, args...)
}

// analyze dispatches one registered analysis for the course and returns
// its typed result.
func analyze(exec *engine.Executor, name, courseID string) (interface{}, error) {
	v, _, err := exec.Run(context.Background(), name, url.Values{"course": []string{courseID}})
	if err != nil {
		return nil, fmt.Errorf("%s analysis: %w", name, err)
	}
	return v, nil
}

func run(w io.Writer, courseID string) error {
	source := dataset.Repository().Course(courseID)
	if source == nil {
		return fmt.Errorf("unknown course %q", courseID)
	}
	exec, err := newExecutor()
	if err != nil {
		return err
	}
	out := printer{w}

	// --- Day 1: input the class into the system -------------------------
	out.printf("Day 1: classifying %q into a fresh repository\n", source.Name)
	repo := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	if err := repo.AddCourse(source); err != nil {
		return fmt.Errorf("classification rejected: %w", err)
	}
	out.printf("  %d materials classified against %d curriculum entries\n\n",
		len(source.Materials), len(source.TagSet()))

	// --- Day 2: study the coverage ---------------------------------------
	out.println("Day 2, step 1: coverage by knowledge area")
	counts := map[string]int{}
	cs := ontology.CS2013()
	for tag := range source.TagSet() {
		if n := cs.Lookup(tag); n != nil {
			counts[ontology.AreaOf(n).ID]++
		}
	}
	var areas []string
	for ka := range counts {
		areas = append(areas, ka)
	}
	sort.Slice(areas, func(i, j int) bool {
		if counts[areas[i]] != counts[areas[j]] {
			return counts[areas[i]] > counts[areas[j]]
		}
		return areas[i] < areas[j]
	})
	for _, ka := range areas {
		out.printf("  %-6s %3d entries\n", ka, counts[ka])
	}

	// --- Alignment between content delivery and assessment ---------------
	out.println("\nDay 2, step 2: alignment between lectures and assessments")
	var lectures, assessments []*materials.Material
	for _, m := range source.Materials {
		switch m.Type {
		case materials.Lecture, materials.Reading:
			lectures = append(lectures, m)
		case materials.Assignment, materials.Quiz, materials.Exam, materials.Lab, materials.Project:
			assessments = append(assessments, m)
		}
	}
	al := agreement.Align(lectures, assessments)
	out.printf("  Jaccard alignment: %.2f (%d shared, %d lecture-only, %d assessment-only tags)\n",
		al.Jaccard, len(al.Shared), len(al.OnlyLeft), len(al.OnlyRight))
	if len(al.OnlyLeft) > 0 {
		out.println("  covered in lectures but never assessed (first 5):")
		for i, tag := range al.OnlyLeft {
			if i == 5 {
				break
			}
			out.printf("    - %s\n", tag)
		}
	}

	// --- Find new materials for the class --------------------------------
	out.println("\nDay 2, step 3: finding related materials in the full repository")
	searcher := search.NewEngine(dataset.Repository())
	seed := source.Materials[0]
	out.printf("  materials similar to %q:\n", seed.Title)
	for _, r := range searcher.SimilarTo(seed.ID, 5) {
		out.printf("    %5.2f  %s (%s)\n", r.Score, r.Material.Title, r.Material.ID)
	}

	// --- Similarity map of the course's own materials --------------------
	out.println("\nDay 2, step 4: 2D similarity map of the course's materials")
	limit := len(source.Materials)
	if limit > 12 {
		limit = 12
	}
	g, err := simgraph.Build(source.Materials[:limit], simgraph.Jaccard)
	if err != nil {
		return err
	}
	pts, err := g.Embed(dataset.Seed)
	if err != nil {
		return err
	}
	for _, p := range pts {
		out.printf("    (%6.2f, %6.2f)  %s\n", p.X, p.Y, p.Material.ID)
	}

	// --- Anchor points ----------------------------------------------------
	out.println("\nDay 2, step 5: PDC anchor points for this course")
	v, err := analyze(exec, "anchors", courseID)
	if err != nil {
		return err
	}
	recs := v.([]analyses.AnchorRec)
	if len(recs) == 0 {
		out.println("  no high-confidence anchor points for this course")
	}
	for _, r := range recs {
		out.printf("  [%3.0f%%] %s\n", r.Score*100, r.Title)
		out.printf("         audience: %s\n", r.Audience)
		out.printf("         activity: %s\n", r.Activity)
	}

	// --- Audit against the guideline tiers --------------------------------
	out.println("\nDay 2, step 6: CS2013 tier audit and PDC readiness")
	v, err = analyze(exec, "audit", courseID)
	if err != nil {
		return err
	}
	aud := v.(*analyses.AuditResponse)
	out.printf("  core-1 coverage %.1f%%, core-2 coverage %.1f%%\n",
		100*aud.Core1Coverage, 100*aud.Core2Coverage)
	out.printf("  PDC prerequisite score: %.0f%% of the §4.7 prerequisite entries covered\n",
		100*aud.PrerequisiteScore)

	// --- Public PDC materials that fit this course -------------------------
	out.println("\nDay 2, step 7: public PDC materials that fit this course")
	v, err = analyze(exec, "pdcmaterials", courseID)
	if err != nil {
		return err
	}
	for i, r := range v.([]analyses.PDCRec) {
		if i == 5 {
			break
		}
		out.printf("  %5.2f  [%-14s] %s (+%d new PDC12 entries)\n",
			r.Score, r.Source, r.Title, r.NewPDC)
	}
	return nil
}
