// Command workshop simulates the paper's two-day course analysis workshop
// (§3.2) end to end for a single course: day one classifies the course's
// materials against the guidelines (here: loads one dataset course and
// validates it into a fresh repository); day two runs the analyses the
// attendees are taught — coverage, alignment between material types,
// finding related materials, and the course's anchor points for PDC
// content.
//
// Usage:
//
//	workshop [-course ID]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"csmaterials/internal/agreement"
	"csmaterials/internal/anchor"
	"csmaterials/internal/audit"
	"csmaterials/internal/catalog"
	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/search"
	"csmaterials/internal/simgraph"
)

func main() {
	course := flag.String("course", "uncc-2214-krs", "course to analyze")
	flag.Parse()
	if err := run(*course); err != nil {
		fmt.Fprintf(os.Stderr, "workshop: %v\n", err)
		os.Exit(1)
	}
}

func run(courseID string) error {
	source := dataset.Repository().Course(courseID)
	if source == nil {
		return fmt.Errorf("unknown course %q", courseID)
	}

	// --- Day 1: input the class into the system -------------------------
	fmt.Printf("Day 1: classifying %q into a fresh repository\n", source.Name)
	repo := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	if err := repo.AddCourse(source); err != nil {
		return fmt.Errorf("classification rejected: %w", err)
	}
	fmt.Printf("  %d materials classified against %d curriculum entries\n\n",
		len(source.Materials), len(source.TagSet()))

	// --- Day 2: study the coverage ---------------------------------------
	fmt.Println("Day 2, step 1: coverage by knowledge area")
	counts := map[string]int{}
	cs := ontology.CS2013()
	for tag := range source.TagSet() {
		if n := cs.Lookup(tag); n != nil {
			counts[ontology.AreaOf(n).ID]++
		}
	}
	var areas []string
	for ka := range counts {
		areas = append(areas, ka)
	}
	sort.Slice(areas, func(i, j int) bool { return counts[areas[i]] > counts[areas[j]] })
	for _, ka := range areas {
		fmt.Printf("  %-6s %3d entries\n", ka, counts[ka])
	}

	// --- Alignment between content delivery and assessment ---------------
	fmt.Println("\nDay 2, step 2: alignment between lectures and assessments")
	var lectures, assessments []*materials.Material
	for _, m := range source.Materials {
		switch m.Type {
		case materials.Lecture, materials.Reading:
			lectures = append(lectures, m)
		case materials.Assignment, materials.Quiz, materials.Exam, materials.Lab, materials.Project:
			assessments = append(assessments, m)
		}
	}
	al := agreement.Align(lectures, assessments)
	fmt.Printf("  Jaccard alignment: %.2f (%d shared, %d lecture-only, %d assessment-only tags)\n",
		al.Jaccard, len(al.Shared), len(al.OnlyLeft), len(al.OnlyRight))
	if len(al.OnlyLeft) > 0 {
		fmt.Println("  covered in lectures but never assessed (first 5):")
		for i, tag := range al.OnlyLeft {
			if i == 5 {
				break
			}
			fmt.Printf("    - %s\n", tag)
		}
	}

	// --- Find new materials for the class --------------------------------
	fmt.Println("\nDay 2, step 3: finding related materials in the full repository")
	engine := search.NewEngine(dataset.Repository())
	seed := source.Materials[0]
	fmt.Printf("  materials similar to %q:\n", seed.Title)
	for _, r := range engine.SimilarTo(seed.ID, 5) {
		fmt.Printf("    %5.2f  %s (%s)\n", r.Score, r.Material.Title, r.Material.ID)
	}

	// --- Similarity map of the course's own materials --------------------
	fmt.Println("\nDay 2, step 4: 2D similarity map of the course's materials")
	limit := len(source.Materials)
	if limit > 12 {
		limit = 12
	}
	g, err := simgraph.Build(source.Materials[:limit], simgraph.Jaccard)
	if err != nil {
		return err
	}
	pts, err := g.Embed(dataset.Seed)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("    (%6.2f, %6.2f)  %s\n", p.X, p.Y, p.Material.ID)
	}

	// --- Anchor points ----------------------------------------------------
	fmt.Println("\nDay 2, step 5: PDC anchor points for this course")
	rec, err := anchor.NewRecommender(ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return err
	}
	fmt.Print(anchor.Report(rec.Recommend(source)))

	// --- Audit against the guideline tiers --------------------------------
	fmt.Println("\nDay 2, step 6: CS2013 tier audit and PDC readiness")
	report := audit.Audit(source, ontology.CS2013())
	fmt.Printf("  core-1 coverage %.1f%%, core-2 coverage %.1f%%\n",
		100*report.TierCoverage(ontology.TierCore1), 100*report.TierCoverage(ontology.TierCore2))
	readiness := audit.AssessPDCReadiness(source)
	fmt.Printf("  PDC prerequisite score: %.0f%% of the §4.7 prerequisite entries covered\n",
		100*readiness.PrerequisiteScore())

	// --- Public PDC materials that fit this course -------------------------
	fmt.Println("\nDay 2, step 7: public PDC materials that fit this course")
	for _, r := range catalog.Recommend(source, 5) {
		fmt.Printf("  %5.2f  [%-14s] %s (+%d new PDC12 entries)\n",
			r.Score, r.Entry.Source, r.Entry.Material.Title, r.NewPDC)
	}
	return nil
}
