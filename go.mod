module csmaterials

go 1.22
