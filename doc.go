// Package csmaterials is a from-scratch Go reproduction of "Data-Driven
// Discovery of Anchor Points for PDC Content" (McQuaigue, Saule,
// Subramanian, Payton; SC-W 2023): the CS Materials classification system,
// the ACM/IEEE CS2013 and NSF/IEEE-TCPP PDC12 curriculum ontologies, a
// calibrated synthesis of the paper's 20-course workshop dataset, the
// NNMF course-type analysis with PCA/MDS baselines, the tag-agreement
// analyses, and the §5.2 PDC anchor-point recommender.
//
// The root package only anchors the module and the benchmark harness
// (bench_test.go); the implementation lives under internal/ and the
// runnable entry points under cmd/ and examples/. See README.md for the
// tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-versus-measured record of every figure.
package csmaterials
