// Benchmark harness: one benchmark per figure of the paper plus the
// ablations called out in DESIGN.md §5. Each figure benchmark regenerates
// the figure's artifact and, on its first run in the process, prints the
// same rows/series the paper reports so that
//
//	go test -bench=. -benchmem
//
// both times the pipelines and records their outputs (tee the run into
// bench_output.txt to archive the reproduction).
package csmaterials_test

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"csmaterials/internal/agreement"
	"csmaterials/internal/audit"
	"csmaterials/internal/bicluster"
	"csmaterials/internal/catalog"
	"csmaterials/internal/cluster"
	"csmaterials/internal/core"
	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/materials"
	"csmaterials/internal/matrix"
	"csmaterials/internal/mds"
	"csmaterials/internal/nnmf"
	"csmaterials/internal/ontology"
	"csmaterials/internal/pca"
	"csmaterials/internal/robustness"
	"csmaterials/internal/search"
	"csmaterials/internal/server"
	"csmaterials/internal/simgraph"
	"csmaterials/internal/taskgraph"
)

var printOnce sync.Map

// benchFigure runs a figure generator inside a benchmark loop, printing
// its text once per process.
func benchFigure(b *testing.B, id string, gen func() (*core.Artifact, error)) {
	b.Helper()
	art, err := gen()
	if err != nil {
		b.Fatal(err)
	}
	if _, done := printOnce.LoadOrStore(id, true); !done {
		fmt.Printf("\n================ %s ================\n%s\n", id, art.Text)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact -----------------------------------

func BenchmarkFigure1CourseTable(b *testing.B) { benchFigure(b, "Figure 1", core.Figure1) }

func BenchmarkFigure2AllCoursesNNMF(b *testing.B) { benchFigure(b, "Figure 2", core.Figure2) }

func BenchmarkFigure3aCS1Agreement(b *testing.B) { benchFigure(b, "Figure 3a", core.Figure3a) }

func BenchmarkFigure3bDSAgreement(b *testing.B) { benchFigure(b, "Figure 3b", core.Figure3b) }

func BenchmarkFigure4CS1AgreementTrees(b *testing.B) { benchFigure(b, "Figure 4", core.Figure4) }

func BenchmarkFigure5CS1NNMF(b *testing.B) { benchFigure(b, "Figure 5", core.Figure5) }

func BenchmarkFigure6DSAgreementTrees(b *testing.B) { benchFigure(b, "Figure 6", core.Figure6) }

func BenchmarkFigure7DSNNMF(b *testing.B) { benchFigure(b, "Figure 7", core.Figure7) }

func BenchmarkFigure8PDCAgreement(b *testing.B) { benchFigure(b, "Figure 8", core.Figure8) }

func BenchmarkAnchorRecommendations(b *testing.B) { benchFigure(b, "§5.2 anchors", core.AnchorReport) }

// --- Ablation: NNMF update rules (DESIGN.md §5) --------------------------

func courseMatrix(b *testing.B) *matrix.Dense {
	b.Helper()
	a, _ := materials.CourseMatrix(dataset.Courses())
	return a
}

func BenchmarkNNMFAlgorithm(b *testing.B) {
	a := courseMatrix(b)
	for _, alg := range []nnmf.Algorithm{nnmf.MultiplicativeFrobenius, nnmf.MultiplicativeKL, nnmf.HALS} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			var lastErr float64
			for i := 0; i < b.N; i++ {
				res, err := nnmf.Factorize(a, nnmf.Options{K: 4, Algorithm: alg, Seed: 1, MaxIter: 200})
				if err != nil {
					b.Fatal(err)
				}
				lastErr = res.Err
			}
			b.ReportMetric(lastErr, "rel-err")
		})
	}
}

func BenchmarkNNMFInit(b *testing.B) {
	a := courseMatrix(b)
	for _, init := range []nnmf.Init{nnmf.InitRandom, nnmf.InitNNDSVD} {
		b.Run(init.String(), func(b *testing.B) {
			var lastErr float64
			for i := 0; i < b.N; i++ {
				res, err := nnmf.Factorize(a, nnmf.Options{K: 4, Init: init, Seed: 1, MaxIter: 200})
				if err != nil {
					b.Fatal(err)
				}
				lastErr = res.Err
			}
			b.ReportMetric(lastErr, "rel-err")
		})
	}
}

// --- Ablation: NNMF vs PCA vs MDS on course separation -------------------

func BenchmarkDimReduction(b *testing.B) {
	a := courseMatrix(b)
	b.Run("nnmf-k4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nnmf.Factorize(a, nnmf.Options{K: 4, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pca-k4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pca.Fit(a, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mds-k2", func(b *testing.B) {
		// Distances between course tag vectors, embedded in 2D.
		d := mds.EuclideanDistances(a)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mds.Classical(d, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: dense vs sparse NNMF on the real course matrix ------------

func BenchmarkSparseNNMF(b *testing.B) {
	a := courseMatrix(b)
	csr := matrix.FromDense(a)
	b.Logf("course matrix %dx%d, density %.3f", a.Rows(), a.Cols(), csr.Density())
	opts := nnmf.Options{K: 4, Seed: 1, MaxIter: 200}
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nnmf.Factorize(a, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nnmf.FactorizeCSR(csr, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: serial vs parallel matrix multiply ------------------------

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := matrix.Random(256, 256, rng)
	y := matrix.Random(256, 256, rng)
	b.Run("serial-256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.MulSerial(y)
		}
	})
	b.Run(fmt.Sprintf("parallel-256-p%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.MulParallel(y, 0)
		}
	})
}

// --- Ablation: list-scheduling policies and machine sweep ----------------

func BenchmarkListScheduling(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := taskgraph.Layered(12, 16, 0.2, rng)
	for _, policy := range []taskgraph.Policy{taskgraph.FIFO, taskgraph.LPT, taskgraph.CriticalPathPriority} {
		for _, m := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/m%d", policy, m), func(b *testing.B) {
				var makespan float64
				for i := 0; i < b.N; i++ {
					s, err := taskgraph.ListSchedule(g, m, policy)
					if err != nil {
						b.Fatal(err)
					}
					makespan = s.Makespan
				}
				b.ReportMetric(makespan, "makespan")
			})
		}
	}
}

// BenchmarkHEFT sweeps communication cost on a heterogeneous platform.
func BenchmarkHEFT(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	g := taskgraph.Layered(10, 12, 0.25, rng)
	machines := []taskgraph.Machine{{Speed: 2}, {Speed: 1}, {Speed: 1}, {Speed: 0.5}}
	for _, comm := range []float64{0, 0.5, 2} {
		comm := comm
		b.Run(fmt.Sprintf("comm-%.1f", comm), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				s, err := taskgraph.HEFT(g, machines, comm)
				if err != nil {
					b.Fatal(err)
				}
				makespan = s.Makespan
			}
			b.ReportMetric(makespan, "makespan")
		})
	}
}

func BenchmarkTaskGraphExecute(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := taskgraph.Layered(8, 8, 0.3, rng)
	noop := func(string) error { return nil }
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := g.Execute(workers, noop); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Serving layer: cold vs. warm analysis cache --------------------------

// serveOnce drives one request through the full middleware + handler
// stack and fails the benchmark on a non-200.
func serveOnce(b *testing.B, s *server.Server, path string) {
	b.Helper()
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	if rr.Code != http.StatusOK {
		b.Fatalf("GET %s: status %d\n%s", path, rr.Code, rr.Body.String())
	}
}

// BenchmarkServeTypes contrasts recomputing the NNMF typing on every
// request (cold: cache retention disabled) with serving it from the
// LRU cache (warm). The warm path is the production configuration.
func BenchmarkServeTypes(b *testing.B) {
	const path = "/api/v1/types?group=all&k=4"
	b.Run("cold", func(b *testing.B) {
		s, err := server.NewWithOptions(server.Options{CacheSize: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, s, path)
		}
	})
	b.Run("warm", func(b *testing.B) {
		s, err := server.New()
		if err != nil {
			b.Fatal(err)
		}
		serveOnce(b, s, path) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, s, path)
		}
	})
}

// BenchmarkServeAgreement does the same for the agreement analysis.
func BenchmarkServeAgreement(b *testing.B) {
	const path = "/api/v1/agreement?group=cs1&threshold=4"
	b.Run("cold", func(b *testing.B) {
		s, err := server.NewWithOptions(server.Options{CacheSize: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, s, path)
		}
	})
	b.Run("warm", func(b *testing.B) {
		s, err := server.New()
		if err != nil {
			b.Fatal(err)
		}
		serveOnce(b, s, path)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, s, path)
		}
	})
}

// --- Supporting-system benchmarks ----------------------------------------

func BenchmarkSearchEngine(b *testing.B) {
	engine := search.NewEngine(dataset.Repository())
	q := search.Query{TagPrefixes: []string{"AL/"}, Limit: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := engine.Search(q); len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkSimilarityGraph(b *testing.B) {
	ms := dataset.Repository().Course("uncc-2214-krs").Materials
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simgraph.Build(ms, simgraph.Jaccard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMDSEmbed(b *testing.B) {
	ms := dataset.Repository().Course("uncc-2214-krs").Materials[:16]
	g, err := simgraph.Build(ms, simgraph.Jaccard)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Embed(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBicluster(b *testing.B) {
	a := courseMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bicluster.Cluster(a, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAgreementAnalysis(b *testing.B) {
	courses := dataset.CoursesByID(dataset.DSCourseIDs())
	guidelines := []*ontology.Guideline{ontology.CS2013(), ontology.PDC12()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := agreement.Analyze(courses, guidelines...)
		if err != nil {
			b.Fatal(err)
		}
		_ = a.Tree(ontology.CS2013(), 3)
	}
}

// BenchmarkStability times the restart-consensus stability analysis
// (DESIGN.md §5 extension; addresses the paper's §5.3 sample-size threat).
func BenchmarkStability(b *testing.B) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	var score float64
	for i := 0; i < b.N; i++ {
		st, err := factorize.AssessStability(courses, 3, nnmf.Options{Seed: 1, MaxIter: 200}, 6)
		if err != nil {
			b.Fatal(err)
		}
		score = st.Score()
	}
	b.ReportMetric(score, "stability")
}

// BenchmarkCatalogRecommend times the public-material recommendation
// pipeline (the paper's stated future work).
func BenchmarkCatalogRecommend(b *testing.B) {
	course := dataset.Repository().Course("uncc-2214-krs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if recs := catalog.Recommend(course, 10); len(recs) == 0 {
			b.Fatal("no recommendations")
		}
	}
}

// BenchmarkAudit times the CS2013 tier audit over the full collection.
func BenchmarkAudit(b *testing.B) {
	courses := dataset.Courses()
	g := ontology.CS2013()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cov := audit.AuditCollection(courses, g); len(cov) == 0 {
			b.Fatal("empty audit")
		}
	}
}

// BenchmarkRobustnessSweep times the classification-noise sensitivity
// analysis (the §5.3 threat-to-validity, made measurable).
func BenchmarkRobustnessSweep(b *testing.B) {
	courses := dataset.Courses()
	var typing float64
	for i := 0; i < b.N; i++ {
		res, err := robustness.Sweep(courses, 4, factorize.PaperOptions(), []float64{0.1}, 2)
		if err != nil {
			b.Fatal(err)
		}
		typing = res[0].Typing
	}
	b.ReportMetric(typing, "typing@10%noise")
}

// BenchmarkHierarchicalClustering times the dendrogram construction over
// all 20 courses (the future-work alternative typing).
func BenchmarkHierarchicalClustering(b *testing.B) {
	courses := dataset.Courses()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Build(courses, cluster.Average); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBootstrapAgreement times the §5.3 bootstrap over the CS1 set.
func BenchmarkBootstrapAgreement(b *testing.B) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	gs := []*ontology.Guideline{ontology.CS2013(), ontology.PDC12()}
	for i := 0; i < b.N; i++ {
		if _, err := robustness.BootstrapAgreement(courses, 100, 0.9, 1, gs...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelSelection times the paper's k = 2..4 sweep on CS1.
func BenchmarkModelSelection(b *testing.B) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	guidelines := []*ontology.Guideline{ontology.CS2013(), ontology.PDC12()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := factorize.CompareK(courses, []int{2, 3, 4}, factorize.PaperOptions(), guidelines...); err != nil {
			b.Fatal(err)
		}
	}
}
