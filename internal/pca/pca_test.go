package pca

import (
	"math"
	"math/rand"
	"testing"

	"csmaterials/internal/matrix"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitValidation(t *testing.T) {
	a := matrix.NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if _, err := Fit(matrix.New(1, 3), 1); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := Fit(a, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Fit(a, 3); err == nil {
		t.Error("k > cols accepted")
	}
}

func TestPerfectlyCorrelatedData(t *testing.T) {
	// y = 2x: one component explains everything.
	a := matrix.NewFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}})
	r, err := Fit(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	ratios := r.ExplainedRatio()
	if !approx(ratios[0], 1, 1e-9) {
		t.Fatalf("first component explains %v, want 1", ratios[0])
	}
	if !approx(ratios[1], 0, 1e-9) {
		t.Fatalf("second component explains %v, want 0", ratios[1])
	}
	// The first component direction is (1,2)/√5 up to sign.
	c0 := r.Components.Col(0)
	want := []float64{1 / math.Sqrt(5), 2 / math.Sqrt(5)}
	sign := 1.0
	if c0[0] < 0 {
		sign = -1
	}
	for i := range want {
		if !approx(sign*c0[i], want[i], 1e-9) {
			t.Fatalf("component = %v, want ±%v", c0, want)
		}
	}
}

func TestScoresCentered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := matrix.Random(20, 5, rng)
	r, err := Fit(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	sums := r.Scores.ColSums()
	for j, s := range sums {
		if !approx(s, 0, 1e-9) {
			t.Fatalf("score column %d not centered: %v", j, s)
		}
	}
}

func TestExplainedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := matrix.Random(30, 6, rng)
	r, err := Fit(a, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Explained); i++ {
		if r.Explained[i] > r.Explained[i-1]+1e-12 {
			t.Fatal("explained variance not descending")
		}
	}
	total := 0.0
	for _, v := range r.ExplainedRatio() {
		total += v
	}
	if !approx(total, 1, 1e-6) {
		t.Fatalf("full-rank explained ratios sum to %v", total)
	}
}

func TestTransformMatchesScores(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := matrix.Random(15, 4, rng)
	r, err := Fit(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := r.Transform(a)
	if err != nil {
		t.Fatal(err)
	}
	if !proj.EqualTol(r.Scores, 1e-9) {
		t.Fatal("Transform of training data differs from Scores")
	}
	if _, err := r.Transform(matrix.New(3, 7)); err == nil {
		t.Fatal("wrong-width Transform accepted")
	}
}

func TestReconstructFullRankIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := matrix.Random(12, 4, rng)
	r, err := Fit(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	back, err := r.Reconstruct(r.Scores)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualTol(a, 1e-8) {
		t.Fatalf("full-rank reconstruction error %v", back.Sub(a).MaxAbs())
	}
	if _, err := r.Reconstruct(matrix.New(3, 2)); err == nil {
		t.Fatal("wrong-width Reconstruct accepted")
	}
}

func TestLowRankReconstructionBeatsNothing(t *testing.T) {
	// Rank-1 structure + tiny noise: 1 component must reconstruct well.
	rng := rand.New(rand.NewSource(5))
	base := matrix.Random(20, 1, rng)
	dirs := matrix.Random(1, 6, rng)
	a := base.Mul(dirs).Apply(func(_, _ int, v float64) float64 { return v + 0.01*rng.NormFloat64() })
	r, err := Fit(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := r.Reconstruct(r.Scores)
	if err != nil {
		t.Fatal(err)
	}
	relErr := back.Sub(a).FrobeniusNorm() / a.FrobeniusNorm()
	if relErr > 0.05 {
		t.Fatalf("rank-1 PCA reconstruction error %v too high", relErr)
	}
}
