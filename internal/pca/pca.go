// Package pca implements principal component analysis via the
// eigendecomposition of the column covariance matrix. The paper names PCA
// (with MDS) as the dimension-reduction alternative to NNMF it wants to
// compare against (§5.3, §6); the benchmark harness uses this package for
// that ablation.
package pca

import (
	"fmt"

	"csmaterials/internal/matrix"
)

// Result is a fitted PCA model.
type Result struct {
	// Components holds the principal directions as columns (features × k).
	Components *matrix.Dense
	// Explained holds the variance along each component, descending.
	Explained []float64
	// TotalVariance is the trace of the covariance matrix.
	TotalVariance float64
	// Means are the column means subtracted before projection.
	Means []float64
	// Scores are the projections of the training rows (rows × k).
	Scores *matrix.Dense
}

// Fit computes the k leading principal components of a (observations are
// rows, features are columns).
func Fit(a *matrix.Dense, k int) (*Result, error) {
	rows, cols := a.Dims()
	if rows < 2 {
		return nil, fmt.Errorf("pca: need at least 2 observations, got %d", rows)
	}
	if k <= 0 || k > cols || k > rows {
		return nil, fmt.Errorf("pca: k=%d out of range for %dx%d", k, rows, cols)
	}
	cov := matrix.Covariance(a)
	vals, vecs := matrix.TopEigenSym(cov, k)
	total := 0.0
	for i := 0; i < cols; i++ {
		total += cov.At(i, i)
	}
	centered, means := a.CenterCols()
	scores := centered.Mul(vecs)
	// Clamp tiny negative eigenvalues from numerical jitter.
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	return &Result{
		Components:    vecs,
		Explained:     vals,
		TotalVariance: total,
		Means:         means,
		Scores:        scores,
	}, nil
}

// ExplainedRatio returns the fraction of total variance captured by each
// component.
func (r *Result) ExplainedRatio() []float64 {
	out := make([]float64, len(r.Explained))
	if r.TotalVariance == 0 {
		return out
	}
	for i, v := range r.Explained {
		out[i] = v / r.TotalVariance
	}
	return out
}

// Transform projects new rows (same feature width as the training data)
// onto the fitted components.
func (r *Result) Transform(a *matrix.Dense) (*matrix.Dense, error) {
	if a.Cols() != len(r.Means) {
		return nil, fmt.Errorf("pca: Transform expects %d features, got %d", len(r.Means), a.Cols())
	}
	centered := a.Apply(func(_, j int, v float64) float64 { return v - r.Means[j] })
	return centered.Mul(r.Components), nil
}

// Reconstruct maps scores back to the original feature space (inverse
// transform), used to measure reconstruction error against NNMF.
func (r *Result) Reconstruct(scores *matrix.Dense) (*matrix.Dense, error) {
	if scores.Cols() != r.Components.Cols() {
		return nil, fmt.Errorf("pca: Reconstruct expects %d components, got %d", r.Components.Cols(), scores.Cols())
	}
	back := scores.MulABt(r.Components)
	return back.Apply(func(_, j int, v float64) float64 { return v + r.Means[j] }), nil
}
