// Package factorize performs the paper's course-type analysis (§4): it
// turns a set of classified courses into a 0-1 course × curriculum matrix,
// factorizes it with NNMF, and interprets the factors — which course is
// dominated by which type (the W matrix of Figures 2, 5a, 7a), and which
// curriculum entries and knowledge areas characterize each type (the H
// matrix of Figures 5b and 7b).
package factorize

import (
	"context"
	"fmt"
	"sort"

	"csmaterials/internal/materials"
	"csmaterials/internal/matrix"
	"csmaterials/internal/nnmf"
	"csmaterials/internal/ontology"
	"csmaterials/internal/stats"
)

// PaperOptions returns the canonical NNMF configuration used by the
// figure harness, benchmarks, and shape tests: random initialization (as
// in the paper) with a fixed seed and enough restarts to land in a stable
// local optimum.
func PaperOptions() nnmf.Options {
	return nnmf.Options{Seed: 1, Restarts: 10, MaxIter: 500}
}

// Model is a fitted course-type model.
type Model struct {
	Courses []*materials.Course
	// Tags labels the columns of A and H.
	Tags []string
	// A is the 0-1 course × curriculum matrix.
	A *matrix.Dense
	// W maps courses to types (Courses × K), H maps types to curriculum
	// entries (K × Tags).
	W, H *matrix.Dense
	// K is the number of types.
	K int
	// Fit carries the NNMF convergence diagnostics.
	Fit *nnmf.Result

	guidelines []*ontology.Guideline
}

// TagWeight is a curriculum entry with its H weight for some type.
type TagWeight struct {
	Tag    string
	Weight float64
}

// Analyze builds the course matrix and factorizes it with k types.
// Guidelines are used to interpret tags (knowledge-area summaries); pass
// CS2013 and, for PDC courses, PDC12.
func Analyze(courses []*materials.Course, k int, opts nnmf.Options, guidelines ...*ontology.Guideline) (*Model, error) {
	return AnalyzeCtx(context.Background(), courses, k, opts, guidelines...)
}

// AnalyzeCtx is Analyze with cooperative cancellation: the underlying
// NNMF checks ctx between iterations and returns ctx.Err() promptly
// when the caller goes away, so a cancelled request stops burning CPU
// mid-factorization instead of converging for nobody.
func AnalyzeCtx(ctx context.Context, courses []*materials.Course, k int, opts nnmf.Options, guidelines ...*ontology.Guideline) (*Model, error) {
	if len(courses) == 0 {
		return nil, fmt.Errorf("factorize: no courses")
	}
	if len(guidelines) == 0 {
		return nil, fmt.Errorf("factorize: no guidelines for interpretation")
	}
	a, tags := materials.CourseMatrix(courses)
	opts.K = k
	var res *nnmf.Result
	var err error
	if opts.Algorithm == nnmf.MultiplicativeFrobenius && opts.L1W == 0 && opts.L1H == 0 {
		// The 0-1 course matrix is sparse; the CSR fast path computes the
		// identical factorization (same init, same updates) in roughly
		// half the time. See BenchmarkSparseNNMF.
		res, err = nnmf.FactorizeCSRCtx(ctx, matrix.FromDense(a), opts)
	} else {
		res, err = nnmf.FactorizeCtx(ctx, a, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("factorize: %w", err)
	}
	return &Model{
		Courses:    courses,
		Tags:       tags,
		A:          a,
		W:          res.W,
		H:          res.H,
		K:          k,
		Fit:        res,
		guidelines: guidelines,
	}, nil
}

// DominantType returns the type with the largest W weight for course i.
func (m *Model) DominantType(i int) int { return m.W.ArgMaxRow(i) }

// TypeShare returns course i's W row normalized to sum to one — the
// course's composition across types ("20% theory, 40% shared memory...").
func (m *Model) TypeShare(i int) []float64 {
	row := m.W.Row(i)
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if sum == 0 {
		return row
	}
	for j := range row {
		row[j] /= sum
	}
	return row
}

// Evenness returns the normalized entropy of course i's type shares:
// 0 when the course belongs to exactly one type, 1 when it spreads
// uniformly over all types (the paper's "UCF hits all three types
// evenly").
func (m *Model) Evenness(i int) float64 {
	return stats.NormalizedEntropy(m.W.Row(i))
}

// TopTags returns the n curriculum entries with the largest H weight for
// type t, in descending order.
func (m *Model) TopTags(t, n int) []TagWeight {
	row := m.H.RowView(t)
	order := stats.RankDescending(row)
	if n > len(order) {
		n = len(order)
	}
	out := make([]TagWeight, n)
	for i := 0; i < n; i++ {
		out[i] = TagWeight{Tag: m.Tags[order[i]], Weight: row[order[i]]}
	}
	return out
}

// KAShare returns, for type t, the fraction of H mass attributed to each
// knowledge area — the basis for reading the H matrix the way §4.4 does
// ("Type 1 seems to contain primarily topics that fall within the
// Algorithm and Complexity Knowledge Area").
func (m *Model) KAShare(t int) map[string]float64 {
	row := m.H.RowView(t)
	total := 0.0
	shares := map[string]float64{}
	for j, w := range row {
		if w <= 0 {
			continue
		}
		ka := m.areaOf(m.Tags[j])
		shares[ka] += w
		total += w
	}
	if total > 0 {
		for k := range shares {
			shares[k] /= total
		}
	}
	return shares
}

// DominantKAs returns the knowledge areas of type t sorted by descending
// H mass share, with their shares.
func (m *Model) DominantKAs(t int) []TagWeight {
	shares := m.KAShare(t)
	out := make([]TagWeight, 0, len(shares))
	for ka, s := range shares {
		out = append(out, TagWeight{Tag: ka, Weight: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// TypeLabel produces a short human-readable label for type t from its two
// most massive knowledge areas, e.g. "AL+SDF".
func (m *Model) TypeLabel(t int) string {
	kas := m.DominantKAs(t)
	switch len(kas) {
	case 0:
		return "empty"
	case 1:
		return kas[0].Tag
	default:
		return kas[0].Tag + "+" + kas[1].Tag
	}
}

// areaOf maps a tag to its knowledge-area ID, searching the model's
// guidelines; unknown tags map to "?".
func (m *Model) areaOf(tag string) string {
	for _, g := range m.guidelines {
		if n := g.Lookup(tag); n != nil {
			if a := ontology.AreaOf(n); a != nil {
				// Distinguish PDC12 areas from CS2013 areas by prefixing
				// with the guideline when it is not the first one.
				if g != m.guidelines[0] {
					return g.Name + ":" + a.ID
				}
				return a.ID
			}
		}
	}
	return "?"
}

// CourseIndex returns the row index of the course with the given ID, or
// -1 if absent.
func (m *Model) CourseIndex(id string) int {
	for i, c := range m.Courses {
		if c.ID == id {
			return i
		}
	}
	return -1
}

// TypeOfCourse is shorthand for DominantType(CourseIndex(id)); it panics
// on an unknown ID.
func (m *Model) TypeOfCourse(id string) int {
	i := m.CourseIndex(id)
	if i < 0 {
		panic(fmt.Sprintf("factorize: unknown course %q", id))
	}
	return m.DominantType(i)
}

// Redundancy returns the maximum pairwise cosine similarity between the
// model's H rows (the paper's overfit signal for too-large k).
func (m *Model) Redundancy() float64 { return nnmf.CosineRedundancy(m.H) }

// GroupPurity computes, for each type, which course group its dominant
// courses come from, returning type → group → count. It quantifies the
// reading of Figure 2 ("dimension 4 has a high intensity on courses which
// seem to be about data structures").
func (m *Model) GroupPurity() []map[materials.CourseGroup]int {
	out := make([]map[materials.CourseGroup]int, m.K)
	for t := range out {
		out[t] = map[materials.CourseGroup]int{}
	}
	for i, c := range m.Courses {
		out[m.DominantType(i)][c.Group]++
	}
	return out
}

// Project estimates the type mixture of a course that was NOT part of the
// fitted model: holding H fixed, it solves for the course's W row with
// non-negative multiplicative updates. This is how CS Materials would
// type a newly classified course without refitting — and how an
// instructor can ask "which flavor is my course?" against the paper's
// model. Tags outside the model's vocabulary are ignored.
func (m *Model) Project(c *materials.Course, iterations int) []float64 {
	if iterations <= 0 {
		iterations = 200
	}
	colIdx := make(map[string]int, len(m.Tags))
	for j, t := range m.Tags {
		colIdx[t] = j
	}
	a := matrix.New(1, len(m.Tags))
	for tag := range c.TagSet() {
		if j, ok := colIdx[tag]; ok {
			a.Set(0, j, 1)
		}
	}
	// w ← w ⊙ (aHᵀ) ⊘ (w(HHᵀ)), the W-side Lee-Seung update with H fixed.
	hht := m.H.MulABt(m.H)
	aht := a.MulABt(m.H)
	w := matrix.New(1, m.K)
	for t := 0; t < m.K; t++ {
		w.Set(0, t, 1.0/float64(m.K))
	}
	const eps = 1e-12
	for it := 0; it < iterations; it++ {
		denom := w.Mul(hht)
		w = w.MulElem(aht.DivElem(denom, eps))
	}
	// Normalize to shares.
	row := w.Row(0)
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if sum > 0 {
		for j := range row {
			row[j] /= sum
		}
	}
	return row
}

// ProjectDominant returns the dominant type index of a projected course.
func (m *Model) ProjectDominant(c *materials.Course) int {
	shares := m.Project(c, 0)
	best := 0
	for t, v := range shares {
		if v > shares[best] {
			best = t
		}
	}
	return best
}

// CompareK runs the model-selection procedure of §4.4: factorize for each
// candidate k and report error and redundancy so the analyst can pick the
// most revealing k.
func CompareK(courses []*materials.Course, ks []int, opts nnmf.Options, guidelines ...*ontology.Guideline) ([]nnmf.KDiagnostics, error) {
	if len(courses) == 0 {
		return nil, fmt.Errorf("factorize: no courses")
	}
	a, _ := materials.CourseMatrix(courses)
	return nnmf.SelectK(a, ks, opts)
}
