package factorize

import (
	"fmt"
	"runtime"
	"sync"

	"csmaterials/internal/materials"
	"csmaterials/internal/matrix"
	"csmaterials/internal/nnmf"
)

// Stability quantifies how reproducible an NNMF course typing is across
// random restarts — the paper's §5.3 concern that "the number of courses
// ... is somewhat small and might not accurately reflect the overall
// trend" made operational: if the same courses co-cluster under every
// seed, the typing is trustworthy; if co-assignment is near chance, it
// is an artifact of the initialization.
type Stability struct {
	// Consensus[i][j] is the fraction of runs in which courses i and j
	// shared a dominant type. The diagonal is 1.
	Consensus *matrix.Dense
	// Runs is the number of factorizations performed.
	Runs int
	// Courses labels the consensus rows.
	Courses []*materials.Course
}

// Score returns the consensus dispersion score in [0, 1]: the mean of
// 4·c·(1−c) over off-diagonal consensus values is 0 when every pair
// either always or never co-clusters (perfectly stable) and 1 at coin-
// flip co-assignment. Score returns 1 − that mean, so 1 = stable.
func (s *Stability) Score() float64 {
	n := s.Consensus.Rows()
	if n < 2 {
		return 1
	}
	total, count := 0.0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := s.Consensus.At(i, j)
			total += 4 * c * (1 - c)
			count++
		}
	}
	return 1 - total/float64(count)
}

// StablePairs returns the course index pairs that co-clustered in at
// least the given fraction of runs.
func (s *Stability) StablePairs(minFraction float64) [][2]int {
	var out [][2]int
	n := s.Consensus.Rows()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.Consensus.At(i, j) >= minFraction {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// AssessStability runs the factorization `runs` times with different
// seeds (opts.Seed, opts.Seed+1000, ...) and accumulates the co-
// assignment consensus matrix. Restarts inside each run are honored.
// The runs are independent and execute concurrently across GOMAXPROCS
// goroutines; the result is deterministic regardless of parallelism.
func AssessStability(courses []*materials.Course, k int, opts nnmf.Options, runs int) (*Stability, error) {
	if runs <= 1 {
		return nil, fmt.Errorf("factorize: stability needs at least 2 runs, got %d", runs)
	}
	if len(courses) == 0 {
		return nil, fmt.Errorf("factorize: no courses")
	}
	a, _ := materials.CourseMatrix(courses)
	n := len(courses)

	// Fan the independent runs out; collect per-run type assignments in
	// order so accumulation stays deterministic.
	typesPerRun := make([][]int, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opts
			o.K = k
			o.Seed = opts.Seed + int64(r)*1000
			res, err := nnmf.Factorize(a, o)
			if err != nil {
				errs[r] = fmt.Errorf("factorize: stability run %d: %w", r, err)
				return
			}
			types := make([]int, n)
			for i := 0; i < n; i++ {
				types[i] = res.W.ArgMaxRow(i)
			}
			typesPerRun[r] = types
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	consensus := matrix.New(n, n)
	for _, types := range typesPerRun {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if types[i] == types[j] {
					consensus.Set(i, j, consensus.At(i, j)+1)
				}
			}
		}
	}
	consensus = consensus.Scale(1 / float64(runs))
	return &Stability{Consensus: consensus, Runs: runs, Courses: courses}, nil
}
