package factorize

import (
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/nnmf"
)

func TestAssessStabilityValidation(t *testing.T) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	if _, err := AssessStability(courses, 3, nnmf.Options{}, 1); err == nil {
		t.Error("1 run accepted")
	}
	if _, err := AssessStability(nil, 3, nnmf.Options{}, 5); err == nil {
		t.Error("no courses accepted")
	}
}

func TestStabilityConsensusProperties(t *testing.T) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	st, err := AssessStability(courses, 3, nnmf.Options{Seed: 1, MaxIter: 200, Restarts: 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := st.Consensus.Rows()
	if n != len(courses) {
		t.Fatalf("consensus dims %d", n)
	}
	for i := 0; i < n; i++ {
		if st.Consensus.At(i, i) != 1 { // lint:exact — self-consensus is exactly 1 by construction
			t.Fatalf("diagonal consensus %v", st.Consensus.At(i, i))
		}
		for j := 0; j < n; j++ {
			v := st.Consensus.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("consensus %v out of range", v)
			}
			if st.Consensus.At(j, i) != v { // lint:exact — symmetric by construction
				t.Fatal("consensus not symmetric")
			}
		}
	}
	score := st.Score()
	if score < 0 || score > 1 {
		t.Fatalf("score %v out of range", score)
	}
}

func TestStabilityHighForWellSeparatedCourses(t *testing.T) {
	// The all-course k=4 typing is strongly structured: PDC, SE, DS, CS1
	// separate under nearly every seed, so stability must be high.
	st, err := AssessStability(dataset.Courses(), 4, nnmf.Options{Seed: 1, MaxIter: 300, Restarts: 3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if st.Score() < 0.6 {
		t.Fatalf("all-course typing unstable: score %v", st.Score())
	}
	// The three PDC courses co-cluster in (almost) every run.
	idx := map[string]int{}
	for i, c := range st.Courses {
		idx[c.ID] = i
	}
	for _, pair := range [][2]string{
		{"uncc-3145-saule", "knox-cs309-bunde"},
		{"uncc-3145-saule", "lsu-csc1350-kundu"},
	} {
		if c := st.Consensus.At(idx[pair[0]], idx[pair[1]]); c < 0.9 {
			t.Errorf("PDC pair %v consensus %v, want >= 0.9", pair, c)
		}
	}
	// The two SoftEng courses likewise.
	if c := st.Consensus.At(idx["gsu-csc4350-levine"], idx["uncc-4155-payton"]); c < 0.9 {
		t.Errorf("SE pair consensus %v", c)
	}
}

func TestStablePairs(t *testing.T) {
	st, err := AssessStability(dataset.Courses(), 4, nnmf.Options{Seed: 1, MaxIter: 200, Restarts: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	all := st.StablePairs(0)
	perfect := st.StablePairs(1.0)
	if len(perfect) > len(all) {
		t.Fatal("threshold filtering broken")
	}
	if len(all) != len(st.Courses)*(len(st.Courses)-1)/2 {
		t.Fatalf("StablePairs(0) = %d pairs", len(all))
	}
}

func TestOverfitKLessStableThanRightK(t *testing.T) {
	// For the CS1 set the paper found k=4 to overfit: its typing should
	// be no more stable than k=3's (typically strictly less).
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	opts := nnmf.Options{Seed: 1, MaxIter: 200, Restarts: 2}
	k3, err := AssessStability(courses, 3, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	k4, err := AssessStability(courses, 4, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if k4.Score() > k3.Score()+0.05 {
		t.Fatalf("overfit k=4 (%.3f) markedly more stable than k=3 (%.3f)", k4.Score(), k3.Score())
	}
}
