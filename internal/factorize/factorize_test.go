package factorize

import (
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/nnmf"
	"csmaterials/internal/ontology"
)

func guidelines() []*ontology.Guideline {
	return []*ontology.Guideline{ontology.CS2013(), ontology.PDC12()}
}

func analyzeOrDie(t *testing.T, courses []*materials.Course, k int) *Model {
	t.Helper()
	m, err := Analyze(courses, k, PaperOptions(), guidelines()...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAnalyzeInputValidation(t *testing.T) {
	if _, err := Analyze(nil, 3, PaperOptions(), guidelines()...); err == nil {
		t.Error("no courses accepted")
	}
	if _, err := Analyze(dataset.Courses(), 3, PaperOptions()); err == nil {
		t.Error("no guidelines accepted")
	}
	if _, err := Analyze(dataset.Courses(), 0, PaperOptions(), guidelines()...); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestModelShapes(t *testing.T) {
	m := analyzeOrDie(t, dataset.Courses(), 4)
	if m.K != 4 {
		t.Fatalf("K = %d", m.K)
	}
	if m.W.Rows() != 20 || m.W.Cols() != 4 {
		t.Fatalf("W dims %dx%d", m.W.Rows(), m.W.Cols())
	}
	if m.H.Rows() != 4 || m.H.Cols() != len(m.Tags) {
		t.Fatalf("H dims %dx%d vs %d tags", m.H.Rows(), m.H.Cols(), len(m.Tags))
	}
	if m.A.Rows() != 20 || m.A.Cols() != len(m.Tags) {
		t.Fatalf("A dims %dx%d", m.A.Rows(), m.A.Cols())
	}
}

func TestTypeShareSumsToOne(t *testing.T) {
	m := analyzeOrDie(t, dataset.Courses(), 4)
	for i := range m.Courses {
		sum := 0.0
		for _, v := range m.TypeShare(i) {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("course %d type shares sum to %v", i, sum)
		}
	}
}

func TestCourseIndexAndTypeOfCourse(t *testing.T) {
	m := analyzeOrDie(t, dataset.Courses(), 4)
	if m.CourseIndex("uncc-2214-krs") != 0 {
		t.Fatalf("CourseIndex = %d", m.CourseIndex("uncc-2214-krs"))
	}
	if m.CourseIndex("nope") != -1 {
		t.Fatal("unknown course should give -1")
	}
	if got := m.TypeOfCourse("uncc-2214-krs"); got != m.DominantType(0) {
		t.Fatalf("TypeOfCourse = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TypeOfCourse(unknown) must panic")
		}
	}()
	m.TypeOfCourse("nope")
}

func TestTopTagsDescendingAndLabeled(t *testing.T) {
	m := analyzeOrDie(t, dataset.Courses(), 4)
	top := m.TopTags(0, 10)
	if len(top) != 10 {
		t.Fatalf("TopTags returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Weight > top[i-1].Weight {
			t.Fatal("TopTags not descending")
		}
	}
	// Over-asking clamps.
	if got := m.TopTags(0, 1<<20); len(got) != len(m.Tags) {
		t.Fatalf("clamped TopTags = %d", len(got))
	}
}

func TestKAShareSumsToOne(t *testing.T) {
	m := analyzeOrDie(t, dataset.Courses(), 4)
	for tIdx := 0; tIdx < 4; tIdx++ {
		sum := 0.0
		for _, s := range m.KAShare(tIdx) {
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("type %d KA shares sum to %v", tIdx, sum)
		}
	}
}

func TestTypeLabelNonEmpty(t *testing.T) {
	m := analyzeOrDie(t, dataset.Courses(), 4)
	for tIdx := 0; tIdx < 4; tIdx++ {
		if m.TypeLabel(tIdx) == "" || m.TypeLabel(tIdx) == "empty" {
			t.Fatalf("type %d has label %q", tIdx, m.TypeLabel(tIdx))
		}
	}
}

// TestFigure2AllCoursesSeparation asserts §4.2: factorizing all courses
// with k=4 produces one dimension per family — data structures, software
// engineering, parallel computing, and CS1.
func TestFigure2AllCoursesSeparation(t *testing.T) {
	m := analyzeOrDie(t, dataset.Courses(), 4)

	// The three PDC courses share a dominant dimension.
	pdcType := m.TypeOfCourse("uncc-3145-saule")
	for _, id := range dataset.PDCCourseIDs() {
		if m.TypeOfCourse(id) != pdcType {
			t.Errorf("PDC course %s not in the PDC dimension", id)
		}
	}
	// The two software engineering courses share a dimension, distinct
	// from PDC.
	seType := m.TypeOfCourse("gsu-csc4350-levine")
	if m.TypeOfCourse("uncc-4155-payton") != seType {
		t.Error("SE courses split across dimensions")
	}
	if seType == pdcType {
		t.Error("SE and PDC collapsed into one dimension")
	}
	// The data structure and algorithms courses share a dimension.
	dsType := m.TypeOfCourse("uncc-2214-krs")
	for _, id := range []string{"uncc-2214-saule", "bsc-cac210-wagner", "vcu-cmsc256-duke", "uncc-2215-krs", "hanover-cs225-wahl"} {
		if m.TypeOfCourse(id) != dsType {
			t.Errorf("DS/Algo course %s not in the DS dimension", id)
		}
	}
	// A majority of CS1 courses share the remaining dimension.
	cs1Type := m.TypeOfCourse("ccc-csci40-kerney")
	if cs1Type == pdcType || cs1Type == seType || cs1Type == dsType {
		t.Error("CS1 dimension collides with another family")
	}
	n := 0
	for _, id := range dataset.CS1CourseIDs() {
		if m.TypeOfCourse(id) == cs1Type {
			n++
		}
	}
	if n < 4 {
		t.Errorf("only %d/6 CS1 courses in the CS1 dimension", n)
	}
}

// TestFigure5CS1Flavors asserts §4.4: three CS1 types — algorithmic
// (Ahmed), imperative with data representation (Kerney, Bourke), and
// object-oriented (Singh) — and the k-selection diagnostics.
func TestFigure5CS1Flavors(t *testing.T) {
	m := analyzeOrDie(t, dataset.CoursesByID(dataset.CS1CourseIDs()), 3)

	ahmed := m.TypeOfCourse("ucf-cop3502-ahmed")
	kerney := m.TypeOfCourse("ccc-csci40-kerney")
	singh := m.TypeOfCourse("washu-cse131-singh")
	if ahmed == kerney || kerney == singh || ahmed == singh {
		t.Fatalf("CS1 flavors collapsed: ahmed=%d kerney=%d singh=%d", ahmed, kerney, singh)
	}
	// Bourke (C course with memory representation) goes with Kerney.
	if m.TypeOfCourse("unl-csce155e-bourke") != kerney {
		t.Error("Bourke not in the imperative type")
	}
	// Kurdia (intro to programming) is imperative too.
	if m.TypeOfCourse("tulane-cmps1100-kurdia") != kerney {
		t.Error("Kurdia not in the imperative type")
	}

	// H-matrix reading of §4.4: Ahmed's type is the most
	// Algorithms-heavy, Kerney's carries the Architecture (data
	// representation) mass, Singh's the Programming Languages mass.
	alShare := func(tIdx int) float64 { return m.KAShare(tIdx)["AL"] }
	arShare := func(tIdx int) float64 { return m.KAShare(tIdx)["AR"] }
	plShare := func(tIdx int) float64 { return m.KAShare(tIdx)["PL"] }
	for _, other := range []int{kerney, singh} {
		if alShare(ahmed) <= alShare(other) {
			t.Errorf("type %d (algorithmic) AL share %.3f not above type %d's %.3f", ahmed, alShare(ahmed), other, alShare(other))
		}
	}
	for _, other := range []int{ahmed, singh} {
		if arShare(kerney) <= arShare(other) {
			t.Errorf("type %d (imperative) AR share %.3f not above type %d's %.3f", kerney, arShare(kerney), other, arShare(other))
		}
	}
	for _, other := range []int{ahmed, kerney} {
		if plShare(singh) <= plShare(other) {
			t.Errorf("type %d (OOP) PL share %.3f not above type %d's %.3f", singh, plShare(singh), other, plShare(other))
		}
	}
	// All three types carry SDF mass (they are all CS1 courses).
	for tIdx := 0; tIdx < 3; tIdx++ {
		if m.KAShare(tIdx)["SDF"] < 0.1 {
			t.Errorf("type %d has almost no SDF mass (%.3f)", tIdx, m.KAShare(tIdx)["SDF"])
		}
	}
}

// TestFigure5KSelection asserts the paper's model-selection observation:
// k=4 produces more redundant H rows than k=3 (two dimensions "almost
// identical", an overfit), and k=2 fits worse than k=3.
func TestFigure5KSelection(t *testing.T) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	diag, err := CompareK(courses, []int{2, 3, 4}, PaperOptions(), guidelines()...)
	if err != nil {
		t.Fatal(err)
	}
	if diag[2].Redundancy <= diag[1].Redundancy {
		t.Errorf("k=4 redundancy %.3f not above k=3's %.3f (the paper's overfit signal)",
			diag[2].Redundancy, diag[1].Redundancy)
	}
	if diag[0].Err <= diag[1].Err {
		t.Errorf("k=2 error %.4f should exceed k=3 error %.4f", diag[0].Err, diag[1].Err)
	}
}

// TestFigure7DSFlavors asserts §4.6: three DS types — applications
// (UNCC 2214 sections), OOP (VCU), combinatorial (BSC + the Algorithms
// courses) — with UCF spreading across types.
func TestFigure7DSFlavors(t *testing.T) {
	m := analyzeOrDie(t, dataset.CoursesByID(dataset.DSAlgoCourseIDs()), 3)

	apps := m.TypeOfCourse("uncc-2214-krs")
	oop := m.TypeOfCourse("vcu-cmsc256-duke")
	comb := m.TypeOfCourse("uncc-2215-krs")
	if apps == oop || oop == comb || apps == comb {
		t.Fatalf("DS flavors collapsed: apps=%d oop=%d comb=%d", apps, oop, comb)
	}
	if m.TypeOfCourse("uncc-2214-saule") != apps {
		t.Error("second 2214 section not in the applications type")
	}
	if m.TypeOfCourse("bsc-cac210-wagner") != comb {
		t.Error("BSC course not in the combinatorial type")
	}
	if m.TypeOfCourse("hanover-cs225-wahl") != comb {
		t.Error("Hanover Algorithms course not in the combinatorial type")
	}

	// H-matrix reading: the OOP type has the largest PL share, the
	// applications type the largest CN (Computational Science) share, and
	// the combinatorial type the largest AL share.
	share := func(tIdx int, ka string) float64 { return m.KAShare(tIdx)[ka] }
	for _, other := range []int{apps, comb} {
		if share(oop, "PL") <= share(other, "PL") {
			t.Errorf("OOP type PL share %.3f not above type %d's %.3f", share(oop, "PL"), other, share(other, "PL"))
		}
	}
	for _, other := range []int{oop, comb} {
		if share(apps, "CN") <= share(other, "CN") {
			t.Errorf("applications type CN share %.3f not above type %d's %.3f", share(apps, "CN"), other, share(other, "CN"))
		}
	}
	for _, other := range []int{apps, oop} {
		if share(comb, "AL") <= share(other, "AL") {
			t.Errorf("combinatorial type AL share %.3f not above type %d's %.3f", share(comb, "AL"), other, share(other, "AL"))
		}
	}

	// UCF spreads across the types: it must be among the two most even
	// courses of the analysis, and no share may be overwhelming.
	ucf := m.CourseIndex("ucf-cop3502-ahmed")
	ucfEven := m.Evenness(ucf)
	higher := 0
	for i := range m.Courses {
		if i != ucf && m.Evenness(i) > ucfEven {
			higher++
		}
	}
	if higher > 1 {
		t.Errorf("UCF evenness %.2f is only rank %d; paper says it hits all three types evenly", ucfEven, higher+1)
	}
	for _, s := range m.TypeShare(ucf) {
		if s > 0.92 {
			t.Errorf("UCF type share %.2f too concentrated", s)
		}
	}
}

func TestGroupPurityCoversAllCourses(t *testing.T) {
	m := analyzeOrDie(t, dataset.Courses(), 4)
	total := 0
	for _, counts := range m.GroupPurity() {
		for _, n := range counts {
			total += n
		}
	}
	if total != len(m.Courses) {
		t.Fatalf("GroupPurity covers %d courses, want %d", total, len(m.Courses))
	}
}

func TestRedundancyInUnitRange(t *testing.T) {
	m := analyzeOrDie(t, dataset.Courses(), 4)
	r := m.Redundancy()
	if r < 0 || r > 1 {
		t.Fatalf("Redundancy = %v", r)
	}
}

func TestCompareKEmptyCourses(t *testing.T) {
	if _, err := CompareK(nil, []int{2}, nnmf.Options{}, guidelines()...); err == nil {
		t.Fatal("CompareK accepted no courses")
	}
}

func TestProjectTrainingCoursesRecoverTheirTypes(t *testing.T) {
	m := analyzeOrDie(t, dataset.CoursesByID(dataset.CS1CourseIDs()), 3)
	for i, c := range m.Courses {
		if got := m.ProjectDominant(c); got != m.DominantType(i) {
			t.Errorf("course %s: projected type %d, fitted type %d", c.ID, got, m.DominantType(i))
		}
	}
}

func TestProjectSyntheticOOPCourse(t *testing.T) {
	m := analyzeOrDie(t, dataset.CoursesByID(dataset.CS1CourseIDs()), 3)
	oop := &materials.Course{
		ID: "new-oop", Name: "New OOP course", Group: materials.GroupOOP,
		Materials: []*materials.Material{{
			ID: "new-m", Title: "m", Type: materials.Lecture,
			Tags: []string{
				"PL/object-oriented-programming/object-oriented-design-classes-and-objects",
				"PL/object-oriented-programming/inheritance-and-subtyping",
				"PL/object-oriented-programming/encapsulation-and-information-hiding",
				"PL/object-oriented-programming/subclasses-and-method-overriding",
				"PL/object-oriented-programming/polymorphism-subtype-polymorphism-versus-parametric",
			},
		}},
	}
	if got, want := m.ProjectDominant(oop), m.TypeOfCourse("washu-cse131-singh"); got != want {
		t.Fatalf("synthetic OOP course projected to type %d, want Singh's OOP type %d", got, want)
	}
	shares := m.Project(oop, 0)
	sum := 0.0
	for _, v := range shares {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("projected shares sum to %v", sum)
	}
}

func TestProjectUnknownTagsIgnored(t *testing.T) {
	m := analyzeOrDie(t, dataset.CoursesByID(dataset.CS1CourseIDs()), 3)
	alien := &materials.Course{
		ID: "alien", Name: "Alien", Group: materials.GroupOther,
		Materials: []*materials.Material{{
			ID: "alien-m", Title: "m", Type: materials.Lecture,
			Tags: []string{"NC/introduction/layering-and-its-purposes"},
		}},
	}
	shares := m.Project(alien, 50)
	for _, v := range shares {
		if v < 0 {
			t.Fatal("negative projected share")
		}
	}
}
