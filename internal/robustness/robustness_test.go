package robustness

import (
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/ontology"
)

func TestPerturbZeroNoiseIsIdentity(t *testing.T) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	perturbed := Perturb(courses, Perturbation{DropRate: 0, AddRate: 0, Seed: 1})
	for i, c := range courses {
		want := c.SortedTags()
		got := perturbed[i].SortedTags()
		if len(want) != len(got) {
			t.Fatalf("course %s: %d tags became %d under zero noise", c.ID, len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("course %s tag %d changed under zero noise", c.ID, j)
			}
		}
	}
}

func TestPerturbDoesNotMutateOriginals(t *testing.T) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	before := make([]int, len(courses))
	for i, c := range courses {
		before[i] = len(c.TagSet())
	}
	Perturb(courses, Perturbation{DropRate: 0.5, AddRate: 0.5, Seed: 2})
	for i, c := range courses {
		if len(c.TagSet()) != before[i] {
			t.Fatalf("original course %s mutated", c.ID)
		}
	}
}

func TestPerturbDropsAndAdds(t *testing.T) {
	courses := dataset.CoursesByID(dataset.DSCourseIDs())
	perturbed := Perturb(courses, Perturbation{DropRate: 0.3, AddRate: 0, Seed: 3})
	for i, c := range courses {
		nb, np := len(c.TagSet()), len(perturbed[i].TagSet())
		if np >= nb {
			t.Fatalf("course %s: drop rate 0.3 did not shrink tags (%d -> %d)", c.ID, nb, np)
		}
		if float64(np) < 0.5*float64(nb) {
			t.Fatalf("course %s: dropped far more than the rate (%d -> %d)", c.ID, nb, np)
		}
	}
	added := Perturb(courses, Perturbation{DropRate: 0, AddRate: 0.4, Seed: 4})
	for i, c := range courses {
		if len(added[i].TagSet()) <= len(c.TagSet()) {
			t.Fatalf("course %s: add rate did not grow tags", c.ID)
		}
	}
}

func TestPerturbDeterministic(t *testing.T) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	a := Perturb(courses, Perturbation{DropRate: 0.2, AddRate: 0.1, Seed: 5})
	b := Perturb(courses, Perturbation{DropRate: 0.2, AddRate: 0.1, Seed: 5})
	for i := range a {
		ta, tb := a[i].SortedTags(), b[i].SortedTags()
		if len(ta) != len(tb) {
			t.Fatal("same seed produced different perturbations")
		}
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatal("same seed produced different perturbations")
			}
		}
	}
}

func TestPerturbedCoursesStayValid(t *testing.T) {
	courses := dataset.Courses()
	perturbed := Perturb(courses, Perturbation{DropRate: 0.4, AddRate: 0.3, Seed: 6})
	for _, c := range perturbed {
		if err := c.Validate(); err != nil {
			t.Fatalf("perturbed course invalid: %v", err)
		}
		if len(c.TagSet()) == 0 {
			t.Fatalf("course %s lost all tags", c.ID)
		}
	}
}

func TestTypingAgreementIdenticalInputs(t *testing.T) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	agree, err := TypingAgreement(courses, courses, 3, factorize.PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 { // lint:exact — identical typings agree at exactly 1
		t.Fatalf("self-agreement = %v, want 1", agree)
	}
}

func TestTypingAgreementMismatchedInputs(t *testing.T) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	if _, err := TypingAgreement(courses, courses[:3], 3, factorize.PaperOptions()); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestFindingsRobustToMildNoise(t *testing.T) {
	// The paper's qualitative conclusions should survive mild
	// classification noise: at 10% drops the course typing stays mostly
	// intact.
	courses := dataset.Courses()
	perturbed := Perturb(courses, Perturbation{DropRate: 0.1, AddRate: 0.05, Seed: 7})
	agree, err := TypingAgreement(courses, perturbed, 4, factorize.PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if agree < 0.8 {
		t.Fatalf("typing agreement %v under mild noise; findings too fragile", agree)
	}
}

func TestAgreementDriftSmallUnderMildNoise(t *testing.T) {
	courses := dataset.CoursesByID(dataset.DSCourseIDs())
	perturbed := Perturb(courses, Perturbation{DropRate: 0.05, AddRate: 0, Seed: 8})
	drift, err := AgreementDrift(courses, perturbed, ontology.CS2013(), ontology.PDC12())
	if err != nil {
		t.Fatal(err)
	}
	if len(drift) == 0 {
		t.Fatal("no drift data")
	}
	// 5% drops can only shrink agreement, and not catastrophically.
	for k, d := range drift {
		if d > 0.001 {
			t.Errorf("agreement at >=%d grew (%v) under pure drops", k, d)
		}
		if d < -0.5 {
			t.Errorf("agreement at >=%d collapsed (%v) under 5%% drops", k, d)
		}
	}
}

func TestSweepMonotoneTrend(t *testing.T) {
	// Typing agreement at zero noise is 1 and decreases (weakly, with
	// tolerance for trial variance) as noise grows.
	courses := dataset.Courses()
	results, err := Sweep(courses, 4, factorize.PaperOptions(), []float64{0, 0.2, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("sweep points = %d", len(results))
	}
	if results[0].Typing != 1 { // lint:exact — identical typings agree at exactly 1
		t.Fatalf("zero-noise typing = %v, want 1", results[0].Typing)
	}
	if results[2].Typing > results[0].Typing {
		t.Fatal("typing agreement did not degrade with heavy noise")
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(dataset.Courses(), 4, factorize.PaperOptions(), []float64{0.1}, 0); err == nil {
		t.Fatal("zero trials accepted")
	}
}
