package robustness

import (
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/ontology"
)

func TestBootstrapValidation(t *testing.T) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	gs := []*ontology.Guideline{ontology.CS2013()}
	if _, err := BootstrapAgreement(courses[:1], 100, 0.9, 1, gs...); err == nil {
		t.Error("single course accepted")
	}
	if _, err := BootstrapAgreement(courses, 5, 0.9, 1, gs...); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, err := BootstrapAgreement(courses, 100, 1.5, 1, gs...); err == nil {
		t.Error("bad level accepted")
	}
}

func TestBootstrapCIsCoverObserved(t *testing.T) {
	courses := dataset.CoursesByID(dataset.CS1CourseIDs())
	cis, err := BootstrapAgreement(courses, 200, 0.9, 7, ontology.CS2013(), ontology.PDC12())
	if err != nil {
		t.Fatal(err)
	}
	if len(cis) != 5 { // thresholds 2..6 for 6 courses
		t.Fatalf("CIs for %d thresholds, want 5", len(cis))
	}
	for _, ci := range cis {
		if ci.Low > ci.High {
			t.Fatalf("threshold %d: inverted CI [%v, %v]", ci.Threshold, ci.Low, ci.High)
		}
		if ci.Low < 0 {
			t.Fatalf("threshold %d: negative lower bound", ci.Threshold)
		}
		// The bootstrap distribution straddles the observed statistic at
		// a loose margin (the observed need not be inside a 90% CI for
		// skewed statistics, but it cannot be wildly outside).
		obs := float64(ci.Observed)
		if obs < ci.Low*0.3-5 || obs > ci.High*3+5 {
			t.Fatalf("threshold %d: observed %v far outside CI [%v, %v]", ci.Threshold, obs, ci.Low, ci.High)
		}
	}
	// Higher thresholds have lower counts throughout.
	for i := 1; i < len(cis); i++ {
		if cis[i].High > cis[i-1].High+1e-9 {
			t.Fatalf("CI upper bounds not decreasing with threshold: %v", cis)
		}
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	courses := dataset.CoursesByID(dataset.DSCourseIDs())
	a, err := BootstrapAgreement(courses, 50, 0.9, 3, ontology.CS2013())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapAgreement(courses, 50, 0.9, 3, ontology.CS2013())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different CIs")
		}
	}
}

func TestBootstrapWiderWithFewerCourses(t *testing.T) {
	// The §5.3 point quantified: a 3-course sample has (relatively) wider
	// intervals than a 6-course sample at threshold 2.
	gs := []*ontology.Guideline{ontology.CS2013(), ontology.PDC12()}
	big, err := BootstrapAgreement(dataset.CoursesByID(dataset.CS1CourseIDs()), 200, 0.9, 11, gs...)
	if err != nil {
		t.Fatal(err)
	}
	small, err := BootstrapAgreement(dataset.CoursesByID(dataset.CS1CourseIDs()[:3]), 200, 0.9, 11, gs...)
	if err != nil {
		t.Fatal(err)
	}
	relWidth := func(ci BootstrapCI) float64 {
		if ci.Observed == 0 {
			return 0
		}
		return (ci.High - ci.Low) / float64(ci.Observed)
	}
	if relWidth(small[0]) <= relWidth(big[0]) {
		t.Fatalf("3-course CI (rel width %v) not wider than 6-course (%v)",
			relWidth(small[0]), relWidth(big[0]))
	}
}
