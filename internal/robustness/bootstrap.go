package robustness

import (
	"fmt"
	"math/rand"
	"sort"

	"csmaterials/internal/agreement"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/stats"
)

// BootstrapCI is a percentile bootstrap confidence interval for one
// agreement statistic.
type BootstrapCI struct {
	// Threshold is the agreement level ("tags in >= Threshold courses").
	Threshold int
	// Observed is the statistic on the real course sample.
	Observed int
	// Low and High bound the central confidence interval.
	Low, High float64
	// Level is the confidence level, e.g. 0.9.
	Level float64
}

// BootstrapAgreement addresses §5.3's "the number of courses ... is
// somewhat small" directly: resample the courses with replacement many
// times, recompute the Figure 3 statistics on each resample, and report
// percentile confidence intervals. Wide intervals mean the paper's counts
// are fragile to which courses happened to attend the workshops.
func BootstrapAgreement(courses []*materials.Course, resamples int, level float64, seed int64, guidelines ...*ontology.Guideline) ([]BootstrapCI, error) {
	if len(courses) < 2 {
		return nil, fmt.Errorf("robustness: need at least 2 courses")
	}
	if resamples < 10 {
		return nil, fmt.Errorf("robustness: need at least 10 resamples, got %d", resamples)
	}
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("robustness: confidence level %v out of (0,1)", level)
	}
	base, err := agreement.Analyze(courses, guidelines...)
	if err != nil {
		return nil, err
	}
	n := len(courses)
	rng := rand.New(rand.NewSource(seed))

	// One distribution of the statistic per threshold.
	samples := map[int][]float64{}
	for r := 0; r < resamples; r++ {
		resample := make([]*materials.Course, n)
		seen := map[string]int{}
		for i := range resample {
			c := courses[rng.Intn(n)]
			// agreement.Analyze counts per distinct course; a bootstrap
			// resample may pick the same course twice, which must count
			// twice. Clone with a suffixed ID to keep the multiset
			// semantics (tags are shared, materials reused).
			seen[c.ID]++
			if seen[c.ID] == 1 {
				resample[i] = c
			} else {
				resample[i] = &materials.Course{
					ID: fmt.Sprintf("%s#%d", c.ID, seen[c.ID]), Name: c.Name,
					Group: c.Group, Materials: c.Materials,
				}
			}
		}
		a, err := agreement.Analyze(resample, guidelines...)
		if err != nil {
			return nil, err
		}
		for k := 2; k <= n; k++ {
			samples[k] = append(samples[k], float64(a.AtLeast(k)))
		}
	}

	alpha := (1 - level) / 2
	var out []BootstrapCI
	thresholds := make([]int, 0, len(samples))
	for k := range samples {
		thresholds = append(thresholds, k)
	}
	sort.Ints(thresholds)
	for _, k := range thresholds {
		out = append(out, BootstrapCI{
			Threshold: k,
			Observed:  base.AtLeast(k),
			Low:       stats.Quantile(samples[k], alpha),
			High:      stats.Quantile(samples[k], 1-alpha),
			Level:     level,
		})
	}
	return out, nil
}
