// Package robustness quantifies how sensitive the paper's findings are to
// classification noise — the threat §5.3 names: workshop participants
// classified their own materials, the tree structure may bias what they
// tag, and coverage depth is ignored. The analysis perturbs each course's
// tag set (random drops and random additions at a given rate), reruns the
// NNMF typing and the agreement analysis, and reports how much the
// conclusions move.
package robustness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"csmaterials/internal/agreement"
	"csmaterials/internal/materials"
	"csmaterials/internal/nnmf"
	"csmaterials/internal/ontology"
)

// Perturbation configures the classification-noise model.
type Perturbation struct {
	// DropRate is the probability that an existing tag is removed (the
	// instructor under-classified).
	DropRate float64
	// AddRate is the expected number of spurious tags added per course,
	// expressed as a fraction of the course's tag count (the instructor
	// over-classified, e.g. tagged a whole knowledge unit).
	AddRate float64
	// Seed drives the perturbation RNG.
	Seed int64
	// Universe is the tag pool additions are drawn from; defaults to the
	// CS2013 leaves.
	Universe []string
}

// Perturb returns noisy copies of the courses under the given model. The
// originals are not modified. Materials are rebuilt with one material per
// 1-3 tags so the result is a valid course.
func Perturb(courses []*materials.Course, p Perturbation) []*materials.Course {
	rng := rand.New(rand.NewSource(p.Seed))
	universe := p.Universe
	if universe == nil {
		for _, l := range ontology.CS2013().Leaves() {
			universe = append(universe, l.ID)
		}
	}
	out := make([]*materials.Course, len(courses))
	for ci, c := range courses {
		tags := c.SortedTags()
		kept := make(map[string]bool, len(tags))
		for _, t := range tags {
			if rng.Float64() >= p.DropRate {
				kept[t] = true
			}
		}
		additions := int(p.AddRate * float64(len(tags)))
		for i := 0; i < additions; i++ {
			kept[universe[rng.Intn(len(universe))]] = true
		}
		var newTags []string
		for t := range kept {
			newTags = append(newTags, t)
		}
		sort.Strings(newTags)
		if len(newTags) == 0 {
			// A fully-dropped course would break the matrix build; keep
			// one original tag.
			newTags = tags[:1]
		}
		out[ci] = rebuild(c, newTags, rng)
	}
	return out
}

func rebuild(c *materials.Course, tags []string, rng *rand.Rand) *materials.Course {
	cp := &materials.Course{
		ID: c.ID, Name: c.Name, Institution: c.Institution,
		Instructor: c.Instructor, Group: c.Group, SecondaryGroup: c.SecondaryGroup,
	}
	shuffled := append([]string(nil), tags...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for i := 0; i < len(shuffled); {
		size := 1 + rng.Intn(3)
		if i+size > len(shuffled) {
			size = len(shuffled) - i
		}
		cp.Materials = append(cp.Materials, &materials.Material{
			ID:    fmt.Sprintf("%s/p%03d", c.ID, len(cp.Materials)),
			Title: fmt.Sprintf("%s perturbed %d", c.ID, len(cp.Materials)),
			Type:  materials.Lecture,
			Tags:  append([]string(nil), shuffled[i:i+size]...),
		})
		i += size
	}
	return cp
}

// TypingAgreement measures how much an NNMF course typing survives the
// perturbation: the fraction of course pairs whose co-clustering relation
// (same dominant type or not) is identical between the baseline and the
// perturbed run. 1 means the typing is unchanged; 0.5 is chance level for
// balanced types.
func TypingAgreement(baseline, perturbed []*materials.Course, k int, opts nnmf.Options) (float64, error) {
	if len(baseline) != len(perturbed) {
		return 0, fmt.Errorf("robustness: course count mismatch %d vs %d", len(baseline), len(perturbed))
	}
	typesOf := func(cs []*materials.Course) ([]int, error) {
		a, _ := materials.CourseMatrix(cs)
		o := opts
		o.K = k
		res, err := nnmf.Factorize(a, o)
		if err != nil {
			return nil, err
		}
		out := make([]int, len(cs))
		for i := range cs {
			out[i] = res.W.ArgMaxRow(i)
		}
		return out, nil
	}
	tb, err := typesOf(baseline)
	if err != nil {
		return 0, err
	}
	tp, err := typesOf(perturbed)
	if err != nil {
		return 0, err
	}
	n := len(tb)
	if n < 2 {
		return 1, nil
	}
	same := 0
	total := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			if (tb[i] == tb[j]) == (tp[i] == tp[j]) {
				same++
			}
		}
	}
	return float64(same) / float64(total), nil
}

// AgreementDrift measures how much the Figure 3 statistics move under
// perturbation: it returns the relative change in the number of tags at
// each agreement threshold from 2 to the course count.
func AgreementDrift(baseline, perturbed []*materials.Course, guidelines ...*ontology.Guideline) (map[int]float64, error) {
	ab, err := agreement.Analyze(baseline, guidelines...)
	if err != nil {
		return nil, err
	}
	ap, err := agreement.Analyze(perturbed, guidelines...)
	if err != nil {
		return nil, err
	}
	out := map[int]float64{}
	for k := 2; k <= len(baseline); k++ {
		b := ab.AtLeast(k)
		p := ap.AtLeast(k)
		if b == 0 {
			out[k] = 0
			continue
		}
		out[k] = float64(p-b) / float64(b)
	}
	return out, nil
}

// SweepResult is one point of a noise sweep.
type SweepResult struct {
	DropRate float64
	// Typing is the mean pairwise typing agreement across trials.
	Typing float64
	// Trials is the number of perturbation trials averaged.
	Trials int
}

// Sweep runs TypingAgreement across a range of drop rates (AddRate fixed
// to half the drop rate), averaging several trials per point — the
// sensitivity curve of the course-typing result. All (rate, trial) cells
// are independent and run concurrently across GOMAXPROCS goroutines; the
// result is deterministic regardless of parallelism.
func Sweep(courses []*materials.Course, k int, opts nnmf.Options, dropRates []float64, trials int) ([]SweepResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("robustness: trials must be positive")
	}
	agreeByCell := make([][]float64, len(dropRates))
	errByCell := make([][]error, len(dropRates))
	for i := range dropRates {
		agreeByCell[i] = make([]float64, trials)
		errByCell[i] = make([]error, trials)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for ri, dr := range dropRates {
		for trial := 0; trial < trials; trial++ {
			wg.Add(1)
			go func(ri, trial int, dr float64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				perturbed := Perturb(courses, Perturbation{
					DropRate: dr,
					AddRate:  dr / 2,
					Seed:     opts.Seed + int64(trial)*7919,
				})
				agreeByCell[ri][trial], errByCell[ri][trial] = TypingAgreement(courses, perturbed, k, opts)
			}(ri, trial, dr)
		}
	}
	wg.Wait()
	var out []SweepResult
	for ri, dr := range dropRates {
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			if err := errByCell[ri][trial]; err != nil {
				return nil, err
			}
			sum += agreeByCell[ri][trial]
		}
		out = append(out, SweepResult{DropRate: dr, Typing: sum / float64(trials), Trials: trials})
	}
	return out, nil
}
