package engine_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"csmaterials/internal/engine"
)

func item(key string) engine.BatchItem {
	return engine.BatchItem{Analysis: "fake", Params: map[string]string{"key": key}}
}

// TestRunBatchDeterministicOrder: whatever order the workers finish in,
// Results[i] answers Items[i]. The fake blocks until every item is in
// flight, so completion order is genuinely scrambled across workers.
func TestRunBatchDeterministicOrder(t *testing.T) {
	const n = 8
	f := newFake("fake")
	var inFlight int32
	release := make(chan struct{})
	f.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		if atomic.AddInt32(&inFlight, 1) == n {
			close(release)
		}
		<-release
		return "value:" + p.key, nil
	})
	e, _, _ := newFakeExecutor(f)
	e.SetBatchWorkers(n)

	items := make([]engine.BatchItem, n)
	for i := range items {
		items[i] = item(fmt.Sprintf("k%d", i))
	}
	results := e.RunBatch(context.Background(), items)
	if len(results) != n {
		t.Fatalf("%d results for %d items", len(results), n)
	}
	for i, r := range results {
		want := fmt.Sprintf("value:k%d", i)
		if r.Error != nil || r.Data != want || r.Key != fmt.Sprintf("fake|k%d", i) {
			t.Fatalf("results[%d] = %+v, want data %q", i, r, want)
		}
	}
}

// TestRunBatchPerItemErrors: one broken item yields its own error
// envelope without disturbing its neighbours.
func TestRunBatchPerItemErrors(t *testing.T) {
	e, _, _ := newFakeExecutor(newFake("fake"))
	results := e.RunBatch(context.Background(), []engine.BatchItem{
		item("good"),
		{Analysis: "bogus"},
		item("unparsable"),
		item("good"), // same key: served from cache/singleflight
	})
	if r := results[0]; r.Error != nil || r.Data != "value:good" || r.Cache != "miss" && r.Cache != "hit" {
		t.Fatalf("results[0] = %+v", r)
	}
	if r := results[1]; r.Error == nil || r.Error.Status != 404 || r.Error.Code != "not_found" {
		t.Fatalf("results[1] = %+v", r)
	}
	if r := results[2]; r.Error == nil || r.Error.Status != 400 || r.Error.Code != "bad_request" {
		t.Fatalf("results[2] = %+v", r)
	}
	if r := results[3]; r.Error != nil || r.Data != "value:good" {
		t.Fatalf("results[3] = %+v", r)
	}
	st := e.Stats()
	if st.BatchCalls != 1 || st.BatchItems != 4 {
		t.Fatalf("batch stats = %+v", st)
	}
}

// TestRunBatchIdenticalItemsCollapse: equal items inside one batch
// share a single compute through the singleflight, like concurrent
// HTTP requests do.
func TestRunBatchIdenticalItemsCollapse(t *testing.T) {
	f := newFake("fake")
	var computes int32
	f.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		atomic.AddInt32(&computes, 1)
		return "value:" + p.key, nil
	})
	e, _, _ := newFakeExecutor(f)
	e.SetBatchWorkers(4)
	items := make([]engine.BatchItem, 12)
	for i := range items {
		items[i] = item("same")
	}
	results := e.RunBatch(context.Background(), items)
	for i, r := range results {
		if r.Error != nil || r.Data != "value:same" {
			t.Fatalf("results[%d] = %+v", i, r)
		}
	}
	if n := atomic.LoadInt32(&computes); n != 1 {
		t.Fatalf("identical items computed %d times, want 1", n)
	}
}

// TestRunBatchCancelled: a cancelled batch context turns unstarted
// items into 499 envelopes instead of hanging or computing for nobody.
func TestRunBatchCancelled(t *testing.T) {
	e, _, _ := newFakeExecutor(newFake("fake"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := e.RunBatch(ctx, []engine.BatchItem{item("a"), item("b")})
	for i, r := range results {
		if r.Error == nil || r.Error.Status != 499 || r.Error.Code != "canceled" {
			t.Fatalf("results[%d] = %+v, want 499 canceled", i, r)
		}
	}
}

// TestSetBatchWorkers: values < 1 fall back to the default; the pool
// never exceeds the configured bound.
func TestSetBatchWorkers(t *testing.T) {
	f := newFake("fake")
	var cur, max int32
	var mu sync.Mutex
	f.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		mu.Lock()
		cur++
		if cur > max {
			max = cur
		}
		mu.Unlock()
		defer func() { mu.Lock(); cur--; mu.Unlock() }()
		return "value:" + p.key, nil
	})
	e, _, _ := newFakeExecutor(f)

	e.SetBatchWorkers(0)
	if got := e.BatchWorkers(); got != engine.DefaultBatchWorkers {
		t.Fatalf("BatchWorkers after SetBatchWorkers(0) = %d", got)
	}
	e.SetBatchWorkers(2)
	items := make([]engine.BatchItem, 10)
	for i := range items {
		items[i] = item(fmt.Sprintf("k%d", i))
	}
	e.RunBatch(context.Background(), items)
	mu.Lock()
	defer mu.Unlock()
	if max > 2 {
		t.Fatalf("observed %d concurrent computes with 2 workers", max)
	}
}
