package engine

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/obs"
	"csmaterials/internal/resilience"
	"csmaterials/internal/resilience/faultinject"
	"csmaterials/internal/serving"
)

// ExecutorOptions configures an Executor.
type ExecutorOptions struct {
	// Repo is the course repository handed to every Compute in
	// single-repository mode. Ignored when Datasets is set.
	Repo *materials.Repository
	// Datasets, when non-nil, puts the executor in multi-dataset mode:
	// every run resolves its repository through the registry, cache
	// keys gain a "<dataset>@<revision>|" generation prefix, and
	// breakers, stats, and fault labels partition per
	// (dataset, analysis).
	Datasets *dataset.Registry
	// Cache is the result cache + singleflight group; required.
	Cache *serving.Cache
	// Breakers is the per-(dataset, analysis) circuit-breaker set; nil
	// disables circuit breaking.
	Breakers *resilience.BreakerSet
	// Faults injects chaos into compute paths under the label
	// "compute/<scope>"; nil injects nothing.
	Faults *faultinject.Injector
	// StaleServe enables the last-known-good fallback when a compute
	// fails, times out, or is circuit-broken.
	StaleServe bool
}

// Outcome describes how a Run was answered, for the response meta.
type Outcome struct {
	// Key is the logical cache key, "<name>|<params.CacheKey()>" — the
	// client-facing identity of the computation, identical across
	// datasets and revisions. The physical cache key adds the
	// "<dataset>@<revision>|" generation prefix in multi-dataset mode.
	Key string
	// Dataset is the dataset the computation resolved against.
	Dataset string
	// Revision is the dataset revision served (0 in single-repo mode).
	Revision uint64
	// Cache is "hit" (retained entry or shared flight), "miss" (this
	// call computed), or "stale" (degraded last-known-good serve).
	Cache string
	// Stale marks a degraded response.
	Stale bool
}

// analysisStats counts per-scope executor activity.
type analysisStats struct {
	computes    uint64
	failures    uint64
	staleServed uint64
	hits        uint64
	misses      uint64
}

// AnalysisStats is the JSON form of one scope's executor counters. In
// multi-dataset mode the map key is the scope name: the bare analysis
// name for the default dataset, "<dataset>/<analysis>" otherwise — so
// per-dataset serving behaviour is separable in /debug/metrics and
// /metrics.
type AnalysisStats struct {
	Computes    uint64 `json:"computes"`
	Failures    uint64 `json:"failures"`
	StaleServed uint64 `json:"stale_served"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// Stats is the executor section of /debug/metrics: per-scope compute
// accounting plus batch totals.
type Stats struct {
	Analyses map[string]AnalysisStats `json:"analyses"`
	// Refresh breaks down invalidation and warm-start recompute
	// activity per dataset (absent until a refresh or warm compute
	// happens).
	Refresh      map[string]RefreshStats `json:"refresh,omitempty"`
	BatchCalls   uint64                  `json:"batch_calls"`
	BatchItems   uint64                  `json:"batch_items"`
	BatchWorkers int                     `json:"batch_workers"`
}

// Executor runs registered analyses through the serving ladder: fresh
// cache → breaker-guarded singleflight compute → stale last-known-good
// fallback. Every surface (HTTP handlers, the batch endpoint, warmup,
// CLIs) goes through the same entry points, so the semantics of a
// cache key, a breaker, or a stale serve cannot diverge per caller.
//
// In multi-dataset mode (ExecutorOptions.Datasets) the ladder is
// partitioned per dataset: RunOn/RunParamsOn resolve a snapshot from
// the registry, physical cache keys carry the snapshot's revision (so
// an ingest can never race an in-flight compute into a torn or
// cross-revision read), and breakers/stats/fault labels are scoped
// "<dataset>/<analysis>" for non-default datasets.
type Executor struct {
	reg        *Registry
	repo       *materials.Repository
	datasets   *dataset.Registry
	cache      *serving.Cache
	breakers   *resilience.BreakerSet
	faults     *faultinject.Injector
	staleServe bool

	batchWorkers int

	mu         sync.Mutex
	stats      map[string]*analysisStats
	refresh    map[string]*refreshStats
	priors     map[string]priorEntry
	batchCalls uint64
	batchItems uint64
}

// NewExecutor builds an executor over the registry. When o.Breakers is
// set, a breaker is materialized for every registered analysis (under
// the default dataset's scope) up front, so readiness and metrics
// report the full set from the first request rather than growing it
// lazily; non-default dataset scopes materialize on first use.
func NewExecutor(reg *Registry, o ExecutorOptions) *Executor {
	e := &Executor{
		reg:          reg,
		repo:         o.Repo,
		datasets:     o.Datasets,
		cache:        o.Cache,
		breakers:     o.Breakers,
		faults:       o.Faults,
		staleServe:   o.StaleServe,
		batchWorkers: DefaultBatchWorkers,
		stats:        make(map[string]*analysisStats),
		refresh:      make(map[string]*refreshStats),
		priors:       make(map[string]priorEntry),
	}
	if e.breakers != nil {
		for _, name := range reg.Names() {
			e.breakers.Get(name)
		}
	}
	if e.datasets != nil && e.cache != nil {
		// Physical keys carry the dataset generation prefix, so the
		// cache can partition its budget per dataset: one tenant's fill
		// evicts only that tenant's entries.
		e.cache.SetScopeFunc(DatasetScope)
	}
	return e
}

// Registry exposes the analysis registry.
func (e *Executor) Registry() *Registry { return e.reg }

// Datasets exposes the dataset registry (nil in single-repo mode).
func (e *Executor) Datasets() *dataset.Registry { return e.datasets }

// Repo exposes the repository analyses compute over: the configured
// single repository, or the default dataset's current snapshot in
// multi-dataset mode.
func (e *Executor) Repo() *materials.Repository {
	if e.datasets != nil {
		if snap, ok := e.datasets.Get(dataset.DefaultID); ok {
			return snap.Repo()
		}
		return nil
	}
	return e.repo
}

// scopeName is the per-(dataset, analysis) identifier used for
// breakers, executor stats, and fault labels. The default dataset
// keeps the bare analysis name — unchanged from the single-dataset
// era — so existing dashboards and envelopes stay byte-identical;
// other datasets are "<dataset>/<analysis>" ('/' cannot occur in
// either part).
func scopeName(ds, name string) string {
	if ds == dataset.DefaultID {
		return name
	}
	return ds + "/" + name
}

// SplitScope is the inverse of the executor's scope naming: it splits
// a breaker/stats key into its (dataset, analysis) parts, mapping bare
// names to the default dataset.
func SplitScope(scope string) (ds, analysis string) {
	if i := strings.IndexByte(scope, '/'); i >= 0 {
		return scope[:i], scope[i+1:]
	}
	return dataset.DefaultID, scope
}

// resolve maps a dataset ID to the repository and revision a run
// computes over. Single-repo executors only know the default dataset.
func (e *Executor) resolve(ds string) (*materials.Repository, uint64, error) {
	if e.datasets == nil {
		if ds != dataset.DefaultID {
			return nil, 0, Errorf(404, "not_found", "unknown dataset %q", ds)
		}
		return e.repo, 0, nil
	}
	if err := dataset.ValidateID(ds); err != nil {
		return nil, 0, Errorf(400, "bad_request", "%s", err.Error())
	}
	snap, ok := e.datasets.Get(ds)
	if !ok {
		return nil, 0, Errorf(404, "not_found", "unknown dataset %q", ds)
	}
	return snap.Repo(), snap.Revision(), nil
}

// physicalKey derives the cache/singleflight/stale key from the
// logical key. In multi-dataset mode it is prefixed with the dataset
// generation ("<dataset>@<revision>|"), so a re-ingested revision can
// never collide with entries — or in-flight computes — of a previous
// one, and invalidation can target exactly one dataset's entries.
// Single-repo executors keep bare logical keys.
func (e *Executor) physicalKey(ds string, rev uint64, logical string) string {
	if e.datasets == nil {
		return logical
	}
	return fmt.Sprintf("%s@%d|%s", ds, rev, logical)
}

// DatasetScope maps a physical cache key to the dataset that owns it:
// the "<dataset>@<revision>|<logical>" generation prefix identifies
// the tenant ('@' and '|' cannot occur in a dataset ID). Keys without
// a generation prefix (single-repo mode) fall into the shared "" scope.
func DatasetScope(key string) string {
	at := strings.IndexByte(key, '@')
	if at <= 0 {
		return ""
	}
	if bar := strings.IndexByte(key, '|'); bar >= 0 && bar < at {
		return ""
	}
	return key[:at]
}

// RetryAfter returns the wait hinted to clients rejected by name's open
// circuit on the default dataset (zero without breakers).
func (e *Executor) RetryAfter(name string) time.Duration {
	return e.RetryAfterOn(dataset.DefaultID, name)
}

// RetryAfterOn is RetryAfter for a specific dataset's breaker.
func (e *Executor) RetryAfterOn(ds, name string) time.Duration {
	if e.breakers == nil {
		return 0
	}
	return e.breakers.Get(scopeName(ds, name)).RetryAfter()
}

// Run executes the named analysis against the default dataset.
func (e *Executor) Run(ctx context.Context, name string, values url.Values) (interface{}, Outcome, error) {
	return e.RunOn(ctx, dataset.DefaultID, name, values)
}

// RunOn parses values against the named analysis and executes it
// against dataset ds through the ladder. Unknown names and datasets
// are 404 *Errors; malformed dataset IDs and parse/validation failures
// are 400 *Errors unless the analysis supplied its own status.
func (e *Executor) RunOn(ctx context.Context, ds, name string, values url.Values) (interface{}, Outcome, error) {
	a, ok := e.reg.Get(name)
	if !ok {
		return nil, Outcome{}, Errorf(404, "not_found", "unknown analysis %q", name)
	}
	ctx = obs.WithAnalysis(obs.WithDataset(ctx, ds), name)
	sp := obs.StartSpan(ctx, "parse")
	p, err := e.ParseParams(a, values)
	if err != nil {
		sp.EndAs("parse-error")
		return nil, Outcome{}, err
	}
	sp.End()
	return e.RunParamsOn(ctx, ds, a, p)
}

// ParseParams parses and validates values for a, normalizing non-Error
// failures to 400 bad_request.
func (e *Executor) ParseParams(a Analysis, values url.Values) (Params, error) {
	p, err := a.Parse(values)
	if err != nil {
		return nil, asBadRequest(err)
	}
	if err := p.Validate(); err != nil {
		return nil, asBadRequest(err)
	}
	return p, nil
}

func asBadRequest(err error) error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	return &Error{Status: 400, Code: "bad_request", Message: err.Error()}
}

// Key returns the logical cache key of (a, p).
func Key(a Analysis, p Params) string {
	if ck := p.CacheKey(); ck != "" {
		return a.Name() + "|" + ck
	}
	return a.Name()
}

// FleetKeyOn returns the cluster ownership key for one analysis
// request: "<dataset>|<logical key>". It is the physical cache key
// minus the revision — each replica runs its own revision counters, so
// including them would make replicas disagree about ownership; the
// logical triple (dataset, analysis, paramKey) is what must hash
// identically everywhere. Unknown analyses and invalid params return
// the same *Error the serving path would, so callers can fall through
// to local handling for the canonical error envelope.
func (e *Executor) FleetKeyOn(ds, name string, values url.Values) (string, error) {
	a, ok := e.reg.Get(name)
	if !ok {
		return "", Errorf(404, "not_found", "unknown analysis %q", name)
	}
	p, err := e.ParseParams(a, values)
	if err != nil {
		return "", err
	}
	return ds + "|" + Key(a, p), nil
}

// RunParams executes a with validated params against the default
// dataset through the full ladder.
func (e *Executor) RunParams(ctx context.Context, a Analysis, p Params) (interface{}, Outcome, error) {
	return e.RunParamsOn(ctx, dataset.DefaultID, a, p)
}

// RunParamsOn executes a with validated params against dataset ds
// through the full ladder.
//
// The compute runs under the singleflight FLIGHT context: concurrent
// equal requests share one computation, a departing caller cannot
// cancel it for the others, and when the last caller departs the
// flight context is cancelled so Compute stops burning CPU. Cancelled
// computes are not failures: they never trip the breaker and are never
// cached.
//
// Dataset isolation: the snapshot (repository + revision) is resolved
// once, before the ladder, and the revision is baked into the physical
// cache key. A concurrent ingest swaps the registry's snapshot pointer
// but cannot touch this run — it computes over its resolved snapshot
// and stores under its resolved revision's key, which post-ingest
// requests (holding the new revision) never read. There is no torn
// read and no cross-revision stale serve.
//
// On a compute failure, timeout, or open circuit, a stale
// last-known-good value (same dataset, same revision) is returned
// (Outcome.Stale set) when stale serving is enabled and one exists,
// while a breaker-gated refresh runs detached in the background.
// Otherwise the error comes back: resilience.ErrOpen, context errors,
// an *Error from the analysis, or the raw compute error.
// Tracing: when ctx carries an obs.Trace, the ladder walk is recorded
// as ordered spans — the breaker decision (breaker-allow/breaker-open),
// the compute (compute/compute-error/compute-canceled), plus the
// cache-level spans serving.Cache emits — all labelled with the
// analysis name and dataset ID for the per-stage histograms. The
// guarded closure records into the trace of the request that INITIATED
// the flight (the closure only runs for that caller), never into a
// joiner's; the detached stale refresh runs a variant bound to an
// untraced context, so a request's trace record never grows after it
// is served.
func (e *Executor) RunParamsOn(ctx context.Context, ds string, a Analysis, p Params) (interface{}, Outcome, error) {
	name := a.Name()
	ctx = obs.WithAnalysis(obs.WithDataset(ctx, ds), name)
	repo, rev, err := e.resolve(ds)
	if err != nil {
		return nil, Outcome{}, err
	}
	logical := Key(a, p)
	key := e.physicalKey(ds, rev, logical)
	scope := scopeName(ds, name)
	var br *resilience.Breaker
	if e.breakers != nil {
		br = e.breakers.Get(scope)
	}
	// guardedWith binds the breaker-guarded compute to a trace context
	// (tctx carries the span sink; fctx carries cancellation).
	guardedWith := func(tctx context.Context) func(context.Context) (interface{}, error) {
		return func(fctx context.Context) (interface{}, error) {
			bsp := obs.StartSpan(tctx, "breaker")
			if br != nil && !br.Allow() {
				bsp.EndAs("breaker-open")
				return nil, resilience.ErrOpen
			}
			bsp.EndAs("breaker-allow")
			err := e.faults.ComputeError("compute/" + scope)
			var v interface{}
			if err == nil {
				csp := obs.StartSpan(tctx, "compute")
				e.countCompute(scope)
				var warm bool
				v, warm, err = e.computeWithPrior(fctx, ds, a, repo, p, key)
				switch {
				case err == nil && warm:
					e.recordIterations(ds, true, v)
					csp.EndAs("compute-warm")
				case err == nil:
					e.recordIterations(ds, false, v)
					csp.End()
				case errors.Is(err, context.Canceled):
					csp.EndAs("compute-canceled")
				default:
					csp.EndAs("compute-error")
				}
			}
			if br != nil {
				br.Record(!IsServerFailure(err))
			}
			if IsServerFailure(err) {
				e.countFailure(scope)
			}
			return v, err
		}
	}
	guarded := guardedWith(ctx)

	v, served, err := e.cache.DoCtxFn(ctx, key, guarded)
	if err == nil {
		out := Outcome{Key: logical, Dataset: ds, Revision: rev, Cache: "miss"}
		if served {
			out.Cache = "hit"
			e.countHit(scope)
		} else {
			e.countMiss(scope)
		}
		return v, out, nil
	}
	if errors.Is(err, context.Canceled) {
		// Every waiter left; there is nobody to answer and nothing to
		// degrade for.
		return nil, Outcome{}, err
	}

	if e.staleServe && (errors.Is(err, resilience.ErrOpen) || errors.Is(err, context.DeadlineExceeded) || IsServerFailure(err)) {
		if sv, ok := e.cache.Stale(key); ok {
			e.countStale(scope)
			obs.AddSpan(ctx, "stale-serve", time.Time{})
			obs.AddSpan(ctx, "stale-refresh", time.Time{}) // detached refresh launched
			// Seed the refresh with the value being served: the key is
			// revision-scoped, so the repository is unchanged and a
			// warm-startable analysis can converge from the last-known-good
			// result in a probe iteration instead of a cold solve (delta
			// nil: same revision). Non-warmable analyses ignore the seed.
			e.seedPrior(key, sv, nil, true)
			refresh := guardedWith(context.Background()) // lint:detach DESIGN §9: the stale refresh must outlive the request that tripped it
			go func() {
				_, _, _ = e.cache.Do(key, func() (interface{}, error) { return refresh(context.Background()) }) // lint:detach same blessed refresh, inside the detached flight
			}()
			return sv, Outcome{Key: logical, Dataset: ds, Revision: rev, Cache: "stale", Stale: true}, nil
		}
	}
	return nil, Outcome{}, err
}

// Warm pre-computes the default dataset's warmable analyses.
func (e *Executor) Warm(ctx context.Context) error {
	return e.WarmDataset(ctx, dataset.DefaultID)
}

// WarmDataset pre-computes every registered Warmer analysis's
// WarmParams against dataset ds in registration order, returning the
// first failure. The results land in the cache under the exact
// (dataset, revision)-scoped keys live requests use, so the first real
// request after readiness — or after an ingest — is a hit. Each
// dataset's warmup budget is its own: warming one dataset never
// touches another's entries or breakers.
func (e *Executor) WarmDataset(ctx context.Context, ds string) error {
	for _, name := range e.reg.Names() {
		a, ok := e.reg.Get(name)
		if !ok {
			continue
		}
		w, ok := a.(Warmer)
		if !ok {
			continue
		}
		for _, p := range w.WarmParams() {
			if err := p.Validate(); err != nil {
				return err
			}
			if _, _, err := e.RunParamsOn(ctx, ds, a, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// InvalidateDataset drops every cache and stale entry belonging to ds
// except those of revision keep (pass the just-ingested revision, or 0
// on delete to purge everything), returning the number of entries
// dropped. Called after an ingest swaps the snapshot, it also sweeps
// entries stored by computes that were in flight across the swap —
// their keys carry the old revision and can never be read again. No-op
// in single-repo mode.
func (e *Executor) InvalidateDataset(ds string, keep uint64) int {
	fresh, stale := e.invalidateDatasetDetail(ds, keep)
	return fresh + stale
}

// invalidateDatasetDetail is InvalidateDataset with the fresh and
// stale drops reported separately (see serving.Cache.InvalidateDetail:
// the stale count proves the sweep reached stale-only survivors).
func (e *Executor) invalidateDatasetDetail(ds string, keep uint64) (fresh, stale int) {
	if e.datasets == nil || e.cache == nil {
		return 0, 0
	}
	prefix := ds + "@"
	keepPrefix := fmt.Sprintf("%s@%d|", ds, keep)
	return e.cache.InvalidateDetail(func(key string) bool {
		return strings.HasPrefix(key, prefix) && (keep == 0 || !strings.HasPrefix(key, keepPrefix))
	})
}

// DropDatasetServingState removes every trace of ds from the serving
// layer on dataset DELETE: cache entries AND the scope's cache
// counters (a deleted tenant must vanish from /debug/metrics and the
// csm_ families, not linger at its last values), executor stats
// scopes, and "<ds>/<analysis>" breakers. Returns the number of cache
// entries (fresh + stale) dropped. The default dataset's serving state
// is never dropped here — it cannot be deleted.
func (e *Executor) DropDatasetServingState(ds string) int {
	if e.datasets == nil || ds == dataset.DefaultID {
		return 0
	}
	n := 0
	if e.cache != nil {
		n = e.cache.DropScope(ds)
	}
	if e.breakers != nil {
		e.breakers.DropPrefix(ds + "/")
	}
	e.mu.Lock()
	for scope := range e.stats {
		if d, _ := SplitScope(scope); d == ds {
			delete(e.stats, scope)
		}
	}
	delete(e.refresh, ds)
	prefix := ds + "@"
	for k := range e.priors {
		if strings.HasPrefix(k, prefix) {
			delete(e.priors, k)
		}
	}
	e.mu.Unlock()
	return n
}

func (e *Executor) countCompute(scope string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.statLocked(scope).computes++
}

func (e *Executor) countFailure(scope string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.statLocked(scope).failures++
}

func (e *Executor) countStale(scope string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.statLocked(scope).staleServed++
}

func (e *Executor) countHit(scope string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.statLocked(scope).hits++
}

func (e *Executor) countMiss(scope string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.statLocked(scope).misses++
}

// statLocked returns scope's counters; callers hold e.mu.
func (e *Executor) statLocked(scope string) *analysisStats {
	s, ok := e.stats[scope]
	if !ok {
		s = &analysisStats{}
		e.stats[scope] = s
	}
	return s
}

// Stats snapshots the executor counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Stats{
		Analyses:     make(map[string]AnalysisStats, len(e.stats)),
		BatchCalls:   e.batchCalls,
		BatchItems:   e.batchItems,
		BatchWorkers: e.batchWorkers,
	}
	for scope, s := range e.stats {
		out.Analyses[scope] = AnalysisStats{
			Computes:    s.computes,
			Failures:    s.failures,
			StaleServed: s.staleServed,
			CacheHits:   s.hits,
			CacheMisses: s.misses,
		}
	}
	for ds, s := range e.refresh {
		if out.Refresh == nil {
			out.Refresh = make(map[string]RefreshStats, len(e.refresh))
		}
		out.Refresh[ds] = RefreshStats{
			Delta:            s.delta,
			Full:             s.full,
			InvalidatedFresh: s.invalidatedFresh,
			InvalidatedStale: s.invalidatedStale,
			Migrated:         s.migrated,
			Seeded:           s.seeded,
			WarmStarts:       s.warmStarts,
			WarmFallbacks:    s.warmFallbacks,
			WarmIterations:   s.warmIterations,
			ColdIterations:   s.coldIterations,
		}
	}
	return out
}
