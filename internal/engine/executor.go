package engine

import (
	"context"
	"errors"
	"net/url"
	"sync"
	"time"

	"csmaterials/internal/materials"
	"csmaterials/internal/obs"
	"csmaterials/internal/resilience"
	"csmaterials/internal/resilience/faultinject"
	"csmaterials/internal/serving"
)

// ExecutorOptions configures an Executor.
type ExecutorOptions struct {
	// Repo is the course repository handed to every Compute.
	Repo *materials.Repository
	// Cache is the result cache + singleflight group; required.
	Cache *serving.Cache
	// Breakers is the per-analysis circuit-breaker set; nil disables
	// circuit breaking.
	Breakers *resilience.BreakerSet
	// Faults injects chaos into compute paths under the label
	// "compute/<name>"; nil injects nothing.
	Faults *faultinject.Injector
	// StaleServe enables the last-known-good fallback when a compute
	// fails, times out, or is circuit-broken.
	StaleServe bool
}

// Outcome describes how a Run was answered, for the response meta.
type Outcome struct {
	// Key is the full cache key, "<name>|<params.CacheKey()>".
	Key string
	// Cache is "hit" (retained entry or shared flight), "miss" (this
	// call computed), or "stale" (degraded last-known-good serve).
	Cache string
	// Stale marks a degraded response.
	Stale bool
}

// analysisStats counts per-analysis executor activity.
type analysisStats struct {
	computes    uint64
	failures    uint64
	staleServed uint64
}

// AnalysisStats is the JSON form of one analysis's executor counters.
type AnalysisStats struct {
	Computes    uint64 `json:"computes"`
	Failures    uint64 `json:"failures"`
	StaleServed uint64 `json:"stale_served"`
}

// Stats is the executor section of /debug/metrics: per-analysis compute
// accounting plus batch totals.
type Stats struct {
	Analyses     map[string]AnalysisStats `json:"analyses"`
	BatchCalls   uint64                   `json:"batch_calls"`
	BatchItems   uint64                   `json:"batch_items"`
	BatchWorkers int                      `json:"batch_workers"`
}

// Executor runs registered analyses through the serving ladder: fresh
// cache → breaker-guarded singleflight compute → stale last-known-good
// fallback. Every surface (HTTP handlers, the batch endpoint, warmup,
// CLIs) goes through the same two entry points, so the semantics of a
// cache key, a breaker, or a stale serve cannot diverge per caller.
type Executor struct {
	reg        *Registry
	repo       *materials.Repository
	cache      *serving.Cache
	breakers   *resilience.BreakerSet
	faults     *faultinject.Injector
	staleServe bool

	batchWorkers int

	mu         sync.Mutex
	stats      map[string]*analysisStats
	batchCalls uint64
	batchItems uint64
}

// NewExecutor builds an executor over the registry. When o.Breakers is
// set, a breaker is materialized for every registered analysis up
// front, so readiness and metrics report the full set from the first
// request rather than growing it lazily.
func NewExecutor(reg *Registry, o ExecutorOptions) *Executor {
	e := &Executor{
		reg:          reg,
		repo:         o.Repo,
		cache:        o.Cache,
		breakers:     o.Breakers,
		faults:       o.Faults,
		staleServe:   o.StaleServe,
		batchWorkers: DefaultBatchWorkers,
		stats:        make(map[string]*analysisStats),
	}
	if e.breakers != nil {
		for _, name := range reg.Names() {
			e.breakers.Get(name)
		}
	}
	return e
}

// Registry exposes the analysis registry.
func (e *Executor) Registry() *Registry { return e.reg }

// Repo exposes the repository analyses compute over.
func (e *Executor) Repo() *materials.Repository { return e.repo }

// RetryAfter returns the wait hinted to clients rejected by name's open
// circuit (zero without breakers).
func (e *Executor) RetryAfter(name string) time.Duration {
	if e.breakers == nil {
		return 0
	}
	return e.breakers.Get(name).RetryAfter()
}

// Run parses values against the named analysis and executes it through
// the ladder. Unknown names are a 404 *Error; parse and validation
// failures are 400 *Errors unless the analysis supplied its own status.
func (e *Executor) Run(ctx context.Context, name string, values url.Values) (interface{}, Outcome, error) {
	a, ok := e.reg.Get(name)
	if !ok {
		return nil, Outcome{}, Errorf(404, "not_found", "unknown analysis %q", name)
	}
	ctx = obs.WithAnalysis(ctx, name)
	sp := obs.StartSpan(ctx, "parse")
	p, err := e.ParseParams(a, values)
	if err != nil {
		sp.EndAs("parse-error")
		return nil, Outcome{}, err
	}
	sp.End()
	return e.RunParams(ctx, a, p)
}

// ParseParams parses and validates values for a, normalizing non-Error
// failures to 400 bad_request.
func (e *Executor) ParseParams(a Analysis, values url.Values) (Params, error) {
	p, err := a.Parse(values)
	if err != nil {
		return nil, asBadRequest(err)
	}
	if err := p.Validate(); err != nil {
		return nil, asBadRequest(err)
	}
	return p, nil
}

func asBadRequest(err error) error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	return &Error{Status: 400, Code: "bad_request", Message: err.Error()}
}

// Key returns the full cache key of (a, p).
func Key(a Analysis, p Params) string {
	if ck := p.CacheKey(); ck != "" {
		return a.Name() + "|" + ck
	}
	return a.Name()
}

// RunParams executes a with validated params through the full ladder.
//
// The compute runs under the singleflight FLIGHT context: concurrent
// equal requests share one computation, a departing caller cannot
// cancel it for the others, and when the last caller departs the
// flight context is cancelled so Compute stops burning CPU. Cancelled
// computes are not failures: they never trip the breaker and are never
// cached.
//
// On a compute failure, timeout, or open circuit, a stale
// last-known-good value is returned (Outcome.Stale set) when stale
// serving is enabled and one exists, while a breaker-gated refresh
// runs detached in the background. Otherwise the error comes back:
// resilience.ErrOpen, context errors, an *Error from the analysis, or
// the raw compute error.
// Tracing: when ctx carries an obs.Trace, the ladder walk is recorded
// as ordered spans — the breaker decision (breaker-allow/breaker-open),
// the compute (compute/compute-error/compute-canceled), plus the
// cache-level spans serving.Cache emits — all labelled with the
// analysis name for the per-stage histograms. The guarded closure
// records into the trace of the request that INITIATED the flight (the
// closure only runs for that caller), never into a joiner's; the
// detached stale refresh runs a variant bound to an untraced context,
// so a request's trace record never grows after it is served.
func (e *Executor) RunParams(ctx context.Context, a Analysis, p Params) (interface{}, Outcome, error) {
	name := a.Name()
	key := Key(a, p)
	ctx = obs.WithAnalysis(ctx, name)
	var br *resilience.Breaker
	if e.breakers != nil {
		br = e.breakers.Get(name)
	}
	// guardedWith binds the breaker-guarded compute to a trace context
	// (tctx carries the span sink; fctx carries cancellation).
	guardedWith := func(tctx context.Context) func(context.Context) (interface{}, error) {
		return func(fctx context.Context) (interface{}, error) {
			bsp := obs.StartSpan(tctx, "breaker")
			if br != nil && !br.Allow() {
				bsp.EndAs("breaker-open")
				return nil, resilience.ErrOpen
			}
			bsp.EndAs("breaker-allow")
			err := e.faults.ComputeError("compute/" + name)
			var v interface{}
			if err == nil {
				csp := obs.StartSpan(tctx, "compute")
				e.countCompute(name)
				v, err = a.Compute(fctx, e.repo, p)
				switch {
				case err == nil:
					csp.End()
				case errors.Is(err, context.Canceled):
					csp.EndAs("compute-canceled")
				default:
					csp.EndAs("compute-error")
				}
			}
			if br != nil {
				br.Record(!IsServerFailure(err))
			}
			if IsServerFailure(err) {
				e.countFailure(name)
			}
			return v, err
		}
	}
	guarded := guardedWith(ctx)

	v, served, err := e.cache.DoCtxFn(ctx, key, guarded)
	if err == nil {
		out := Outcome{Key: key, Cache: "miss"}
		if served {
			out.Cache = "hit"
		}
		return v, out, nil
	}
	if errors.Is(err, context.Canceled) {
		// Every waiter left; there is nobody to answer and nothing to
		// degrade for.
		return nil, Outcome{}, err
	}

	if e.staleServe && (errors.Is(err, resilience.ErrOpen) || errors.Is(err, context.DeadlineExceeded) || IsServerFailure(err)) {
		if sv, ok := e.cache.Stale(key); ok {
			e.countStale(name)
			obs.AddSpan(ctx, "stale-serve", time.Time{})
			obs.AddSpan(ctx, "stale-refresh", time.Time{}) // detached refresh launched
			refresh := guardedWith(context.Background())
			go func() {
				_, _, _ = e.cache.Do(key, func() (interface{}, error) { return refresh(context.Background()) })
			}()
			return sv, Outcome{Key: key, Cache: "stale", Stale: true}, nil
		}
	}
	return nil, Outcome{}, err
}

// Warm pre-computes every registered Warmer analysis's WarmParams in
// registration order, returning the first failure. The results land in
// the cache under the exact keys live requests use, so the first real
// request after readiness is a hit.
func (e *Executor) Warm(ctx context.Context) error {
	for _, name := range e.reg.Names() {
		a, ok := e.reg.Get(name)
		if !ok {
			continue
		}
		w, ok := a.(Warmer)
		if !ok {
			continue
		}
		for _, p := range w.WarmParams() {
			if err := p.Validate(); err != nil {
				return err
			}
			if _, _, err := e.RunParams(ctx, a, p); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *Executor) countCompute(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.statLocked(name).computes++
}

func (e *Executor) countFailure(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.statLocked(name).failures++
}

func (e *Executor) countStale(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.statLocked(name).staleServed++
}

// statLocked returns name's counters; callers hold e.mu.
func (e *Executor) statLocked(name string) *analysisStats {
	s, ok := e.stats[name]
	if !ok {
		s = &analysisStats{}
		e.stats[name] = s
	}
	return s
}

// Stats snapshots the executor counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Stats{
		Analyses:     make(map[string]AnalysisStats, len(e.stats)),
		BatchCalls:   e.batchCalls,
		BatchItems:   e.batchItems,
		BatchWorkers: e.batchWorkers,
	}
	for name, s := range e.stats {
		out.Analyses[name] = AnalysisStats{Computes: s.computes, Failures: s.failures, StaleServed: s.staleServed}
	}
	return out
}
