package engine_test

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"csmaterials/internal/engine"
	"csmaterials/internal/materials"
	"csmaterials/internal/resilience"
	"csmaterials/internal/serving"
)

// fakeParams is the minimal Params implementation.
type fakeParams struct {
	key     string
	invalid bool
}

func (p fakeParams) Validate() error {
	if p.invalid {
		return fmt.Errorf("invalid combination")
	}
	return nil
}

func (p fakeParams) CacheKey() string { return p.key }

// fakeAnalysis is a registry entry whose Compute is a swappable
// function; it is the "one registration" the engine design promises —
// everything else (cache keys, singleflight, breakers, stale serving,
// batch) comes from the executor.
type fakeAnalysis struct {
	name string
	warm []engine.Params
	fn   atomic.Value // func(context.Context, fakeParams) (interface{}, error)
}

func newFake(name string) *fakeAnalysis {
	f := &fakeAnalysis{name: name}
	f.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		return "value:" + p.key, nil
	})
	return f
}

func (f *fakeAnalysis) set(fn func(context.Context, fakeParams) (interface{}, error)) {
	f.fn.Store(fn)
}

func (f *fakeAnalysis) Name() string { return f.name }

func (f *fakeAnalysis) Parse(v url.Values) (engine.Params, error) {
	if v.Get("key") == "unparsable" {
		return nil, fmt.Errorf("bad key")
	}
	return fakeParams{key: v.Get("key"), invalid: v.Get("key") == "invalid"}, nil
}

func (f *fakeAnalysis) Compute(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error) {
	fn := f.fn.Load().(func(context.Context, fakeParams) (interface{}, error))
	return fn(ctx, p.(fakeParams))
}

func (f *fakeAnalysis) WarmParams() []engine.Params { return f.warm }

// newFakeExecutor builds an executor over one fake analysis with the
// full ladder enabled: cache, breakers (threshold 3), stale serving.
func newFakeExecutor(f *fakeAnalysis) (*engine.Executor, *serving.Cache, *resilience.BreakerSet) {
	cache := serving.NewCache(16)
	breakers := resilience.NewBreakerSet(3, time.Minute)
	e := engine.NewExecutor(engine.NewRegistry(f), engine.ExecutorOptions{
		Cache:      cache,
		Breakers:   breakers,
		StaleServe: true,
	})
	return e, cache, breakers
}

func vals(key string) url.Values { return url.Values{"key": []string{key}} }

// TestFakeAnalysisFullLadder registers ONE fake analysis and drives it
// through every serving behaviour the executor promises — miss, hit,
// stale degradation, circuit breaking, recovery, and batch — proving
// that an analysis gets the whole ladder from a single registration.
func TestFakeAnalysisFullLadder(t *testing.T) {
	f := newFake("fake")
	var computes int32
	f.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		atomic.AddInt32(&computes, 1)
		return "value:" + p.key, nil
	})
	e, cache, breakers := newFakeExecutor(f)
	ctx := context.Background()

	// Miss then hit under the canonical key.
	v, out, err := e.Run(ctx, "fake", vals("a"))
	if err != nil || v != "value:a" || out.Cache != "miss" || out.Key != "fake|a" {
		t.Fatalf("first run: v=%v out=%+v err=%v", v, out, err)
	}
	if _, out, _ := e.Run(ctx, "fake", vals("a")); out.Cache != "hit" {
		t.Fatalf("second run not a hit: %+v", out)
	}
	if n := atomic.LoadInt32(&computes); n != 1 {
		t.Fatalf("computes = %d, want 1", n)
	}

	// Break the compute path: the cached key degrades to its stale
	// last-known-good value after the fresh entry is wiped.
	cache.Reset()
	f.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		return nil, fmt.Errorf("backend exploded")
	})
	for i := 0; i < 3; i++ {
		v, out, err := e.Run(ctx, "fake", vals("a"))
		if err != nil || v != "value:a" || out.Cache != "stale" || !out.Stale {
			t.Fatalf("degraded run %d: v=%v out=%+v err=%v", i, v, out, err)
		}
	}

	// Three consecutive failures opened the breaker; an uncached key now
	// fails fast with ErrOpen without touching Compute.
	if st := breakers.Get("fake").Stats(); st.State != "open" {
		t.Fatalf("breaker state = %q, want open", st.State)
	}
	before := atomic.LoadInt32(&computes)
	_, _, err = e.Run(ctx, "fake", vals("b"))
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("uncached key under open circuit: err = %v", err)
	}
	if atomic.LoadInt32(&computes) != before {
		t.Fatal("open circuit still invoked Compute")
	}

	// Stats accounting saw the failures and the stale serves.
	st := e.Stats().Analyses["fake"]
	if st.Failures < 3 || st.StaleServed < 3 {
		t.Fatalf("stats = %+v", st)
	}

	// Heal and wait out the cooldown: the half-open probe recomputes and
	// fresh serving resumes.
	breakers.SetClock(func() time.Time { return time.Now().Add(2 * time.Minute) })
	f.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		atomic.AddInt32(&computes, 1)
		return "value:" + p.key, nil
	})
	v, out, err = e.Run(ctx, "fake", vals("b"))
	if err != nil || v != "value:b" || out.Cache != "miss" {
		t.Fatalf("post-recovery run: v=%v out=%+v err=%v", v, out, err)
	}

	// The same registration serves batch items with identical semantics.
	results := e.RunBatch(ctx, []engine.BatchItem{
		{Analysis: "fake", Params: map[string]string{"key": "a"}},
		{Analysis: "fake", Params: map[string]string{"key": "b"}},
	})
	if results[0].Error != nil || results[0].Cache != "stale" && results[0].Cache != "hit" && results[0].Cache != "miss" {
		t.Fatalf("batch[0] = %+v", results[0])
	}
	if results[1].Error != nil || results[1].Cache != "hit" || results[1].Data != "value:b" {
		t.Fatalf("batch[1] = %+v", results[1])
	}
}

// TestRunErrors: unknown analyses, parse failures, and validation
// failures surface as typed *Errors with the right statuses.
func TestRunErrors(t *testing.T) {
	e, _, _ := newFakeExecutor(newFake("fake"))
	cases := []struct {
		name       string
		analysis   string
		key        string
		wantStatus int
		wantCode   string
	}{
		{"unknown analysis", "bogus", "a", 404, "not_found"},
		{"parse failure", "fake", "unparsable", 400, "bad_request"},
		{"validate failure", "fake", "invalid", 400, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := e.Run(context.Background(), tc.analysis, vals(tc.key))
			var ee *engine.Error
			if !errors.As(err, &ee) {
				t.Fatalf("err = %v, want *engine.Error", err)
			}
			if ee.Status != tc.wantStatus || ee.Code != tc.wantCode {
				t.Fatalf("error = %+v", ee)
			}
		})
	}
}

// TestClientErrorsDoNotTripBreaker: 4xx analysis errors are the service
// working correctly; the circuit stays closed and nothing degrades.
func TestClientErrorsDoNotTripBreaker(t *testing.T) {
	f := newFake("fake")
	f.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		return nil, engine.Errorf(404, "not_found", "no such thing %q", p.key)
	})
	e, _, breakers := newFakeExecutor(f)
	for i := 0; i < 5; i++ {
		_, _, err := e.Run(context.Background(), "fake", vals("a"))
		var ee *engine.Error
		if !errors.As(err, &ee) || ee.Status != 404 {
			t.Fatalf("run %d err = %v", i, err)
		}
	}
	if st := breakers.Get("fake").Stats(); st.State != "closed" {
		t.Fatalf("breaker state after 4xx errors = %q, want closed", st.State)
	}
	if st := e.Stats().Analyses["fake"]; st.Failures != 0 {
		t.Fatalf("4xx errors counted as failures: %+v", st)
	}
}

// TestCancellationStopsCompute is the engine's cancellation contract
// end to end: the caller's context cancellation reaches the compute's
// flight context (so an NNMF-style loop can stop), Run returns
// context.Canceled promptly, the breaker does not trip, and nothing is
// cached.
func TestCancellationStopsCompute(t *testing.T) {
	f := newFake("fake")
	started := make(chan struct{})
	stopped := make(chan error, 1)
	f.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		close(started)
		<-ctx.Done() // a context-aware compute observes the cancellation
		stopped <- ctx.Err()
		return nil, ctx.Err()
	})
	e, cache, breakers := newFakeExecutor(f)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := e.Run(ctx, "fake", vals("a"))
		errc <- err
	}()
	<-started
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return promptly after cancellation")
	}
	select {
	case err := <-stopped:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("compute saw %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("compute's flight context was never cancelled")
	}

	// Cancellation is not a failure: breaker closed, nothing cached.
	if st := breakers.Get("fake").Stats(); st.State != "closed" {
		t.Fatalf("breaker after cancellation = %q", st.State)
	}
	if _, ok := cache.Get("fake|a"); ok {
		t.Fatal("cancelled compute was cached")
	}
}

// TestWarm pre-computes the Warmer's params so the first live request
// is a hit, and surfaces warm failures.
func TestWarm(t *testing.T) {
	f := newFake("fake")
	f.warm = []engine.Params{fakeParams{key: "warmed"}}
	e, _, _ := newFakeExecutor(f)
	if err := e.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, out, _ := e.Run(context.Background(), "fake", vals("warmed")); out.Cache != "hit" {
		t.Fatalf("warmed key not a hit: %+v", out)
	}

	broken := newFake("broken")
	broken.warm = []engine.Params{fakeParams{key: "w"}}
	broken.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		return nil, fmt.Errorf("warm exploded")
	})
	e2, _, _ := newFakeExecutor(broken)
	if err := e2.Warm(context.Background()); err == nil {
		t.Fatal("Warm swallowed the compute failure")
	}
}

// TestRegistry covers registration-order iteration, duplicate
// rejection, and the Replace test seam.
func TestRegistry(t *testing.T) {
	b, a := newFake("beta"), newFake("alpha")
	r := engine.NewRegistry(b, a)
	if names := r.Names(); len(names) != 2 || names[0] != "beta" || names[1] != "alpha" {
		t.Fatalf("Names() = %v, want registration order", names)
	}
	if names := r.SortedNames(); names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("SortedNames() = %v", names)
	}
	if err := r.Register(newFake("beta")); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	if err := r.Register(newFake("")); err == nil {
		t.Fatal("empty-name Register succeeded")
	}

	r.Replace(newFake("alpha"))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Replace of unregistered name did not panic")
			}
		}()
		r.Replace(newFake("gamma"))
	}()
}

// TestErrorMapping covers the transport coercions the HTTP layer and
// the batch envelopes rely on.
func TestErrorMapping(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantCode   string
		failure    bool
	}{
		{"typed error", engine.Errorf(404, "not_found", "x"), 404, "not_found", false},
		{"typed 5xx", engine.Errorf(502, "upstream", "x"), 502, "upstream", true},
		{"open circuit", resilience.ErrOpen, 503, "circuit_open", false},
		{"canceled", context.Canceled, 499, "canceled", false},
		{"deadline", context.DeadlineExceeded, 504, "timeout", true},
		{"plain error", fmt.Errorf("boom"), 500, "internal", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ee := engine.AsError(tc.err)
			if ee.Status != tc.wantStatus || ee.Code != tc.wantCode {
				t.Fatalf("AsError(%v) = %+v", tc.err, ee)
			}
			if got := engine.IsServerFailure(tc.err); got != tc.failure {
				t.Fatalf("IsServerFailure(%v) = %v, want %v", tc.err, got, tc.failure)
			}
		})
	}
	if engine.IsServerFailure(nil) {
		t.Fatal("nil classified as failure")
	}
	// ErrOpen must not feed back into the breaker that raised it.
	if engine.IsServerFailure(resilience.ErrOpen) {
		t.Fatal("ErrOpen classified as failure")
	}
}
