// Package engine is the unified analysis layer between the HTTP/CLI
// surfaces and the analysis packages. Every computation the system can
// serve — agreement, course types, clustering, anchor recommendations,
// audits, PDC material recommendations, figures — is an Analysis: a
// stable name, a typed parameter set parsed from url.Values, and a
// context-aware compute over the course repository.
//
// Analyses register in a Registry; an Executor runs them through the
// serving ladder (cache → breaker-guarded singleflight → stale
// fallback) uniformly, so the HTTP server, the batch endpoint, the
// CLIs, and the readiness warmup all dispatch generically instead of
// wiring cache keys, breakers, and stale semantics per analysis.
//
// The cancellation contract: Compute receives a context that is
// cancelled when nobody is waiting for the result any more (all HTTP
// clients disconnected, the batch was abandoned). Long computations —
// the NNMF iteration loops, the agreement scans — check it between
// iterations and return ctx.Err() promptly instead of converging for
// nobody. A cancelled compute is not a failure: it never trips the
// circuit breaker and is never cached.
//
// The executor participates in request tracing (internal/obs): a
// request context carrying a trace accumulates ordered spans for every
// rung it visits — parse, the cache and singleflight spans emitted by
// internal/serving, breaker-allow/breaker-open, compute, stale-serve —
// each labelled with the analysis name, feeding the per-analysis
// per-stage latency histograms behind GET /metrics. Untraced contexts
// (CLIs, warmup, detached refreshes) skip tracing entirely.
package engine

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"

	"csmaterials/internal/materials"
	"csmaterials/internal/resilience"
)

// Params is one analysis invocation's typed, validated parameter set.
// Implementations are produced by Analysis.Parse and must be usable as
// values (no shared mutable state): the executor may retain them for
// background refreshes.
type Params interface {
	// Validate reports whether the parameter combination is servable.
	// Parse applies syntactic checks; Validate applies semantic ones
	// (ranges, known groups). A non-nil error is surfaced as a
	// 400 bad_request unless it is an *Error carrying its own status.
	Validate() error
	// CacheKey returns the canonical, pipe-delimited parameter part of
	// the analysis cache key — e.g. "cs1|3" for group=CS1&k=3. Equal
	// parameter sets MUST produce equal keys regardless of the spelling
	// of the request (case, defaults elided or explicit), because the
	// key identifies the cache entry, the singleflight flight, and the
	// stale last-known-good value.
	CacheKey() string
}

// Analysis is one registered computation.
type Analysis interface {
	// Name is the stable identifier: the API path segment
	// (/api/v1/<name>), the circuit-breaker name, the cache-key prefix,
	// and the fault-injection compute label (compute/<name>).
	Name() string
	// Parse builds the typed params from request query values, applying
	// defaults. It returns a 400-shaped error for malformed input; the
	// executor calls Validate on the result before computing.
	Parse(v url.Values) (Params, error)
	// Compute runs the analysis over the repository. It must be pure
	// and deterministic for a given (repo, params) pair — results are
	// cached indefinitely — and should check ctx between expensive
	// iterations, returning ctx.Err() when cancelled.
	Compute(ctx context.Context, repo *materials.Repository, p Params) (interface{}, error)
}

// Warmer is implemented by analyses that should be pre-computed before
// the server reports ready (GET /readyz). WarmParams returns the
// parameter sets to warm, typically the expensive all-group defaults.
type Warmer interface {
	WarmParams() []Params
}

// Error is an analysis error carrying an HTTP status and a stable
// machine-readable code. Analyses return it for client-side conditions
// (unknown course, oversized k); the executor and the HTTP layer treat
// 4xx Errors as the service working correctly — they never trip
// circuit breakers or trigger stale fallbacks.
type Error struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Message }

// Errorf builds an *Error with a formatted message.
func Errorf(status int, code, format string, args ...interface{}) *Error {
	return &Error{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// AsError coerces err into an *Error for transport: an *Error passes
// through, resilience.ErrOpen maps to 503 circuit_open,
// context.Canceled to 499 (client closed request),
// context.DeadlineExceeded to 504, anything else to 500 internal.
func AsError(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	switch {
	case errors.Is(err, resilience.ErrOpen):
		return &Error{Status: http.StatusServiceUnavailable, Code: "circuit_open", Message: "temporarily disabled after repeated failures; retry later"}
	case errors.Is(err, context.Canceled):
		return &Error{Status: 499, Code: "canceled", Message: "client closed request"}
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Status: http.StatusGatewayTimeout, Code: "timeout", Message: err.Error()}
	}
	return &Error{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
}

// IsServerFailure classifies err for the circuit breaker and the stale
// fallback: nil, client-side Errors (4xx — bad parameters, unknown
// courses or figures), cancellation (the waiters left; nothing is
// broken), and breaker rejections (not new evidence — the breaker
// already knows) are the service working correctly. Anything else is a
// failure of the compute path.
func IsServerFailure(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, resilience.ErrOpen) {
		return false
	}
	var e *Error
	if errors.As(err, &e) && e.Status < 500 {
		return false
	}
	return true
}

// Registry is the set of registered analyses. The HTTP mux, the batch
// executor, the readiness warmup, metrics, and the CLIs all iterate or
// look up this one structure, so adding an analysis to the system is
// exactly one Register call.
type Registry struct {
	mu    sync.RWMutex
	m     map[string]Analysis
	order []string
}

// NewRegistry builds a registry holding the given analyses.
// It panics on a duplicate or empty name — registration happens at
// startup, where a bad registration is a programming error.
func NewRegistry(as ...Analysis) *Registry {
	r := &Registry{m: make(map[string]Analysis)}
	for _, a := range as {
		r.MustRegister(a)
	}
	return r
}

// Register adds a, failing on duplicate or empty names.
func (r *Registry) Register(a Analysis) error {
	name := a.Name()
	if name == "" {
		return fmt.Errorf("engine: analysis with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("engine: duplicate analysis %q", name)
	}
	r.m[name] = a
	r.order = append(r.order, name)
	return nil
}

// MustRegister is Register, panicking on error.
func (r *Registry) MustRegister(a Analysis) {
	if err := r.Register(a); err != nil {
		panic(err)
	}
}

// Replace swaps the analysis registered under a.Name() for a, keeping
// its position. Tests use it to install fakes behind the full serving
// ladder; replacing an unregistered name panics so a typo cannot
// silently register a new analysis.
func (r *Registry) Replace(a Analysis) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[a.Name()]; !ok {
		panic(fmt.Sprintf("engine: Replace of unregistered analysis %q", a.Name()))
	}
	r.m[a.Name()] = a
}

// Get returns the analysis registered under name.
func (r *Registry) Get(name string) (Analysis, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.m[name]
	return a, ok
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// SortedNames returns the registered names sorted lexically, for
// deterministic display (CLIs, docs).
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}
