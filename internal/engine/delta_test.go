package engine_test

import (
	"context"
	"encoding/json"
	"net/url"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
	"csmaterials/internal/engine/analyses"
	"csmaterials/internal/materials"
	"csmaterials/internal/serving"
)

// newDeltaExecutor wires the real analysis registry over a fresh
// dataset registry (seed corpus as "default") — the delta-refresh
// tests need real AffectedBy/ComputeWarm implementations, not fakes.
func newDeltaExecutor(t *testing.T) (*engine.Executor, *dataset.Registry) {
	t.Helper()
	reg, err := analyses.Default()
	if err != nil {
		t.Fatal(err)
	}
	datasets := dataset.NewRegistry(nil)
	exec := engine.NewExecutor(reg, engine.ExecutorOptions{
		Datasets: datasets,
		Cache:    serving.NewCache(64),
	})
	return exec, datasets
}

func mustRunOn(t *testing.T, exec *engine.Executor, name string, v url.Values) (interface{}, engine.Outcome) {
	t.Helper()
	val, out, err := exec.RunOn(context.Background(), dataset.DefaultID, name, v)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return val, out
}

// cs1OnlyCourse returns a seed course that is in the cs1 group and in
// none of ds/dsalgo/pdc, so a delta touching it must leave results
// scoped to those groups migrated, not recomputed.
func cs1OnlyCourse(t *testing.T, snap *dataset.Snapshot) *materials.Course {
	t.Helper()
	for _, c := range snap.Repo().Courses() {
		if c.HasGroup(materials.GroupCS1) &&
			!c.HasGroup(materials.GroupDS) && !c.HasGroup(materials.GroupAlgo) &&
			!c.HasGroup(materials.GroupPDC) {
			return c
		}
	}
	t.Fatal("no cs1-only course in seed corpus")
	return nil
}

// sameTagsRetag builds the smallest possible delta: retag one material
// with its current tags. The course is touched (its results must not
// be trusted blindly) but no tag set changes, so warm recomputes can
// prove byte-identity.
func sameTagsRetag(c *materials.Course) []dataset.Event {
	m := c.Materials[0]
	return []dataset.Event{{
		Op: dataset.OpRetag, Course: c.ID, MaterialID: m.ID,
		Tags: append([]string(nil), m.Tags...),
	}}
}

// TestApplyDeltaPrecision is the acceptance gate for invalidation
// precision: a single-material retag must drop exactly the cache
// entries its delta can reach and migrate every other entry to the new
// revision's keys.
func TestApplyDeltaPrecision(t *testing.T) {
	exec, datasets := newDeltaExecutor(t)
	base := datasets.Default()
	touched := cs1OnlyCourse(t, base)
	var other *materials.Course
	for _, c := range base.Repo().Courses() {
		if c.ID != touched.ID {
			other = c
			break
		}
	}

	// Populate two group-scoped and two course-scoped results.
	mustRunOn(t, exec, "agreement", url.Values{"group": {"all"}})     // reachable: every group
	mustRunOn(t, exec, "agreement", url.Values{"group": {"pdc"}})     // unreachable: touched course is not pdc
	mustRunOn(t, exec, "anchors", url.Values{"course": {touched.ID}}) // reachable: the touched course
	mustRunOn(t, exec, "anchors", url.Values{"course": {other.ID}})   // unreachable: another course

	snap, err := datasets.Apply(dataset.DefaultID, sameTagsRetag(touched))
	if err != nil {
		t.Fatal(err)
	}
	out := exec.ApplyDelta(context.Background(), dataset.DefaultID, snap)
	if out.Full {
		t.Fatal("delta snapshot must not fall back to a full refresh")
	}
	// Each computed result has a fresh and a stale last-known-good copy;
	// both migrate or drop together. Only the fresh copies count as
	// migrated, and only agreement (a WarmStarter) seeds a prior.
	if out.Migrated != 2 {
		t.Errorf("migrated = %d, want 2 (agreement|pdc, anchors|%s)", out.Migrated, other.ID)
	}
	if out.InvalidatedFresh != 2 || out.InvalidatedStale != 2 {
		t.Errorf("invalidated = (%d fresh, %d stale), want (2, 2)", out.InvalidatedFresh, out.InvalidatedStale)
	}
	if out.Seeded != 1 {
		t.Errorf("seeded = %d, want 1 (agreement|all)", out.Seeded)
	}

	// Migrated entries serve as hits under the new revision; dropped
	// entries recompute.
	if _, o := mustRunOn(t, exec, "agreement", url.Values{"group": {"pdc"}}); o.Cache != "hit" || o.Revision != snap.Revision() {
		t.Errorf("unaffected agreement = %q@rev%d, want hit@rev%d", o.Cache, o.Revision, snap.Revision())
	}
	if _, o := mustRunOn(t, exec, "anchors", url.Values{"course": {other.ID}}); o.Cache != "hit" {
		t.Errorf("unaffected anchors = %q, want hit", o.Cache)
	}
	if _, o := mustRunOn(t, exec, "anchors", url.Values{"course": {touched.ID}}); o.Cache != "miss" {
		t.Errorf("touched anchors = %q, want miss", o.Cache)
	}
	if _, o := mustRunOn(t, exec, "agreement", url.Values{"group": {"all"}}); o.Cache != "miss" {
		t.Errorf("touched agreement = %q, want miss", o.Cache)
	}
	st := exec.Stats().Refresh[dataset.DefaultID]
	if st.Delta != 1 || st.Full != 0 {
		t.Errorf("refresh counts = (%d delta, %d full), want (1, 0)", st.Delta, st.Full)
	}
	if st.WarmStarts != 1 || st.WarmFallbacks != 0 {
		t.Errorf("warm = (%d starts, %d fallbacks), want (1, 0)", st.WarmStarts, st.WarmFallbacks)
	}

	// A full PUT re-ingest (no delta on the snapshot) degrades to a
	// full refresh.
	doc := snap.Repo().Courses()
	putSnap, err := datasets.Put(dataset.DefaultID, doc)
	if err != nil {
		t.Fatal(err)
	}
	if out := exec.ApplyDelta(context.Background(), dataset.DefaultID, putSnap); !out.Full {
		t.Error("snapshot without a delta must refresh full")
	}
}

// TestApplyDeltaWarmTypes is the acceptance gate for warm-start
// recompute: after a tag-set-preserving retag, the NNMF types analysis
// must recompute warm in at most 10% of the cold iteration budget and
// produce a value byte-identical to a cold compute of the same
// revision.
func TestApplyDeltaWarmTypes(t *testing.T) {
	exec, datasets := newDeltaExecutor(t)
	touched := cs1OnlyCourse(t, datasets.Default())

	coldVal, o := mustRunOn(t, exec, "types", url.Values{"group": {"all"}})
	if o.Cache != "miss" {
		t.Fatalf("first types = %q, want miss", o.Cache)
	}

	snap, err := datasets.Apply(dataset.DefaultID, sameTagsRetag(touched))
	if err != nil {
		t.Fatal(err)
	}
	out := exec.ApplyDelta(context.Background(), dataset.DefaultID, snap)
	if out.Seeded != 1 {
		t.Fatalf("seeded = %d, want 1 (types|all)", out.Seeded)
	}

	warmVal, o := mustRunOn(t, exec, "types", url.Values{"group": {"all"}})
	if o.Cache != "miss" || o.Revision != snap.Revision() {
		t.Fatalf("post-delta types = %q@rev%d, want miss@rev%d", o.Cache, o.Revision, snap.Revision())
	}
	st := exec.Stats().Refresh[dataset.DefaultID]
	if st.WarmStarts != 1 || st.WarmFallbacks != 0 {
		t.Fatalf("warm = (%d starts, %d fallbacks), want (1, 0)", st.WarmStarts, st.WarmFallbacks)
	}
	if st.WarmIterations == 0 || st.ColdIterations == 0 {
		t.Fatalf("iterations not recorded: warm=%d cold=%d", st.WarmIterations, st.ColdIterations)
	}
	if st.WarmIterations*10 > st.ColdIterations {
		t.Errorf("warm start took %d iterations vs %d cold: not within 10%%", st.WarmIterations, st.ColdIterations)
	}

	// Byte-identity, twice over: against the pre-delta value (the tag
	// sets did not change, so the model must not either) and against a
	// cold executor computing the new revision from scratch.
	warmJSON := mustJSON(t, warmVal)
	if got := mustJSON(t, coldVal); got != warmJSON {
		t.Error("warm value diverges from the prior revision's value despite unchanged tag sets")
	}
	coldExec, _ := func() (*engine.Executor, *dataset.Registry) {
		reg, err := analyses.Default()
		if err != nil {
			t.Fatal(err)
		}
		return engine.NewExecutor(reg, engine.ExecutorOptions{
			Datasets: datasets,
			Cache:    serving.NewCache(64),
		}), datasets
	}()
	freshVal, _ := mustRunOn(t, coldExec, "types", url.Values{"group": {"all"}})
	if got := mustJSON(t, freshVal); got != warmJSON {
		t.Error("warm value diverges from a cold recompute of the same revision")
	}
}

// TestApplyDeltaWarmAgreementRebase drives a delta that genuinely
// changes a course's tag set: the agreement analysis must rebase the
// prior counts (warm) and still match a cold recompute byte for byte.
func TestApplyDeltaWarmAgreementRebase(t *testing.T) {
	exec, datasets := newDeltaExecutor(t)
	base := datasets.Default()
	touched := cs1OnlyCourse(t, base)

	// A tag the course does not have, taken from another course so it
	// is a known curriculum entry.
	var newTag string
	have := touched.TagSet()
	for _, c := range base.Repo().Courses() {
		if c.ID == touched.ID {
			continue
		}
		for tag := range c.TagSet() {
			if !have[tag] {
				newTag = tag
				break
			}
		}
		if newTag != "" {
			break
		}
	}
	if newTag == "" {
		t.Fatal("no disjoint tag found")
	}

	mustRunOn(t, exec, "agreement", url.Values{"group": {"all"}})
	snap, err := datasets.Apply(dataset.DefaultID, []dataset.Event{{
		Op: dataset.OpRetag, Course: touched.ID,
		MaterialID: touched.Materials[0].ID, Tags: []string{newTag},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d := snap.Delta(); len(d.TagChanges) == 0 {
		t.Fatal("retag with a new tag must record tag changes")
	}
	exec.ApplyDelta(context.Background(), dataset.DefaultID, snap)

	warmVal, _ := mustRunOn(t, exec, "agreement", url.Values{"group": {"all"}})
	if st := exec.Stats().Refresh[dataset.DefaultID]; st.WarmStarts != 1 {
		t.Fatalf("warm starts = %d, want 1", st.WarmStarts)
	}

	reg, err := analyses.Default()
	if err != nil {
		t.Fatal(err)
	}
	coldExec := engine.NewExecutor(reg, engine.ExecutorOptions{
		Datasets: datasets,
		Cache:    serving.NewCache(64),
	})
	coldVal, _ := mustRunOn(t, coldExec, "agreement", url.Values{"group": {"all"}})
	if mustJSON(t, warmVal) != mustJSON(t, coldVal) {
		t.Error("rebased agreement diverges from a cold recompute of the same revision")
	}
}

func mustJSON(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
