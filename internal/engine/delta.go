package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/obs"
)

// DeltaAware is implemented by analyses that can judge whether a
// dataset delta can reach a cached result. The executor consults it
// during a delta refresh: results the analysis proves unaffected are
// migrated to the new revision's cache keys instead of being dropped
// and recomputed, so a retag of one material invalidates only the
// analyses and parameter scopes it can actually change.
type DeltaAware interface {
	// AffectedBy reports whether the result cached under paramKey (the
	// Params.CacheKey() part of the logical key, "" when the analysis
	// takes no parameters) could differ after d is applied. It must err
	// on the side of true: a false negative serves a wrong result under
	// the new revision.
	AffectedBy(paramKey string, d *dataset.Delta) bool
}

// ErrColdCompute is the sentinel a WarmStarter returns to decline a
// warm recompute; the executor falls back to a cold Compute.
var ErrColdCompute = errors.New("engine: warm compute declined, run cold")

// WarmStarter is implemented by analyses whose recompute can be seeded
// from the previous result. The contract is strict: a non-error return
// from ComputeWarm MUST be byte-identical to what Compute would return
// for the same (repo, p) — implementations verify their inputs are
// unchanged (or rebase them with exact arithmetic) and return
// ErrColdCompute when they cannot prove it. Performance is the only
// thing a warm start may change.
type WarmStarter interface {
	// ComputeWarm recomputes the analysis using the previous cached
	// result as a seed. prior is the value Compute (or a previous
	// ComputeWarm) returned; d is the delta between the prior's
	// revision and repo, or nil when the prior belongs to the same
	// revision (a background stale refresh).
	ComputeWarm(ctx context.Context, repo *materials.Repository, p Params, prior interface{}, d *dataset.Delta) (interface{}, error)
}

// ConvergenceReporter is implemented by analysis RESULTS whose compute
// is iterative (the NNMF factorizations); the executor reads it after
// a successful compute to export iterations-to-converge, split warm
// vs cold, through the csm_refresh_* metric families.
type ConvergenceReporter interface {
	ConvergenceIterations() int
}

// maxPriors bounds the executor's warm-start seed store: one prior per
// invalidated key, far above a realistic delta's blast radius; beyond
// it new seeds are declined (the refresh just runs cold).
const maxPriors = 256

// priorEntry is a dropped cached result retained as the warm-start
// seed for its successor key. Priors live in their own store, never in
// the serving cache: a dead revision's value must not be reachable
// through Get or Stale, only through the executor's deliberate warm
// recompute.
type priorEntry struct {
	val   interface{}
	delta *dataset.Delta
}

// refreshStats counts one dataset's refresh activity.
type refreshStats struct {
	delta            uint64
	full             uint64
	invalidatedFresh uint64
	invalidatedStale uint64
	migrated         uint64
	seeded           uint64
	warmStarts       uint64
	warmFallbacks    uint64
	warmIterations   uint64
	coldIterations   uint64
}

// RefreshStats is the JSON form of one dataset's refresh counters.
type RefreshStats struct {
	// Delta and Full count refreshes by kind.
	Delta uint64 `json:"delta"`
	Full  uint64 `json:"full"`
	// InvalidatedFresh/InvalidatedStale count cache entries dropped by
	// refreshes, per store.
	InvalidatedFresh uint64 `json:"invalidated_fresh"`
	InvalidatedStale uint64 `json:"invalidated_stale"`
	// Migrated counts fresh entries carried to a new revision unchanged.
	Migrated uint64 `json:"migrated"`
	// Seeded counts warm-start priors retained from dropped entries.
	Seeded uint64 `json:"seeded"`
	// WarmStarts counts recomputes answered by ComputeWarm; WarmFallbacks
	// counts priors that were declined (cold recompute ran instead).
	WarmStarts    uint64 `json:"warm_starts"`
	WarmFallbacks uint64 `json:"warm_fallbacks"`
	// WarmIterations/ColdIterations accumulate iterations-to-converge
	// reported by iterative results, split by compute mode.
	WarmIterations uint64 `json:"warm_iterations"`
	ColdIterations uint64 `json:"cold_iterations"`
}

// DeltaOutcome summarizes one refresh for the ingest response meta and
// the tests asserting invalidation precision.
type DeltaOutcome struct {
	// Full reports that the refresh fell back to whole-dataset
	// invalidation (no delta available).
	Full bool `json:"full"`
	// InvalidatedFresh/InvalidatedStale are the cache entries dropped.
	InvalidatedFresh int `json:"invalidated_fresh"`
	InvalidatedStale int `json:"invalidated_stale"`
	// Migrated is the number of fresh entries carried forward to the
	// new revision because their analysis proved them unaffected.
	Migrated int `json:"migrated"`
	// Seeded is the number of warm-start priors retained.
	Seeded int `json:"seeded"`
}

// Invalidated is the total number of cache entries dropped.
func (o DeltaOutcome) Invalidated() int { return o.InvalidatedFresh + o.InvalidatedStale }

// ApplyDelta reconciles the serving layer with a freshly applied
// dataset revision. When the snapshot carries a Delta (it came from
// Registry.Apply), the refresh is delta-driven: every cached entry of
// the dataset's previous revisions is classified by its analysis —
// provably unaffected results are MIGRATED to the new revision's keys
// (keeping their LRU positions; no recompute, no cold cache), affected
// results are dropped, and dropped values of warm-startable analyses
// are retained as warm-start priors for the recompute that will
// replace them. Snapshots without a delta (full PUT re-ingest,
// LoadDir) degrade to RefreshFull. No-op in single-repo mode.
func (e *Executor) ApplyDelta(ctx context.Context, ds string, snap *dataset.Snapshot) DeltaOutcome {
	if e.datasets == nil || e.cache == nil {
		return DeltaOutcome{}
	}
	d := snap.Delta()
	if d == nil {
		return e.RefreshFull(ctx, ds, snap.Revision())
	}
	start := obs.Now(ctx)
	prefix := ds + "@"
	newPrefix := fmt.Sprintf("%s@%d|", ds, snap.Revision())
	e.dropPriors(ds)

	sum, dropped := e.cache.Rekey(func(key string) string {
		if !strings.HasPrefix(key, prefix) || strings.HasPrefix(key, newPrefix) {
			return key
		}
		name, paramKey, ok := splitPhysical(key)
		if !ok {
			return "" // malformed for this dataset: drop
		}
		a, registered := e.reg.Get(name)
		if !registered {
			return ""
		}
		if da, aware := a.(DeltaAware); aware && !da.AffectedBy(paramKey, d) {
			return newPrefix + name + joinParam(paramKey)
		}
		return ""
	})

	out := DeltaOutcome{
		InvalidatedFresh: sum.DroppedFresh,
		InvalidatedStale: sum.DroppedStale,
		Migrated:         sum.MovedFresh,
	}
	// Seed warm-start priors from the dropped values under the keys the
	// recompute will use. The fresh store is swept before the stale one,
	// so a fresh value wins when both copies were dropped.
	for _, de := range dropped {
		name, paramKey, ok := splitPhysical(de.Key)
		if !ok {
			continue
		}
		a, registered := e.reg.Get(name)
		if !registered {
			continue
		}
		if _, warmable := a.(WarmStarter); !warmable {
			continue
		}
		if e.seedPrior(newPrefix+name+joinParam(paramKey), de.Val, d, de.Stale) {
			out.Seeded++
		}
	}
	obs.AddSpan(ctx, "refresh-delta", start)
	e.countRefresh(ds, true, out)
	return out
}

// RefreshFull invalidates every cache and stale entry of ds except
// revision keep, recording the sweep as a refresh-full span and in the
// csm_refresh_* counters. It is the metrics-aware face of
// InvalidateDataset, used by the full re-ingest path.
func (e *Executor) RefreshFull(ctx context.Context, ds string, keep uint64) DeltaOutcome {
	if e.datasets == nil || e.cache == nil {
		return DeltaOutcome{Full: true}
	}
	start := obs.Now(ctx)
	e.dropPriors(ds)
	fresh, stale := e.invalidateDatasetDetail(ds, keep)
	obs.AddSpan(ctx, "refresh-full", start)
	out := DeltaOutcome{Full: true, InvalidatedFresh: fresh, InvalidatedStale: stale}
	e.countRefresh(ds, false, out)
	return out
}

// splitPhysical decomposes a physical cache key
// "<ds>@<rev>|<name>[|<paramKey>]" into its analysis name and
// parameter key.
func splitPhysical(key string) (name, paramKey string, ok bool) {
	bar := strings.IndexByte(key, '|')
	if bar < 0 {
		return "", "", false
	}
	logical := key[bar+1:]
	if i := strings.IndexByte(logical, '|'); i >= 0 {
		return logical[:i], logical[i+1:], true
	}
	return logical, "", true
}

// joinParam re-attaches a parameter key to an analysis name.
func joinParam(paramKey string) string {
	if paramKey == "" {
		return ""
	}
	return "|" + paramKey
}

// seedPrior retains val as the warm-start seed for key. A fresh value
// never loses to a stale one; the store is bounded at maxPriors.
func (e *Executor) seedPrior(key string, val interface{}, d *dataset.Delta, stale bool) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.priors[key]; exists {
		if stale {
			return false // fresh copy already seeded
		}
	} else if len(e.priors) >= maxPriors {
		return false
	}
	e.priors[key] = priorEntry{val: val, delta: d}
	return true
}

// takePrior consumes the warm-start seed for key, if any.
func (e *Executor) takePrior(key string) (priorEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pr, ok := e.priors[key]
	if ok {
		delete(e.priors, key)
	}
	return pr, ok
}

// dropPriors discards every retained seed belonging to ds.
func (e *Executor) dropPriors(ds string) {
	prefix := ds + "@"
	e.mu.Lock()
	for k := range e.priors {
		if strings.HasPrefix(k, prefix) {
			delete(e.priors, k)
		}
	}
	e.mu.Unlock()
}

// computeWithPrior runs the analysis, preferring a warm recompute when
// a prior was seeded for key and the analysis supports it. A declined
// warm start (ErrColdCompute, or any non-context error) falls back to
// a cold Compute; context errors pass through so cancellation is not
// masked by a doomed cold retry. The boolean reports whether the warm
// result was adopted.
func (e *Executor) computeWithPrior(ctx context.Context, ds string, a Analysis, repo *materials.Repository, p Params, key string) (interface{}, bool, error) {
	if ws, warmable := a.(WarmStarter); warmable {
		if pr, ok := e.takePrior(key); ok {
			v, err := ws.ComputeWarm(ctx, repo, p, pr.val, pr.delta)
			switch {
			case err == nil:
				e.countWarm(ds, true)
				return v, true, nil
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				return nil, false, err
			default:
				e.countWarm(ds, false)
			}
		}
	}
	v, err := a.Compute(ctx, repo, p)
	return v, false, err
}

// recordIterations accumulates a result's iterations-to-converge into
// the dataset's warm or cold bucket.
func (e *Executor) recordIterations(ds string, warm bool, v interface{}) {
	cr, ok := v.(ConvergenceReporter)
	if !ok {
		return
	}
	n := cr.ConvergenceIterations()
	if n <= 0 {
		return
	}
	e.mu.Lock()
	st := e.refreshLocked(ds)
	if warm {
		st.warmIterations += uint64(n)
	} else {
		st.coldIterations += uint64(n)
	}
	e.mu.Unlock()
}

func (e *Executor) countWarm(ds string, adopted bool) {
	e.mu.Lock()
	st := e.refreshLocked(ds)
	if adopted {
		st.warmStarts++
	} else {
		st.warmFallbacks++
	}
	e.mu.Unlock()
}

func (e *Executor) countRefresh(ds string, delta bool, out DeltaOutcome) {
	e.mu.Lock()
	st := e.refreshLocked(ds)
	if delta {
		st.delta++
	} else {
		st.full++
	}
	st.invalidatedFresh += uint64(out.InvalidatedFresh)
	st.invalidatedStale += uint64(out.InvalidatedStale)
	st.migrated += uint64(out.Migrated)
	st.seeded += uint64(out.Seeded)
	e.mu.Unlock()
}

// refreshLocked returns ds's refresh counters; callers hold e.mu.
func (e *Executor) refreshLocked(ds string) *refreshStats {
	s, ok := e.refresh[ds]
	if !ok {
		s = &refreshStats{}
		e.refresh[ds] = s
	}
	return s
}
