package analyses

import (
	"context"
	"fmt"
	"net/url"

	"csmaterials/internal/core"
	"csmaterials/internal/engine"
	"csmaterials/internal/materials"
)

// FiguresParams identifies one paper figure.
type FiguresParams struct {
	ID string
}

func (p FiguresParams) Validate() error {
	if p.ID == "" {
		return fmt.Errorf("missing figure id")
	}
	return nil
}

// CacheKey is the figure ID.
func (p FiguresParams) CacheKey() string { return p.ID }

// Figures regenerates one paper figure (GET /api/v1/figures/{id}). The
// computed value is a *core.Artifact: text rendering plus named SVGs.
type Figures struct{}

func (Figures) Name() string { return "figures" }

func (Figures) Parse(v url.Values) (engine.Params, error) {
	return FiguresParams{ID: v.Get("id")}, nil
}

func (Figures) Compute(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error) {
	id := p.(FiguresParams).ID
	for _, f := range core.Figures() {
		if f.ID == id {
			return f.Gen()
		}
	}
	return nil, engine.Errorf(404, "not_found", "unknown figure %q", id)
}
