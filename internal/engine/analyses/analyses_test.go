package analyses_test

import (
	"context"
	"errors"
	"net/url"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
	"csmaterials/internal/engine/analyses"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

func defaultRegistry(t *testing.T) *engine.Registry {
	t.Helper()
	reg, err := analyses.Default()
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestDefaultRegistry: the full analysis surface registers, and every
// entry produces a canonical cache key from its defaults.
func TestDefaultRegistry(t *testing.T) {
	reg := defaultRegistry(t)
	want := []string{"agreement", "types", "cluster", "anchors", "audit", "pdcmaterials", "figures"}
	names := reg.Names()
	if len(names) != len(want) {
		t.Fatalf("registered %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registered %v, want %v", names, want)
		}
	}
}

// TestParseDefaultsAndKeys pins the canonical cache keys: equal
// parameter sets must map to equal keys regardless of request spelling,
// because the key identifies the cache entry and the breaker-guarded
// flight.
func TestParseDefaultsAndKeys(t *testing.T) {
	reg := defaultRegistry(t)
	cases := []struct {
		analysis string
		query    string
		wantKey  string
	}{
		{"types", "group=cs1&k=3", "types|cs1|3"},
		{"types", "group=CS1&k=3", "types|cs1|3"}, // case-normalized
		{"types", "", "types|all|4"},              // all-group default k is 4
		{"types", "group=cs1", "types|cs1|3"},     // single-group default k is 3
		{"cluster", "", "cluster|all|4"},
		{"cluster", "group=all&k=4", "cluster|all|4"},
		{"agreement", "", "agreement|all|2"},
		{"agreement", "group=pdc&threshold=3", "agreement|pdc|3"},
		{"figures", "id=3a", "figures|3a"},
		{"anchors", "course=vcu-cmsc256-duke", "anchors|vcu-cmsc256-duke"},
		{"pdcmaterials", "course=vcu-cmsc256-duke", "pdcmaterials|vcu-cmsc256-duke|10"},
	}
	for _, tc := range cases {
		t.Run(tc.analysis+"?"+tc.query, func(t *testing.T) {
			a, ok := reg.Get(tc.analysis)
			if !ok {
				t.Fatalf("analysis %q not registered", tc.analysis)
			}
			v, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			p, err := a.Parse(v)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if key := engine.Key(a, p); key != tc.wantKey {
				t.Fatalf("key = %q, want %q", key, tc.wantKey)
			}
		})
	}
}

// TestParseRejections: malformed numbers, unknown groups, and missing
// required parameters fail Parse/Validate before any compute happens.
func TestParseRejections(t *testing.T) {
	reg := defaultRegistry(t)
	cases := []struct {
		analysis string
		query    string
	}{
		{"types", "k=banana"},
		{"types", "k=0"},
		{"types", "group=bogus"},
		{"agreement", "threshold=0"},
		{"agreement", "group=bogus"},
		{"cluster", "k=-1"},
		{"pdcmaterials", "course=vcu-cmsc256-duke&limit=-3"},
		{"anchors", ""},      // missing course
		{"pdcmaterials", ""}, // missing course
		{"figures", ""},      // missing id
	}
	for _, tc := range cases {
		t.Run(tc.analysis+"?"+tc.query, func(t *testing.T) {
			a, _ := reg.Get(tc.analysis)
			v, _ := url.ParseQuery(tc.query)
			p, err := a.Parse(v)
			if err == nil {
				err = p.Validate()
			}
			if err == nil {
				t.Fatal("malformed input survived Parse+Validate")
			}
		})
	}
}

// TestComputeNotFound: unknown courses and figures come back as typed
// 404 *Errors, which the executor treats as client errors (no breaker
// impact, no stale fallback).
func TestComputeNotFound(t *testing.T) {
	reg := defaultRegistry(t)
	repo := dataset.Repository()
	cases := []struct {
		analysis string
		query    string
	}{
		{"anchors", "course=ghost"},
		{"audit", "course=ghost"},
		{"pdcmaterials", "course=ghost"},
		{"figures", "id=99"},
	}
	for _, tc := range cases {
		t.Run(tc.analysis, func(t *testing.T) {
			a, _ := reg.Get(tc.analysis)
			v, _ := url.ParseQuery(tc.query)
			p, err := a.Parse(v)
			if err != nil {
				t.Fatal(err)
			}
			_, err = a.Compute(context.Background(), repo, p)
			var ee *engine.Error
			if !errors.As(err, &ee) || ee.Status != 404 || ee.Code != "not_found" {
				t.Fatalf("err = %v, want 404 not_found", err)
			}
		})
	}
}

// TestTypesComputeHonoursCancellation: the NNMF compute behind the
// types analysis returns ctx.Err() instead of factorizing for nobody.
// (internal/nnmf's own tests prove mid-iteration cancellation; this
// pins the wiring from the analysis layer down.)
func TestTypesComputeHonoursCancellation(t *testing.T) {
	reg := defaultRegistry(t)
	a, _ := reg.Get("types")
	p, err := a.Parse(url.Values{"group": []string{"all"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = a.Compute(ctx, dataset.Repository(), p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled types compute returned %v, want context.Canceled", err)
	}
}

// TestAgreementComputeHonoursCancellation mirrors the types check for
// the agreement scan.
func TestAgreementComputeHonoursCancellation(t *testing.T) {
	reg := defaultRegistry(t)
	a, _ := reg.Get("agreement")
	p, err := a.Parse(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = a.Compute(ctx, dataset.Repository(), p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled agreement compute returned %v, want context.Canceled", err)
	}
}

// TestGroupsDerivedFromRepository pins the group rosters to the
// repository's own course metadata: since the dataset registry made
// analyses run over arbitrary corpora, group membership is derived
// from each course's Group/SecondaryGroup fields — on the seed corpus
// that derivation must reproduce the paper's exact rosters (§4.3-§4.6).
func TestGroupsDerivedFromRepository(t *testing.T) {
	reg := defaultRegistry(t)
	a, _ := reg.Get("agreement")
	repo := dataset.Repository()
	for group, want := range map[string][]string{
		"cs1":    dataset.CS1CourseIDs(),
		"ds":     dataset.DSCourseIDs(),
		"dsalgo": dataset.DSAlgoCourseIDs(),
		"pdc":    dataset.PDCCourseIDs(),
		"all":    dataset.AllCourseIDs(),
	} {
		p, err := a.Parse(url.Values{"group": []string{group}})
		if err != nil {
			t.Fatalf("parse group %q: %v", group, err)
		}
		v, err := a.Compute(context.Background(), repo, p)
		if err != nil {
			t.Fatalf("compute group %q: %v", group, err)
		}
		got := v.(*analyses.AgreementResponse).Courses
		if len(got) != len(want) {
			t.Fatalf("group %q roster = %v, want %v", group, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("group %q roster = %v, want %v", group, got, want)
			}
		}
	}
}

// TestGroupOnEmptyCorpus: a corpus with no members of a requested
// group is a typed 404, not a panic or an empty analysis.
func TestGroupOnEmptyCorpus(t *testing.T) {
	reg := defaultRegistry(t)
	a, _ := reg.Get("agreement")
	repo := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	course := &materials.Course{ID: "solo", Name: "Solo", Group: materials.GroupCS1}
	course.Materials = []*materials.Material{{
		ID: "solo-m1", Title: "Intro", Type: materials.Lecture,
		Tags: []string{dataset.Repository().Courses()[0].Materials[0].Tags[0]},
	}}
	if err := repo.AddCourse(course); err != nil {
		t.Fatal(err)
	}
	p, err := a.Parse(url.Values{"group": []string{"pdc"}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Compute(context.Background(), repo, p)
	var ee *engine.Error
	if !errors.As(err, &ee) || ee.Status != 404 {
		t.Fatalf("pdc over CS1-only corpus = %v, want 404 not_found", err)
	}
}
