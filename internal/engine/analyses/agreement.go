package analyses

import (
	"context"
	"fmt"
	"net/url"
	"strconv"

	"csmaterials/internal/agreement"
	"csmaterials/internal/engine"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

// AgreementResponse is the agreement analysis payload (§4.3): per-tag
// course counts summarized at every threshold, with the qualifying
// knowledge areas at the requested one.
type AgreementResponse struct {
	Courses   []string       `json:"courses"`
	Tags      int            `json:"tags"`
	AtLeast   map[string]int `json:"at_least"`
	KASpan    []string       `json:"ka_span"`
	KACounts  map[string]int `json:"ka_counts"`
	Threshold int            `json:"threshold"`

	// analysis retains the tag-count state so a later delta refresh can
	// rebase it instead of rescanning; unexported, never serializes.
	analysis *agreement.Analysis
}

// AgreementParams selects a course group and an agreement threshold.
type AgreementParams struct {
	Group     string
	Threshold int
}

// Validate checks the group is known; thresholds were range-checked at
// parse time.
func (p AgreementParams) Validate() error {
	return validGroup(p.Group)
}

// CacheKey is "<group>|<threshold>".
func (p AgreementParams) CacheKey() string {
	return fmt.Sprintf("%s|%d", p.Group, p.Threshold)
}

// Agreement is the tag-agreement analysis (GET /api/v1/agreement).
type Agreement struct{}

func (Agreement) Name() string { return "agreement" }

func (Agreement) Parse(v url.Values) (engine.Params, error) {
	threshold, err := intParam(v, "threshold", 2, 1)
	if err != nil {
		return nil, err
	}
	return AgreementParams{Group: normGroup(v.Get("group")), Threshold: threshold}, nil
}

// WarmParams: the all-group analysis backs the readiness probe and the
// default request, so it is pre-computed before /readyz flips.
func (Agreement) WarmParams() []engine.Params {
	return []engine.Params{AgreementParams{Group: "all", Threshold: 2}}
}

func (Agreement) Compute(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error) {
	ap := p.(AgreementParams)
	ids, err := groupCourseIDs(repo, ap.Group)
	if err != nil {
		return nil, err
	}
	a, err := agreement.AnalyzeCtx(ctx, coursesByID(repo, ids), ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return nil, err
	}
	return agreementResponse(ap, ids, a), nil
}

// agreementResponse derives the API payload from an analysis. Cold
// computes and delta rebases share it, so a rebase whose counts match
// a full rescan reproduces the cold response byte for byte.
func agreementResponse(ap AgreementParams, ids []string, a *agreement.Analysis) *AgreementResponse {
	atLeast := make(map[string]int, len(ids))
	for k := 2; k <= len(ids); k++ {
		atLeast[strconv.Itoa(k)] = a.AtLeast(k)
	}
	return &AgreementResponse{
		Courses:   ids,
		Tags:      a.NumTags(),
		AtLeast:   atLeast,
		KASpan:    a.KASpan(ap.Threshold),
		KACounts:  a.KACounts(ap.Threshold),
		Threshold: ap.Threshold,
		analysis:  a,
	}
}
