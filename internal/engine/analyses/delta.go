package analyses

// This file implements delta-awareness: how each analysis judges
// whether a classification delta can reach its cached results
// (engine.DeltaAware), and how the iterative analyses recompute from
// their previous result instead of from scratch (engine.WarmStarter).
// Both contracts are conservative — AffectedBy errs toward true, and
// ComputeWarm returns engine.ErrColdCompute unless it can prove the
// warm result is byte-identical to a cold recompute.

import (
	"context"
	"errors"
	"strings"

	"csmaterials/internal/agreement"
	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
	"csmaterials/internal/factorize"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

// paramGroup extracts the group component of a "<group>|..." cache
// key; keys without a separator are the group itself.
func paramGroup(paramKey string) string {
	if i := strings.IndexByte(paramKey, '|'); i >= 0 {
		return paramKey[:i]
	}
	return paramKey
}

// groupAffected reports whether a delta touching d.Groups can reach
// the course set selected by the normalized group name. Unknown names
// and the all-course groups answer true: a false negative would let a
// stale result serve under the new revision.
func groupAffected(group string, d *dataset.Delta) bool {
	if d == nil {
		return true
	}
	if len(d.Courses) == 0 {
		return false
	}
	switch group {
	case "cs1":
		return d.TouchesGroup("cs1")
	case "ds":
		return d.TouchesGroup("ds")
	case "dsalgo":
		return d.TouchesGroup("ds") || d.TouchesGroup("algo")
	case "pdc":
		return d.TouchesGroup("pdc")
	default: // "all", "", unrecognized
		return true
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AffectedBy scopes types results to their course group.
func (Types) AffectedBy(paramKey string, d *dataset.Delta) bool {
	return groupAffected(paramGroup(paramKey), d)
}

// ComputeWarm re-fits the course-type model seeded with the prior
// factors. It only succeeds when the group's course matrix is
// byte-identical to the prior's (the delta touched the group's label
// but not its tag sets, or a same-revision stale refresh): the seeded
// factorization then verifies the seeds are still a fixed point in a
// single probe iteration and returns them unchanged, so the response
// matches a cold 10-restart run exactly. Any drift declines to cold.
func (t Types) ComputeWarm(ctx context.Context, repo *materials.Repository, p engine.Params, prior interface{}, d *dataset.Delta) (interface{}, error) {
	tp := p.(TypesParams)
	pr, ok := prior.(*TypesResponse)
	if !ok || pr.model == nil || pr.model.K != tp.K {
		return nil, engine.ErrColdCompute
	}
	ids, err := groupCourseIDs(repo, tp.Group)
	if err != nil {
		return nil, engine.ErrColdCompute
	}
	courses := coursesByID(repo, ids)
	if len(courses) != len(pr.model.Courses) {
		return nil, engine.ErrColdCompute
	}
	for i, c := range courses {
		if pr.model.Courses[i].ID != c.ID {
			return nil, engine.ErrColdCompute
		}
	}
	a, tags := materials.CourseMatrix(courses)
	if !equalStrings(tags, pr.model.Tags) || !a.Equal(pr.model.A) {
		return nil, engine.ErrColdCompute
	}
	opts := factorize.PaperOptions()
	opts.InitW, opts.InitH = pr.model.W, pr.model.H
	model, err := factorize.AnalyzeCtx(ctx, courses, tp.K, opts, ontology.CS2013(), ontology.PDC12())
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, engine.ErrColdCompute
	}
	if !model.Fit.SeedRetained {
		// The seeds moved under multiplicative updates: the matrix check
		// above should have prevented this, but byte-identity beats speed.
		return nil, engine.ErrColdCompute
	}
	return typesResponse(tp, model), nil
}

// AffectedBy scopes agreement results to their course group.
func (Agreement) AffectedBy(paramKey string, d *dataset.Delta) bool {
	return groupAffected(paramGroup(paramKey), d)
}

// ComputeWarm rebases the prior tag counts over the delta's per-course
// tag-set changes — exact integer arithmetic, so the result matches a
// full rescan of the new revision byte for byte. Group membership
// changes or a stale change set decline to cold.
func (Agreement) ComputeWarm(ctx context.Context, repo *materials.Repository, p engine.Params, prior interface{}, d *dataset.Delta) (interface{}, error) {
	ap := p.(AgreementParams)
	pr, ok := prior.(*AgreementResponse)
	if !ok || pr.analysis == nil {
		return nil, engine.ErrColdCompute
	}
	ids, err := groupCourseIDs(repo, ap.Group)
	if err != nil {
		return nil, engine.ErrColdCompute
	}
	changes := map[string]agreement.TagChange{}
	if d != nil {
		for id, tc := range d.TagChanges {
			changes[id] = agreement.TagChange{Added: tc.Added, Removed: tc.Removed}
		}
	}
	a, err := pr.analysis.Rebase(coursesByID(repo, ids), changes)
	if err != nil {
		return nil, engine.ErrColdCompute
	}
	return agreementResponse(ap, ids, a), nil
}

// AffectedBy scopes cluster results to their course group. Clustering
// has no incremental form here, so affected results recompute cold.
func (Cluster) AffectedBy(paramKey string, d *dataset.Delta) bool {
	return groupAffected(paramGroup(paramKey), d)
}

// AffectedBy scopes anchor recommendations to their course: the
// recommender reads one course's tag set against static rule tables.
func (Anchors) AffectedBy(paramKey string, d *dataset.Delta) bool {
	return d == nil || d.TouchesCourse(paramKey)
}

// AffectedBy scopes audits to their course.
func (Audit) AffectedBy(paramKey string, d *dataset.Delta) bool {
	return d == nil || d.TouchesCourse(paramKey)
}

// AffectedBy scopes catalog recommendations to their course (the key
// is "<course>|<limit>"; the public catalog itself is static).
func (PDCMaterials) AffectedBy(paramKey string, d *dataset.Delta) bool {
	return d == nil || d.TouchesCourse(paramGroup(paramKey))
}

// AffectedBy: figures render the built-in seed corpus, not the
// dataset's repository, so no delta can reach them.
func (Figures) AffectedBy(string, *dataset.Delta) bool { return false }
