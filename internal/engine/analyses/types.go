package analyses

import (
	"context"
	"errors"
	"fmt"
	"net/url"

	"csmaterials/internal/engine"
	"csmaterials/internal/factorize"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

// CourseType is one course's NNMF typing.
type CourseType struct {
	Course   string    `json:"course"`
	Dominant int       `json:"dominant_type"`
	Shares   []float64 `json:"shares"`
	Evenness float64   `json:"evenness"`
}

// TypeSummary describes one discovered course type.
type TypeSummary struct {
	Label   string             `json:"label"`
	KAShare map[string]float64 `json:"ka_share"`
	TopTags []string           `json:"top_tags"`
}

// TypesResponse is the course-type analysis payload (§4.4).
type TypesResponse struct {
	K          int           `json:"k"`
	Courses    []CourseType  `json:"courses"`
	Types      []TypeSummary `json:"types"`
	Redundancy float64       `json:"redundancy"`

	// model retains the fitted factorization so a later delta refresh
	// can warm-start from it; unexported, so it never serializes.
	model *factorize.Model
}

// ConvergenceIterations reports the NNMF work behind this response:
// the summed iterations of every restart for cold runs, the single
// probe iteration for retained warm starts.
func (r *TypesResponse) ConvergenceIterations() int {
	if r.model == nil || r.model.Fit == nil {
		return 0
	}
	return r.model.Fit.TotalIterations
}

// TypesParams selects a course group and the number of types k.
type TypesParams struct {
	Group string
	K     int
}

func (p TypesParams) Validate() error {
	return validGroup(p.Group)
}

// CacheKey is "<group>|<k>".
func (p TypesParams) CacheKey() string { return fmt.Sprintf("%s|%d", p.Group, p.K) }

// Types is the NNMF course-type analysis (GET /api/v1/types).
type Types struct{}

func (Types) Name() string { return "types" }

// Parse defaults k to the paper's group-specific choice: 3 for the
// single-group analyses, 4 for the all-course factorization.
func (Types) Parse(v url.Values) (engine.Params, error) {
	group := normGroup(v.Get("group"))
	defK := 3
	if group == "all" {
		defK = 4
	}
	k, err := intParam(v, "k", defK, 1)
	if err != nil {
		return nil, err
	}
	return TypesParams{Group: group, K: k}, nil
}

func (Types) Compute(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error) {
	tp := p.(TypesParams)
	ids, err := groupCourseIDs(repo, tp.Group)
	if err != nil {
		return nil, err
	}
	model, err := factorize.AnalyzeCtx(ctx, coursesByID(repo, ids), tp.K, factorize.PaperOptions(),
		ontology.CS2013(), ontology.PDC12())
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		// Factorization rejections (oversized k, empty groups) are the
		// client's parameters, not a broken compute path.
		return nil, engine.Errorf(400, "bad_request", "%s", err.Error())
	}
	return typesResponse(tp, model), nil
}

// typesResponse derives the API payload from a fitted model. Cold and
// warm computes share it so a warm start that retained the prior's
// factors reproduces the cold response byte for byte.
func typesResponse(tp TypesParams, model *factorize.Model) *TypesResponse {
	courses := make([]CourseType, 0, len(model.Courses))
	for i, c := range model.Courses {
		courses = append(courses, CourseType{
			Course: c.ID, Dominant: model.DominantType(i),
			Shares: model.TypeShare(i), Evenness: model.Evenness(i),
		})
	}
	types := make([]TypeSummary, tp.K)
	for t := 0; t < tp.K; t++ {
		top := model.TopTags(t, 5)
		topTags := make([]string, len(top))
		for i, tw := range top {
			topTags[i] = tw.Tag
		}
		types[t] = TypeSummary{Label: model.TypeLabel(t), KAShare: model.KAShare(t), TopTags: topTags}
	}
	return &TypesResponse{K: tp.K, Courses: courses, Types: types, Redundancy: model.Redundancy(), model: model}
}
