// Package analyses registers the system's concrete analyses — the
// agreement, course-type, clustering, anchor-recommendation, audit,
// PDC-material, and figure computations of the paper — as
// engine.Analysis implementations. The HTTP server, the batch
// endpoint, the CLIs, and the examples all invoke these through an
// engine.Registry; none of them wires an analysis by hand.
package analyses

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"csmaterials/internal/anchor"
	"csmaterials/internal/engine"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

// Default builds the full registry of paper analyses over the
// synthesized dataset's guidelines.
func Default() (*engine.Registry, error) {
	rec, err := anchor.NewRecommender(ontology.CS2013(), ontology.PDC12())
	if err != nil {
		return nil, err
	}
	return engine.NewRegistry(
		Agreement{},
		Types{},
		Cluster{},
		Anchors{Recommender: rec},
		Audit{},
		PDCMaterials{},
		Figures{},
	), nil
}

// validGroup checks a normalized group name against the paper's group
// vocabulary. It is the parameter-validation half of group resolution:
// membership is not resolved until Compute, when the dataset's
// repository is in hand.
func validGroup(group string) error {
	switch group {
	case "cs1", "ds", "dsalgo", "pdc", "all", "":
		return nil
	default:
		return fmt.Errorf("unknown group %q", group)
	}
}

// courseInGroup reports whether a course belongs to a normalized group.
// The composite "dsalgo" group is the paper's DS∪Algo pool; "all" (and
// the empty default) admit every course.
func courseInGroup(c *materials.Course, group string) bool {
	switch group {
	case "cs1":
		return c.HasGroup(materials.GroupCS1)
	case "ds":
		return c.HasGroup(materials.GroupDS)
	case "dsalgo":
		return c.HasGroup(materials.GroupDS) || c.HasGroup(materials.GroupAlgo)
	case "pdc":
		return c.HasGroup(materials.GroupPDC)
	default: // "all", "" — validated upstream
		return true
	}
}

// groupCourseIDs resolves a normalized course-group name to the IDs of
// repo's member courses, in the repository's insertion order. The
// membership is derived from course group tags rather than a hardcoded
// roster, so the same analyses run against any ingested dataset; on the
// seed corpus the derived lists reproduce the paper's rosters exactly.
// A group with no members in this dataset is a 404, not an empty
// analysis.
func groupCourseIDs(repo *materials.Repository, group string) ([]string, error) {
	if err := validGroup(group); err != nil {
		return nil, err
	}
	var ids []string
	for _, c := range repo.Courses() {
		if courseInGroup(c, group) {
			ids = append(ids, c.ID)
		}
	}
	if len(ids) == 0 {
		return nil, engine.Errorf(404, "not_found", "no courses in group %q", group)
	}
	return ids, nil
}

// normGroup canonicalizes the group parameter for cache keys: groups
// are case-insensitive and default to "all".
func normGroup(group string) string {
	g := strings.ToLower(group)
	if g == "" {
		g = "all"
	}
	return g
}

// coursesByID resolves ids against the repository, preserving order and
// skipping unknown IDs.
func coursesByID(repo *materials.Repository, ids []string) []*materials.Course {
	out := make([]*materials.Course, 0, len(ids))
	for _, id := range ids {
		if c := repo.Course(id); c != nil {
			out = append(out, c)
		}
	}
	return out
}

// intParam parses an integer query value, returning def when absent
// and an error when malformed or below min.
func intParam(v url.Values, name string, def, min int) (int, error) {
	s := v.Get(name)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < min {
		return 0, fmt.Errorf("bad %s %q: want integer >= %d", name, s, min)
	}
	return n, nil
}

// courseParam reads the required course ID shared by the per-course
// analyses (anchors, audit, pdcmaterials).
func courseParam(v url.Values) (string, error) {
	id := v.Get("course")
	if id == "" {
		return "", fmt.Errorf("missing course parameter")
	}
	return id, nil
}

// lookupCourse resolves a course ID, producing the API's canonical
// 404 envelope for unknown IDs.
func lookupCourse(repo *materials.Repository, id string) (*materials.Course, error) {
	c := repo.Course(id)
	if c == nil {
		return nil, engine.Errorf(404, "not_found", "unknown course %q", id)
	}
	return c, nil
}
