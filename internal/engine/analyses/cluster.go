package analyses

import (
	"context"
	"fmt"
	"net/url"

	"csmaterials/internal/cluster"
	"csmaterials/internal/engine"
	"csmaterials/internal/materials"
)

// ClusterResponse is the hierarchical-clustering payload.
type ClusterResponse struct {
	K          int        `json:"k"`
	Linkage    string     `json:"linkage"`
	Clusters   [][]string `json:"clusters"`
	Dendrogram string     `json:"dendrogram"`
}

// ClusterParams selects a course group and a cut size k.
type ClusterParams struct {
	Group string
	K     int
}

func (p ClusterParams) Validate() error {
	return validGroup(p.Group)
}

// CacheKey is "<group>|<k>".
func (p ClusterParams) CacheKey() string { return fmt.Sprintf("%s|%d", p.Group, p.K) }

// Cluster is the agglomerative clustering analysis (GET /api/v1/cluster).
type Cluster struct{}

func (Cluster) Name() string { return "cluster" }

func (Cluster) Parse(v url.Values) (engine.Params, error) {
	k, err := intParam(v, "k", 4, 1)
	if err != nil {
		return nil, err
	}
	return ClusterParams{Group: normGroup(v.Get("group")), K: k}, nil
}

func (Cluster) Compute(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error) {
	cp := p.(ClusterParams)
	ids, err := groupCourseIDs(repo, cp.Group)
	if err != nil {
		return nil, err
	}
	d, err := cluster.Build(coursesByID(repo, ids), cluster.Average)
	if err != nil {
		return nil, err
	}
	clusters, err := d.CutK(cp.K)
	if err != nil {
		return nil, engine.Errorf(400, "bad_request", "%s", err.Error())
	}
	out := make([][]string, len(clusters))
	for i, cl := range clusters {
		out[i] = make([]string, 0, len(cl))
		for _, c := range cl {
			out[i] = append(out[i], c.ID)
		}
	}
	return &ClusterResponse{
		K: cp.K, Linkage: d.Linkage.String(),
		Clusters: out, Dendrogram: d.Render(),
	}, nil
}
