package analyses

import (
	"context"
	"fmt"
	"net/url"

	"csmaterials/internal/anchor"
	"csmaterials/internal/audit"
	"csmaterials/internal/catalog"
	"csmaterials/internal/engine"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

// CourseParams identifies the course a per-course analysis runs on.
type CourseParams struct {
	Course string
}

func (p CourseParams) Validate() error {
	if p.Course == "" {
		return fmt.Errorf("missing course parameter")
	}
	return nil
}

// CacheKey is the course ID.
func (p CourseParams) CacheKey() string { return p.Course }

// AnchorRec is one §5.2 anchor-point recommendation.
type AnchorRec struct {
	Rule     string   `json:"rule"`
	Title    string   `json:"title"`
	Score    float64  `json:"score"`
	Audience string   `json:"audience"`
	Activity string   `json:"activity"`
	Matched  []string `json:"matched_anchors"`
	Teaches  []string `json:"teaches"`
}

// Anchors recommends PDC anchor points for one course
// (GET /api/v1/courses/{id}/anchors).
type Anchors struct {
	Recommender *anchor.Recommender
}

func (Anchors) Name() string { return "anchors" }

func (Anchors) Parse(v url.Values) (engine.Params, error) {
	id, err := courseParam(v)
	if err != nil {
		return nil, err
	}
	return CourseParams{Course: id}, nil
}

func (a Anchors) Compute(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error) {
	c, err := lookupCourse(repo, p.(CourseParams).Course)
	if err != nil {
		return nil, err
	}
	recs := a.Recommender.Recommend(c)
	out := make([]AnchorRec, 0, len(recs))
	for _, rc := range recs {
		out = append(out, AnchorRec{
			Rule: rc.Rule.ID, Title: rc.Rule.Title, Score: rc.Score,
			Audience: rc.Rule.Audience, Activity: rc.Rule.Activity,
			Matched: rc.MatchedAnchors, Teaches: rc.Rule.Teaches,
		})
	}
	return out, nil
}

// AuditUnit is one covered CS2013 unit in an audit report.
type AuditUnit struct {
	Unit     string  `json:"unit"`
	Tier     string  `json:"tier"`
	Covered  int     `json:"covered"`
	Total    int     `json:"total"`
	Fraction float64 `json:"fraction"`
}

// AuditResponse is the course audit payload.
type AuditResponse struct {
	Core1Coverage     float64     `json:"core1_coverage"`
	Core2Coverage     float64     `json:"core2_coverage"`
	Units             []AuditUnit `json:"units"`
	PDCCoreCovered    int         `json:"pdc_core_covered"`
	PDCCoreTotal      int         `json:"pdc_core_total"`
	PrerequisiteScore float64     `json:"prerequisite_score"`
}

// Audit reports one course's CS2013 coverage and PDC readiness
// (GET /api/v1/courses/{id}/audit).
type Audit struct{}

func (Audit) Name() string { return "audit" }

func (Audit) Parse(v url.Values) (engine.Params, error) {
	id, err := courseParam(v)
	if err != nil {
		return nil, err
	}
	return CourseParams{Course: id}, nil
}

func (Audit) Compute(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error) {
	c, err := lookupCourse(repo, p.(CourseParams).Course)
	if err != nil {
		return nil, err
	}
	rep := audit.Audit(c, ontology.CS2013())
	readiness := audit.AssessPDCReadiness(c)
	units := make([]AuditUnit, 0, len(rep.Units))
	for _, u := range rep.Units {
		if u.Covered == 0 {
			continue
		}
		units = append(units, AuditUnit{
			Unit: u.Unit.ID, Tier: u.Tier.String(),
			Covered: u.Covered, Total: u.Total, Fraction: u.Fraction(),
		})
	}
	return &AuditResponse{
		Core1Coverage:     rep.TierCoverage(ontology.TierCore1),
		Core2Coverage:     rep.TierCoverage(ontology.TierCore2),
		Units:             units,
		PDCCoreCovered:    readiness.CoreCovered,
		PDCCoreTotal:      readiness.CoreTotal,
		PrerequisiteScore: readiness.PrerequisiteScore(),
	}, nil
}

// PDCRec is one public-catalog material recommendation.
type PDCRec struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Source string   `json:"source"`
	Score  float64  `json:"score"`
	NewPDC int      `json:"new_pdc_entries"`
	Shared []string `json:"shared_tags"`
}

// PDCMaterialsParams is a course plus a recommendation budget.
type PDCMaterialsParams struct {
	Course string
	Limit  int
}

func (p PDCMaterialsParams) Validate() error {
	if p.Course == "" {
		return fmt.Errorf("missing course parameter")
	}
	return nil
}

// CacheKey is "<course>|<limit>".
func (p PDCMaterialsParams) CacheKey() string { return fmt.Sprintf("%s|%d", p.Course, p.Limit) }

// PDCMaterials recommends public PDC materials for one course
// (GET /api/v1/courses/{id}/pdcmaterials).
type PDCMaterials struct{}

func (PDCMaterials) Name() string { return "pdcmaterials" }

func (PDCMaterials) Parse(v url.Values) (engine.Params, error) {
	id, err := courseParam(v)
	if err != nil {
		return nil, err
	}
	limit, err := intParam(v, "limit", 10, 1)
	if err != nil {
		return nil, err
	}
	return PDCMaterialsParams{Course: id, Limit: limit}, nil
}

func (PDCMaterials) Compute(ctx context.Context, repo *materials.Repository, p engine.Params) (interface{}, error) {
	pp := p.(PDCMaterialsParams)
	c, err := lookupCourse(repo, pp.Course)
	if err != nil {
		return nil, err
	}
	recs := catalog.Recommend(c, pp.Limit)
	out := make([]PDCRec, 0, len(recs))
	for _, rc := range recs {
		out = append(out, PDCRec{
			ID: rc.Entry.Material.ID, Title: rc.Entry.Material.Title,
			Source: string(rc.Entry.Source), Score: rc.Score,
			NewPDC: rc.NewPDC, Shared: rc.SharedTags,
		})
	}
	return out, nil
}
