package engine_test

import (
	"context"
	"encoding/json"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"csmaterials/internal/dataset"
	"csmaterials/internal/engine"
	"csmaterials/internal/engine/analyses"
	"csmaterials/internal/factorize"
	"csmaterials/internal/materials"
	"csmaterials/internal/nnmf"
	"csmaterials/internal/resilience"
	"csmaterials/internal/serving"
)

// benchRecorder accumulates dataset-benchmark results across b.Run
// invocations so TestMain can emit one BENCH_datasets.json snapshot
// after the run. testing reruns a benchmark with growing b.N; keying
// by scenario keeps only the final (highest-N, most stable) sample.
var benchRecorder = struct {
	sync.Mutex
	scenarios map[string]benchScenario
}{scenarios: map[string]benchScenario{}}

type benchScenario struct {
	Dataset    string `json:"dataset"`
	Mode       string `json:"mode"`
	NsPerOp    int64  `json:"ns_per_op"`
	Iterations int    `json:"iterations"`
}

func recordBench(dataset, mode string, b *testing.B) {
	benchRecorder.Lock()
	defer benchRecorder.Unlock()
	benchRecorder.scenarios[dataset+"/"+mode] = benchScenario{
		Dataset:    dataset,
		Mode:       mode,
		NsPerOp:    b.Elapsed().Nanoseconds() / int64(b.N),
		Iterations: b.N,
	}
}

// TestMain emits the dataset cold/warm perf snapshot when BENCH_JSON
// names an output path (make bench sets it to BENCH_datasets.json).
// Plain `go test` runs leave the environment untouched and write
// nothing.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" && len(benchRecorder.scenarios) > 0 {
		keys := make([]string, 0, len(benchRecorder.scenarios))
		for k := range benchRecorder.scenarios {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := struct {
			Benchmark string          `json:"benchmark"`
			GoOS      string          `json:"goos"`
			GoArch    string          `json:"goarch"`
			CPUs      int             `json:"cpus"`
			Scenarios []benchScenario `json:"scenarios"`
		}{
			Benchmark: "BenchmarkDatasetServing,BenchmarkNNMFCore,BenchmarkBatchScaling",
			GoOS:      runtime.GOOS,
			GoArch:    runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
		}
		for _, k := range keys {
			out.Scenarios = append(out.Scenarios, benchRecorder.scenarios[k])
		}
		raw, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(raw, '\n'), 0o644)
		}
		if err != nil {
			os.Stderr.WriteString("bench snapshot: " + err.Error() + "\n")
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// newDatasetExecutor wires the real analysis registry over a dataset
// registry holding the 20-course seed corpus as "default" and a
// 5-course subset as "alt" — the two corpora the cold/warm scenarios
// compare.
func newDatasetExecutor(b *testing.B, cache *serving.Cache) *engine.Executor {
	b.Helper()
	reg, err := analyses.Default()
	if err != nil {
		b.Fatal(err)
	}
	datasets := dataset.NewRegistry(nil)
	// JSON round-trip the subset so the registry ingests fresh course
	// objects instead of aliasing the shared seed corpus.
	raw, err := json.Marshal(dataset.Document{Courses: dataset.Courses()[:5]})
	if err != nil {
		b.Fatal(err)
	}
	var doc dataset.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		b.Fatal(err)
	}
	if _, err := datasets.Put("alt", doc.Courses); err != nil {
		b.Fatal(err)
	}
	return engine.NewExecutor(reg, engine.ExecutorOptions{
		Datasets:   datasets,
		Cache:      cache,
		Breakers:   resilience.NewBreakerSet(resilience.DefaultBreakerThreshold, time.Minute),
		StaleServe: true,
	})
}

// BenchmarkDatasetServing measures the dataset-scoped serving ladder
// end to end at the executor layer: a cold agreement analysis (cache
// invalidated each iteration, full compute) and a warm one (revision-
// scoped cache hit) for both the full seed corpus and a small ingested
// dataset. The cold/warm gap is the cache's value; the default/alt
// cold gap shows how compute cost tracks corpus size.
func BenchmarkDatasetServing(b *testing.B) {
	for _, bc := range []struct {
		dataset string
		mode    string
	}{
		{dataset.DefaultID, "cold"},
		{dataset.DefaultID, "warm"},
		{"alt", "cold"},
		{"alt", "warm"},
	} {
		b.Run(bc.dataset+"/"+bc.mode, func(b *testing.B) {
			exec := newDatasetExecutor(b, serving.NewCache(256))
			run := func(wantHit bool) {
				_, out, err := exec.RunOn(context.Background(), bc.dataset, "agreement", nil)
				if err != nil {
					b.Fatal(err)
				}
				if wantHit && out.Cache != "hit" {
					b.Fatalf("warm iteration served %q, want hit", out.Cache)
				}
			}
			run(false) // populate the cache (discarded for cold runs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if bc.mode == "cold" {
					b.StopTimer()
					exec.InvalidateDataset(bc.dataset, 0)
					b.StartTimer()
				}
				run(bc.mode == "warm")
			}
			b.StopTimer()
			recordBench(bc.dataset, bc.mode, b)
		})
	}

	// Eviction pressure under tenancy: a deliberately small cache
	// partitioned between the two datasets (two-entry budget each) with
	// both tenants cycling through more distinct keys than their budget
	// holds. Every request misses, computes, and evicts inside its own
	// partition — the worst-case multi-tenant steady state, and the
	// scenario that catches budget-enforcement overhead regressions.
	b.Run("mixed/contended", func(b *testing.B) {
		cache := serving.NewCache(4)
		exec := newDatasetExecutor(b, cache)
		cache.Partition([]string{dataset.DefaultID, "alt"}, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds := dataset.DefaultID
			if i%2 == 1 {
				ds = "alt"
			}
			// Four distinct thresholds per tenant against a two-entry
			// budget: every request misses and evicts within its scope.
			v := url.Values{"threshold": []string{strconv.Itoa((i/2)%4 + 1)}}
			if _, _, err := exec.RunOn(context.Background(), ds, "agreement", v); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		recordBench("mixed", "contended", b)
	})
}

// BenchmarkNNMFCore measures the factorization kernel behind the types
// analysis on the full seed-corpus matrix, in the two modes the
// incremental pipeline distinguishes: cold (the paper's 10-restart
// multiplicative-update run) and warm (the same matrix seeded with its
// own fitted factors — the delta-refresh warm-start path, which
// retains the fixed point after a single probe iteration). The
// cold/warm ns gap is the warm start's value; benchcheck gates it at
// -warm-ratio.
func BenchmarkNNMFCore(b *testing.B) {
	a, _ := materials.CourseMatrix(dataset.Courses())
	opts := factorize.PaperOptions()
	opts.K = 4
	seed, err := nnmf.Factorize(a, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("nnmf/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nnmf.Factorize(a, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		recordBench("nnmf", "cold", b)
	})
	b.Run("nnmf/warm", func(b *testing.B) {
		warm := opts
		warm.InitW, warm.InitH = seed.W, seed.H
		for i := 0; i < b.N; i++ {
			res, err := nnmf.Factorize(a, warm)
			if err != nil {
				b.Fatal(err)
			}
			if !res.SeedRetained {
				b.Fatal("warm factorize did not retain the converged seed")
			}
		}
		b.StopTimer()
		recordBench("nnmf", "warm", b)
	})
}

// BenchmarkBatchScaling measures RunBatch over real analyses with the
// caches invalidated each iteration (every item computes), serial (one
// worker) vs parallel (four workers). The serial/parallel gap is the
// worker pool's value on compute-bound batches.
func BenchmarkBatchScaling(b *testing.B) {
	var items []engine.BatchItem
	for _, ds := range []string{dataset.DefaultID, "alt"} {
		for k := 2; k <= 4; k++ {
			items = append(items, engine.BatchItem{
				Analysis: "agreement", Dataset: ds,
				Params: map[string]string{"threshold": strconv.Itoa(k)},
			})
		}
	}
	for _, bc := range []struct {
		mode    string
		workers int
	}{{"serial", 1}, {"parallel", 4}} {
		b.Run("batch/"+bc.mode, func(b *testing.B) {
			exec := newDatasetExecutor(b, serving.NewCache(256))
			exec.SetBatchWorkers(bc.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				exec.InvalidateDataset(dataset.DefaultID, 0)
				exec.InvalidateDataset("alt", 0)
				b.StartTimer()
				for _, res := range exec.RunBatch(context.Background(), items) {
					if res.Error != nil {
						b.Fatalf("%s: %v", res.Analysis, res.Error)
					}
				}
			}
			b.StopTimer()
			recordBench("batch", bc.mode, b)
		})
	}
}
