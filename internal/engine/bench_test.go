package engine_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"csmaterials/internal/engine"
)

// batchComputeLatency stands in for one analysis compute, on the order
// of a small NNMF factorization. The pool's win is overlapping these
// waits, so modelling the compute as latency keeps the benchmark
// meaningful on single-CPU CI runners, where a pure CPU spin cannot
// scale no matter how many workers run.
const batchComputeLatency = 200 * time.Microsecond

// BenchmarkBatchParallel measures POST /api/v1/batch semantics at the
// executor layer: a 16-item batch of distinct analyses, cold (every item
// computes) at 1, 4, and 8 workers, and warm (every item a cache hit).
// Cold runs should scale with the worker count; the warm run shows the
// pool overhead when the cache absorbs all the work.
func BenchmarkBatchParallel(b *testing.B) {
	const items = 16
	batch := make([]engine.BatchItem, items)
	for i := range batch {
		batch[i] = engine.BatchItem{
			Analysis: "fake",
			Params:   map[string]string{"key": fmt.Sprintf("k%02d", i)},
		}
	}
	compute := func(ctx context.Context, p fakeParams) (interface{}, error) {
		select {
		case <-time.After(batchComputeLatency):
			return "value:" + p.key, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	for _, bc := range []struct {
		name    string
		workers int
		warm    bool
	}{
		{"cold/workers=1", 1, false},
		{"cold/workers=4", 4, false},
		{"cold/workers=8", 8, false},
		{"warm/workers=4", 4, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			fake := newFake("fake")
			fake.set(compute)
			exec, cache, _ := newFakeExecutor(fake)
			exec.SetBatchWorkers(bc.workers)
			if bc.warm {
				exec.RunBatch(context.Background(), batch)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !bc.warm {
					b.StopTimer()
					cache.Reset()
					b.StartTimer()
				}
				results := exec.RunBatch(context.Background(), batch)
				for _, r := range results {
					if r.Error != nil {
						b.Fatalf("item %s failed: %v", r.Key, r.Error)
					}
				}
			}
		})
	}
}
