package engine_test

import (
	"context"
	"fmt"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"csmaterials/internal/engine"
	"csmaterials/internal/obs"
)

// tickClock advances a fixed step per read so span sequences are
// deterministic regardless of scheduler timing. It is mutex-guarded:
// the tracer and each trace serialize their own clock reads, but
// batch workers read through different traces concurrently.
func tickClock() func() time.Time {
	var mu sync.Mutex
	t := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

// runTraced executes one analysis call under a fresh trace and returns
// the recorded span-name sequence.
func runTraced(t *testing.T, tracer *obs.Tracer, e *engine.Executor, name string, values url.Values) ([]string, error) {
	t.Helper()
	ctx, trace := tracer.Start(context.Background(), "test "+name)
	_, _, err := e.Run(ctx, name, values)
	tracer.Finish(trace)
	rec, ok := tracer.Get(trace.ID())
	if !ok {
		t.Fatalf("trace %s not retained", trace.ID())
	}
	names := make([]string, len(rec.Spans))
	for i, sp := range rec.Spans {
		names[i] = sp.Name
		if sp.Analysis != name {
			t.Fatalf("span %q analysis = %q, want %q", sp.Name, sp.Analysis, name)
		}
	}
	return names, err
}

// TestTraceSpanSequences is the golden test of the tracing contract:
// each ladder path records a fixed, ordered span sequence.
func TestTraceSpanSequences(t *testing.T) {
	f := newFake("types")
	e, _, _ := newFakeExecutor(f)
	tracer := obs.NewTracer(16, tickClock())

	// Cold: full ladder walk.
	cold, err := runTraced(t, tracer, e, "types", url.Values{"key": {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"parse", "cache-miss", "singleflight-lead", "breaker-allow", "compute", "store"}
	if !reflect.DeepEqual(cold, want) {
		t.Fatalf("cold spans = %v, want %v", cold, want)
	}

	// Warm: the cache answers before the flight layer is touched.
	warm, err := runTraced(t, tracer, e, "types", url.Values{"key": {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"parse", "cache-hit"}; !reflect.DeepEqual(warm, want) {
		t.Fatalf("warm spans = %v, want %v", warm, want)
	}

	// Parse failure: the ladder is never entered.
	bad, err := runTraced(t, tracer, e, "types", url.Values{"key": {"unparsable"}})
	if err == nil {
		t.Fatal("want parse error")
	}
	if want := []string{"parse-error"}; !reflect.DeepEqual(bad, want) {
		t.Fatalf("parse-error spans = %v, want %v", bad, want)
	}
}

func TestTraceComputeErrorAndStaleSpans(t *testing.T) {
	f := newFake("types")
	e, cache, _ := newFakeExecutor(f)
	tracer := obs.NewTracer(16, tickClock())

	// Warm the stale store, then fail the compute.
	if _, err := runTraced(t, tracer, e, "types", url.Values{"key": {"a"}}); err != nil {
		t.Fatal(err)
	}
	f.set(func(ctx context.Context, p fakeParams) (interface{}, error) {
		return nil, fmt.Errorf("boom")
	})
	// Evict the fresh entry so the compute path runs again.
	cache.Reset()

	spans, err := runTraced(t, tracer, e, "types", url.Values{"key": {"a"}})
	if err != nil {
		t.Fatalf("stale serve should mask the failure: %v", err)
	}
	want := []string{"parse", "cache-miss", "singleflight-lead", "breaker-allow", "compute-error", "stale-serve", "stale-refresh"}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("stale spans = %v, want %v", spans, want)
	}

	// The stage histograms saw every labelled stage.
	stages := tracer.StageSnapshot()
	byStage := map[string]uint64{}
	for _, s := range stages {
		if s.Analysis != "types" {
			t.Fatalf("unexpected analysis label %q", s.Analysis)
		}
		byStage[s.Stage] = s.Count
	}
	for _, stage := range []string{"parse", "cache-miss", "compute", "compute-error", "stale-serve", "store"} {
		if byStage[stage] == 0 {
			t.Fatalf("stage %q missing from aggregates: %v", stage, byStage)
		}
	}
}

func TestBatchTraceSpans(t *testing.T) {
	f := newFake("types")
	e, _, _ := newFakeExecutor(f)
	e.SetBatchWorkers(2)
	tracer := obs.NewTracer(16, tickClock())

	ctx, trace := tracer.Start(context.Background(), "POST /api/v1/batch")
	items := []engine.BatchItem{
		{Analysis: "types", Params: map[string]string{"key": "a"}},
		{Analysis: "types", Params: map[string]string{"key": "b"}},
		{Analysis: "nope"},
	}
	results := e.RunBatch(ctx, items)
	tracer.Finish(trace)
	if results[2].Error == nil || results[2].Error.Status != 404 {
		t.Fatalf("unknown analysis item = %+v", results[2])
	}
	rec, _ := tracer.Get(trace.ID())
	var batchItems, computes int
	for _, sp := range rec.Spans {
		switch {
		case sp.Name == "batch-item":
			batchItems++
			if sp.Analysis == "" {
				t.Fatal("batch-item span missing analysis label")
			}
		case sp.Name == "compute":
			computes++
		case strings.HasPrefix(sp.Name, "singleflight-"), sp.Name == "store",
			sp.Name == "cache-miss", sp.Name == "cache-hit",
			strings.HasPrefix(sp.Name, "breaker-"), strings.HasPrefix(sp.Name, "parse"):
			// expected ladder spans
		default:
			t.Fatalf("unexpected span %q", sp.Name)
		}
	}
	if batchItems != 3 {
		t.Fatalf("batch-item spans = %d, want 3", batchItems)
	}
	if computes != 2 {
		t.Fatalf("compute spans = %d, want 2 (unknown analysis never computes)", computes)
	}
}

// TestUntracedRunIsCleanNoop proves CLIs and warmup pay nothing: no
// trace in ctx, no spans anywhere, and behavior identical.
func TestUntracedRunIsCleanNoop(t *testing.T) {
	f := newFake("types")
	e, _, _ := newFakeExecutor(f)
	if _, out, err := e.Run(context.Background(), "types", url.Values{"key": {"a"}}); err != nil || out.Cache != "miss" {
		t.Fatalf("untraced run: %v %v", out, err)
	}
}
