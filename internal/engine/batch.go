package engine

import (
	"context"
	"net/url"
	"sync"

	"csmaterials/internal/dataset"
	"csmaterials/internal/obs"
)

// DefaultBatchWorkers bounds batch concurrency when the operator does
// not say otherwise. Analyses are CPU-bound, so a small pool saturates
// the machine without letting one batch starve interactive requests.
const DefaultBatchWorkers = 4

// MaxBatchItems bounds one batch request; larger batches are rejected
// up front rather than silently truncated.
const MaxBatchItems = 64

// BatchItem is one requested analysis in a batch: the registered name
// plus the same parameters the GET endpoint would take as query values.
// Dataset selects which dataset the item computes over; empty means the
// default dataset, so pre-datasets clients keep working unchanged.
type BatchItem struct {
	Analysis string            `json:"analysis"`
	Dataset  string            `json:"dataset,omitempty"`
	Params   map[string]string `json:"params,omitempty"`
}

// Values converts the item's params to url.Values for Analysis.Parse.
func (it BatchItem) Values() url.Values {
	v := make(url.Values, len(it.Params))
	for k, val := range it.Params {
		v.Set(k, val)
	}
	return v
}

// BatchResult is the per-item envelope of a batch response. Exactly one
// of Data or Error is set; Results[i] always answers Items[i], so a
// partial failure cannot shift or reorder the rest of the batch.
type BatchResult struct {
	Analysis string `json:"analysis"`
	// Dataset echoes the item's dataset selector; omitted when the item
	// did not set one, so legacy batch responses stay byte-identical.
	Dataset string      `json:"dataset,omitempty"`
	Key     string      `json:"key,omitempty"`
	Cache   string      `json:"cache,omitempty"`
	Stale   bool        `json:"stale,omitempty"`
	Data    interface{} `json:"data,omitempty"`
	Error   *Error      `json:"error,omitempty"`
}

// SetBatchWorkers sets the worker-pool bound for RunBatch (values < 1
// fall back to DefaultBatchWorkers). Called once at startup.
func (e *Executor) SetBatchWorkers(n int) {
	if n < 1 {
		n = DefaultBatchWorkers
	}
	e.mu.Lock()
	e.batchWorkers = n
	e.mu.Unlock()
}

// BatchWorkers returns the configured worker-pool bound.
func (e *Executor) BatchWorkers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.batchWorkers
}

// RunBatch executes every item through the full serving ladder on a
// bounded worker pool and returns one result per item, positionally.
//
// Each item keeps the exact semantics of its standalone endpoint: the
// fresh cache is consulted first, concurrent equal items (within this
// batch or across requests) collapse into one singleflight flight, the
// per-analysis breaker guards the compute, and failures degrade to
// stale values when enabled. Failures are per-item error envelopes —
// one broken item never aborts the batch — and the output order is the
// input order regardless of completion order, so responses are
// deterministic under any worker interleaving.
//
// Cancelling ctx abandons unstarted items with 499 canceled envelopes;
// items already computing stop as soon as their flight loses its last
// waiter.
func (e *Executor) RunBatch(ctx context.Context, items []BatchItem) []BatchResult {
	e.mu.Lock()
	workers := e.batchWorkers
	e.batchCalls++
	e.batchItems += uint64(len(items))
	e.mu.Unlock()
	if workers > len(items) {
		workers = len(items)
	}

	results := make([]BatchResult, len(items))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = e.runItem(ctx, items[i])
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runItem executes one batch item, recording it as a batch-item span
// (labelled with the item's analysis) in the batch request's trace;
// the ladder spans of the item itself interleave under the trace mutex
// with the other workers', each carrying its own analysis label.
func (e *Executor) runItem(ctx context.Context, it BatchItem) BatchResult {
	ds := it.Dataset
	if ds == "" {
		ds = dataset.DefaultID
	}
	sp := obs.StartSpan(ctx, "batch-item")
	sp.SetAnalysis(it.Analysis)
	sp.SetDataset(ds)
	defer sp.End()
	res := BatchResult{Analysis: it.Analysis, Dataset: it.Dataset}
	if err := ctx.Err(); err != nil {
		res.Error = AsError(err)
		return res
	}
	v, out, err := e.RunOn(ctx, ds, it.Analysis, it.Values())
	if err != nil {
		res.Error = AsError(err)
		return res
	}
	res.Key = out.Key
	res.Cache = out.Cache
	res.Stale = out.Stale
	res.Data = v
	return res
}
