package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultTraceBuffer is the ring-buffer capacity used when a Tracer is
// built with a non-positive one.
const DefaultTraceBuffer = 256

// StageBucketsSeconds are the per-stage latency histogram upper bounds,
// in seconds (Prometheus convention); the final implicit bucket is
// +Inf. Sub-millisecond buckets matter here: warm-path stages (cache
// hits, breaker decisions) complete in microseconds and would otherwise
// all land in one bucket.
var StageBucketsSeconds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// stageKey identifies one (dataset, analysis, stage) histogram series.
type stageKey struct {
	dataset  string
	analysis string
	stage    string
}

// stageHist is one cumulative latency histogram.
type stageHist struct {
	buckets    []uint64 // len(StageBucketsSeconds)+1; last is +Inf
	sumSeconds float64
	count      uint64
}

// Tracer mints request traces, retains the most recent finished ones
// in a fixed-size ring buffer queryable by ID, and folds every
// finished span into per-(analysis, stage) latency histograms. The
// clock is injectable so tests can golden span sequences and
// durations; nil means time.Now. All methods are safe for concurrent
// use.
type Tracer struct {
	clock    func() time.Time
	capacity int

	mu         sync.Mutex
	seq        uint64
	ring       []*Trace // oldest first; bounded by capacity
	byID       map[string]*Trace
	started    uint64
	finished   uint64
	sampledOut uint64
	sampleRate float64 // probability a Start mints a trace; 1 = always
	stages     map[stageKey]*stageHist
}

// NewTracer returns a tracer retaining the last capacity finished
// traces (DefaultTraceBuffer when capacity <= 0) and reading the given
// clock (time.Now when nil).
func NewTracer(capacity int, clock func() time.Time) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceBuffer
	}
	if clock == nil {
		clock = time.Now
	}
	return &Tracer{
		clock:      clock,
		capacity:   capacity,
		sampleRate: 1,
		byID:       make(map[string]*Trace),
		stages:     make(map[stageKey]*stageHist),
	}
}

// SetSampleRate sets the probability that Start mints a trace, for
// fleet-scale deployments where tracing every request is too much
// retention churn. Values are clamped to [0, 1]; 1 (the default)
// traces everything, 0 nothing. The decision is deterministic in the
// request sequence number — a hash of the counter compared against the
// rate — so a given rate yields an exact long-run proportion rather
// than a noisy one, and tests can golden it.
func (t *Tracer) SetSampleRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	t.mu.Lock()
	t.sampleRate = rate
	t.mu.Unlock()
}

// sampleMix is the splitmix64 finalizer: it turns the monotonic
// sequence counter into a uniform 64-bit value so comparing against
// rate*2^64 samples the exact requested proportion deterministically.
func sampleMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Start mints a new trace labelled label (typically the route
// pattern), stores it in the returned context, and returns both. The
// trace ID is a process-unique monotonic hex token.
//
// When a sample rate below 1 is set, Start may instead decide not to
// trace this request: it returns (ctx, nil) with the context
// unchanged. A nil *Trace is safe everywhere downstream — StartSpan on
// an untraced context returns a nil Span, whose methods are no-ops —
// so instrumented code needs no sampling awareness. Callers that touch
// the trace directly (Finish, ID) must check for nil.
func (t *Tracer) Start(ctx context.Context, label string) (context.Context, *Trace) {
	start := t.clock()
	t.mu.Lock()
	t.seq++
	if t.sampleRate < 1 && float64(sampleMix(t.seq))/(1<<64) >= t.sampleRate {
		t.sampledOut++
		t.mu.Unlock()
		return ctx, nil
	}
	t.started++
	id := fmt.Sprintf("%08x", t.seq)
	t.mu.Unlock()
	tr := &Trace{id: id, label: label, clock: t.clock, start: start}
	return NewContext(ctx, tr), tr
}

// Finish seals tr, aggregates its completed spans into the stage
// histograms, and admits it to the ring buffer, evicting the oldest
// finished trace when full. Finishing a trace twice is a no-op, as is
// finishing a nil trace (a sampled-out request).
func (t *Tracer) Finish(tr *Trace) {
	if tr == nil {
		return
	}
	spans := tr.finish()
	if spans == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished++
	for _, sp := range spans {
		if sp.end.IsZero() {
			continue // still open; nothing meaningful to aggregate
		}
		t.observeLocked(sp.dataset, sp.analysis, sp.name, sp.end.Sub(sp.start).Seconds())
	}
	if len(t.ring) >= t.capacity {
		oldest := t.ring[0]
		t.ring = t.ring[1:]
		delete(t.byID, oldest.id)
	}
	t.ring = append(t.ring, tr)
	t.byID[tr.id] = tr
}

// observeLocked folds one duration into the (dataset, analysis, stage)
// histogram; callers hold t.mu.
func (t *Tracer) observeLocked(dataset, analysis, stage string, seconds float64) {
	k := stageKey{dataset: dataset, analysis: analysis, stage: stage}
	h, ok := t.stages[k]
	if !ok {
		h = &stageHist{buckets: make([]uint64, len(StageBucketsSeconds)+1)}
		t.stages[k] = h
	}
	i := sort.SearchFloat64s(StageBucketsSeconds, seconds)
	h.buckets[i]++
	h.sumSeconds += seconds
	h.count++
}

// Get returns the finished trace with the given ID, if it is still in
// the ring buffer.
func (t *Tracer) Get(id string) (TraceRecord, bool) {
	t.mu.Lock()
	tr, ok := t.byID[id]
	t.mu.Unlock()
	if !ok {
		return TraceRecord{}, false
	}
	return tr.Record(), true
}

// IDs returns the retained trace IDs, most recent first.
func (t *Tracer) IDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.ring))
	for i := len(t.ring) - 1; i >= 0; i-- {
		out = append(out, t.ring[i].id)
	}
	return out
}

// StageExport is one (dataset, analysis, stage) histogram series,
// cumulative in neither direction: Buckets[i] counts observations in
// bucket i (bounds StageBucketsSeconds; the final entry is +Inf).
// Dataset is "" for spans recorded outside any dataset scope.
type StageExport struct {
	Dataset    string
	Analysis   string
	Stage      string
	Buckets    []uint64
	SumSeconds float64
	Count      uint64
}

// StageSnapshot returns every stage histogram, sorted by (analysis,
// dataset, stage) for deterministic exposition.
func (t *Tracer) StageSnapshot() []StageExport {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageExport, 0, len(t.stages))
	for k, h := range t.stages {
		buckets := make([]uint64, len(h.buckets))
		copy(buckets, h.buckets)
		out = append(out, StageExport{
			Dataset:    k.dataset,
			Analysis:   k.analysis,
			Stage:      k.stage,
			Buckets:    buckets,
			SumSeconds: h.sumSeconds,
			Count:      h.count,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Analysis != out[j].Analysis {
			return out[i].Analysis < out[j].Analysis
		}
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// DropDataset deletes every stage-histogram series labelled with the
// given dataset, returning how many were removed. Deleting a dataset
// must not leave its label values behind in the exposition; retained
// ring traces are untouched (they are bounded and age out on their
// own).
func (t *Tracer) DropDataset(dataset string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for k := range t.stages {
		if k.dataset == dataset {
			delete(t.stages, k)
			n++
		}
	}
	return n
}

// TracerStats is the tracer section of the metrics surface.
type TracerStats struct {
	Started    uint64  `json:"started_total"`
	Finished   uint64  `json:"finished_total"`
	SampledOut uint64  `json:"sampled_out_total"`
	SampleRate float64 `json:"sample_rate"`
	RingSize   int     `json:"ring_size"`
	Capacity   int     `json:"ring_capacity"`
}

// Stats snapshots the tracer counters.
func (t *Tracer) Stats() TracerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TracerStats{
		Started:    t.started,
		Finished:   t.finished,
		SampledOut: t.sampledOut,
		SampleRate: t.sampleRate,
		RingSize:   len(t.ring),
		Capacity:   t.capacity,
	}
}
