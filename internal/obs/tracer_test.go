package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRingBufferEviction(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tr := NewTracer(3, clock.Now)
	var ids []string
	for i := 0; i < 5; i++ {
		ctx, trace := tr.Start(context.Background(), fmt.Sprintf("r%d", i))
		StartSpan(ctx, "compute").End()
		tr.Finish(trace)
		ids = append(ids, trace.ID())
	}
	for _, id := range ids[:2] {
		if _, ok := tr.Get(id); ok {
			t.Fatalf("trace %s should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := tr.Get(id); !ok {
			t.Fatalf("trace %s should be retained", id)
		}
	}
	got := tr.IDs()
	if len(got) != 3 || got[0] != ids[4] || got[2] != ids[2] {
		t.Fatalf("IDs() = %v, want most-recent-first %v", got, []string{ids[4], ids[3], ids[2]})
	}
	st := tr.Stats()
	if st.Started != 5 || st.Finished != 5 || st.RingSize != 3 || st.Capacity != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRingBufferConcurrency drives many goroutines through the full
// trace lifecycle — start, concurrent span writers (the batch-worker
// shape), finish — while readers hammer Get/IDs/StageSnapshot/Record.
// Run under -race this is the tracing layer's core soundness proof.
func TestRingBufferConcurrency(t *testing.T) {
	tr := NewTracer(8, nil) // real clock: exercise the default path
	const (
		writers       = 8
		tracesEach    = 20
		spansPerTrace = 6
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: query the ring and aggregates while traces churn.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range tr.IDs() {
					if rec, ok := tr.Get(id); ok && rec.ID != id {
						t.Errorf("record ID %q under key %q", rec.ID, id)
					}
				}
				tr.StageSnapshot()
				tr.Stats()
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < tracesEach; i++ {
				ctx, trace := tr.Start(context.Background(), "batch")
				var inner sync.WaitGroup
				for s := 0; s < spansPerTrace; s++ {
					inner.Add(1)
					go func(s int) { // concurrent span writers on ONE trace
						defer inner.Done()
						ictx := WithAnalysis(ctx, fmt.Sprintf("a%d", s%3))
						sp := StartSpan(ictx, "batch-item")
						StartSpan(ictx, "compute").End()
						sp.End()
					}(s)
				}
				inner.Wait()
				tr.Finish(trace)
				// A late span from a detached refresh must be refused
				// without racing the record snapshot.
				StartSpan(ctx, "stale-refresh").End()
			}
		}(w)
	}

	// Wait for writers only, then stop readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	writersDone := make(chan struct{})
	go func() {
		// The writer goroutines were added to wg before the readers'
		// loop exits; poll Stats until all traces finished.
		for tr.Stats().Finished < writers*tracesEach {
			time.Sleep(time.Millisecond)
		}
		close(writersDone)
	}()
	<-writersDone
	close(stop)
	<-done

	st := tr.Stats()
	if st.Finished != writers*tracesEach {
		t.Fatalf("finished = %d, want %d", st.Finished, writers*tracesEach)
	}
	if st.RingSize != 8 {
		t.Fatalf("ring size = %d, want 8", st.RingSize)
	}
	// Every retained trace must hold the full span set of its lifecycle.
	for _, id := range tr.IDs() {
		rec, ok := tr.Get(id)
		if !ok {
			continue // evicted between IDs and Get; fine
		}
		if want := spansPerTrace * 2; len(rec.Spans) != want {
			t.Fatalf("trace %s has %d spans, want %d", id, len(rec.Spans), want)
		}
	}
}

func TestTraceIDsUnique(t *testing.T) {
	tr := NewTracer(4, nil)
	seen := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, trace := tr.Start(context.Background(), "r")
				mu.Lock()
				if seen[trace.ID()] {
					t.Errorf("duplicate trace ID %s", trace.ID())
				}
				seen[trace.ID()] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
