package obs

import (
	"context"
	"testing"
	"time"
)

func TestTracerSampleRateProportion(t *testing.T) {
	clock := func() time.Time { return time.Unix(0, 0) }
	for _, tc := range []struct {
		rate     float64
		min, max int // accepted traces out of 10000
	}{
		{rate: 1, min: 10000, max: 10000},
		{rate: 0, min: 0, max: 0},
		{rate: 0.1, min: 800, max: 1200},
		{rate: 0.5, min: 4700, max: 5300},
	} {
		tr := NewTracer(8, clock)
		tr.SetSampleRate(tc.rate)
		kept := 0
		for i := 0; i < 10000; i++ {
			ctx, trace := tr.Start(context.Background(), "route")
			if trace != nil {
				kept++
				if FromContext(ctx) != trace {
					t.Fatalf("rate %v: sampled context does not carry its trace", tc.rate)
				}
				tr.Finish(trace)
			} else if FromContext(ctx) != nil {
				t.Fatalf("rate %v: sampled-out context carries a trace", tc.rate)
			}
		}
		if kept < tc.min || kept > tc.max {
			t.Errorf("rate %v: kept %d/10000, want in [%d, %d]", tc.rate, kept, tc.min, tc.max)
		}
		st := tr.Stats()
		if st.Started != uint64(kept) {
			t.Errorf("rate %v: started %d, want %d", tc.rate, st.Started, kept)
		}
		if st.SampledOut != uint64(10000-kept) {
			t.Errorf("rate %v: sampled_out %d, want %d", tc.rate, st.SampledOut, 10000-kept)
		}
		if st.SampleRate != tc.rate { // lint:exact — Stats must echo the configured rate bit-for-bit, no arithmetic involved
			t.Errorf("rate %v: stats report rate %v", tc.rate, st.SampleRate)
		}
	}
}

func TestTracerSampleDecisionIsDeterministic(t *testing.T) {
	clock := func() time.Time { return time.Unix(0, 0) }
	decisions := func() []bool {
		tr := NewTracer(8, clock)
		tr.SetSampleRate(0.3)
		out := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			_, trace := tr.Start(context.Background(), "r")
			out = append(out, trace != nil)
			tr.Finish(trace)
		}
		return out
	}
	a, b := decisions(), decisions()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling decision %d differs across identical tracers", i)
		}
	}
}

func TestTracerSampleRateClamps(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.SetSampleRate(-3)
	if got := tr.Stats().SampleRate; got != 0 {
		t.Fatalf("rate -3 clamped to %v, want 0", got)
	}
	tr.SetSampleRate(7)
	if got := tr.Stats().SampleRate; got != 1 { // lint:exact — clamping snaps to the literal bound 1, not a computed value
		t.Fatalf("rate 7 clamped to %v, want 1", got)
	}
}

func TestSampledOutRequestIsNilSafeDownstream(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.SetSampleRate(0)
	ctx, trace := tr.Start(context.Background(), "route")
	if trace != nil {
		t.Fatal("rate 0 minted a trace")
	}
	// The whole instrumentation surface must be inert on the untraced
	// context: spans are nil and every method is a no-op.
	sp := StartSpan(ctx, "stage")
	if sp != nil {
		t.Fatal("StartSpan on untraced context returned a span")
	}
	sp.SetAnalysis("x")
	sp.SetDataset("y")
	sp.End()
	sp.EndAs("other")
	tr.Finish(trace) // nil finish is a no-op
	if st := tr.Stats(); st.Finished != 0 || st.RingSize != 0 {
		t.Fatalf("sampled-out request leaked into tracer state: %+v", st)
	}
}
