package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoggerEventShape(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.SetClock(newFakeClock(time.Second).Now)
	l.Event("request", map[string]interface{}{
		"route":  "GET /api/v1/types",
		"status": 200,
		"dur_ms": 1.5,
		"quoted": `a "b" \c`,
	})
	l.Event("startup", nil)

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var first map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if first["event"] != "request" || first["route"] != "GET /api/v1/types" {
		t.Fatalf("unexpected fields: %v", first)
	}
	if first["quoted"] != `a "b" \c` {
		t.Fatalf("quoting mangled: %q", first["quoted"])
	}
	if _, err := time.Parse(time.RFC3339Nano, first["ts"].(string)); err != nil {
		t.Fatalf("ts not RFC3339Nano: %v", err)
	}
	// encoding/json sorts map keys: the line is byte-stable given a
	// fixed clock, so log processors can diff runs.
	if !strings.HasPrefix(lines[0], `{"dur_ms":1.5,"event":"request"`) {
		t.Fatalf("keys not sorted: %s", lines[0])
	}
	if l.Drops() != 0 {
		t.Fatalf("drops = %d, want 0", l.Drops())
	}
}

type failingWriter struct{ failures int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.failures++
	return 0, errors.New("pipe closed")
}

func TestLoggerCountsDrops(t *testing.T) {
	w := &failingWriter{}
	l := NewLogger(w)
	l.Event("request", nil)
	l.Event("request", map[string]interface{}{"bad": func() {}}) // unencodable
	if l.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", l.Drops())
	}
	if w.failures != 1 {
		t.Fatalf("writer saw %d writes, want 1 (unencodable event never reaches it)", w.failures)
	}
}

func TestLoggerConcurrentEvents(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Event("request", map[string]interface{}{"n": j})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		var v map[string]interface{}
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("interleaved line %q: %v", line, err)
		}
	}
}
