package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format this package writes.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricType is a Prometheus metric family type.
type MetricType string

// The exposition types this package emits.
const (
	Counter   MetricType = "counter"
	Gauge     MetricType = "gauge"
	Histogram MetricType = "histogram"
)

// Label is one name="value" pair. Callers provide labels in the order
// they should appear; the writer escapes values.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line within a family. Suffix extends the
// family name ("_bucket", "_sum", "_count" for histogram series; empty
// for plain counters and gauges).
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one metric family: a # HELP line, a # TYPE line, and its
// samples in the given (deterministic) order.
type Family struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
}

// WriteExposition renders the families in order as Prometheus text
// exposition format (version 0.0.4). Families with no samples are
// skipped entirely so scrape output never contains dangling headers.
func WriteExposition(w io.Writer, families []Family) error {
	var b strings.Builder
	for _, f := range families {
		if len(f.Samples) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			b.WriteString(f.Name)
			b.WriteString(s.Suffix)
			writeLabels(&b, s.Labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatValue renders v the way Prometheus clients do: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FormatBound renders a histogram upper bound as a le= label value.
func FormatBound(bound float64) string { return formatValue(bound) }

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// expositionSample matches one valid sample line of the 0.0.4 text
// format: metric name, optional label set, one value.
var expositionSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// expositionComment matches the two legal comment forms.
var expositionComment = regexp.MustCompile(
	`^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped))$`)

// ValidateExposition checks that body parses as Prometheus text
// exposition format: every non-blank line is a legal HELP/TYPE comment
// or a sample line. It returns the first offending line.
func ValidateExposition(body string) error {
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !expositionComment.MatchString(line) {
				return fmt.Errorf("obs: exposition line %d: bad comment %q", i+1, line)
			}
			continue
		}
		if !expositionSample.MatchString(line) {
			return fmt.Errorf("obs: exposition line %d: bad sample %q", i+1, line)
		}
	}
	return nil
}

// HistogramSamples builds the _bucket/_sum/_count sample series of one
// histogram from per-bucket (non-cumulative) counts. bounds are the
// finite upper bounds; counts must have len(bounds)+1 entries, the
// last being the +Inf overflow bucket. The shared labels appear before
// the le label on every _bucket line.
func HistogramSamples(labels []Label, bounds []float64, counts []uint64, sum float64, count uint64) []Sample {
	out := make([]Sample, 0, len(counts)+2)
	var cum uint64
	for i, n := range counts {
		cum += n
		bound := math.Inf(+1)
		if i < len(bounds) {
			bound = bounds[i]
		}
		le := append(append([]Label{}, labels...), Label{Name: "le", Value: FormatBound(bound)})
		out = append(out, Sample{Suffix: "_bucket", Labels: le, Value: float64(cum)})
	}
	out = append(out,
		Sample{Suffix: "_sum", Labels: labels, Value: sum},
		Sample{Suffix: "_count", Labels: labels, Value: float64(count)},
	)
	return out
}
