// Package obs is the observability layer: request-scoped tracing
// through the serving ladder, per-analysis/per-stage latency
// aggregation, Prometheus text exposition, and structured wide-event
// logging. It is stdlib-only and dependency-free so every other layer
// (serving, engine, server, cmd) can import it without cycles.
//
// The tracing contract: a Tracer mints one Trace per request and
// stores it in the request context; instrumented code anywhere below
// (the cache, the singleflight group, the engine executor, the batch
// workers) calls StartSpan/AddSpan against that context. Spans are
// appended in START order under the trace's mutex, so the span
// sequence of a request is a deterministic record of the path it took
// through the ladder — golden-testable with an injectable clock —
// while remaining race-clean under concurrent batch workers. All
// span-recording entry points are nil-safe no-ops when the context
// carries no trace, so compute paths never pay more than one context
// lookup when tracing is off (CLIs, background refreshes).
//
// Span taxonomy (the stage names the executor and cache emit):
//
//	parse | parse-error
//	cache-hit | cache-miss
//	singleflight-lead | singleflight-join
//	breaker-allow | breaker-open
//	compute | compute-error | compute-canceled
//	store
//	stale-serve | stale-refresh
//	batch-item
//
// Finished traces land in the Tracer's fixed-size ring buffer,
// queryable by ID (the X-Trace response header), and their spans are
// folded into per-(analysis, stage) latency histograms exported in
// Prometheus exposition format. DESIGN §10 documents the contract.
package obs

import (
	"context"
	"time"
)

// ctxKey is the private context key namespace for this package.
type ctxKey int

const (
	traceKey ctxKey = iota
	analysisKey
	datasetKey
)

// NewContext returns ctx carrying tr.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// WithAnalysis returns ctx labelled with the analysis name; spans
// started under it carry the label into the per-analysis histograms.
func WithAnalysis(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, analysisKey, name)
}

// AnalysisFromContext returns the analysis label carried by ctx ("" if
// none).
func AnalysisFromContext(ctx context.Context) string {
	name, _ := ctx.Value(analysisKey).(string)
	return name
}

// WithDataset returns ctx labelled with the dataset ID; spans started
// under it carry the label into the per-(dataset, analysis) histograms.
func WithDataset(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, datasetKey, id)
}

// DatasetFromContext returns the dataset label carried by ctx ("" if
// none).
func DatasetFromContext(ctx context.Context) string {
	id, _ := ctx.Value(datasetKey).(string)
	return id
}

// StartSpan appends a new span named name to the trace carried by ctx
// and returns it; the span inherits ctx's analysis and dataset labels.
// It returns nil (safe to End/EndAs) when ctx carries no trace or the
// trace is already finished.
func StartSpan(ctx context.Context, name string) *Span {
	tr := FromContext(ctx)
	if tr == nil {
		return nil
	}
	return tr.startSpan(name, AnalysisFromContext(ctx), DatasetFromContext(ctx))
}

// AddSpan appends an already-completed span: started at start (or
// instantaneous when start is the zero time) and ending now. Use it
// when the span's very name depends on an outcome observed after the
// fact — e.g. a singleflight join whose wait began before the role was
// known. No-op without a trace in ctx.
func AddSpan(ctx context.Context, name string, start time.Time) {
	tr := FromContext(ctx)
	if tr == nil {
		return
	}
	tr.addSpan(name, AnalysisFromContext(ctx), DatasetFromContext(ctx), start)
}

// Now reads the clock of the trace carried by ctx, for measuring a
// span's start before its name is known (pair with AddSpan). It
// returns the zero time when ctx carries no trace, so untraced paths
// never touch a clock.
func Now(ctx context.Context) time.Time {
	tr := FromContext(ctx)
	if tr == nil {
		return time.Time{}
	}
	return tr.now()
}
