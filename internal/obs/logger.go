package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Logger emits structured wide events: one JSON object per line, keys
// sorted (encoding/json map ordering), suitable for machine ingestion.
// Unlike fmt.Fprintf to a file, write and encode errors are not
// dropped: they are counted and exposed via Drops (and from there the
// /metrics surface), so a broken log pipe under a daemon is visible
// instead of silent. A nil *Logger is a valid no-op sink, letting
// callers wire logging unconditionally.
type Logger struct {
	clock func() time.Time

	mu    sync.Mutex
	w     io.Writer
	drops uint64
}

// NewLogger returns a logger writing one JSON line per event to w.
// A nil w yields a nil (no-op) logger.
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{clock: time.Now, w: w}
}

// SetClock replaces the timestamp source (tests inject a fake clock
// for byte-stable lines). No-op on a nil logger.
func (l *Logger) SetClock(clock func() time.Time) {
	if l == nil || clock == nil {
		return
	}
	l.mu.Lock()
	l.clock = clock
	l.mu.Unlock()
}

// Event emits one wide-event line: fields plus "event" set to event
// and "ts" set to the clock's RFC3339Nano now. The fields map is not
// retained. Encode or write failures increment the drop counter.
func (l *Logger) Event(event string, fields map[string]interface{}) {
	if l == nil {
		return
	}
	line := make(map[string]interface{}, len(fields)+2)
	for k, v := range fields {
		line[k] = v
	}
	line["event"] = event

	l.mu.Lock()
	defer l.mu.Unlock()
	line["ts"] = l.clock().UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(line)
	if err != nil {
		l.drops++
		return
	}
	b = append(b, '\n')
	if _, err := l.w.Write(b); err != nil {
		l.drops++
	}
}

// Drops returns how many events failed to encode or write.
func (l *Logger) Drops() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.drops
}
