package obs

import (
	"sync"
	"time"
)

// MaxSpans bounds one trace's span buffer. A full batch (64 items × ~7
// ladder spans each) fits with headroom; beyond the bound spans are
// counted as dropped rather than grown without limit, so a pathological
// request cannot hold the ring buffer's memory hostage.
const MaxSpans = 512

// Trace is one request's ordered span record. Spans are appended in
// start order under the trace mutex; concurrent writers (batch
// workers) interleave safely and the sequence records genuine start
// order. After Finish the trace is sealed: late span starts (e.g. a
// detached stale refresh that outlives its request) are refused so the
// ring buffer holds immutable records.
type Trace struct {
	id    string
	label string
	clock func() time.Time

	mu      sync.Mutex
	start   time.Time
	end     time.Time
	done    bool
	spans   []*Span
	dropped int
}

// ID returns the trace identifier (the X-Trace header value).
func (tr *Trace) ID() string { return tr.id }

// Label returns the request label the trace was started with.
func (tr *Trace) Label() string { return tr.label }

// now reads the trace's clock.
func (tr *Trace) now() time.Time { return tr.clock() }

// startSpan appends an open span; nil when the trace is sealed or full.
func (tr *Trace) startSpan(name, analysis, dataset string) *Span {
	ts := tr.clock()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return nil
	}
	if len(tr.spans) >= MaxSpans {
		tr.dropped++
		return nil
	}
	sp := &Span{tr: tr, name: name, analysis: analysis, dataset: dataset, start: ts}
	tr.spans = append(tr.spans, sp)
	return sp
}

// addSpan appends a completed span ending now; zero start means
// instantaneous.
func (tr *Trace) addSpan(name, analysis, dataset string, start time.Time) {
	end := tr.clock()
	if start.IsZero() {
		start = end
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return
	}
	if len(tr.spans) >= MaxSpans {
		tr.dropped++
		return
	}
	tr.spans = append(tr.spans, &Span{tr: tr, name: name, analysis: analysis, dataset: dataset, start: start, end: end})
}

// finish seals the trace and returns a snapshot of its completed spans
// for aggregation. Idempotent; only the first call seals.
func (tr *Trace) finish() []*Span {
	end := tr.clock()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return nil
	}
	tr.done = true
	tr.end = end
	out := make([]*Span, len(tr.spans))
	copy(out, tr.spans)
	return out
}

// Span is one named, timed stage inside a trace. End (or EndAs, when
// the final name depends on the outcome) completes it; both are
// nil-safe so instrumented code needs no trace-presence checks.
type Span struct {
	tr       *Trace
	name     string
	analysis string
	dataset  string
	start    time.Time
	end      time.Time
}

// End completes the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	ts := s.tr.clock()
	s.tr.mu.Lock()
	s.end = ts
	s.tr.mu.Unlock()
}

// EndAs completes the span under its outcome name — a span started as
// "cache-lookup" ends as "cache-hit" or "cache-miss" while keeping its
// position in start order.
func (s *Span) EndAs(name string) {
	if s == nil {
		return
	}
	ts := s.tr.clock()
	s.tr.mu.Lock()
	s.name = name
	s.end = ts
	s.tr.mu.Unlock()
}

// SetAnalysis overrides the span's analysis label (batch items learn
// theirs after the span opened).
func (s *Span) SetAnalysis(name string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.analysis = name
	s.tr.mu.Unlock()
}

// SetDataset overrides the span's dataset label (batch items learn
// theirs after the span opened).
func (s *Span) SetDataset(id string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.dataset = id
	s.tr.mu.Unlock()
}

// SpanRecord is the JSON form of one span in a trace record.
type SpanRecord struct {
	Name     string  `json:"name"`
	Analysis string  `json:"analysis,omitempty"`
	Dataset  string  `json:"dataset,omitempty"`
	OffsetMS float64 `json:"offset_ms"`
	// DurationMS is the span's wall time; 0 for instantaneous marks.
	DurationMS float64 `json:"duration_ms"`
	// Open marks a span that had not ended when the trace finished
	// (a compute still running detached for a departed client).
	Open bool `json:"open,omitempty"`
}

// TraceRecord is the JSON form of a finished trace, served at
// GET /debug/trace/{id}.
type TraceRecord struct {
	ID           string       `json:"id"`
	Label        string       `json:"label"`
	Start        time.Time    `json:"start"`
	DurationMS   float64      `json:"duration_ms"`
	Spans        []SpanRecord `json:"spans"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
}

// Record snapshots the trace into its serializable form.
func (tr *Trace) Record() TraceRecord {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	rec := TraceRecord{
		ID:           tr.id,
		Label:        tr.label,
		Start:        tr.start,
		Spans:        make([]SpanRecord, 0, len(tr.spans)),
		DroppedSpans: tr.dropped,
	}
	if !tr.end.IsZero() {
		rec.DurationMS = durMS(tr.start, tr.end)
	}
	for _, sp := range tr.spans {
		sr := SpanRecord{
			Name:     sp.name,
			Analysis: sp.analysis,
			Dataset:  sp.dataset,
			OffsetMS: durMS(tr.start, sp.start),
		}
		if sp.end.IsZero() {
			sr.Open = true
		} else {
			sr.DurationMS = durMS(sp.start, sp.end)
		}
		rec.Spans = append(rec.Spans, sr)
	}
	return rec
}

// SpanNames returns the trace's span names in start order (the
// golden-testable sequence).
func (tr *Trace) SpanNames() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]string, len(tr.spans))
	for i, sp := range tr.spans {
		out[i] = sp.name
	}
	return out
}

func durMS(from, to time.Time) float64 {
	return float64(to.Sub(from)) / float64(time.Millisecond)
}
