package obs

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// fakeClock advances a fixed step per read, making span sequences and
// durations fully deterministic.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func TestSpanSequenceAndRecord(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tr := NewTracer(4, clock.Now)
	ctx, trace := tr.Start(context.Background(), "GET /api/v1/types")
	ctx = WithAnalysis(ctx, "types")

	sp := StartSpan(ctx, "cache-lookup")
	sp.EndAs("cache-miss")
	cs := StartSpan(ctx, "compute")
	cs.End()
	start := Now(ctx)
	AddSpan(ctx, "singleflight-join", start)
	AddSpan(ctx, "stale-serve", time.Time{}) // instantaneous mark
	tr.Finish(trace)

	want := []string{"cache-miss", "compute", "singleflight-join", "stale-serve"}
	if got := trace.SpanNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("span sequence = %v, want %v", got, want)
	}

	rec, ok := tr.Get(trace.ID())
	if !ok {
		t.Fatalf("trace %q not in ring", trace.ID())
	}
	if rec.Label != "GET /api/v1/types" {
		t.Fatalf("label = %q", rec.Label)
	}
	if len(rec.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(rec.Spans))
	}
	for i, sr := range rec.Spans {
		if sr.Name != want[i] {
			t.Fatalf("span %d = %q, want %q", i, sr.Name, want[i])
		}
		if sr.Analysis != "types" {
			t.Fatalf("span %d analysis = %q, want types", i, sr.Analysis)
		}
		if sr.Open {
			t.Fatalf("span %d unexpectedly open", i)
		}
	}
	// Each clock read advances 1ms: every timed span covers exactly one
	// step of the fake clock.
	if rec.Spans[0].DurationMS != 1 { // lint:exact — fake clock advances exactly 1ms per read
		t.Fatalf("span 0 duration = %v ms, want 1", rec.Spans[0].DurationMS)
	}
	if rec.Spans[3].DurationMS != 0 { // lint:exact — instantaneous mark has exactly zero duration
		t.Fatalf("instant span duration = %v ms, want 0", rec.Spans[3].DurationMS)
	}
	if rec.DurationMS <= 0 {
		t.Fatalf("trace duration = %v, want > 0", rec.DurationMS)
	}
}

func TestNilSafety(t *testing.T) {
	// No trace in context: every entry point must be a no-op.
	ctx := context.Background()
	sp := StartSpan(ctx, "compute")
	sp.End()
	sp.EndAs("compute-error")
	sp.SetAnalysis("types")
	AddSpan(ctx, "cache-hit", time.Time{})
	if !Now(ctx).IsZero() {
		t.Fatal("Now without a trace should be the zero time")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext without a trace should be nil")
	}
	if AnalysisFromContext(ctx) != "" {
		t.Fatal("AnalysisFromContext without a label should be empty")
	}
	var l *Logger
	l.Event("request", nil) // nil logger is a valid sink
	l.SetClock(time.Now)
	if l.Drops() != 0 {
		t.Fatal("nil logger drops != 0")
	}
}

func TestSealedTraceRefusesLateSpans(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tr := NewTracer(4, clock.Now)
	ctx, trace := tr.Start(context.Background(), "r")
	StartSpan(ctx, "compute").End()
	tr.Finish(trace)
	if sp := StartSpan(ctx, "stale-refresh"); sp != nil {
		t.Fatal("sealed trace accepted a new span")
	}
	AddSpan(ctx, "late", time.Time{})
	if got := len(trace.SpanNames()); got != 1 {
		t.Fatalf("sealed trace has %d spans, want 1", got)
	}
	// Finishing twice must not double-aggregate or re-admit.
	tr.Finish(trace)
	if st := tr.Stats(); st.Finished != 1 {
		t.Fatalf("finished = %d, want 1", st.Finished)
	}
}

func TestSpanBufferBound(t *testing.T) {
	clock := newFakeClock(time.Microsecond)
	tr := NewTracer(4, clock.Now)
	ctx, trace := tr.Start(context.Background(), "r")
	for i := 0; i < MaxSpans+10; i++ {
		StartSpan(ctx, "compute").End()
	}
	tr.Finish(trace)
	rec, _ := tr.Get(trace.ID())
	if len(rec.Spans) != MaxSpans {
		t.Fatalf("got %d spans, want cap %d", len(rec.Spans), MaxSpans)
	}
	if rec.DroppedSpans != 10 {
		t.Fatalf("dropped = %d, want 10", rec.DroppedSpans)
	}
}

func TestOpenSpanMarkedInRecord(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tr := NewTracer(4, clock.Now)
	ctx, trace := tr.Start(context.Background(), "r")
	_ = StartSpan(ctx, "compute") // never ended: detached work still running
	tr.Finish(trace)
	rec, _ := tr.Get(trace.ID())
	if len(rec.Spans) != 1 || !rec.Spans[0].Open {
		t.Fatalf("open span not marked: %+v", rec.Spans)
	}
	// Open spans are excluded from the stage histograms.
	if stages := tr.StageSnapshot(); len(stages) != 0 {
		t.Fatalf("open span was aggregated: %+v", stages)
	}
}

func TestStageAggregation(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tr := NewTracer(4, clock.Now)
	for i := 0; i < 3; i++ {
		ctx, trace := tr.Start(context.Background(), "r")
		ctx = WithAnalysis(ctx, "types")
		StartSpan(ctx, "compute").End()
		tr.Finish(trace)
	}
	stages := tr.StageSnapshot()
	if len(stages) != 1 {
		t.Fatalf("got %d stage series, want 1: %+v", len(stages), stages)
	}
	s := stages[0]
	if s.Analysis != "types" || s.Stage != "compute" || s.Count != 3 {
		t.Fatalf("unexpected series: %+v", s)
	}
	if len(s.Buckets) != len(StageBucketsSeconds)+1 {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(StageBucketsSeconds)+1)
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != 3 {
		t.Fatalf("bucket total = %d, want 3", total)
	}
}
