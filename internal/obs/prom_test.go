package obs

import (
	"math"
	"strings"
	"testing"
)

func TestWriteExpositionGolden(t *testing.T) {
	families := []Family{
		{
			Name: "csm_requests_total", Help: "Requests by route.", Type: Counter,
			Samples: []Sample{
				{Labels: []Label{{"route", "GET /api/v1/types"}, {"status", "200"}}, Value: 12},
				{Labels: []Label{{"route", "GET /api/v1/types"}, {"status", "400"}}, Value: 1},
			},
		},
		{
			Name: "csm_in_flight", Help: "In-flight requests.", Type: Gauge,
			Samples: []Sample{{Value: 3}},
		},
		{Name: "csm_empty", Help: "Skipped entirely.", Type: Counter},
		{
			Name: "csm_stage_duration_seconds", Help: "Stage latency.", Type: Histogram,
			Samples: HistogramSamples(
				[]Label{{"analysis", "types"}, {"stage", "compute"}},
				[]float64{0.001, 0.01}, []uint64{2, 1, 1}, 0.0145, 4),
		},
		{
			Name: "csm_escapes", Help: `Help with \ backslash and "quotes".`, Type: Gauge,
			Samples: []Sample{{Labels: []Label{{"k", "a\"b\\c\nd"}}, Value: 1}},
		},
	}
	var b strings.Builder
	if err := WriteExposition(&b, families); err != nil {
		t.Fatal(err)
	}
	want := `# HELP csm_requests_total Requests by route.
# TYPE csm_requests_total counter
csm_requests_total{route="GET /api/v1/types",status="200"} 12
csm_requests_total{route="GET /api/v1/types",status="400"} 1
# HELP csm_in_flight In-flight requests.
# TYPE csm_in_flight gauge
csm_in_flight 3
# HELP csm_stage_duration_seconds Stage latency.
# TYPE csm_stage_duration_seconds histogram
csm_stage_duration_seconds_bucket{analysis="types",stage="compute",le="0.001"} 2
csm_stage_duration_seconds_bucket{analysis="types",stage="compute",le="0.01"} 3
csm_stage_duration_seconds_bucket{analysis="types",stage="compute",le="+Inf"} 4
csm_stage_duration_seconds_sum{analysis="types",stage="compute"} 0.0145
csm_stage_duration_seconds_count{analysis="types",stage="compute"} 4
# HELP csm_escapes Help with \\ backslash and "quotes".
# TYPE csm_escapes gauge
csm_escapes{k="a\"b\\c\nd"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestValidateExpositionCatchesGarbage(t *testing.T) {
	valid := "# HELP a b\n# TYPE a counter\na 1\na{x=\"y\"} 2.5\na{x=\"y\",z=\"w\"} +Inf\n"
	if err := ValidateExposition(valid); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	for _, bad := range []string{
		"a{x=y} 1\n",         // unquoted label value
		"a 1 2 3\n",          // trailing garbage
		"{x=\"y\"} 1\n",      // no metric name
		"a{x=\"y\"\n",        // unterminated
		"# TUPE a counter\n", // bad comment keyword
	} {
		if err := ValidateExposition(bad); err == nil {
			t.Fatalf("garbage accepted: %q", bad)
		}
	}
}

func TestFormatValueEdges(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{0.25, "0.25"},
		{1e9, "1e+09"},
	} {
		if got := formatValue(tc.v); got != tc.want {
			t.Fatalf("formatValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Fatalf("formatValue(NaN) = %q", got)
	}
}
