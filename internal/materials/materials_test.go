package materials

import (
	"bytes"
	"strings"
	"testing"

	"csmaterials/internal/ontology"
)

// tag IDs known to exist in CS2013, used throughout the tests.
const (
	tagRecursion = "SDF/fundamental-programming-concepts/the-concept-of-recursion"
	tagBigO      = "AL/basic-analysis/big-o-notation-use"
	tagVars      = "SDF/fundamental-programming-concepts/variables-and-primitive-data-types"
)

func testCourse(id string) *Course {
	return &Course{
		ID:    id,
		Name:  "Test Course " + id,
		Group: GroupCS1,
		Materials: []*Material{
			{ID: id + "-m1", Title: "Intro lecture", Type: Lecture, Tags: []string{tagVars, tagRecursion}},
			{ID: id + "-m2", Title: "Big-O homework", Type: Assignment, Tags: []string{tagBigO, tagRecursion}},
		},
	}
}

func newTestRepo(t *testing.T) *Repository {
	t.Helper()
	return NewRepository(ontology.CS2013(), ontology.PDC12())
}

func TestMaterialClone(t *testing.T) {
	m := &Material{ID: "x", Title: "T", Type: Lab, Tags: []string{"a"}, Datasets: []string{"d"}}
	c := m.Clone()
	c.Tags[0] = "b"
	c.Datasets[0] = "e"
	if m.Tags[0] != "a" || m.Datasets[0] != "d" {
		t.Fatal("Clone shares slices")
	}
}

func TestMaterialTagSet(t *testing.T) {
	m := &Material{Tags: []string{"a", "b", "a"}}
	s := m.TagSet()
	if len(s) != 2 || !s["a"] || !s["b"] {
		t.Fatalf("TagSet = %v", s)
	}
}

func TestCourseTagSetUnion(t *testing.T) {
	c := testCourse("c1")
	set := c.TagSet()
	if len(set) != 3 {
		t.Fatalf("TagSet size = %d, want 3", len(set))
	}
	for _, want := range []string{tagVars, tagRecursion, tagBigO} {
		if !set[want] {
			t.Errorf("TagSet missing %q", want)
		}
	}
}

func TestCourseSortedTags(t *testing.T) {
	c := testCourse("c1")
	tags := c.SortedTags()
	if len(tags) != 3 {
		t.Fatalf("SortedTags size = %d", len(tags))
	}
	for i := 1; i < len(tags); i++ {
		if tags[i] <= tags[i-1] {
			t.Fatal("SortedTags not sorted")
		}
	}
}

func TestCourseTagCounts(t *testing.T) {
	c := testCourse("c1")
	counts := c.TagCounts()
	if counts[tagRecursion] != 2 {
		t.Fatalf("recursion count = %d, want 2", counts[tagRecursion])
	}
	if counts[tagVars] != 1 || counts[tagBigO] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCourseHasGroup(t *testing.T) {
	c := &Course{ID: "x", Name: "X", Group: GroupCS1, SecondaryGroup: GroupDS}
	if !c.HasGroup(GroupCS1) || !c.HasGroup(GroupDS) {
		t.Fatal("HasGroup failed for primary/secondary")
	}
	if c.HasGroup(GroupPDC) {
		t.Fatal("HasGroup matched wrong group")
	}
}

func TestCourseValidate(t *testing.T) {
	good := testCourse("ok")
	if err := good.Validate(); err != nil {
		t.Fatalf("valid course rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Course)
	}{
		{"empty course ID", func(c *Course) { c.ID = "" }},
		{"empty name", func(c *Course) { c.Name = "" }},
		{"empty material ID", func(c *Course) { c.Materials[0].ID = "" }},
		{"duplicate material ID", func(c *Course) { c.Materials[1].ID = c.Materials[0].ID }},
		{"bad type", func(c *Course) { c.Materials[0].Type = "banana" }},
		{"empty tag", func(c *Course) { c.Materials[0].Tags = []string{"  "} }},
	}
	for _, tc := range cases {
		c := testCourse("bad")
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid course", tc.name)
		}
	}
}

func TestRepositoryAddAndLookup(t *testing.T) {
	r := newTestRepo(t)
	c := testCourse("c1")
	if err := r.AddCourse(c); err != nil {
		t.Fatal(err)
	}
	if r.Course("c1") != c {
		t.Fatal("Course lookup failed")
	}
	if r.Material("c1-m1") == nil {
		t.Fatal("Material lookup failed")
	}
	if r.NumMaterials() != 2 {
		t.Fatalf("NumMaterials = %d", r.NumMaterials())
	}
}

func TestRepositoryRejectsUnknownTag(t *testing.T) {
	r := newTestRepo(t)
	c := testCourse("c1")
	c.Materials[0].Tags = append(c.Materials[0].Tags, "NOPE/not-a-tag")
	if err := r.AddCourse(c); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestRepositoryAcceptsPDCTags(t *testing.T) {
	r := newTestRepo(t)
	c := testCourse("c1")
	c.Materials[0].Tags = append(c.Materials[0].Tags, "ALGO/algorithmic-paradigms/reduction-as-a-parallel-pattern")
	if err := r.AddCourse(c); err != nil {
		t.Fatalf("PDC tag rejected: %v", err)
	}
}

func TestRepositoryRejectsDuplicates(t *testing.T) {
	r := newTestRepo(t)
	if err := r.AddCourse(testCourse("c1")); err != nil {
		t.Fatal(err)
	}
	if err := r.AddCourse(testCourse("c1")); err == nil {
		t.Fatal("duplicate course accepted")
	}
	// Same material ID in a different course.
	c2 := testCourse("c2")
	c2.Materials[0].ID = "c1-m1"
	if err := r.AddCourse(c2); err == nil {
		t.Fatal("cross-course duplicate material accepted")
	}
}

func TestRepositoryCoursesOrder(t *testing.T) {
	r := newTestRepo(t)
	for _, id := range []string{"b", "a", "c"} {
		if err := r.AddCourse(testCourse(id)); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Courses()
	if got[0].ID != "b" || got[1].ID != "a" || got[2].ID != "c" {
		t.Fatal("Courses() must preserve insertion order")
	}
}

func TestRepositoryCoursesInGroup(t *testing.T) {
	r := newTestRepo(t)
	c1 := testCourse("c1")
	c2 := testCourse("c2")
	c2.Group = GroupDS
	c3 := testCourse("c3")
	c3.Group = GroupCS1
	c3.SecondaryGroup = GroupDS
	for _, c := range []*Course{c1, c2, c3} {
		if err := r.AddCourse(c); err != nil {
			t.Fatal(err)
		}
	}
	ds := r.CoursesInGroup(GroupDS)
	if len(ds) != 2 || ds[0].ID != "c2" || ds[1].ID != "c3" {
		t.Fatalf("CoursesInGroup(DS) = %v", ds)
	}
}

func TestMaterialsWithTag(t *testing.T) {
	r := newTestRepo(t)
	if err := r.AddCourse(testCourse("c1")); err != nil {
		t.Fatal(err)
	}
	ms := r.MaterialsWithTag(tagRecursion)
	if len(ms) != 2 {
		t.Fatalf("MaterialsWithTag = %d materials, want 2", len(ms))
	}
	if len(r.MaterialsWithTag("SDF")) != 0 {
		t.Fatal("unexpected materials for untagged entry")
	}
}

func TestMaterialsSorted(t *testing.T) {
	r := newTestRepo(t)
	if err := r.AddCourse(testCourse("z")); err != nil {
		t.Fatal(err)
	}
	if err := r.AddCourse(testCourse("a")); err != nil {
		t.Fatal(err)
	}
	ms := r.Materials()
	for i := 1; i < len(ms); i++ {
		if ms[i].ID <= ms[i-1].ID {
			t.Fatal("Materials() not sorted by ID")
		}
	}
}

func TestCourseMatrix(t *testing.T) {
	c1 := testCourse("c1") // tags: vars, recursion, bigO
	c2 := &Course{
		ID: "c2", Name: "C2", Group: GroupDS,
		Materials: []*Material{
			{ID: "c2-m1", Title: "L", Type: Lecture, Tags: []string{tagBigO}},
		},
	}
	a, cols := CourseMatrix([]*Course{c1, c2})
	if a.Rows() != 2 || a.Cols() != 3 {
		t.Fatalf("matrix dims %dx%d, want 2x3", a.Rows(), a.Cols())
	}
	if len(cols) != 3 {
		t.Fatalf("cols = %v", cols)
	}
	// Columns sorted; find bigO column.
	bigOCol := -1
	for j, c := range cols {
		if c == tagBigO {
			bigOCol = j
		}
	}
	if bigOCol < 0 {
		t.Fatal("bigO column missing")
	}
	if a.At(0, bigOCol) != 1 || a.At(1, bigOCol) != 1 { // lint:exact — incidence entries are exact 0/1
		t.Fatal("bigO column should be 1 for both courses")
	}
	// c2 has only one tag: its row sums to 1.
	if got := a.RowSums()[1]; got != 1 { // lint:exact — sum of exact 0/1 entries
		t.Fatalf("row 2 sum = %v, want 1", got)
	}
	// Entries are 0-1.
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if v := a.At(i, j); v != 0 && v != 1 { // lint:exact — incidence entries are exact 0/1
				t.Fatalf("non-binary entry %v", v)
			}
		}
	}
}

func TestCourseMatrixEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CourseMatrix(nil)
}

func TestJSONRoundTrip(t *testing.T) {
	r := newTestRepo(t)
	c := testCourse("c1")
	c.Institution = "UNC Charlotte"
	c.Instructor = "Saule"
	c.Materials[0].Language = "C++"
	c.Materials[0].Datasets = []string{"earthquakes"}
	if err := r.AddCourse(c); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := newTestRepo(t)
	if err := r2.LoadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := r2.Course("c1")
	if got == nil {
		t.Fatal("course lost in round trip")
	}
	if got.Institution != "UNC Charlotte" || got.Instructor != "Saule" {
		t.Fatalf("metadata lost: %+v", got)
	}
	if got.Materials[0].Language != "C++" || got.Materials[0].Datasets[0] != "earthquakes" {
		t.Fatal("material metadata lost")
	}
	if len(got.TagSet()) != len(c.TagSet()) {
		t.Fatal("tags lost in round trip")
	}
}

func TestLoadJSONRejectsBadDocument(t *testing.T) {
	r := newTestRepo(t)
	if err := r.LoadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	// Valid JSON, invalid course (unknown tag).
	bad := `{"courses":[{"id":"x","name":"X","group":"CS1","materials":[{"id":"m","title":"t","type":"lecture","tags":["NOPE"]}]}]}`
	if err := r.LoadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("course with unknown tag accepted via JSON")
	}
}

func TestNewRepositoryNeedsGuideline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRepository()
}
