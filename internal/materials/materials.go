// Package materials implements the data model of the CS Materials system
// described in §3.1 of the paper: courses are collections of learning
// materials (lectures, assignments, labs, ...), and each material is
// classified against one or more curriculum guidelines by listing the IDs
// of the guideline entries it addresses.
//
// The package provides an in-memory repository with tag indexes, JSON
// import/export, validation against the guideline trees, and the
// aggregation step every analysis starts from: turning a set of courses
// into a 0-1 course × curriculum matrix.
package materials

import (
	"fmt"
	"sort"
	"strings"
)

// MaterialType categorizes a learning material.
type MaterialType string

// Material types found in CS Materials.
const (
	Lecture    MaterialType = "lecture"
	Assignment MaterialType = "assignment"
	Lab        MaterialType = "lab"
	Exam       MaterialType = "exam"
	Quiz       MaterialType = "quiz"
	Activity   MaterialType = "activity"
	Reading    MaterialType = "reading"
	Project    MaterialType = "project"
)

// ValidTypes lists every recognized material type.
func ValidTypes() []MaterialType {
	return []MaterialType{Lecture, Assignment, Lab, Exam, Quiz, Activity, Reading, Project}
}

// CourseGroup is the coarse label assigned to courses by the paper's
// Figure 1 (based on the course name).
type CourseGroup string

// Course groups used by Figure 1.
const (
	GroupCS1     CourseGroup = "CS1"
	GroupOOP     CourseGroup = "OOP"
	GroupDS      CourseGroup = "DS"
	GroupAlgo    CourseGroup = "Algo"
	GroupSoftEng CourseGroup = "SoftEng"
	GroupPDC     CourseGroup = "PDC"
	GroupOther   CourseGroup = "Other"
)

// Material is one learning material classified against curriculum
// guidelines. Tags hold guideline node IDs (CS2013 and/or PDC12).
type Material struct {
	ID          string       `json:"id"`
	Title       string       `json:"title"`
	Type        MaterialType `json:"type"`
	Author      string       `json:"author,omitempty"`
	Language    string       `json:"language,omitempty"`
	CourseLevel string       `json:"course_level,omitempty"`
	Datasets    []string     `json:"datasets,omitempty"`
	Description string       `json:"description,omitempty"`
	Tags        []string     `json:"tags"`
}

// Clone returns a deep copy of the material.
func (m *Material) Clone() *Material {
	cp := *m
	cp.Datasets = append([]string(nil), m.Datasets...)
	cp.Tags = append([]string(nil), m.Tags...)
	return &cp
}

// TagSet returns the material's tags as a set.
func (m *Material) TagSet() map[string]bool {
	s := make(map[string]bool, len(m.Tags))
	for _, t := range m.Tags {
		s[t] = true
	}
	return s
}

// Course is a collection of materials taught at an institution.
type Course struct {
	ID          string      `json:"id"`
	Name        string      `json:"name"`
	Institution string      `json:"institution,omitempty"`
	Instructor  string      `json:"instructor,omitempty"`
	Group       CourseGroup `json:"group"`
	// SecondaryGroup covers Figure 1's dual-labeled courses (e.g. UCF's
	// COP3502 is both CS1 and DS).
	SecondaryGroup CourseGroup `json:"secondary_group,omitempty"`
	Materials      []*Material `json:"materials"`
}

// Clone returns a copy of the course with its own Materials slice. The
// Material pointers are shared with the original — callers mutating a
// material must Clone it first. This is the delta-ingest primitive:
// deriving a new snapshot touches only the materials an event names,
// while everything else stays structurally shared with the previous
// revision.
func (c *Course) Clone() *Course {
	cp := *c
	cp.Materials = append([]*Material(nil), c.Materials...)
	return &cp
}

// HasGroup reports whether the course carries g as its primary or
// secondary group label.
func (c *Course) HasGroup(g CourseGroup) bool {
	return c.Group == g || c.SecondaryGroup == g
}

// TagSet returns the union of the tags of all the course's materials —
// the paper's representation of a course as a set of curriculum entries.
func (c *Course) TagSet() map[string]bool {
	s := map[string]bool{}
	for _, m := range c.Materials {
		for _, t := range m.Tags {
			s[t] = true
		}
	}
	return s
}

// SortedTags returns the course's tag set as a sorted slice.
func (c *Course) SortedTags() []string {
	set := c.TagSet()
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TagCounts returns, for each tag, the number of the course's materials
// classified against it (used by the hit-tree node sizing).
func (c *Course) TagCounts() map[string]int {
	counts := map[string]int{}
	for _, m := range c.Materials {
		for _, t := range m.Tags {
			counts[t]++
		}
	}
	return counts
}

// Validate checks the course's internal consistency: non-empty ID/name,
// unique material IDs, recognized types, and non-empty tags.
func (c *Course) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("materials: course with empty ID (name %q)", c.Name)
	}
	if c.Name == "" {
		return fmt.Errorf("materials: course %q has empty name", c.ID)
	}
	seen := map[string]bool{}
	valid := map[MaterialType]bool{}
	for _, t := range ValidTypes() {
		valid[t] = true
	}
	for _, m := range c.Materials {
		if m.ID == "" {
			return fmt.Errorf("materials: course %q has material with empty ID", c.ID)
		}
		if seen[m.ID] {
			return fmt.Errorf("materials: course %q has duplicate material ID %q", c.ID, m.ID)
		}
		seen[m.ID] = true
		if !valid[m.Type] {
			return fmt.Errorf("materials: material %q has unknown type %q", m.ID, m.Type)
		}
		for _, tag := range m.Tags {
			if strings.TrimSpace(tag) == "" {
				return fmt.Errorf("materials: material %q has an empty tag", m.ID)
			}
		}
	}
	return nil
}
