package materials

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"csmaterials/internal/matrix"
	"csmaterials/internal/ontology"
)

// Repository is the in-memory CS Materials store: courses, their
// materials, and indexes from curriculum tags to the materials classified
// against them. It validates every classification against the guidelines
// it was created with.
type Repository struct {
	guidelines []*ontology.Guideline
	courses    map[string]*Course
	order      []string // course insertion order, for deterministic listings
	byTag      map[string][]*Material
	byMaterial map[string]*Material
}

// NewRepository creates an empty repository validating against the given
// guidelines (typically CS2013 and PDC12).
func NewRepository(guidelines ...*ontology.Guideline) *Repository {
	if len(guidelines) == 0 {
		panic("materials: NewRepository needs at least one guideline")
	}
	return &Repository{
		guidelines: guidelines,
		courses:    map[string]*Course{},
		byTag:      map[string][]*Material{},
		byMaterial: map[string]*Material{},
	}
}

// KnownTag reports whether id exists in any of the repository's
// guidelines.
func (r *Repository) KnownTag(id string) bool {
	for _, g := range r.guidelines {
		if g.Lookup(id) != nil {
			return true
		}
	}
	return false
}

// LookupTag returns the guideline node for id, searching all guidelines.
func (r *Repository) LookupTag(id string) *ontology.Node {
	for _, g := range r.guidelines {
		if n := g.Lookup(id); n != nil {
			return n
		}
	}
	return nil
}

// AddCourse validates and stores a course. Every material tag must exist
// in one of the repository's guidelines; material IDs must be globally
// unique.
func (r *Repository) AddCourse(c *Course) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if _, dup := r.courses[c.ID]; dup {
		return fmt.Errorf("materials: duplicate course ID %q", c.ID)
	}
	for _, m := range c.Materials {
		if _, dup := r.byMaterial[m.ID]; dup {
			return fmt.Errorf("materials: material ID %q already exists in another course", m.ID)
		}
		for _, tag := range m.Tags {
			if !r.KnownTag(tag) {
				return fmt.Errorf("materials: material %q references unknown curriculum tag %q", m.ID, tag)
			}
		}
	}
	r.indexCourse(c)
	return nil
}

// AdoptCourse stores a course whose content was already validated by
// this package — the incremental-ingest fast path. A delta ingest
// (dataset.Registry.Apply) derives most courses unchanged from an
// already-validated snapshot; re-running per-tag guideline lookups for
// them would make delta cost proportional to the corpus. Only index
// integrity (unique course and material IDs) is enforced; the caller
// is responsible for the course having passed AddCourse-level
// validation in a previous repository.
func (r *Repository) AdoptCourse(c *Course) error {
	if _, dup := r.courses[c.ID]; dup {
		return fmt.Errorf("materials: duplicate course ID %q", c.ID)
	}
	for _, m := range c.Materials {
		if _, dup := r.byMaterial[m.ID]; dup {
			return fmt.Errorf("materials: material ID %q already exists in another course", m.ID)
		}
	}
	r.indexCourse(c)
	return nil
}

// indexCourse registers a validated course in the lookup indexes.
func (r *Repository) indexCourse(c *Course) {
	r.courses[c.ID] = c
	r.order = append(r.order, c.ID)
	for _, m := range c.Materials {
		r.byMaterial[m.ID] = m
		for _, tag := range m.Tags {
			r.byTag[tag] = append(r.byTag[tag], m)
		}
	}
}

// Course returns the course with the given ID, or nil.
func (r *Repository) Course(id string) *Course { return r.courses[id] }

// Courses returns all courses in insertion order.
func (r *Repository) Courses() []*Course {
	out := make([]*Course, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.courses[id])
	}
	return out
}

// CoursesInGroup returns the courses whose primary or secondary group is
// g, in insertion order.
func (r *Repository) CoursesInGroup(g CourseGroup) []*Course {
	var out []*Course
	for _, c := range r.Courses() {
		if c.HasGroup(g) {
			out = append(out, c)
		}
	}
	return out
}

// Material returns the material with the given ID, or nil.
func (r *Repository) Material(id string) *Material { return r.byMaterial[id] }

// Materials returns every material sorted by ID.
func (r *Repository) Materials() []*Material {
	out := make([]*Material, 0, len(r.byMaterial))
	for _, m := range r.byMaterial {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MaterialsWithTag returns the materials classified against the exact tag.
func (r *Repository) MaterialsWithTag(tag string) []*Material {
	out := append([]*Material(nil), r.byTag[tag]...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumMaterials returns the total number of materials.
func (r *Repository) NumMaterials() int { return len(r.byMaterial) }

// CourseMatrix builds the paper's analysis input: a 0-1 matrix A with one
// row per given course and one column per curriculum tag that appears in
// at least one of them. It returns the matrix together with the column
// tag IDs (sorted) so entries can be interpreted.
func CourseMatrix(courses []*Course) (*matrix.Dense, []string) {
	if len(courses) == 0 {
		panic("materials: CourseMatrix with no courses")
	}
	universe := map[string]bool{}
	sets := make([]map[string]bool, len(courses))
	for i, c := range courses {
		sets[i] = c.TagSet()
		for t := range sets[i] {
			universe[t] = true
		}
	}
	cols := make([]string, 0, len(universe))
	for t := range universe {
		cols = append(cols, t)
	}
	sort.Strings(cols)
	colIdx := make(map[string]int, len(cols))
	for j, t := range cols {
		colIdx[t] = j
	}
	a := matrix.New(len(courses), len(cols))
	for i := range courses {
		for t := range sets[i] {
			a.Set(i, colIdx[t], 1)
		}
	}
	return a, cols
}

// SaveJSON writes the repository's courses as a JSON document.
func (r *Repository) SaveJSON(w io.Writer) error {
	doc := struct {
		Courses []*Course `json:"courses"`
	}{Courses: r.Courses()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadJSON reads courses from a JSON document produced by SaveJSON and
// adds them to the repository, validating each.
func (r *Repository) LoadJSON(rd io.Reader) error {
	var doc struct {
		Courses []*Course `json:"courses"`
	}
	if err := json.NewDecoder(rd).Decode(&doc); err != nil {
		return fmt.Errorf("materials: decoding JSON: %w", err)
	}
	for _, c := range doc.Courses {
		if err := r.AddCourse(c); err != nil {
			return err
		}
	}
	return nil
}
