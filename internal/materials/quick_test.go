package materials

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"csmaterials/internal/ontology"
)

// randomCourse builds a random valid course from real CS2013 leaf tags.
func randomCourse(rng *rand.Rand, id string, leaves []string) *Course {
	nMat := rng.Intn(10) + 1
	c := &Course{ID: id, Name: "course " + id, Group: GroupCS1}
	for m := 0; m < nMat; m++ {
		nTags := rng.Intn(4) + 1
		tags := make([]string, nTags)
		for t := range tags {
			tags[t] = leaves[rng.Intn(len(leaves))]
		}
		c.Materials = append(c.Materials, &Material{
			ID:    fmt.Sprintf("%s-m%d", id, m),
			Title: fmt.Sprintf("material %d", m),
			Type:  ValidTypes()[rng.Intn(len(ValidTypes()))],
			Tags:  tags,
		})
	}
	return c
}

func leafIDs() []string {
	leaves := ontology.CS2013().Leaves()
	out := make([]string, len(leaves))
	for i, l := range leaves {
		out[i] = l.ID
	}
	return out
}

// TestPropRandomCoursesRoundTripJSON: any valid random course survives
// SaveJSON → LoadJSON with its tag set intact.
func TestPropRandomCoursesRoundTripJSON(t *testing.T) {
	leaves := leafIDs()
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%5) + 1
		repo := NewRepository(ontology.CS2013())
		var originals []*Course
		for i := 0; i < n; i++ {
			c := randomCourse(rng, fmt.Sprintf("c%d", i), leaves)
			if err := repo.AddCourse(c); err != nil {
				return false
			}
			originals = append(originals, c)
		}
		var buf bytes.Buffer
		if err := repo.SaveJSON(&buf); err != nil {
			return false
		}
		re := NewRepository(ontology.CS2013())
		if err := re.LoadJSON(&buf); err != nil {
			return false
		}
		for _, c := range originals {
			got := re.Course(c.ID)
			if got == nil {
				return false
			}
			ws, gs := c.TagSet(), got.TagSet()
			if len(ws) != len(gs) {
				return false
			}
			for tag := range ws {
				if !gs[tag] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCourseMatrixConsistent: for random courses, the course matrix
// row sums equal the tag-set sizes and every set tag has a 1 column.
func TestPropCourseMatrixConsistent(t *testing.T) {
	leaves := leafIDs()
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%4) + 2
		var courses []*Course
		for i := 0; i < n; i++ {
			courses = append(courses, randomCourse(rng, fmt.Sprintf("c%d", i), leaves))
		}
		a, cols := CourseMatrix(courses)
		colIdx := map[string]int{}
		for j, t := range cols {
			colIdx[t] = j
		}
		for i, c := range courses {
			set := c.TagSet()
			if int(a.RowSums()[i]) != len(set) {
				return false
			}
			for tag := range set {
				j, ok := colIdx[tag]
				if !ok || a.At(i, j) != 1 { // lint:exact — incidence entries are exact 0/1
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropTagCountsMatchMaterials: a course's TagCounts sums to the total
// number of (material, tag) incidences.
func TestPropTagCountsMatchMaterials(t *testing.T) {
	leaves := leafIDs()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCourse(rng, "c", leaves)
		counts := c.TagCounts()
		sum := 0
		for _, n := range counts {
			sum += n
		}
		want := 0
		for _, m := range c.Materials {
			want += len(m.Tags)
		}
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
