package materials

import (
	"strings"
	"testing"

	"csmaterials/internal/ontology"
)

// FuzzLoadJSON feeds arbitrary bytes to the repository loader: it must
// never panic, and whatever it accepts must be a valid repository state
// (validated courses, consistent indexes).
func FuzzLoadJSON(f *testing.F) {
	f.Add(`{"courses":[]}`)
	f.Add(`{"courses":[{"id":"x","name":"X","group":"CS1","materials":[]}]}`)
	f.Add(`{"courses":[{"id":"x","name":"X","group":"CS1","materials":[{"id":"m","title":"t","type":"lecture","tags":["SDF/fundamental-programming-concepts/the-concept-of-recursion"]}]}]}`)
	f.Add(`{not json`)
	f.Add(`null`)
	f.Add(`{"courses":[{"id":"","name":""}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		repo := NewRepository(ontology.CS2013(), ontology.PDC12())
		err := repo.LoadJSON(strings.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must leave a consistent repository.
		for _, c := range repo.Courses() {
			if err := c.Validate(); err != nil {
				t.Fatalf("accepted invalid course: %v", err)
			}
			for _, m := range c.Materials {
				if repo.Material(m.ID) != m {
					t.Fatalf("material index inconsistent for %q", m.ID)
				}
				for _, tag := range m.Tags {
					if !repo.KnownTag(tag) {
						t.Fatalf("accepted unknown tag %q", tag)
					}
				}
			}
		}
	})
}
