// Package core is the paper-facing facade of the repository: one function
// per figure of "Data-Driven Discovery of Anchor Points for PDC Content"
// (SC-W 2023). Each Figure* function runs the corresponding analysis on
// the synthesized dataset and returns a text artifact matching the
// figure's content (plus optional SVG renderings); the cmd/figures binary
// and the root benchmark harness are thin wrappers around this package.
package core

import (
	"fmt"
	"sort"
	"strings"

	"csmaterials/internal/agreement"
	"csmaterials/internal/anchor"
	"csmaterials/internal/dataset"
	"csmaterials/internal/factorize"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/viz"
)

// Artifact is one regenerated figure: a text rendition (what the
// benchmark prints) and optional named SVG documents.
type Artifact struct {
	ID   string
	Text string
	SVGs map[string]string
}

func guidelines() []*ontology.Guideline {
	return []*ontology.Guideline{ontology.CS2013(), ontology.PDC12()}
}

// Figure1 reproduces the course inventory table.
func Figure1() (*Artifact, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-6s %-6s %5s %5s\n", "course", "group", "also", "tags", "mats")
	for _, c := range dataset.Courses() {
		fmt.Fprintf(&b, "%-28s %-6s %-6s %5d %5d\n",
			c.ID, c.Group, c.SecondaryGroup, len(c.TagSet()), len(c.Materials))
	}
	return &Artifact{ID: "figure1", Text: b.String()}, nil
}

// Figure2 reproduces the NNMF of all 20 courses with k = 4: the W matrix
// heat map and the group reading of each dimension.
func Figure2() (*Artifact, error) {
	m, err := factorize.Analyze(dataset.Courses(), 4, factorize.PaperOptions(), guidelines()...)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(m.Courses))
	for i, c := range m.Courses {
		labels[i] = fmt.Sprintf("%s [%s]", c.ID, c.Group)
	}
	var b strings.Builder
	b.WriteString("NNMF model of all courses with k=4, W matrix (rows normalized):\n")
	w := m.W.NormalizeRowsL1()
	b.WriteString(viz.ASCIIHeatmap(w, labels, 36))
	b.WriteString("\ndimension readings (dominant course groups):\n")
	for t, counts := range m.GroupPurity() {
		var parts []string
		var groups []string
		for g := range counts {
			groups = append(groups, string(g))
		}
		sort.Strings(groups)
		for _, g := range groups {
			parts = append(parts, fmt.Sprintf("%s:%d", g, counts[materials.CourseGroup(g)]))
		}
		fmt.Fprintf(&b, "  dim %d (%s): %s\n", t+1, m.TypeLabel(t), strings.Join(parts, " "))
	}
	return &Artifact{
		ID:   "figure2",
		Text: b.String(),
		SVGs: map[string]string{
			"figure2_w.svg": viz.SVGHeatmap(w, labels, []string{"d1", "d2", "d3", "d4"}, "Figure 2: NNMF of all courses, k=4, W matrix"),
		},
	}, nil
}

// figure3 renders one agreement distribution panel.
func figure3(ids []string, label string) (*Artifact, error) {
	a, err := agreement.Analyze(dataset.CoursesByID(ids), guidelines()...)
	if err != nil {
		return nil, err
	}
	series := a.Series()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d courses map to %d distinct curriculum tags\n", label, len(ids), a.NumTags())
	for k := 2; k <= len(ids); k++ {
		fmt.Fprintf(&b, "  tags in >=%d courses: %d\n", k, a.AtLeast(k))
	}
	b.WriteString(viz.ASCIISeries(series, 8))
	return &Artifact{
		ID:   "figure3-" + strings.ToLower(label),
		Text: b.String(),
		SVGs: map[string]string{
			fmt.Sprintf("figure3_%s.svg", strings.ToLower(label)): viz.SVGSeries(series,
				fmt.Sprintf("Figure 3: agreement in %s courses", label), "Tags", "How many courses the tag appears in"),
		},
	}, nil
}

// Figure3a reproduces the CS1 tag-agreement distribution.
func Figure3a() (*Artifact, error) { return figure3(dataset.CS1CourseIDs(), "CS1") }

// Figure3b reproduces the Data Structures tag-agreement distribution.
func Figure3b() (*Artifact, error) { return figure3(dataset.DSCourseIDs(), "DS") }

// agreementTrees renders the pruned hit-trees at the given thresholds.
func agreementTrees(ids []string, label string, thresholds []int) (*Artifact, error) {
	a, err := agreement.Analyze(dataset.CoursesByID(ids), guidelines()...)
	if err != nil {
		return nil, err
	}
	cs := ontology.CS2013()
	var b strings.Builder
	svgs := map[string]string{}
	for _, k := range thresholds {
		tree := a.Tree(cs, k)
		span := a.KASpan(k)
		counts := a.KACounts(k)
		fmt.Fprintf(&b, "%s agreement >= %d courses: %d tags across areas %v\n", label, k, a.AtLeast(k), span)
		var areas []string
		for ka := range counts {
			areas = append(areas, ka)
		}
		sort.Strings(areas)
		for _, ka := range areas {
			fmt.Fprintf(&b, "    %-28s %d tags\n", ka, counts[ka])
		}
		svgs[fmt.Sprintf("%s_agreement_%d.svg", strings.ToLower(label), k)] =
			viz.SVGRadialTree(tree, viz.RadialOptions{Counts: a.Counts, LabelAreas: true})
	}
	return &Artifact{ID: strings.ToLower(label) + "-trees", Text: b.String(), SVGs: svgs}, nil
}

// Figure4 reproduces the CS1 agreement trees at thresholds 2, 3, 4.
func Figure4() (*Artifact, error) {
	return agreementTrees(dataset.CS1CourseIDs(), "CS1", []int{2, 3, 4})
}

// Figure6 reproduces the Data Structures agreement trees at 2, 3, 4.
func Figure6() (*Artifact, error) {
	return agreementTrees(dataset.DSCourseIDs(), "DS", []int{2, 3, 4})
}

// flavors renders a CS1/DS flavor factorization: W and H heat maps plus
// the knowledge-area reading of every type and the k-selection
// diagnostics.
func flavors(ids []string, label string, figID string) (*Artifact, error) {
	courses := dataset.CoursesByID(ids)
	m, err := factorize.Analyze(courses, 3, factorize.PaperOptions(), guidelines()...)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(m.Courses))
	for i, c := range m.Courses {
		labels[i] = c.ID
	}
	var b strings.Builder
	fmt.Fprintf(&b, "NNMF of %s courses, k=3. W matrix (rows normalized):\n", label)
	w := m.W.NormalizeRowsL1()
	b.WriteString(viz.ASCIIHeatmap(w, labels, 28))
	b.WriteString("\ntype readings (H-matrix knowledge-area mass):\n")
	for t := 0; t < 3; t++ {
		kas := m.DominantKAs(t)
		var parts []string
		for _, kw := range kas[:minInt(5, len(kas))] {
			parts = append(parts, fmt.Sprintf("%s %.0f%%", kw.Tag, kw.Weight*100))
		}
		fmt.Fprintf(&b, "  type %d: %s\n", t+1, strings.Join(parts, ", "))
	}
	b.WriteString("\ncourse compositions:\n")
	for i, c := range m.Courses {
		shares := m.TypeShare(i)
		fmt.Fprintf(&b, "  %-26s dominant=type %d  shares=%.2f  evenness=%.2f\n",
			c.ID, m.DominantType(i)+1, shares, m.Evenness(i))
	}
	diag, err := factorize.CompareK(courses, []int{2, 3, 4}, factorize.PaperOptions(), guidelines()...)
	if err != nil {
		return nil, err
	}
	b.WriteString("\nmodel selection (the paper picked k=3 by inspection):\n")
	for _, d := range diag {
		fmt.Fprintf(&b, "  k=%d  reconstruction error=%.4f  H-row redundancy=%.3f\n", d.K, d.Err, d.Redundancy)
	}
	return &Artifact{
		ID:   figID,
		Text: b.String(),
		SVGs: map[string]string{
			figID + "_w.svg": viz.SVGHeatmap(w, labels, []string{"t1", "t2", "t3"},
				fmt.Sprintf("NNMF of %s courses, k=3: W matrix", label)),
			figID + "_h.svg": viz.SVGHeatmap(m.H, []string{"type 1", "type 2", "type 3"}, nil,
				fmt.Sprintf("NNMF of %s courses, k=3: H matrix", label)),
		},
	}, nil
}

// Figure5 reproduces the CS1 flavor factorization (W and H, k=3).
func Figure5() (*Artifact, error) {
	return flavors(dataset.CS1CourseIDs(), "CS1", "figure5")
}

// Figure7 reproduces the DS+Algorithms flavor factorization (k=3).
func Figure7() (*Artifact, error) {
	return flavors(dataset.DSAlgoCourseIDs(), "DS+Algo", "figure7")
}

// Figure8 reproduces the PDC course agreement tree at threshold 2.
func Figure8() (*Artifact, error) {
	a, err := agreement.Analyze(dataset.CoursesByID(dataset.PDCCourseIDs()), guidelines()...)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "PDC course agreement at >= 2 of %d courses: %d tags\n", len(dataset.PDCCourseIDs()), a.AtLeast(2))
	counts := a.KACounts(2)
	var areas []string
	for ka := range counts {
		areas = append(areas, ka)
	}
	sort.Strings(areas)
	for _, ka := range areas {
		fmt.Fprintf(&b, "    %-34s %d tags\n", ka, counts[ka])
	}
	b.WriteString("\nnon-parallelism entries shared by >=2 PDC courses (the paper's anchors):\n")
	parallelKAs := map[string]bool{"PD": true, "SF": true, "OS": true, "AR": true}
	cs := ontology.CS2013()
	for _, tag := range a.TagsAtLeast(2) {
		n := cs.Lookup(tag)
		if n == nil {
			continue // PDC12 entry
		}
		if parallelKAs[ontology.AreaOf(n).ID] {
			continue
		}
		fmt.Fprintf(&b, "    %s (in %d courses)\n", tag, a.Counts[tag])
	}
	tree := a.Tree(cs, 2)
	pdcTree := a.Tree(ontology.PDC12(), 2)
	return &Artifact{
		ID:   "figure8",
		Text: b.String(),
		SVGs: map[string]string{
			"figure8_cs2013.svg": viz.SVGRadialTree(tree, viz.RadialOptions{Counts: a.Counts, LabelAreas: true}),
			"figure8_pdc12.svg":  viz.SVGRadialTree(pdcTree, viz.RadialOptions{Counts: a.Counts, LabelAreas: true}),
		},
	}, nil
}

// AnchorReport reproduces the §5.2 discussion as a machine-generated
// report: for every course, the PDC content that anchors into it.
func AnchorReport() (*Artifact, error) {
	rec, err := anchor.NewRecommender(guidelines()...)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	for _, c := range dataset.Courses() {
		recs := rec.Recommend(c)
		if len(recs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "=== %s [%s]\n", c.ID, c.Group)
		b.WriteString(anchor.Report(recs))
	}
	return &Artifact{ID: "anchors", Text: b.String()}, nil
}

// AlignmentArtifact renders the §3.1.1 radial alignment view between two
// courses: the union of their curriculum tags as a hit-tree, each node
// colored on a divergent scale (-1 = only the left course covers it,
// 0 = both, +1 = only the right course) and sized by material counts.
func AlignmentArtifact(leftID, rightID string) (*Artifact, error) {
	repo := dataset.Repository()
	left := repo.Course(leftID)
	right := repo.Course(rightID)
	if left == nil {
		return nil, fmt.Errorf("core: unknown course %q", leftID)
	}
	if right == nil {
		return nil, fmt.Errorf("core: unknown course %q", rightID)
	}
	al := agreement.Align(left.Materials, right.Materials)

	alignment := map[string]float64{}
	counts := map[string]int{}
	lc, rc := left.TagCounts(), right.TagCounts()
	for _, t := range al.OnlyLeft {
		alignment[t] = -1
		counts[t] = lc[t]
	}
	for _, t := range al.OnlyRight {
		alignment[t] = 1
		counts[t] = rc[t]
	}
	for _, t := range al.Shared {
		// Shade toward the side with more materials on the tag.
		l, r := float64(lc[t]), float64(rc[t])
		alignment[t] = (r - l) / (r + l)
		counts[t] = lc[t] + rc[t]
	}
	cs := ontology.CS2013()
	tree := cs.Prune(func(n *ontology.Node) bool {
		_, hit := alignment[n.ID]
		return hit && len(n.Children) == 0
	})

	var b strings.Builder
	fmt.Fprintf(&b, "alignment of %s vs %s\n", leftID, rightID)
	fmt.Fprintf(&b, "  Jaccard: %.2f\n", al.Jaccard)
	fmt.Fprintf(&b, "  shared tags: %d\n", len(al.Shared))
	fmt.Fprintf(&b, "  only in %s: %d\n", leftID, len(al.OnlyLeft))
	fmt.Fprintf(&b, "  only in %s: %d\n", rightID, len(al.OnlyRight))

	return &Artifact{
		ID:   "alignment",
		Text: b.String(),
		SVGs: map[string]string{
			"alignment.svg": viz.SVGRadialTree(tree, viz.RadialOptions{
				Counts:     counts,
				Alignment:  alignment,
				LabelAreas: true,
			}),
		},
	}, nil
}

// Figures returns every artifact generator keyed by figure ID, in paper
// order.
func Figures() []struct {
	ID  string
	Gen func() (*Artifact, error)
} {
	return []struct {
		ID  string
		Gen func() (*Artifact, error)
	}{
		{"1", Figure1},
		{"2", Figure2},
		{"3a", Figure3a},
		{"3b", Figure3b},
		{"4", Figure4},
		{"5", Figure5},
		{"6", Figure6},
		{"7", Figure7},
		{"8", Figure8},
		{"anchors", AnchorReport},
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
