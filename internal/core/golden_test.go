package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden figure files")

// TestGoldenFigures locks the exact text of every regenerated figure.
// The dataset, the NNMF seeds, and every analysis are deterministic, so
// any diff here is a real behavior change — rerun with -update only when
// the change is intended, and review the diff like the paper artifact it
// is.
func TestGoldenFigures(t *testing.T) {
	for _, f := range Figures() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			art, err := f.Gen()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden-"+art.ID+".txt")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(art.Text), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/core -update`): %v", err)
			}
			if string(want) != art.Text {
				t.Errorf("figure %s drifted from its golden file %s;\nif intended, regenerate with -update", f.ID, path)
			}
		})
	}
}
