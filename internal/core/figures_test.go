package core

import (
	"strings"
	"testing"
)

func TestEveryFigureGenerates(t *testing.T) {
	for _, f := range Figures() {
		art, err := f.Gen()
		if err != nil {
			t.Fatalf("figure %s: %v", f.ID, err)
		}
		if art.Text == "" {
			t.Errorf("figure %s produced empty text", f.ID)
		}
		for name, svg := range art.SVGs {
			if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
				t.Errorf("figure %s: %s is not a valid SVG", f.ID, name)
			}
		}
	}
}

func TestFigure1ListsAllCourses(t *testing.T) {
	art, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(art.Text, "\n"), "\n")
	if len(lines) != 21 { // header + 20 courses
		t.Fatalf("figure 1 has %d lines, want 21", len(lines))
	}
	if !strings.Contains(art.Text, "uncc-3145-saule") || !strings.Contains(art.Text, "utsa-bopana") {
		t.Fatal("figure 1 missing courses")
	}
}

func TestFigure2MentionsAllDimensions(t *testing.T) {
	art, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, dim := range []string{"dim 1", "dim 2", "dim 3", "dim 4"} {
		if !strings.Contains(art.Text, dim) {
			t.Errorf("figure 2 missing %s", dim)
		}
	}
	if len(art.SVGs) != 1 {
		t.Fatalf("figure 2 SVGs = %d", len(art.SVGs))
	}
}

func TestFigure3Panels(t *testing.T) {
	a, err := Figure3a()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "CS1: 6 courses") {
		t.Fatalf("figure 3a header wrong: %q", strings.SplitN(a.Text, "\n", 2)[0])
	}
	b, err := Figure3b()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.Text, "DS: 5 courses") {
		t.Fatal("figure 3b header wrong")
	}
}

func TestFigure4ReportsNarrowing(t *testing.T) {
	art, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(art.Text, "agreement >= 2") || !strings.Contains(art.Text, "agreement >= 4") {
		t.Fatal("figure 4 missing thresholds")
	}
	if len(art.SVGs) != 3 {
		t.Fatalf("figure 4 SVGs = %d, want 3", len(art.SVGs))
	}
}

func TestFigure5ListsTypesAndSelection(t *testing.T) {
	art, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"type 1", "type 2", "type 3", "k=2", "k=3", "k=4", "washu-cse131-singh"} {
		if !strings.Contains(art.Text, want) {
			t.Errorf("figure 5 missing %q", want)
		}
	}
	if len(art.SVGs) != 2 {
		t.Fatalf("figure 5 SVGs = %d, want 2 (W and H)", len(art.SVGs))
	}
}

func TestFigure8ListsAnchors(t *testing.T) {
	art, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"DS/graphs-and-trees/directed-graphs",
		"SDF/fundamental-programming-concepts/the-concept-of-recursion",
		"AL/basic-analysis/big-o-notation-use",
	} {
		if !strings.Contains(art.Text, want) {
			t.Errorf("figure 8 missing anchor %q", want)
		}
	}
}

func TestAnchorReportCoversCS1AndDS(t *testing.T) {
	art, err := AnchorReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ccc-csci40-kerney", "vcu-cmsc256-duke", "reduction-order", "thread-safe-types", "task-graph-scheduling"} {
		if !strings.Contains(art.Text, want) {
			t.Errorf("anchor report missing %q", want)
		}
	}
}

func TestAlignmentArtifact(t *testing.T) {
	art, err := AlignmentArtifact("uncc-2214-krs", "uncc-2214-saule")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(art.Text, "Jaccard") {
		t.Fatal("alignment text missing Jaccard")
	}
	svg := art.SVGs["alignment.svg"]
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("alignment SVG malformed")
	}
	// Two sections of the same course share a large core: Jaccard well
	// above cross-family alignments.
	cross, err := AlignmentArtifact("uncc-2214-krs", "utsa-bopana")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cross.Text, "Jaccard: 0.0") {
		t.Fatalf("DS vs networking alignment should be near zero:\n%s", cross.Text)
	}
	if _, err := AlignmentArtifact("ghost", "utsa-bopana"); err == nil {
		t.Fatal("unknown left course accepted")
	}
	if _, err := AlignmentArtifact("utsa-bopana", "ghost"); err == nil {
		t.Fatal("unknown right course accepted")
	}
}
