package serving

import (
	"container/list"
	"context"
	"sync"

	"csmaterials/internal/obs"
)

// Cache is a bounded LRU result cache with singleflight deduplication:
// concurrent Do calls for the same key share one computation, and
// completed results are retained (most recently used first) up to the
// configured capacity. Errors are never cached.
//
// Alongside the fresh LRU the cache keeps a stale store of
// last-known-good values, bounded at twice the fresh capacity and
// ordered by recency of use, so an entry evicted from the fresh LRU
// remains available for degraded serving (Stale) for a while longer.
// The stale store only ever holds values that were at some point
// computed successfully.
//
// A capacity <= 0 disables retention — every Do misses and nothing is
// kept for stale serving — but singleflight deduplication still
// collapses concurrent callers.
type Cache struct {
	capacity int
	group    Group

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	staleCap   int
	staleLL    *list.List // front = most recently written/used
	staleItems map[string]*list.Element

	hits        uint64
	misses      uint64
	evictions   uint64
	shared      uint64
	staleServed uint64
}

type cacheEntry struct {
	key string
	val interface{}
}

// NewCache returns a cache holding at most capacity fresh entries and
// 2*capacity stale last-known-good entries.
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity:   capacity,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		staleCap:   2 * capacity,
		staleLL:    list.New(),
		staleItems: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.touchStale(key) // keep the stale copy as warm as the fresh one
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// put stores key→val in both the fresh LRU and the stale store,
// evicting least-recently-used entries from each when over capacity.
func (c *Cache) put(key string, val interface{}) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putStale(key, val)
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// putStale upserts key→val into the stale store; callers hold c.mu.
func (c *Cache) putStale(key string, val interface{}) {
	if el, ok := c.staleItems[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.staleLL.MoveToFront(el)
		return
	}
	c.staleItems[key] = c.staleLL.PushFront(&cacheEntry{key: key, val: val})
	for c.staleLL.Len() > c.staleCap {
		oldest := c.staleLL.Back()
		c.staleLL.Remove(oldest)
		delete(c.staleItems, oldest.Value.(*cacheEntry).key)
	}
}

// touchStale marks key's stale copy recently used; callers hold c.mu.
func (c *Cache) touchStale(key string) {
	if el, ok := c.staleItems[key]; ok {
		c.staleLL.MoveToFront(el)
	}
}

// Stale returns the last-known-good value for key from the stale
// store, counting a stale serve when found. Callers use it as the
// degraded fallback after Do failed (or was rejected by an open
// circuit); a found entry is marked recently used so actively
// degraded keys are the last to fall out.
func (c *Cache) Stale(key string) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.staleItems[key]; ok {
		c.staleLL.MoveToFront(el)
		c.staleServed++
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// DoCtxFn returns the cached value for key or computes it,
// deduplicating concurrent computations for the same key through the
// singleflight group. The boolean reports whether the value was served
// without running compute in this call (a cache hit or a shared
// flight).
//
// The compute function receives the FLIGHT context, not any one
// caller's: while at least one caller is still waiting the flight stays
// live, so a disconnecting client can neither poison nor cancel the
// entry for everyone else (the cancelled caller itself receives
// ctx.Err()). Only when the last waiter departs is the flight context
// cancelled, letting a context-aware compute stop mid-iteration instead
// of converging for nobody. Successful results are cached either way;
// errors never are.
// The ladder is traced when ctx carries an obs.Trace: the lookup is
// recorded as a cache-hit/cache-miss span, the flight that actually
// computes records singleflight-lead and store spans into ITS
// initiator's trace (joiners' compute closures never run), and a
// caller that shared another flight records a singleflight-join span
// covering its wait. Untraced contexts skip all of it.
func (c *Cache) DoCtxFn(ctx context.Context, key string, compute func(context.Context) (interface{}, error)) (interface{}, bool, error) {
	lookup := obs.StartSpan(ctx, "cache-lookup")
	if v, ok := c.Get(key); ok {
		lookup.EndAs("cache-hit")
		return v, true, nil
	}
	lookup.EndAs("cache-miss")
	sfStart := obs.Now(ctx)
	v, err, sharedFlight := c.group.DoCtxFn(ctx, key, func(fctx context.Context) (interface{}, error) {
		// This closure runs only for the caller that initiated the
		// flight, so recording into ctx's trace is recording the lead.
		lead := obs.StartSpan(ctx, "singleflight-lead")
		v, err := compute(fctx)
		if err == nil {
			st := obs.StartSpan(ctx, "store")
			c.put(key, v)
			st.End()
		}
		lead.End()
		return v, err
	})
	if sharedFlight {
		obs.AddSpan(ctx, "singleflight-join", sfStart)
		c.mu.Lock()
		c.shared++
		c.mu.Unlock()
	}
	return v, sharedFlight, err
}

// DoCtx is DoCtxFn for computations that do not take a context: the
// flight is fully detached and always runs to completion once started,
// even if every waiting caller's ctx is cancelled first.
func (c *Cache) DoCtx(ctx context.Context, key string, compute func() (interface{}, error)) (interface{}, bool, error) {
	return c.DoCtxFn(ctx, key, func(context.Context) (interface{}, error) { return compute() })
}

// Do is DoCtx with a background context.
func (c *Cache) Do(key string, compute func() (interface{}, error)) (interface{}, bool, error) {
	return c.DoCtx(context.Background(), key, compute)
}

// Invalidate removes every fresh AND stale entry whose key satisfies
// match, returning the number of entries dropped across both stores.
// Unlike Reset it also purges the stale store: an invalidated key must
// not resurface as a degraded last-known-good serve (the caller knows
// the value is wrong, not merely old). In-flight singleflight
// computations are unaffected — they complete for their waiters and
// store under their (now unmatched or re-matched) keys.
func (c *Cache) Invalidate(match func(key string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); match(e.key) {
			c.ll.Remove(el)
			delete(c.items, e.key)
			n++
		}
		el = next
	}
	for el := c.staleLL.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); match(e.key) {
			c.staleLL.Remove(el)
			delete(c.staleItems, e.key)
			n++
		}
		el = next
	}
	return n
}

// Reset drops all retained fresh entries; the stale last-known-good
// store and the counters are preserved, so a reset (like any other
// fresh-cache miss) can still degrade to stale serving.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Shared      uint64 `json:"shared_flights"`
	Evictions   uint64 `json:"evictions"`
	Size        int    `json:"size"`
	Capacity    int    `json:"capacity"`
	StaleSize   int    `json:"stale_size"`
	StaleServed uint64 `json:"stale_served"`
}

// Stats snapshots the hit/miss/eviction/stale accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Shared:      c.shared,
		Evictions:   c.evictions,
		Size:        c.ll.Len(),
		Capacity:    c.capacity,
		StaleSize:   c.staleLL.Len(),
		StaleServed: c.staleServed,
	}
}
