package serving

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU result cache with singleflight deduplication:
// concurrent Do calls for the same key share one computation, and
// completed results are retained (most recently used first) up to the
// configured capacity. Errors are never cached.
//
// A capacity <= 0 disables retention — every Do misses — but
// singleflight deduplication still collapses concurrent callers.
type Cache struct {
	capacity int
	group    Group

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
	shared    uint64
}

type cacheEntry struct {
	key string
	val interface{}
}

// NewCache returns a cache holding at most capacity entries.
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// put stores key→val, evicting the least recently used entry when full.
func (c *Cache) put(key string, val interface{}) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Do returns the cached value for key or computes it, deduplicating
// concurrent computations for the same key through the singleflight
// group. The boolean reports whether the value was served without
// running compute in this call (a cache hit or a shared flight).
func (c *Cache) Do(key string, compute func() (interface{}, error)) (interface{}, bool, error) {
	if v, ok := c.Get(key); ok {
		return v, true, nil
	}
	v, err, sharedFlight := c.group.Do(key, func() (interface{}, error) {
		v, err := compute()
		if err == nil {
			c.put(key, v)
		}
		return v, err
	})
	if sharedFlight {
		c.mu.Lock()
		c.shared++
		c.mu.Unlock()
	}
	return v, sharedFlight, err
}

// Reset drops all retained entries; counters are preserved.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Shared    uint64 `json:"shared_flights"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// Stats snapshots the hit/miss/eviction accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Shared:    c.shared,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
	}
}
