package serving

import (
	"container/list"
	"context"
	"sort"
	"sync"

	"csmaterials/internal/obs"
)

// Cache is a bounded LRU result cache with singleflight deduplication:
// concurrent Do calls for the same key share one computation, and
// completed results are retained (most recently used first) up to the
// configured capacity. Errors are never cached.
//
// Alongside the fresh LRU the cache keeps a stale store of
// last-known-good values, bounded at twice the fresh capacity and
// ordered by recency of use, so an entry evicted from the fresh LRU
// remains available for degraded serving (Stale) for a while longer.
// The stale store only ever holds values that were at some point
// computed successfully.
//
// The cache is tenant-partitionable: a scope function (SetScopeFunc)
// maps every key to a scope — in the multi-dataset engine, the dataset
// ID — and each scope owns its own LRU lists, counters, and capacity
// budget. Eviction is scoped: a tenant filling its budget evicts only
// its own entries, never another tenant's. Budgets default to a fair
// share of the global capacity across the scopes declared with
// Partition and can be overridden per scope. Without a scope function
// every key lands in the single "" scope with the full capacity as its
// budget, which is exactly the pre-partitioned behaviour.
//
// A capacity <= 0 disables retention — every Do misses and nothing is
// kept for stale serving — but singleflight deduplication still
// collapses concurrent callers.
type Cache struct {
	capacity int
	group    Group

	mu       sync.Mutex
	scopeOf  func(key string) string // nil → everything in scope ""
	scopes   map[string]*scopeStore
	declared []string       // scopes sharing the capacity (sorted)
	budgets  map[string]int // per-scope overrides

	shared uint64
}

// scopeStore is one scope's partition: its own fresh LRU, stale store,
// and accounting, so tenants cannot observe (or disturb) each other
// through shared lists or counters.
type scopeStore struct {
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	staleLL    *list.List // front = most recently written/used
	staleItems map[string]*list.Element

	hits        uint64
	misses      uint64
	evictions   uint64
	staleServed uint64
}

func newScopeStore() *scopeStore {
	return &scopeStore{
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		staleLL:    list.New(),
		staleItems: make(map[string]*list.Element),
	}
}

type cacheEntry struct {
	key string
	val interface{}
}

// NewCache returns a cache holding at most capacity fresh entries and
// 2*capacity stale last-known-good entries, all in one unpartitioned
// scope until SetScopeFunc/Partition carve it up.
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		scopes:   map[string]*scopeStore{},
		budgets:  map[string]int{},
	}
}

// SetScopeFunc installs the key→scope mapping used to partition the
// cache. Call it before the cache holds entries: existing entries keep
// the scope they were stored under.
func (c *Cache) SetScopeFunc(f func(key string) string) {
	c.mu.Lock()
	c.scopeOf = f
	c.mu.Unlock()
}

// Partition declares the scopes that share the global capacity and the
// per-scope budget overrides (entries; scopes absent from overrides get
// a fair share of what the overrides leave). It is called again
// whenever the tenant set changes; shrunken budgets are enforced
// immediately, evicting over-budget entries scope by scope.
func (c *Cache) Partition(scopes []string, overrides map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.declared = append([]string(nil), scopes...)
	sort.Strings(c.declared)
	c.budgets = make(map[string]int, len(overrides))
	for s, b := range overrides {
		if b > 0 {
			c.budgets[s] = b
		}
	}
	for scope, st := range c.scopes {
		c.enforceLocked(scope, st)
	}
}

// scopeLocked resolves key's scope and returns its store, creating the
// partition on first touch; callers hold c.mu.
func (c *Cache) scopeLocked(key string) (string, *scopeStore) {
	scope := ""
	if c.scopeOf != nil {
		scope = c.scopeOf(key)
	}
	st, ok := c.scopes[scope]
	if !ok {
		st = newScopeStore()
		c.scopes[scope] = st
	}
	return scope, st
}

// budgetLocked is scope's fresh-entry budget: its override when one is
// set, otherwise an equal share of the capacity the overrides leave
// free, split across the declared scopes without overrides (never below
// one entry, so a tenant can always retain something). With no declared
// scopes — the unpartitioned, single-tenant case — the budget is the
// whole capacity. Callers hold c.mu.
func (c *Cache) budgetLocked(scope string) int {
	if b, ok := c.budgets[scope]; ok {
		return b
	}
	if len(c.declared) == 0 {
		return c.capacity
	}
	reserved, unoverridden := 0, 0
	for _, s := range c.declared {
		if b, ok := c.budgets[s]; ok {
			reserved += b
		} else {
			unoverridden++
		}
	}
	if unoverridden == 0 {
		unoverridden = 1 // undeclared scope asking: act like one claimant
	}
	share := (c.capacity - reserved) / unoverridden
	if share < 1 {
		share = 1
	}
	return share
}

// enforceLocked evicts scope's least-recently-used entries until it is
// within budget (fresh) and twice budget (stale); callers hold c.mu.
func (c *Cache) enforceLocked(scope string, st *scopeStore) {
	budget := c.budgetLocked(scope)
	for st.ll.Len() > budget {
		oldest := st.ll.Back()
		st.ll.Remove(oldest)
		delete(st.items, oldest.Value.(*cacheEntry).key)
		st.evictions++
	}
	for st.staleLL.Len() > 2*budget {
		oldest := st.staleLL.Back()
		st.staleLL.Remove(oldest)
		delete(st.staleItems, oldest.Value.(*cacheEntry).key)
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, st := c.scopeLocked(key)
	if el, ok := st.items[key]; ok {
		st.ll.MoveToFront(el)
		touchStale(st, key) // keep the stale copy as warm as the fresh one
		st.hits++
		return el.Value.(*cacheEntry).val, true
	}
	st.misses++
	return nil, false
}

// put stores key→val in its scope's fresh LRU and stale store,
// evicting least-recently-used entries of THAT SCOPE when over its
// budget.
func (c *Cache) put(key string, val interface{}) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	scope, st := c.scopeLocked(key)
	putStale(st, key, val)
	if el, ok := st.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		st.ll.MoveToFront(el)
		c.enforceLocked(scope, st)
		return
	}
	st.items[key] = st.ll.PushFront(&cacheEntry{key: key, val: val})
	c.enforceLocked(scope, st)
}

// putStale upserts key→val into the scope's stale store; callers hold
// c.mu (the bound is enforced by enforceLocked).
func putStale(st *scopeStore, key string, val interface{}) {
	if el, ok := st.staleItems[key]; ok {
		el.Value.(*cacheEntry).val = val
		st.staleLL.MoveToFront(el)
		return
	}
	st.staleItems[key] = st.staleLL.PushFront(&cacheEntry{key: key, val: val})
}

// touchStale marks key's stale copy recently used; callers hold c.mu.
func touchStale(st *scopeStore, key string) {
	if el, ok := st.staleItems[key]; ok {
		st.staleLL.MoveToFront(el)
	}
}

// Stale returns the last-known-good value for key from its scope's
// stale store, counting a stale serve when found. Callers use it as the
// degraded fallback after Do failed (or was rejected by an open
// circuit); a found entry is marked recently used so actively
// degraded keys are the last to fall out.
func (c *Cache) Stale(key string) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, st := c.scopeLocked(key)
	if el, ok := st.staleItems[key]; ok {
		st.staleLL.MoveToFront(el)
		st.staleServed++
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// DoCtxFn returns the cached value for key or computes it,
// deduplicating concurrent computations for the same key through the
// singleflight group. The boolean reports whether the value was served
// without running compute in this call (a cache hit or a shared
// flight).
//
// The compute function receives the FLIGHT context, not any one
// caller's: while at least one caller is still waiting the flight stays
// live, so a disconnecting client can neither poison nor cancel the
// entry for everyone else (the cancelled caller itself receives
// ctx.Err()). Only when the last waiter departs is the flight context
// cancelled, letting a context-aware compute stop mid-iteration instead
// of converging for nobody. Successful results are cached either way;
// errors never are.
// The ladder is traced when ctx carries an obs.Trace: the lookup is
// recorded as a cache-hit/cache-miss span, the flight that actually
// computes records singleflight-lead and store spans into ITS
// initiator's trace (joiners' compute closures never run), and a
// caller that shared another flight records a singleflight-join span
// covering its wait. Untraced contexts skip all of it.
func (c *Cache) DoCtxFn(ctx context.Context, key string, compute func(context.Context) (interface{}, error)) (interface{}, bool, error) {
	lookup := obs.StartSpan(ctx, "cache-lookup")
	if v, ok := c.Get(key); ok {
		lookup.EndAs("cache-hit")
		return v, true, nil
	}
	lookup.EndAs("cache-miss")
	sfStart := obs.Now(ctx)
	v, err, sharedFlight := c.group.DoCtxFn(ctx, key, func(fctx context.Context) (interface{}, error) {
		// This closure runs only for the caller that initiated the
		// flight, so recording into ctx's trace is recording the lead.
		lead := obs.StartSpan(ctx, "singleflight-lead")
		v, err := compute(fctx)
		if err == nil {
			st := obs.StartSpan(ctx, "store")
			c.put(key, v)
			st.End()
		}
		lead.End()
		return v, err
	})
	if sharedFlight {
		obs.AddSpan(ctx, "singleflight-join", sfStart)
		c.mu.Lock()
		c.shared++
		c.mu.Unlock()
	}
	return v, sharedFlight, err
}

// DoCtx is DoCtxFn for computations that do not take a context: the
// flight is fully detached and always runs to completion once started,
// even if every waiting caller's ctx is cancelled first.
func (c *Cache) DoCtx(ctx context.Context, key string, compute func() (interface{}, error)) (interface{}, bool, error) {
	return c.DoCtxFn(ctx, key, func(context.Context) (interface{}, error) { return compute() })
}

// Do is DoCtx with a background context.
func (c *Cache) Do(key string, compute func() (interface{}, error)) (interface{}, bool, error) {
	return c.DoCtx(context.Background(), key, compute) // lint:detach stale-refresh flights run to completion regardless of the triggering request
}

// Invalidate removes every fresh AND stale entry (across all scopes)
// whose key satisfies match, returning the number of entries dropped
// across both stores. Unlike Reset it also purges the stale store: an
// invalidated key must not resurface as a degraded last-known-good
// serve (the caller knows the value is wrong, not merely old). Scope
// counters are untouched — invalidation is a corpus event, not a
// tenant teardown (that is DropScope). In-flight singleflight
// computations are unaffected — they complete for their waiters and
// store under their (now unmatched or re-matched) keys.
func (c *Cache) Invalidate(match func(key string) bool) int {
	fresh, stale := c.InvalidateDetail(match)
	return fresh + stale
}

// InvalidateDetail is Invalidate with the two stores reported
// separately: entries dropped from the fresh LRUs and entries dropped
// from the stale last-known-good stores. The split matters for
// revision sweeps: a scope can hold STALE-ONLY entries — every fresh
// copy already evicted — and those are exactly the copies that would
// otherwise surface a dead revision's value through degraded serving.
// The stale count proves the sweep reached them.
func (c *Cache) InvalidateDetail(match func(key string) bool) (fresh, stale int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.scopes {
		for el := st.ll.Front(); el != nil; {
			next := el.Next()
			if e := el.Value.(*cacheEntry); match(e.key) {
				st.ll.Remove(el)
				delete(st.items, e.key)
				fresh++
			}
			el = next
		}
		for el := st.staleLL.Front(); el != nil; {
			next := el.Next()
			if e := el.Value.(*cacheEntry); match(e.key) {
				st.staleLL.Remove(el)
				delete(st.staleItems, e.key)
				stale++
			}
			el = next
		}
	}
	return fresh, stale
}

// DroppedEntry is one entry removed by a Rekey sweep, returned to the
// caller because it is no longer reachable through the cache — the
// delta-refresh path reuses dropped values as warm-start priors.
type DroppedEntry struct {
	Key   string
	Val   interface{}
	Stale bool
}

// Rekeyed summarizes a Rekey sweep.
type Rekeyed struct {
	MovedFresh   int
	MovedStale   int
	DroppedFresh int
	DroppedStale int
}

// Rekey rewrites or removes entries key by key: for every fresh and
// stale entry, mapper(key) returns the entry's new key — the same key
// to leave it untouched, "" to drop it, or a different key to migrate
// the entry in place. This is how a revision bump carries provably
// unaffected results forward: the value survives under the new
// revision's key, keeping its LRU position, instead of being thrown
// away and recomputed. If the new key already exists the existing
// entry wins and the source is dropped; an entry whose new key maps to
// a different scope is re-inserted there (most recently used) under
// that scope's budget. mapper must be pure and fast — it runs under
// the cache lock. Dropped entries are returned for reuse.
func (c *Cache) Rekey(mapper func(key string) string) (Rekeyed, []DroppedEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum Rekeyed
	var dropped []DroppedEntry
	for scope, st := range c.scopes {
		c.rekeyList(scope, st, false, mapper, &sum, &dropped)
		c.rekeyList(scope, st, true, mapper, &sum, &dropped)
	}
	return sum, dropped
}

// rekeyList applies mapper to one scope's fresh or stale list; callers
// hold c.mu.
func (c *Cache) rekeyList(scope string, st *scopeStore, stale bool, mapper func(key string) string, sum *Rekeyed, dropped *[]DroppedEntry) {
	ll, items := st.ll, st.items
	if stale {
		ll, items = st.staleLL, st.staleItems
	}
	countMove, countDrop := &sum.MovedFresh, &sum.DroppedFresh
	if stale {
		countMove, countDrop = &sum.MovedStale, &sum.DroppedStale
	}
	for el := ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		newKey := mapper(e.key)
		switch {
		case newKey == e.key:
			// untouched
		case newKey == "":
			ll.Remove(el)
			delete(items, e.key)
			*countDrop++
			*dropped = append(*dropped, DroppedEntry{Key: e.key, Val: e.val, Stale: stale})
		default:
			target := scope
			if c.scopeOf != nil {
				target = c.scopeOf(newKey)
			}
			tst := st
			if target != scope {
				ts, ok := c.scopes[target]
				if !ok {
					ts = newScopeStore()
					c.scopes[target] = ts
				}
				tst = ts
			}
			tItems := tst.items
			if stale {
				tItems = tst.staleItems
			}
			if _, exists := tItems[newKey]; exists {
				ll.Remove(el)
				delete(items, e.key)
				*countDrop++
				*dropped = append(*dropped, DroppedEntry{Key: e.key, Val: e.val, Stale: stale})
				break
			}
			delete(items, e.key)
			if tst == st {
				e.key = newKey
				items[newKey] = el
			} else {
				ll.Remove(el)
				e.key = newKey
				if stale {
					tst.staleItems[newKey] = tst.staleLL.PushFront(e)
				} else {
					tst.items[newKey] = tst.ll.PushFront(e)
				}
				c.enforceLocked(target, tst)
			}
			*countMove++
		}
		el = next
	}
}

// DropScope tears down one scope's whole partition — fresh entries,
// stale entries, AND counters — returning the number of entries
// dropped. This is the tenant-deletion path: after it, snapshots and
// /metrics no longer report the scope at all, rather than carrying a
// ghost tenant's stats forever.
func (c *Cache) DropScope(scope string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.scopes[scope]
	if !ok {
		return 0
	}
	n := st.ll.Len() + st.staleLL.Len()
	delete(c.scopes, scope)
	return n
}

// Reset drops all retained fresh entries in every scope; the stale
// last-known-good stores and the counters are preserved, so a reset
// (like any other fresh-cache miss) can still degrade to stale serving.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.scopes {
		st.ll.Init()
		st.items = make(map[string]*list.Element)
	}
}

// ScopeCacheStats is one scope's slice of the cache accounting.
type ScopeCacheStats struct {
	Budget      int    `json:"budget"`
	Size        int    `json:"size"`
	StaleSize   int    `json:"stale_size"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
	StaleServed uint64 `json:"stale_served"`
}

// CacheStats is a point-in-time snapshot of the cache counters. The
// top-level fields aggregate across scopes; Scopes breaks the same
// accounting down per named partition (absent while the cache is
// unpartitioned, so the single-tenant snapshot keeps its old shape).
type CacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Shared      uint64 `json:"shared_flights"`
	Evictions   uint64 `json:"evictions"`
	Size        int    `json:"size"`
	Capacity    int    `json:"capacity"`
	StaleSize   int    `json:"stale_size"`
	StaleServed uint64 `json:"stale_served"`

	Scopes map[string]ScopeCacheStats `json:"scopes,omitempty"`
}

// Stats snapshots the hit/miss/eviction/stale accounting, aggregated
// and per scope.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := CacheStats{Capacity: c.capacity, Shared: c.shared}
	for scope, st := range c.scopes {
		out.Hits += st.hits
		out.Misses += st.misses
		out.Evictions += st.evictions
		out.Size += st.ll.Len()
		out.StaleSize += st.staleLL.Len()
		out.StaleServed += st.staleServed
		if scope == "" {
			continue // the unpartitioned scope is the aggregate itself
		}
		if out.Scopes == nil {
			out.Scopes = make(map[string]ScopeCacheStats)
		}
		out.Scopes[scope] = ScopeCacheStats{
			Budget:      c.budgetLocked(scope),
			Size:        st.ll.Len(),
			StaleSize:   st.staleLL.Len(),
			Hits:        st.hits,
			Misses:      st.misses,
			Evictions:   st.evictions,
			StaleServed: st.staleServed,
		}
	}
	return out
}

// ScopeBudget reports the current fresh-entry budget of scope (the
// override when set, the fair share otherwise).
func (c *Cache) ScopeBudget(scope string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budgetLocked(scope)
}
