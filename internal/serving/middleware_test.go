package serving

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecoverConvertsPanicTo500JSON(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := Recover(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d", rr.Code)
	}
	var out struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.Bytes())
	}
	if out.Error.Code != "internal" || out.Error.Message == "" {
		t.Fatalf("error envelope = %+v", out)
	}
	if !strings.Contains(buf.String(), "kaboom") {
		t.Fatalf("panic not logged: %q", buf.String())
	}
}

func TestRecoverPassesThroughNormalResponses(t *testing.T) {
	h := Recover(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("tea"))
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusTeapot || rr.Body.String() != "tea" {
		t.Fatalf("resp = %d %q", rr.Code, rr.Body.String())
	}
}

func TestAccessLogLine(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := AccessLog(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte("nope"))
	}))
	req := httptest.NewRequest("GET", "/api/v1/ghost?x=1", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	line := buf.String()
	for _, want := range []string{"method=GET", `path="/api/v1/ghost"`, `query="x=1"`, "status=404", "bytes=4"} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log %q missing %q", line, want)
		}
	}
}

func TestInstrumentRecordsRoute(t *testing.T) {
	m := NewMetrics()
	h := Instrument(m, "GET /slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/slow", nil))
	snap := m.Snapshot()
	rs := snap.Routes["GET /slow"]
	if rs.Count != 1 || rs.ByStatus["200"] != 1 {
		t.Fatalf("route stats = %+v", rs)
	}
	if snap.InFlight != 0 {
		t.Fatalf("in_flight = %d after request", snap.InFlight)
	}
}

func TestInstrumentMetersEscapingPanicAs500(t *testing.T) {
	m := NewMetrics()
	h := Recover(nil, Instrument(m, "GET /boom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/boom", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d", rr.Code)
	}
	rs := m.Snapshot().Routes["GET /boom"]
	if rs.ByStatus["500"] != 1 {
		t.Fatalf("route stats = %+v", rs)
	}
	if got := m.Snapshot().InFlight; got != 0 {
		t.Fatalf("in_flight = %d after panic", got)
	}
}

func TestStatusWriterDefaultsTo200(t *testing.T) {
	rr := httptest.NewRecorder()
	sw := Wrap(rr)
	sw.Write([]byte("hi"))
	if sw.Status != http.StatusOK || sw.Bytes != 2 || !sw.Wrote() {
		t.Fatalf("sw = %+v", sw)
	}
	if Wrap(sw) != sw {
		t.Fatal("double wrap")
	}
}
