package serving

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightShares proves that callers arriving while a flight is
// in progress share its result: the test parks the first call on a
// channel, waits until N more callers have joined the flight, and only
// then lets the computation finish.
func TestSingleflightShares(t *testing.T) {
	var g Group
	var calls int32
	started := make(chan struct{})
	block := make(chan struct{})

	results := make(chan int, 9)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _ := g.Do("k", func() (interface{}, error) {
			atomic.AddInt32(&calls, 1)
			close(started)
			<-block
			return 42, nil
		})
		if err != nil {
			t.Error(err)
		}
		results <- v.(int)
	}()
	<-started

	const joiners = 8
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (interface{}, error) {
				atomic.AddInt32(&calls, 1)
				return -1, nil
			})
			if err != nil {
				t.Error(err)
			}
			if !shared {
				t.Error("joiner did not share the flight")
			}
			results <- v.(int)
		}()
	}
	// Wait until all joiners are provably parked on the in-flight call
	// before releasing it, so sharing is deterministic, not timing luck.
	deadline := time.Now().Add(5 * time.Second)
	for g.waiting("k") < joiners {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d joiners parked", g.waiting("k"), joiners)
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	close(results)

	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("computation ran %d times, want 1", n)
	}
	count := 0
	for v := range results {
		count++
		if v != 42 {
			t.Fatalf("got %d, want 42", v)
		}
	}
	if count != joiners+1 {
		t.Fatalf("%d results, want %d", count, joiners+1)
	}
}

func TestSingleflightDistinctKeys(t *testing.T) {
	var g Group
	v1, err, shared := g.Do("a", func() (interface{}, error) { return 1, nil })
	if err != nil || shared || v1.(int) != 1 {
		t.Fatalf("a: v=%v err=%v shared=%v", v1, err, shared)
	}
	v2, err, shared := g.Do("b", func() (interface{}, error) { return 2, nil })
	if err != nil || shared || v2.(int) != 2 {
		t.Fatalf("b: v=%v err=%v shared=%v", v2, err, shared)
	}
	// A key is re-computable after its flight completes.
	v3, _, shared := g.Do("a", func() (interface{}, error) { return 3, nil })
	if shared || v3.(int) != 3 {
		t.Fatalf("second a flight: v=%v shared=%v", v3, shared)
	}
}

func TestSingleflightError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (interface{}, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestSingleflightPanic: the panic propagates to the initiating caller
// and parked waiters get an error instead of hanging.
func TestSingleflightPanic(t *testing.T) {
	var g Group
	started := make(chan struct{})
	block := make(chan struct{})
	panicked := make(chan interface{}, 1)
	go func() {
		defer func() { panicked <- recover() }()
		g.Do("k", func() (interface{}, error) {
			close(started)
			<-block
			panic("kaboom")
		})
	}()
	<-started
	waiterErr := make(chan error, 1)
	go func() {
		_, err, _ := g.Do("k", func() (interface{}, error) { return nil, nil })
		waiterErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.waiting("k") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	if p := <-panicked; p != "kaboom" {
		t.Fatalf("initiator recovered %v", p)
	}
	select {
	case err := <-waiterErr:
		if err == nil {
			t.Fatal("waiter got nil error after panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung after panic")
	}
}

// TestSingleflightLeaderCancelDoesNotPoisonFollowers is the regression
// test for the context-cancellation audit: a leader whose request
// context is cancelled mid-flight abandons the wait with ctx.Err(),
// but the computation keeps running detached and its real result is
// delivered to followers parked on the same key.
func TestSingleflightLeaderCancelDoesNotPoisonFollowers(t *testing.T) {
	var g Group
	started := make(chan struct{})
	block := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	leaderErr := make(chan error, 1)
	go func() {
		_, err, _ := g.DoCtx(ctx, "k", func() (interface{}, error) {
			close(started)
			<-block
			return 42, nil
		})
		leaderErr <- err
	}()
	<-started

	followerDone := make(chan struct{})
	var fv interface{}
	var ferr error
	var fshared bool
	go func() {
		defer close(followerDone)
		fv, ferr, fshared = g.DoCtx(context.Background(), "k", func() (interface{}, error) {
			return -1, errors.New("follower must not compute")
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.waiting("k") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never parked")
		}
		time.Sleep(time.Millisecond)
	}

	// Cancel the leader while the flight is still blocked: the leader
	// leaves immediately with its context error.
	cancel()
	select {
	case err := <-leaderErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled leader got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled leader still waiting on the flight")
	}
	select {
	case <-followerDone:
		t.Fatal("follower finished while the flight was still blocked")
	default:
	}

	close(block)
	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower hung after the flight completed")
	}
	if ferr != nil || fv.(int) != 42 || !fshared {
		t.Fatalf("follower got v=%v err=%v shared=%v, want 42 from the leader's flight", fv, ferr, fshared)
	}

	// The key is reusable afterwards: no poisoned state remains.
	v, err, shared := g.Do("k", func() (interface{}, error) { return 7, nil })
	if err != nil || shared || v.(int) != 7 {
		t.Fatalf("post-cancel flight: v=%v err=%v shared=%v", v, err, shared)
	}
}

// TestSingleflightWaiterCancel: a follower with a cancelled context
// stops waiting, while the leader still receives the real result.
func TestSingleflightWaiterCancel(t *testing.T) {
	var g Group
	started := make(chan struct{})
	block := make(chan struct{})

	leaderVal := make(chan interface{}, 1)
	go func() {
		v, _, _ := g.Do("k", func() (interface{}, error) {
			close(started)
			<-block
			return "real", nil
		})
		leaderVal <- v
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err, shared := g.DoCtx(ctx, "k", func() (interface{}, error) { return nil, nil })
		if !shared {
			t.Error("waiter did not join the flight")
		}
		waiterErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.waiting("k") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still parked")
	}

	close(block)
	if v := <-leaderVal; v.(string) != "real" {
		t.Fatalf("leader got %v", v)
	}
}
