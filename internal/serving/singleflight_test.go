package serving

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightShares proves that callers arriving while a flight is
// in progress share its result: the test parks the first call on a
// channel, waits until N more callers have joined the flight, and only
// then lets the computation finish.
func TestSingleflightShares(t *testing.T) {
	var g Group
	var calls int32
	started := make(chan struct{})
	block := make(chan struct{})

	results := make(chan int, 9)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _ := g.Do("k", func() (interface{}, error) {
			atomic.AddInt32(&calls, 1)
			close(started)
			<-block
			return 42, nil
		})
		if err != nil {
			t.Error(err)
		}
		results <- v.(int)
	}()
	<-started

	const joiners = 8
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (interface{}, error) {
				atomic.AddInt32(&calls, 1)
				return -1, nil
			})
			if err != nil {
				t.Error(err)
			}
			if !shared {
				t.Error("joiner did not share the flight")
			}
			results <- v.(int)
		}()
	}
	// Wait until all joiners are provably parked on the in-flight call
	// before releasing it, so sharing is deterministic, not timing luck.
	deadline := time.Now().Add(5 * time.Second)
	for g.waiting("k") < joiners {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d joiners parked", g.waiting("k"), joiners)
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	close(results)

	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("computation ran %d times, want 1", n)
	}
	count := 0
	for v := range results {
		count++
		if v != 42 {
			t.Fatalf("got %d, want 42", v)
		}
	}
	if count != joiners+1 {
		t.Fatalf("%d results, want %d", count, joiners+1)
	}
}

func TestSingleflightDistinctKeys(t *testing.T) {
	var g Group
	v1, err, shared := g.Do("a", func() (interface{}, error) { return 1, nil })
	if err != nil || shared || v1.(int) != 1 {
		t.Fatalf("a: v=%v err=%v shared=%v", v1, err, shared)
	}
	v2, err, shared := g.Do("b", func() (interface{}, error) { return 2, nil })
	if err != nil || shared || v2.(int) != 2 {
		t.Fatalf("b: v=%v err=%v shared=%v", v2, err, shared)
	}
	// A key is re-computable after its flight completes.
	v3, _, shared := g.Do("a", func() (interface{}, error) { return 3, nil })
	if shared || v3.(int) != 3 {
		t.Fatalf("second a flight: v=%v shared=%v", v3, shared)
	}
}

func TestSingleflightError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (interface{}, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestSingleflightPanic: the panic propagates to the initiating caller
// and parked waiters get an error instead of hanging.
func TestSingleflightPanic(t *testing.T) {
	var g Group
	started := make(chan struct{})
	block := make(chan struct{})
	panicked := make(chan interface{}, 1)
	go func() {
		defer func() { panicked <- recover() }()
		g.Do("k", func() (interface{}, error) {
			close(started)
			<-block
			panic("kaboom")
		})
	}()
	<-started
	waiterErr := make(chan error, 1)
	go func() {
		_, err, _ := g.Do("k", func() (interface{}, error) { return nil, nil })
		waiterErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.waiting("k") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	if p := <-panicked; p != "kaboom" {
		t.Fatalf("initiator recovered %v", p)
	}
	select {
	case err := <-waiterErr:
		if err == nil {
			t.Fatal("waiter got nil error after panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung after panic")
	}
}
