package serving

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestMetricsObserve(t *testing.T) {
	m := NewMetrics()
	m.Observe("GET /api/v1/types", 200, 3*time.Millisecond)
	m.Observe("GET /api/v1/types", 200, 7*time.Millisecond)
	m.Observe("GET /api/v1/types", 400, 40*time.Millisecond)
	m.Observe("GET /healthz", 200, 500*time.Microsecond)

	snap := m.Snapshot()
	rs, ok := snap.Routes["GET /api/v1/types"]
	if !ok {
		t.Fatalf("route missing from snapshot: %+v", snap.Routes)
	}
	if rs.Count != 3 || rs.ByStatus["200"] != 2 || rs.ByStatus["400"] != 1 {
		t.Fatalf("route stats = %+v", rs)
	}
	if rs.Buckets["<=5"] != 1 || rs.Buckets["<=10"] != 1 || rs.Buckets["<=50"] != 1 {
		t.Fatalf("buckets = %+v", rs.Buckets)
	}
	if rs.MaxMS != 40 { // lint:exact — an injected 40ms observation converts to exactly 40.0
		t.Fatalf("max = %v", rs.MaxMS)
	}
	if rs.MeanMS < 16 || rs.MeanMS > 17 {
		t.Fatalf("mean = %v", rs.MeanMS)
	}
	// Quantiles are monotone and inside the observed range.
	if rs.P50MS <= 0 || rs.P50MS > rs.P90MS || rs.P90MS > rs.P99MS || rs.P99MS > rs.MaxMS {
		t.Fatalf("quantiles p50=%v p90=%v p99=%v max=%v", rs.P50MS, rs.P90MS, rs.P99MS, rs.MaxMS)
	}
	if hz := snap.Routes["GET /healthz"]; hz.Buckets["<=1"] != 1 {
		t.Fatalf("healthz buckets = %+v", hz.Buckets)
	}
}

func TestMetricsInFlight(t *testing.T) {
	m := NewMetrics()
	m.IncInFlight()
	m.IncInFlight()
	m.DecInFlight()
	if got := m.Snapshot().InFlight; got != 1 {
		t.Fatalf("in_flight = %d, want 1", got)
	}
}

func TestMetricsHandlerJSON(t *testing.T) {
	m := NewMetrics()
	c := NewCache(8)
	c.Do("k", func() (interface{}, error) { return 1, nil })
	c.Do("k", func() (interface{}, error) { return 1, nil })
	m.ObserveCache(c)
	m.Observe("GET /api/v1/courses", 200, 2*time.Millisecond)

	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.Bytes())
	}
	if snap.Cache == nil || snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", snap.Cache)
	}
	if snap.Routes["GET /api/v1/courses"].Count != 1 {
		t.Fatalf("routes = %+v", snap.Routes)
	}
	if snap.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", snap.UptimeSeconds)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	m := NewMetrics()
	m.Observe("r", 200, 8*time.Millisecond)
	rs := m.Snapshot().Routes["r"]
	if rs.P99MS <= 0 || rs.P99MS > 10 {
		t.Fatalf("p99 = %v, want in (0,10]", rs.P99MS)
	}
}
