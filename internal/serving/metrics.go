package serving

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csmaterials/internal/resilience"
)

// latencyBucketsMS are the histogram upper bounds, in milliseconds.
// The final implicit bucket is +Inf.
var latencyBucketsMS = []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// routeStats accumulates per-route observations.
type routeStats struct {
	count    uint64
	byStatus map[int]uint64
	buckets  []uint64 // len(latencyBucketsMS)+1, last is +Inf
	totalMS  float64
	maxMS    float64
}

// Metrics records per-route request counts, latency histograms, an
// in-flight gauge, and (optionally) cache statistics, and serves them
// as expvar-style JSON.
type Metrics struct {
	start    time.Time
	inFlight int64

	mu         sync.Mutex
	routes     map[string]*routeStats
	cache      *Cache
	resilience func() resilience.Stats
	engine     func() interface{}
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), routes: make(map[string]*routeStats)}
}

// ObserveCache includes the cache's counters in the metrics snapshot.
func (m *Metrics) ObserveCache(c *Cache) {
	m.mu.Lock()
	m.cache = c
	m.mu.Unlock()
}

// ObserveResilience includes shedder/breaker accounting in the metrics
// snapshot; f is called once per snapshot.
func (m *Metrics) ObserveResilience(f func() resilience.Stats) {
	m.mu.Lock()
	m.resilience = f
	m.mu.Unlock()
}

// ObserveEngine includes the analysis executor's accounting in the
// metrics snapshot; f is called once per snapshot. The value is opaque
// here (serving cannot import the engine package) and serialized as-is.
func (m *Metrics) ObserveEngine(f func() interface{}) {
	m.mu.Lock()
	m.engine = f
	m.mu.Unlock()
}

// IncInFlight / DecInFlight maintain the in-flight request gauge.
func (m *Metrics) IncInFlight() { atomic.AddInt64(&m.inFlight, 1) }
func (m *Metrics) DecInFlight() { atomic.AddInt64(&m.inFlight, -1) }

// Observe records one completed request for the route.
func (m *Metrics) Observe(route string, status int, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{
			byStatus: make(map[int]uint64),
			buckets:  make([]uint64, len(latencyBucketsMS)+1),
		}
		m.routes[route] = rs
	}
	rs.count++
	rs.byStatus[status]++
	rs.totalMS += ms
	if ms > rs.maxMS {
		rs.maxMS = ms
	}
	i := sort.SearchFloat64s(latencyBucketsMS, ms)
	rs.buckets[i]++
}

// quantileMS estimates the q-quantile (0..1) from the histogram by
// linear interpolation within the containing bucket.
func (rs *routeStats) quantileMS(q float64) float64 {
	if rs.count == 0 {
		return 0
	}
	rank := q * float64(rs.count)
	var cum float64
	for i, n := range rs.buckets {
		next := cum + float64(n)
		if next >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = latencyBucketsMS[i-1]
			}
			hi := rs.maxMS
			if i < len(latencyBucketsMS) && latencyBucketsMS[i] < hi {
				hi = latencyBucketsMS[i]
			}
			if hi < lo {
				hi = lo
			}
			return lo + (hi-lo)*(rank-cum)/float64(n)
		}
		cum = next
	}
	return rs.maxMS
}

// RouteSnapshot is the JSON form of one route's stats.
type RouteSnapshot struct {
	Count    uint64            `json:"count"`
	ByStatus map[string]uint64 `json:"by_status"`
	Buckets  map[string]uint64 `json:"latency_buckets_ms"`
	MeanMS   float64           `json:"mean_ms"`
	MaxMS    float64           `json:"max_ms"`
	P50MS    float64           `json:"p50_ms"`
	P90MS    float64           `json:"p90_ms"`
	P99MS    float64           `json:"p99_ms"`
}

// Snapshot is the JSON document served at /debug/metrics.
type Snapshot struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	InFlight      int64                    `json:"in_flight"`
	Routes        map[string]RouteSnapshot `json:"routes"`
	Cache         *CacheStats              `json:"cache,omitempty"`
	Resilience    *resilience.Stats        `json:"resilience,omitempty"`
	Engine        interface{}              `json:"engine,omitempty"`
}

// Snapshot returns a point-in-time copy of all metrics.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      atomic.LoadInt64(&m.inFlight),
		Routes:        make(map[string]RouteSnapshot, len(m.routes)),
	}
	for route, rs := range m.routes {
		out := RouteSnapshot{
			Count:    rs.count,
			ByStatus: make(map[string]uint64, len(rs.byStatus)),
			Buckets:  make(map[string]uint64, len(rs.buckets)),
			MaxMS:    rs.maxMS,
			P50MS:    rs.quantileMS(0.50),
			P90MS:    rs.quantileMS(0.90),
			P99MS:    rs.quantileMS(0.99),
		}
		if rs.count > 0 {
			out.MeanMS = rs.totalMS / float64(rs.count)
		}
		for status, n := range rs.byStatus {
			out.ByStatus[itoa(status)] = n
		}
		for i, n := range rs.buckets {
			out.Buckets[bucketLabel(i)] = n
		}
		snap.Routes[route] = out
	}
	if m.cache != nil {
		st := m.cache.Stats()
		snap.Cache = &st
	}
	if m.resilience != nil {
		rs := m.resilience()
		snap.Resilience = &rs
	}
	if m.engine != nil {
		snap.Engine = m.engine()
	}
	return snap
}

// Handler serves the snapshot as indented JSON (expvar-style, GET only).
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, m.Snapshot())
	})
}

func bucketLabel(i int) string {
	if i >= len(latencyBucketsMS) {
		return "+Inf"
	}
	return "<=" + ftoa(latencyBucketsMS[i])
}

// --- Raw export (the bridge to Prometheus exposition) --------------------

// LatencyBoundsMS returns the finite histogram upper bounds in
// milliseconds; the implicit final bucket is +Inf. Exposition code
// converts to seconds at the edge.
func LatencyBoundsMS() []float64 {
	out := make([]float64, len(latencyBucketsMS))
	copy(out, latencyBucketsMS)
	return out
}

// StatusCount is one (status code, count) pair of a route's export.
type StatusCount struct {
	Status int
	Count  uint64
}

// RouteExport is the raw (unformatted, bound-typed) form of one
// route's stats, for metric exporters that need numbers rather than
// the display labels of the JSON snapshot.
type RouteExport struct {
	Route    string
	Count    uint64
	ByStatus []StatusCount // sorted by status code
	// BucketCounts are per-bucket (non-cumulative) observation counts
	// aligned with LatencyBoundsMS; the final extra entry is +Inf.
	BucketCounts []uint64
	TotalMS      float64
	MaxMS        float64
}

// Export is the raw snapshot behind GET /metrics.
type Export struct {
	UptimeSeconds float64
	InFlight      int64
	Routes        []RouteExport // sorted by route
}

// Export snapshots the registry in raw, deterministic form: routes and
// status codes sorted, bucket counts aligned with LatencyBoundsMS.
func (m *Metrics) Export() Export {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Export{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      atomic.LoadInt64(&m.inFlight),
		Routes:        make([]RouteExport, 0, len(m.routes)),
	}
	for route, rs := range m.routes {
		re := RouteExport{
			Route:        route,
			Count:        rs.count,
			ByStatus:     make([]StatusCount, 0, len(rs.byStatus)),
			BucketCounts: make([]uint64, len(rs.buckets)),
			TotalMS:      rs.totalMS,
			MaxMS:        rs.maxMS,
		}
		copy(re.BucketCounts, rs.buckets)
		for status, n := range rs.byStatus {
			re.ByStatus = append(re.ByStatus, StatusCount{Status: status, Count: n})
		}
		sort.Slice(re.ByStatus, func(i, j int) bool { return re.ByStatus[i].Status < re.ByStatus[j].Status })
		out.Routes = append(out.Routes, re)
	}
	sort.Slice(out.Routes, func(i, j int) bool { return out.Routes[i].Route < out.Routes[j].Route })
	return out
}
