package serving

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until true or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	calls := 0
	compute := func() (interface{}, error) { calls++; return "v", nil }

	v, served, err := c.Do("k", compute)
	if err != nil || served || v.(string) != "v" {
		t.Fatalf("first Do: v=%v served=%v err=%v", v, served, err)
	}
	v, served, err = c.Do("k", compute)
	if err != nil || !served || v.(string) != "v" {
		t.Fatalf("second Do: v=%v served=%v err=%v", v, served, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	put := func(k string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	if _, ok := c.Get("a"); !ok { // touch a → b is now LRU
		t.Fatal("a missing before eviction")
	}
	put("c") // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest c was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do("k", func() (interface{}, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, served, err := c.Do("k", func() (interface{}, error) { calls++; return 7, nil })
	if err != nil || served || v.(int) != 7 {
		t.Fatalf("retry: v=%v served=%v err=%v", v, served, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors must not be cached)", calls)
	}
}

func TestCacheDisabledStillDeduplicates(t *testing.T) {
	c := NewCache(0)
	var calls int32
	started := make(chan struct{})
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do("k", func() (interface{}, error) {
			atomic.AddInt32(&calls, 1)
			close(started)
			<-block
			return 1, nil
		})
	}()
	<-started
	const joiners = 4
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do("k", func() (interface{}, error) {
				atomic.AddInt32(&calls, 1)
				return 1, nil
			})
		}()
	}
	waitFor(t, func() bool { return c.group.waiting("k") >= joiners })
	close(block)
	wg.Wait()
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	// Nothing retained: the next sequential Do recomputes.
	_, served, _ := c.Do("k", func() (interface{}, error) { return 1, nil })
	if served {
		t.Fatal("capacity-0 cache retained an entry")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(4)
	c.Do("k", func() (interface{}, error) { return 1, nil })
	c.Reset()
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived Reset")
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("size = %d after Reset", st.Size)
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d"}
	for i := 0; i < 32; i++ {
		key := keys[i%len(keys)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(key, func() (interface{}, error) { return key, nil })
			if err != nil || v.(string) != key {
				t.Errorf("Do(%q) = %v, %v", key, v, err)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Size != len(keys) {
		t.Fatalf("size = %d, want %d", st.Size, len(keys))
	}
}

// TestCacheDoCtxClientDisconnect simulates a client disconnecting
// mid-compute: the DoCtx caller gets ctx.Err(), the computation still
// runs to completion, and its result lands in the cache for the next
// request.
func TestCacheDoCtxClientDisconnect(t *testing.T) {
	c := NewCache(4)
	started := make(chan struct{})
	block := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	var calls int32
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.DoCtx(ctx, "k", func() (interface{}, error) {
			atomic.AddInt32(&calls, 1)
			close(started)
			<-block
			return "v", nil
		})
		errCh <- err
	}()
	<-started
	cancel() // client goes away mid-compute
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("disconnected caller got %v", err)
	}
	close(block)

	// The detached flight completes and caches: the next request is a
	// pure hit with no recompute.
	waitFor(t, func() bool { _, ok := c.Get("k"); return ok })
	v, served, err := c.Do("k", func() (interface{}, error) {
		atomic.AddInt32(&calls, 1)
		return "other", nil
	})
	if err != nil || !served || v.(string) != "v" {
		t.Fatalf("post-disconnect Do: v=%v served=%v err=%v", v, served, err)
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
}

// TestCacheStaleSurvivesEviction: the stale store (2x capacity) keeps
// serving last-known-good values for entries the fresh LRU has already
// dropped, and evicts in LRU order itself.
func TestCacheStaleSurvivesEviction(t *testing.T) {
	c := NewCache(1) // stale capacity 2
	put := func(k string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return "val-" + k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b") // evicts a from fresh; stale = {b, a}
	put("c") // evicts b from fresh; stale = {c, b}, a falls out

	if _, ok := c.Get("b"); ok {
		t.Fatal("b still fresh after eviction")
	}
	if v, ok := c.Stale("b"); !ok || v.(string) != "val-b" {
		t.Fatalf("stale b = %v, %v", v, ok)
	}
	if _, ok := c.Stale("a"); ok {
		t.Fatal("a survived stale eviction out of order (want oldest-first)")
	}
	st := c.Stats()
	if st.StaleSize != 2 || st.StaleServed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheStaleOrderingFollowsUse: fresh hits refresh the stale
// copy's position, so a hot entry outlives a colder, newer one in the
// stale store.
func TestCacheStaleOrderingFollowsUse(t *testing.T) {
	c := NewCache(2) // stale capacity 4
	put := func(k string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	c.Get("a") // touches a in both stores: stale order a, b
	put("c")
	put("d")
	put("e") // stale capacity 4: evicts the coldest — b, not the touched a

	if _, ok := c.Stale("b"); ok {
		t.Fatal("cold b survived over touched a")
	}
	if _, ok := c.Stale("a"); !ok {
		t.Fatal("touched a was stale-evicted")
	}
}

// TestCacheResetKeepsStale: Reset drops the fresh entries only; the
// last-known-good store still answers, which is what lets a restarted
// (or wiped) fresh cache degrade gracefully while computes fail.
func TestCacheResetKeepsStale(t *testing.T) {
	c := NewCache(4)
	if _, _, err := c.Do("k", func() (interface{}, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if _, ok := c.Get("k"); ok {
		t.Fatal("fresh entry survived Reset")
	}
	if v, ok := c.Stale("k"); !ok || v.(int) != 1 {
		t.Fatalf("stale entry lost on Reset: %v, %v", v, ok)
	}
}

// TestCacheDisabledHasNoStale: capacity <= 0 disables both stores.
func TestCacheDisabledHasNoStale(t *testing.T) {
	c := NewCache(0)
	if _, _, err := c.Do("k", func() (interface{}, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Stale("k"); ok {
		t.Fatal("disabled cache retained a stale entry")
	}
	if st := c.Stats(); st.StaleSize != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
