package serving

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until true or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	calls := 0
	compute := func() (interface{}, error) { calls++; return "v", nil }

	v, served, err := c.Do("k", compute)
	if err != nil || served || v.(string) != "v" {
		t.Fatalf("first Do: v=%v served=%v err=%v", v, served, err)
	}
	v, served, err = c.Do("k", compute)
	if err != nil || !served || v.(string) != "v" {
		t.Fatalf("second Do: v=%v served=%v err=%v", v, served, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	put := func(k string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	if _, ok := c.Get("a"); !ok { // touch a → b is now LRU
		t.Fatal("a missing before eviction")
	}
	put("c") // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest c was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do("k", func() (interface{}, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, served, err := c.Do("k", func() (interface{}, error) { calls++; return 7, nil })
	if err != nil || served || v.(int) != 7 {
		t.Fatalf("retry: v=%v served=%v err=%v", v, served, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors must not be cached)", calls)
	}
}

func TestCacheDisabledStillDeduplicates(t *testing.T) {
	c := NewCache(0)
	var calls int32
	started := make(chan struct{})
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do("k", func() (interface{}, error) {
			atomic.AddInt32(&calls, 1)
			close(started)
			<-block
			return 1, nil
		})
	}()
	<-started
	const joiners = 4
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do("k", func() (interface{}, error) {
				atomic.AddInt32(&calls, 1)
				return 1, nil
			})
		}()
	}
	waitFor(t, func() bool { return c.group.waiting("k") >= joiners })
	close(block)
	wg.Wait()
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	// Nothing retained: the next sequential Do recomputes.
	_, served, _ := c.Do("k", func() (interface{}, error) { return 1, nil })
	if served {
		t.Fatal("capacity-0 cache retained an entry")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(4)
	c.Do("k", func() (interface{}, error) { return 1, nil })
	c.Reset()
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived Reset")
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("size = %d after Reset", st.Size)
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d"}
	for i := 0; i < 32; i++ {
		key := keys[i%len(keys)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(key, func() (interface{}, error) { return key, nil })
			if err != nil || v.(string) != key {
				t.Errorf("Do(%q) = %v, %v", key, v, err)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Size != len(keys) {
		t.Fatalf("size = %d, want %d", st.Size, len(keys))
	}
}

// TestCacheDoCtxClientDisconnect simulates a client disconnecting
// mid-compute: the DoCtx caller gets ctx.Err(), the computation still
// runs to completion, and its result lands in the cache for the next
// request.
func TestCacheDoCtxClientDisconnect(t *testing.T) {
	c := NewCache(4)
	started := make(chan struct{})
	block := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	var calls int32
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.DoCtx(ctx, "k", func() (interface{}, error) {
			atomic.AddInt32(&calls, 1)
			close(started)
			<-block
			return "v", nil
		})
		errCh <- err
	}()
	<-started
	cancel() // client goes away mid-compute
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("disconnected caller got %v", err)
	}
	close(block)

	// The detached flight completes and caches: the next request is a
	// pure hit with no recompute.
	waitFor(t, func() bool { _, ok := c.Get("k"); return ok })
	v, served, err := c.Do("k", func() (interface{}, error) {
		atomic.AddInt32(&calls, 1)
		return "other", nil
	})
	if err != nil || !served || v.(string) != "v" {
		t.Fatalf("post-disconnect Do: v=%v served=%v err=%v", v, served, err)
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
}

// TestCacheStaleSurvivesEviction: the stale store (2x capacity) keeps
// serving last-known-good values for entries the fresh LRU has already
// dropped, and evicts in LRU order itself.
func TestCacheStaleSurvivesEviction(t *testing.T) {
	c := NewCache(1) // stale capacity 2
	put := func(k string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return "val-" + k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b") // evicts a from fresh; stale = {b, a}
	put("c") // evicts b from fresh; stale = {c, b}, a falls out

	if _, ok := c.Get("b"); ok {
		t.Fatal("b still fresh after eviction")
	}
	if v, ok := c.Stale("b"); !ok || v.(string) != "val-b" {
		t.Fatalf("stale b = %v, %v", v, ok)
	}
	if _, ok := c.Stale("a"); ok {
		t.Fatal("a survived stale eviction out of order (want oldest-first)")
	}
	st := c.Stats()
	if st.StaleSize != 2 || st.StaleServed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheStaleOrderingFollowsUse: fresh hits refresh the stale
// copy's position, so a hot entry outlives a colder, newer one in the
// stale store.
func TestCacheStaleOrderingFollowsUse(t *testing.T) {
	c := NewCache(2) // stale capacity 4
	put := func(k string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	c.Get("a") // touches a in both stores: stale order a, b
	put("c")
	put("d")
	put("e") // stale capacity 4: evicts the coldest — b, not the touched a

	if _, ok := c.Stale("b"); ok {
		t.Fatal("cold b survived over touched a")
	}
	if _, ok := c.Stale("a"); !ok {
		t.Fatal("touched a was stale-evicted")
	}
}

// TestCacheResetKeepsStale: Reset drops the fresh entries only; the
// last-known-good store still answers, which is what lets a restarted
// (or wiped) fresh cache degrade gracefully while computes fail.
func TestCacheResetKeepsStale(t *testing.T) {
	c := NewCache(4)
	if _, _, err := c.Do("k", func() (interface{}, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if _, ok := c.Get("k"); ok {
		t.Fatal("fresh entry survived Reset")
	}
	if v, ok := c.Stale("k"); !ok || v.(int) != 1 {
		t.Fatalf("stale entry lost on Reset: %v, %v", v, ok)
	}
}

// TestCacheDisabledHasNoStale: capacity <= 0 disables both stores.
func TestCacheDisabledHasNoStale(t *testing.T) {
	c := NewCache(0)
	if _, _, err := c.Do("k", func() (interface{}, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Stale("k"); ok {
		t.Fatal("disabled cache retained a stale entry")
	}
	if st := c.Stats(); st.StaleSize != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// --- Partitioned (multi-tenant) cache --------------------------------------

// tenantScope maps "<tenant>:<rest>" keys to their tenant; keys with
// no prefix land in the shared "" scope.
func tenantScope(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == ':' {
			return key[:i]
		}
	}
	return ""
}

func newPartitioned(capacity int, overrides map[string]int, tenants ...string) *Cache {
	c := NewCache(capacity)
	c.SetScopeFunc(tenantScope)
	c.Partition(tenants, overrides)
	return c
}

func fill(t *testing.T, c *Cache, keys ...string) {
	t.Helper()
	for _, k := range keys {
		k := k
		if _, _, err := c.Do(k, func() (interface{}, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheScopedEviction is the core isolation property: tenant a
// overfilling its budget evicts only its own entries; tenant b's stay.
func TestCacheScopedEviction(t *testing.T) {
	c := newPartitioned(8, nil, "a", "b") // fair share: 4 each
	if got := c.ScopeBudget("a"); got != 4 {
		t.Fatalf("budget(a) = %d, want 4", got)
	}
	fill(t, c, "b:1", "b:2", "b:3", "b:4")
	fill(t, c, "a:1", "a:2", "a:3", "a:4", "a:5", "a:6", "a:7", "a:8", "a:9", "a:10")

	st := c.Stats()
	a, b := st.Scopes["a"], st.Scopes["b"]
	if a.Size != 4 || a.Evictions != 6 {
		t.Fatalf("scope a = %+v, want size 4 with 6 evictions", a)
	}
	if b.Size != 4 || b.Evictions != 0 {
		t.Fatalf("scope b = %+v, want untouched by a's flood", b)
	}
	for _, k := range []string{"b:1", "b:2", "b:3", "b:4"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("b's entry %q evicted by a's fill", k)
		}
	}
}

// TestCacheBudgetOverrides: explicit budgets are honored and the
// remaining capacity is split fairly across unoverridden tenants.
func TestCacheBudgetOverrides(t *testing.T) {
	c := newPartitioned(10, map[string]int{"big": 6}, "big", "s1", "s2")
	if got := c.ScopeBudget("big"); got != 6 {
		t.Fatalf("budget(big) = %d, want override 6", got)
	}
	if got := c.ScopeBudget("s1"); got != 2 {
		t.Fatalf("budget(s1) = %d, want (10-6)/2 = 2", got)
	}
	// Budgets never round down to zero.
	c2 := newPartitioned(2, nil, "a", "b", "c", "d")
	if got := c2.ScopeBudget("a"); got != 1 {
		t.Fatalf("tiny budget = %d, want floor of 1", got)
	}
}

// TestCacheRepartitionShrinkEvicts: tightening a tenant's budget via a
// new Partition call trims it immediately, counting scoped evictions.
func TestCacheRepartitionShrinkEvicts(t *testing.T) {
	c := newPartitioned(8, nil, "a") // a alone: budget 8
	fill(t, c, "a:1", "a:2", "a:3", "a:4", "a:5", "a:6")
	c.Partition([]string{"a", "b"}, nil) // now 4 each
	st := c.Stats()
	if a := st.Scopes["a"]; a.Size != 4 || a.Evictions != 2 {
		t.Fatalf("scope a after shrink = %+v, want size 4, 2 evictions", a)
	}
	// LRU order respected: the oldest two went.
	if _, ok := c.Get("a:1"); ok {
		t.Fatal("a:1 survived the shrink")
	}
	if _, ok := c.Get("a:6"); !ok {
		t.Fatal("a:6 (most recent) evicted by the shrink")
	}
}

// TestCacheStaleStoreInheritsPartition: each scope's stale store is
// bounded at twice its budget, independently of other tenants.
func TestCacheStaleStoreInheritsPartition(t *testing.T) {
	c := newPartitioned(4, nil, "a", "b") // 2 each, stale 4 each
	fill(t, c, "b:1", "b:2")
	for i := 0; i < 10; i++ {
		fill(t, c, "a:"+string(rune('0'+i)))
	}
	st := c.Stats()
	if a := st.Scopes["a"]; a.StaleSize != 4 {
		t.Fatalf("scope a stale size = %d, want 2x budget = 4", a.StaleSize)
	}
	if _, ok := c.Stale("b:1"); !ok {
		t.Fatal("b's stale entry displaced by a's churn")
	}
}

// TestCacheDropScopeResetsCounters: DropScope removes the entries AND
// the per-scope counters, so a deleted tenant vanishes from snapshots
// instead of ghosting at its last values.
func TestCacheDropScopeResetsCounters(t *testing.T) {
	c := newPartitioned(8, nil, "a", "b")
	fill(t, c, "a:1", "a:2", "b:1")
	c.Get("a:1")
	n := c.DropScope("a")
	if n != 4 { // 2 fresh + 2 stale
		t.Fatalf("DropScope dropped %d entries, want 4", n)
	}
	st := c.Stats()
	if _, ok := st.Scopes["a"]; ok {
		t.Fatalf("dropped scope still in stats: %+v", st.Scopes)
	}
	if _, ok := st.Scopes["b"]; !ok {
		t.Fatal("unrelated scope dropped")
	}
	// The key space is reusable from zero.
	if _, ok := c.Get("a:1"); ok {
		t.Fatal("dropped entry still served")
	}
	if got := c.Stats().Scopes["a"].Hits; got != 0 {
		t.Fatalf("recreated scope inherited hits = %d", got)
	}
}

// TestCacheInvalidateKeepsScopeCounters: Invalidate is a corpus event
// (re-ingest), not a tenant teardown — the scope's counters survive.
func TestCacheInvalidateKeepsScopeCounters(t *testing.T) {
	c := newPartitioned(8, nil, "a", "b")
	fill(t, c, "a:1", "a:2")
	c.Get("a:1")
	dropped := c.Invalidate(func(key string) bool { return tenantScope(key) == "a" })
	if dropped != 4 {
		t.Fatalf("Invalidate dropped %d, want 4", dropped)
	}
	a := c.Stats().Scopes["a"]
	if a.Size != 0 || a.StaleSize != 0 {
		t.Fatalf("scope a entries survived: %+v", a)
	}
	if a.Hits != 1 || a.Misses != 2 {
		t.Fatalf("scope a counters reset by Invalidate: %+v", a)
	}
}

// TestCacheConcurrentInvalidateDoCtxEvictionRace hammers the three
// mutation paths — DoCtx computes at the budget boundary, Invalidate
// sweeps, and scoped eviction — concurrently across two tenants. Run
// under -race this proves the partitioned stores share no unguarded
// state; the assertions prove isolation holds through the churn.
func TestCacheConcurrentInvalidateDoCtxEvictionRace(t *testing.T) {
	c := newPartitioned(4, nil, "a", "b") // budget 2 each: every put is at the boundary
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	worker := func(tenant string) {
		defer wg.Done()
		keys := []string{tenant + ":1", tenant + ":2", tenant + ":3"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := keys[i%len(keys)]
			if _, _, err := c.DoCtx(ctx, k, func() (interface{}, error) { return i, nil }); err != nil {
				t.Errorf("DoCtx(%q): %v", k, err)
				return
			}
		}
	}
	wg.Add(2)
	go worker("a")
	go worker("b")

	wg.Add(1)
	go func() { // concurrent invalidation of tenant a only
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Invalidate(func(key string) bool { return tenantScope(key) == "a" })
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := c.Stats()
	for scope, sc := range st.Scopes {
		if sc.Size > c.ScopeBudget(scope) {
			t.Fatalf("scope %s over budget: %+v", scope, sc)
		}
		if sc.StaleSize > 2*c.ScopeBudget(scope) {
			t.Fatalf("scope %s stale over bound: %+v", scope, sc)
		}
	}
	// b was never invalidated and never contended for a's budget: its
	// three keys rotate through a budget of two, nothing more.
	if b := st.Scopes["b"]; b.Size != 2 {
		t.Fatalf("scope b size = %d, want full budget of 2", b.Size)
	}
}

// TestCacheUnpartitionedScopeExcludedFromScopes: the "" scope is the
// aggregate itself; single-tenant snapshots keep their legacy shape.
func TestCacheUnpartitionedScopeExcludedFromScopes(t *testing.T) {
	c := NewCache(4)
	fill(t, c, "x", "y")
	st := c.Stats()
	if st.Scopes != nil {
		t.Fatalf("unpartitioned cache reported scopes: %+v", st.Scopes)
	}
	if st.Size != 2 {
		t.Fatalf("aggregate size = %d", st.Size)
	}
}

func TestInvalidateDetailSweepsStaleOnlyScopes(t *testing.T) {
	c := NewCache(1)
	put := func(k string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 1: storing a second key evicts the first from the fresh
	// LRU but leaves its stale copy behind.
	put("old@1|a")
	put("old@1|b")
	if _, ok := c.Get("old@1|a"); ok {
		t.Fatal("a should be evicted from fresh")
	}
	if _, ok := c.Stale("old@1|a"); !ok {
		t.Fatal("a should survive as stale")
	}

	fresh, stale := c.InvalidateDetail(func(k string) bool { return true })
	if fresh != 1 || stale != 2 {
		t.Fatalf("InvalidateDetail = (%d fresh, %d stale), want (1, 2)", fresh, stale)
	}
	// The evicted-but-stale key must be gone for good: a revision sweep
	// that misses it would stale-serve a dead revision's value.
	if _, ok := c.Stale("old@1|a"); ok {
		t.Error("stale-only entry survived invalidation")
	}
	if _, ok := c.Stale("old@1|b"); ok {
		t.Error("stale entry of fresh key survived invalidation")
	}
	// Invalidate reports the same total.
	put("x")
	put("y")
	if n := c.Invalidate(func(string) bool { return true }); n != 3 {
		t.Errorf("Invalidate = %d, want 1 fresh + 2 stale = 3", n)
	}
}

func TestRekeyMigratesAndDrops(t *testing.T) {
	c := NewCache(8)
	put := func(k string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return "val-" + k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("ds@1|keep|p")
	put("ds@1|drop|p")
	put("other@7|x")

	sum, dropped := c.Rekey(func(k string) string {
		switch k {
		case "ds@1|keep|p":
			return "ds@2|keep|p"
		case "ds@1|drop|p":
			return ""
		default:
			return k
		}
	})
	// Each key exists fresh AND stale, so counts double.
	if sum.MovedFresh != 1 || sum.MovedStale != 1 || sum.DroppedFresh != 1 || sum.DroppedStale != 1 {
		t.Fatalf("Rekey summary = %+v", sum)
	}
	if len(dropped) != 2 {
		t.Fatalf("dropped = %+v", dropped)
	}
	for _, d := range dropped {
		if d.Key != "ds@1|drop|p" || d.Val.(string) != "val-ds@1|drop|p" {
			t.Errorf("dropped entry = %+v", d)
		}
	}
	if v, ok := c.Get("ds@2|keep|p"); !ok || v.(string) != "val-ds@1|keep|p" {
		t.Error("migrated entry not reachable under new key")
	}
	if _, ok := c.Get("ds@1|keep|p"); ok {
		t.Error("migrated entry still reachable under old key")
	}
	if _, ok := c.Stale("ds@1|drop|p"); ok {
		t.Error("dropped entry still stale-served")
	}
	if _, ok := c.Get("other@7|x"); !ok {
		t.Error("unmatched entry must survive untouched")
	}
}

func TestRekeyCollisionKeepsExisting(t *testing.T) {
	c := NewCache(8)
	put := func(k, v string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return v, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a", "from-a")
	put("b", "from-b")
	sum, dropped := c.Rekey(func(k string) string {
		if k == "a" {
			return "b"
		}
		return k
	})
	if sum.DroppedFresh != 1 || sum.MovedFresh != 0 {
		t.Fatalf("collision summary = %+v", sum)
	}
	if len(dropped) != 2 { // fresh + stale copies of "a"
		t.Fatalf("dropped = %+v", dropped)
	}
	if v, _ := c.Get("b"); v.(string) != "from-b" {
		t.Error("existing target must win the collision")
	}
}

func TestRekeyAcrossScopes(t *testing.T) {
	c := NewCache(8)
	c.SetScopeFunc(func(key string) string {
		for i := 0; i < len(key); i++ {
			if key[i] == '|' {
				return key[:i]
			}
		}
		return ""
	})
	if _, _, err := c.Do("s1|k", func() (interface{}, error) { return "v", nil }); err != nil {
		t.Fatal(err)
	}
	sum, _ := c.Rekey(func(k string) string {
		if k == "s1|k" {
			return "s2|k"
		}
		return k
	})
	if sum.MovedFresh != 1 || sum.MovedStale != 1 {
		t.Fatalf("cross-scope summary = %+v", sum)
	}
	if v, ok := c.Get("s2|k"); !ok || v.(string) != "v" {
		t.Error("entry not reachable in the new scope")
	}
	st := c.Stats()
	if sc, ok := st.Scopes["s2"]; !ok || sc.Size != 1 {
		t.Errorf("scope stats after cross-scope rekey = %+v", st.Scopes)
	}
}
