package serving

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until true or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	calls := 0
	compute := func() (interface{}, error) { calls++; return "v", nil }

	v, served, err := c.Do("k", compute)
	if err != nil || served || v.(string) != "v" {
		t.Fatalf("first Do: v=%v served=%v err=%v", v, served, err)
	}
	v, served, err = c.Do("k", compute)
	if err != nil || !served || v.(string) != "v" {
		t.Fatalf("second Do: v=%v served=%v err=%v", v, served, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	put := func(k string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	if _, ok := c.Get("a"); !ok { // touch a → b is now LRU
		t.Fatal("a missing before eviction")
	}
	put("c") // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest c was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do("k", func() (interface{}, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, served, err := c.Do("k", func() (interface{}, error) { calls++; return 7, nil })
	if err != nil || served || v.(int) != 7 {
		t.Fatalf("retry: v=%v served=%v err=%v", v, served, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors must not be cached)", calls)
	}
}

func TestCacheDisabledStillDeduplicates(t *testing.T) {
	c := NewCache(0)
	var calls int32
	started := make(chan struct{})
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do("k", func() (interface{}, error) {
			atomic.AddInt32(&calls, 1)
			close(started)
			<-block
			return 1, nil
		})
	}()
	<-started
	const joiners = 4
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do("k", func() (interface{}, error) {
				atomic.AddInt32(&calls, 1)
				return 1, nil
			})
		}()
	}
	waitFor(t, func() bool { return c.group.waiting("k") >= joiners })
	close(block)
	wg.Wait()
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	// Nothing retained: the next sequential Do recomputes.
	_, served, _ := c.Do("k", func() (interface{}, error) { return 1, nil })
	if served {
		t.Fatal("capacity-0 cache retained an entry")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(4)
	c.Do("k", func() (interface{}, error) { return 1, nil })
	c.Reset()
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived Reset")
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("size = %d after Reset", st.Size)
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d"}
	for i := 0; i < 32; i++ {
		key := keys[i%len(keys)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(key, func() (interface{}, error) { return key, nil })
			if err != nil || v.(string) != key {
				t.Errorf("Do(%q) = %v, %v", key, v, err)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Size != len(keys) {
		t.Fatalf("size = %d, want %d", st.Size, len(keys))
	}
}
