package serving

import (
	"encoding/json"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"csmaterials/internal/resilience"
)

// StatusWriter wraps a ResponseWriter and records the status code and
// body size actually written, so middleware can log and meter them.
type StatusWriter struct {
	http.ResponseWriter
	Status int
	Bytes  int64
	wrote  bool
}

// Wrap returns w as a *StatusWriter, reusing it if already wrapped.
func Wrap(w http.ResponseWriter) *StatusWriter {
	if sw, ok := w.(*StatusWriter); ok {
		return sw
	}
	return &StatusWriter{ResponseWriter: w}
}

func (w *StatusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.Status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *StatusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.Status = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(b)
	w.Bytes += int64(n)
	return n, err
}

// Wrote reports whether any status or body reached the client.
func (w *StatusWriter) Wrote() bool { return w.wrote }

// Recover converts handler panics into a 500 JSON error envelope
// (matching the API's {"error":{"code","message"}} shape) instead of a
// dropped connection, logging the stack to logger.
func Recover(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := Wrap(w)
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			if logger != nil {
				logger.Printf("panic method=%s path=%s err=%v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			}
			if !sw.Wrote() {
				WriteJSON(sw, http.StatusInternalServerError, map[string]interface{}{
					"error": map[string]string{
						"code":    "internal",
						"message": "internal server error",
					},
				})
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// AccessLog emits one structured (logfmt-style) line per request.
func AccessLog(logger *log.Logger, next http.Handler) http.Handler {
	if logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := Wrap(w)
		start := time.Now()
		next.ServeHTTP(sw, r)
		logger.Printf("access method=%s path=%q query=%q status=%d bytes=%d dur=%s remote=%s",
			r.Method, r.URL.Path, r.URL.RawQuery, sw.Status, sw.Bytes, time.Since(start).Round(time.Microsecond), r.RemoteAddr)
	})
}

// Instrument meters next under the given route label: request count,
// status codes, latency histogram, and the in-flight gauge.
func Instrument(m *Metrics, route string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := Wrap(w)
		m.IncInFlight()
		start := time.Now()
		defer func() {
			m.DecInFlight()
			status := sw.Status
			if !sw.Wrote() {
				status = http.StatusOK
			}
			if p := recover(); p != nil {
				// A panic is escaping to the Recover middleware; meter
				// it as the 500 that Recover will write.
				m.Observe(route, http.StatusInternalServerError, time.Since(start))
				panic(p)
			}
			m.Observe(route, status, time.Since(start))
		}()
		next.ServeHTTP(sw, r)
	})
}

// Shed rejects requests past the two-level admission limiter with a
// 429 JSON error envelope and a Retry-After hint, before any work is
// done on their behalf. The rejecting scope is threaded into the
// envelope: "capacity" when the global in-flight cap is exhausted,
// "tenant_quota" when the requesting tenant is over its own quota
// while the server still has headroom. tenantOf maps a request to its
// tenant (dataset) id; nil attributes everything to one tenant. A nil
// limiter disables shedding.
func Shed(l *resilience.TenantLimiter, tenantOf func(*http.Request) string, next http.Handler) http.Handler {
	if l == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant := ""
		if tenantOf != nil {
			tenant = tenantOf(r)
		}
		res := l.Acquire(tenant)
		if res != resilience.Admitted {
			w.Header().Set("Retry-After", RetryAfterSeconds(l.RetryAfter(tenant, res)))
			code, msg := "capacity", "server is at capacity, retry later"
			if res == resilience.ShedQuota {
				code = "tenant_quota"
				msg = "dataset " + strconv.Quote(tenant) + " is over its admission quota, retry later"
			}
			WriteJSON(w, http.StatusTooManyRequests, map[string]interface{}{
				"error": map[string]string{
					"code":    code,
					"message": msg,
				},
			})
			return
		}
		defer l.Release(tenant)
		next.ServeHTTP(w, r)
	})
}

// RetryAfterSeconds renders d as a Retry-After header value (integer
// seconds, rounded up, at least 1).
func RetryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// WriteJSON writes v as indented JSON with the right content type.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func itoa(n int) string { return strconv.Itoa(n) }

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
