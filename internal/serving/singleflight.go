// Package serving is the production-hardening layer between the HTTP
// handlers and the analysis packages: a keyed result cache with
// singleflight deduplication and a stale last-known-good store, the
// per-route metrics registry, and the middleware stack (panic
// recovery, access logs, instrumentation, load shedding) that
// cmd/serve wraps around the API.
//
// The dataset behind the analyses is deterministic, so cached results
// never go stale on their own: the fresh cache is bounded by size only
// and invalidation does not exist. "Stale" here means a last-known-good
// value that has fallen out of the fresh LRU but is retained for
// degraded serving while the compute path is failing (see Cache.Stale
// and internal/resilience).
//
// The cache participates in request tracing (internal/obs): when a
// request context carries a trace, Cache.DoCtxFn records
// cache-hit/cache-miss, singleflight-lead/-join, and store spans, and
// Metrics.Export exposes the raw per-route histograms that the
// server's Prometheus endpoint renders. Untraced contexts pay one nil
// context lookup and nothing else.
package serving

import (
	"context"
	"sync"
)

// call is an in-flight or completed singleflight computation. The
// result fields are written by the flight goroutine before done is
// closed and only read after <-done, so the channel close orders them;
// waiters is guarded by the group mutex.
type call struct {
	done     chan struct{}
	cancel   context.CancelFunc // cancels the flight context
	waiters  int                // callers (initiator included) still waiting
	val      interface{}
	err      error
	aborted  bool // the flight context was cancelled and fn errored
	panicVal interface{}
	panicked bool
	dups     int // waiters that joined this flight
}

// Group deduplicates concurrent computations by key: while a call for
// a key is in flight, additional Do calls for the same key wait for it
// and share its result instead of computing again.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// DoCtxFn executes fn once per key at a time. The flight runs in its
// own goroutine under a dedicated flight context, so no single caller
// owns it: a caller whose ctx is cancelled abandons the wait (receiving
// ctx.Err()) while followers keep the flight alive and receive its real
// result. Only when the LAST waiter departs is the flight context
// cancelled — a context-aware fn then observes cancellation and can
// stop its CPU work, because nobody is left to consume the answer. An
// fn that ignores its context keeps the old detached behaviour and runs
// to completion. The boolean reports whether the result was shared from
// another caller's flight.
//
// A caller that joins a flight in the narrow window after its
// cancellation triggered would receive the dying flight's ctx error
// even though its own context is live; DoCtxFn detects that case and
// transparently starts a fresh flight instead.
//
// If fn panics, the panic propagates to the initiating caller if it is
// still waiting; waiters receive an errPanicked error rather than
// hanging. An initiator that already left keeps the process alive: the
// panic is swallowed into errPanicked for any remaining waiters.
func (g *Group) DoCtxFn(ctx context.Context, key string, fn func(context.Context) (interface{}, error)) (interface{}, error, bool) {
	for {
		v, err, shared, aborted := g.doOnce(ctx, key, fn)
		if aborted && ctx.Err() == nil {
			// We shared a flight that was cancelled because all of its
			// own waiters left before we arrived. Our context is live,
			// so compute for real.
			continue
		}
		return v, err, shared
	}
}

func (g *Group) doOnce(ctx context.Context, key string, fn func(context.Context) (interface{}, error)) (v interface{}, err error, shared, aborted bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		c.waiters++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true, c.aborted
		case <-ctx.Done():
			g.leave(c)
			return nil, ctx.Err(), true, false
		}
	}
	fctx, cancel := context.WithCancel(context.Background()) // lint:detach flights outlive a cancelled leader so late joiners still get the value
	c := &call{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.m[key] = c
	g.mu.Unlock()

	go func() {
		defer func() {
			if p := recover(); p != nil {
				c.panicked = true
				c.panicVal = p
				c.err = errPanicked
			}
			c.aborted = fctx.Err() != nil && c.err != nil
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(c.done)
			cancel()
		}()
		c.val, c.err = fn(fctx)
	}()

	select {
	case <-c.done:
		if c.panicked {
			panic(c.panicVal)
		}
		return c.val, c.err, false, c.aborted
	case <-ctx.Done():
		g.leave(c)
		return nil, ctx.Err(), false, false
	}
}

// leave records one waiter abandoning the call; the last one out
// cancels the flight context so a context-aware computation can stop.
// Cancelling after the flight already completed is a harmless no-op.
func (g *Group) leave(c *call) {
	g.mu.Lock()
	c.waiters--
	last := c.waiters == 0
	g.mu.Unlock()
	if last {
		c.cancel()
	}
}

// DoCtx is DoCtxFn for computations that do not take a context: the
// flight is fully detached and always runs to completion, even if every
// waiting caller's ctx is cancelled first.
func (g *Group) DoCtx(ctx context.Context, key string, fn func() (interface{}, error)) (interface{}, error, bool) {
	return g.DoCtxFn(ctx, key, func(context.Context) (interface{}, error) { return fn() })
}

// Do is DoCtx with a background context: the caller waits for the
// flight unconditionally.
func (g *Group) Do(key string, fn func() (interface{}, error)) (interface{}, error, bool) {
	return g.DoCtx(context.Background(), key, fn)
}

// waiting reports how many callers are blocked on the key's in-flight
// call (0 when no call is in flight). Used by tests to build
// deterministic concurrency scenarios.
func (g *Group) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.dups
	}
	return 0
}

// errPanicked is handed to waiters whose flight's fn panicked.
var errPanicked = errorString("serving: singleflight computation panicked")

type errorString string

func (e errorString) Error() string { return string(e) }
