// Package serving is the production-hardening layer between the HTTP
// handlers and the analysis packages: a keyed result cache with
// singleflight deduplication and a stale last-known-good store, the
// per-route metrics registry, and the middleware stack (panic
// recovery, access logs, instrumentation, load shedding) that
// cmd/serve wraps around the API.
//
// The dataset behind the analyses is deterministic, so cached results
// never go stale on their own: the fresh cache is bounded by size only
// and invalidation does not exist. "Stale" here means a last-known-good
// value that has fallen out of the fresh LRU but is retained for
// degraded serving while the compute path is failing (see Cache.Stale
// and internal/resilience).
package serving

import (
	"context"
	"sync"
)

// call is an in-flight or completed singleflight computation. Its
// fields are written by the flight goroutine before done is closed and
// only read after <-done, so the channel close orders them.
type call struct {
	done     chan struct{}
	val      interface{}
	err      error
	panicVal interface{}
	panicked bool
	dups     int // waiters that joined this flight
}

// Group deduplicates concurrent computations by key: while a call for
// a key is in flight, additional Do calls for the same key wait for it
// and share its result instead of computing again.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// DoCtx executes fn once per key at a time, detached from any one
// caller: the computation runs in its own goroutine and always runs to
// completion, so a caller whose ctx is cancelled abandons the wait
// (receiving ctx.Err()) without cancelling or poisoning the flight for
// everyone else. The boolean reports whether the result was shared
// from another caller's flight.
//
// If fn panics, the panic propagates to the initiating caller if it is
// still waiting; waiters receive an errPanicked error rather than
// hanging. An initiator that already left keeps the process alive: the
// panic is swallowed into errPanicked for any remaining waiters.
func (g *Group) DoCtx(ctx context.Context, key string, fn func() (interface{}, error)) (interface{}, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	go func() {
		defer func() {
			if p := recover(); p != nil {
				c.panicked = true
				c.panicVal = p
				c.err = errPanicked
			}
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()

	select {
	case <-c.done:
		if c.panicked {
			panic(c.panicVal)
		}
		return c.val, c.err, false
	case <-ctx.Done():
		return nil, ctx.Err(), false
	}
}

// Do is DoCtx with a background context: the caller waits for the
// flight unconditionally.
func (g *Group) Do(key string, fn func() (interface{}, error)) (interface{}, error, bool) {
	return g.DoCtx(context.Background(), key, fn)
}

// waiting reports how many callers are blocked on the key's in-flight
// call (0 when no call is in flight). Used by tests to build
// deterministic concurrency scenarios.
func (g *Group) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.dups
	}
	return 0
}

// errPanicked is handed to waiters whose flight's fn panicked.
var errPanicked = errorString("serving: singleflight computation panicked")

type errorString string

func (e errorString) Error() string { return string(e) }
