// Package serving is the production-hardening layer between the HTTP
// handlers and the analysis packages: a keyed result cache with
// singleflight deduplication, per-route metrics, and the middleware
// stack (panic recovery, access logs, instrumentation) that cmd/serve
// wraps around the API.
//
// The dataset behind the analyses is deterministic, so cached results
// never go stale: the cache is bounded by size only and invalidation
// does not exist.
package serving

import "sync"

// call is an in-flight or completed singleflight computation.
type call struct {
	wg   sync.WaitGroup
	val  interface{}
	err  error
	dups int // completed waiters that joined this flight
}

// Group deduplicates concurrent computations by key: while a call for
// a key is in flight, additional Do calls for the same key wait for it
// and share its result instead of computing again.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do executes fn once per key at a time. The boolean reports whether
// the result was shared from another caller's flight. If fn panics the
// panic propagates to the initiating caller and waiters receive an
// errPanicked error rather than hanging.
func (g *Group) Do(key string, fn func() (interface{}, error)) (interface{}, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(call)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	normal := false
	defer func() {
		if !normal {
			c.err = errPanicked
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val, c.err = fn()
	normal = true
	return c.val, c.err, false
}

// waiting reports how many callers are blocked on the key's in-flight
// call (0 when no call is in flight). Used by tests to build
// deterministic concurrency scenarios.
func (g *Group) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.dups
	}
	return 0
}

// errPanicked is handed to waiters whose flight's fn panicked.
var errPanicked = errorString("serving: singleflight computation panicked")

type errorString string

func (e errorString) Error() string { return string(e) }
