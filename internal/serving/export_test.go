package serving

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestMetricsExport(t *testing.T) {
	m := NewMetrics()
	m.Observe("GET /api/v1/types", 200, 3*time.Millisecond)
	m.Observe("GET /api/v1/types", 200, 30*time.Millisecond)
	m.Observe("GET /api/v1/types", 400, time.Millisecond)
	m.Observe("GET /api/v1/courses", 200, 700*time.Millisecond)
	m.IncInFlight()

	ex := m.Export()
	if ex.InFlight != 1 {
		t.Fatalf("in-flight = %d, want 1", ex.InFlight)
	}
	if len(ex.Routes) != 2 || ex.Routes[0].Route != "GET /api/v1/courses" || ex.Routes[1].Route != "GET /api/v1/types" {
		t.Fatalf("routes not sorted: %+v", ex.Routes)
	}
	types := ex.Routes[1]
	if types.Count != 3 {
		t.Fatalf("count = %d, want 3", types.Count)
	}
	wantStatus := []StatusCount{{Status: 200, Count: 2}, {Status: 400, Count: 1}}
	if len(types.ByStatus) != 2 || types.ByStatus[0] != wantStatus[0] || types.ByStatus[1] != wantStatus[1] {
		t.Fatalf("by-status = %+v, want %+v", types.ByStatus, wantStatus)
	}
	bounds := LatencyBoundsMS()
	if !sort.Float64sAreSorted(bounds) {
		t.Fatalf("bounds not sorted: %v", bounds)
	}
	if len(types.BucketCounts) != len(bounds)+1 {
		t.Fatalf("bucket counts = %d, want %d", len(types.BucketCounts), len(bounds)+1)
	}
	var total uint64
	for _, n := range types.BucketCounts {
		total += n
	}
	if total != 3 {
		t.Fatalf("bucket total = %d, want 3", total)
	}
	if types.TotalMS < 34-1e-9 || types.TotalMS > 34+1e-9 {
		t.Fatalf("total ms = %v, want 34", types.TotalMS)
	}
	// Export must return copies: mutating them cannot corrupt the registry.
	types.BucketCounts[0] = math.MaxUint64
	bounds[0] = -1
	if m.Export().Routes[1].BucketCounts[0] == math.MaxUint64 || LatencyBoundsMS()[0] < 0 {
		t.Fatal("export aliases internal state")
	}
}
