package serving

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightLastWaiterCancelStopsFlight is the cancellation side
// of the contract: when the ONLY caller waiting on a flight departs,
// the flight context is cancelled so a context-aware computation can
// stop burning CPU for nobody.
func TestSingleflightLastWaiterCancelStopsFlight(t *testing.T) {
	var g Group
	started := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	callerErr := make(chan error, 1)
	go func() {
		_, err, _ := g.DoCtxFn(ctx, "k", func(fctx context.Context) (interface{}, error) {
			close(started)
			<-fctx.Done() // a context-aware compute observes the cancellation
			return nil, fctx.Err()
		})
		callerErr <- err
	}()
	<-started

	cancel()
	select {
	case err := <-callerErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled caller got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("caller still waiting; flight context was never cancelled")
	}

	// The key is reusable afterwards: the aborted flight left no state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err, shared := g.DoCtxFn(context.Background(), "k", func(context.Context) (interface{}, error) { return 7, nil })
		if err == nil && !shared && v.(int) == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-abort flight: v=%v err=%v shared=%v", v, err, shared)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleflightFlightSurvivesWhileFollowersRemain: the flight
// context is NOT cancelled when one of several waiters departs — the
// remaining follower keeps the flight alive and receives its real
// result. This preserves the detached-flight invariant of the
// context-cancellation audit under the new last-waiter semantics.
func TestSingleflightFlightSurvivesWhileFollowersRemain(t *testing.T) {
	var g Group
	started := make(chan struct{})
	block := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	leaderErr := make(chan error, 1)
	go func() {
		_, err, _ := g.DoCtxFn(ctx, "k", func(fctx context.Context) (interface{}, error) {
			close(started)
			select {
			case <-block:
				return 42, nil
			case <-fctx.Done():
				return nil, fctx.Err()
			}
		})
		leaderErr <- err
	}()
	<-started

	followerVal := make(chan interface{}, 1)
	go func() {
		v, err, _ := g.DoCtxFn(context.Background(), "k", func(context.Context) (interface{}, error) {
			return nil, errors.New("follower must not compute")
		})
		if err != nil {
			t.Error(err)
		}
		followerVal <- v
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.waiting("k") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never parked")
		}
		time.Sleep(time.Millisecond)
	}

	// The leader leaves; the follower is still waiting, so the flight
	// must keep running rather than observe fctx.Done().
	cancel()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader got %v", err)
	}
	close(block)
	select {
	case v := <-followerVal:
		if v.(int) != 42 {
			t.Fatalf("follower got %v, want 42 (flight was cancelled under it)", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower hung")
	}
}

// TestSingleflightAbortedJoinRetries covers the race where a caller
// joins a flight in the window after the flight's cancellation
// triggered but before the flight goroutine finished unwinding: the
// joiner's own context is live, so it must transparently start a fresh
// flight instead of inheriting the dying flight's context error.
func TestSingleflightAbortedJoinRetries(t *testing.T) {
	var g Group
	started := make(chan struct{})
	hold := make(chan struct{})
	var calls int32
	fn := func(fctx context.Context) (interface{}, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			close(started)
			<-fctx.Done()
			<-hold // keep the dying flight in the map while the joiner arrives
			return nil, fctx.Err()
		}
		return 42, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err, _ := g.DoCtxFn(ctx, "k", fn)
		leaderErr <- err
	}()
	<-started

	// Cancel the sole waiter: the flight context fires, the computation
	// is now failing with context.Canceled but still registered.
	cancel()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader got %v", err)
	}

	joinerVal := make(chan interface{}, 1)
	go func() {
		v, err, _ := g.DoCtxFn(context.Background(), "k", fn)
		if err != nil {
			t.Errorf("joiner with live context got %v", err)
		}
		joinerVal <- v
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.waiting("k") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("joiner never parked on the dying flight")
		}
		time.Sleep(time.Millisecond)
	}

	// Let the dying flight return its context error; the joiner must
	// observe the abort and recompute rather than surface it.
	close(hold)
	select {
	case v := <-joinerVal:
		if v.(int) != 42 {
			t.Fatalf("joiner got %v, want 42 from the retried flight", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joiner hung")
	}
	if n := atomic.LoadInt32(&calls); n != 2 {
		t.Fatalf("computation ran %d times, want 2 (aborted + retried)", n)
	}
}

// TestCacheDoCtxFnCancellation: the cache variant threads the flight
// context into compute, does not cache the aborted error, and serves a
// later caller with a fresh computation.
func TestCacheDoCtxFnCancellation(t *testing.T) {
	c := NewCache(4)
	started := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.DoCtxFn(ctx, "k", func(fctx context.Context) (interface{}, error) {
			close(started)
			<-fctx.Done()
			return nil, fctx.Err()
		})
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller got %v", err)
	}

	// Nothing was cached; the next caller computes fresh and succeeds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, cached, err := c.DoCtxFn(context.Background(), "k", func(context.Context) (interface{}, error) { return "fresh", nil })
		if err == nil && v.(string) == "fresh" {
			if cached {
				t.Fatal("aborted flight left a cached value")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-abort compute: v=%v cached=%v err=%v", v, cached, err)
		}
		time.Sleep(time.Millisecond)
	}

	// And successful DoCtxFn results ARE cached.
	v, cached, err := c.DoCtxFn(context.Background(), "k", func(context.Context) (interface{}, error) {
		return nil, errors.New("must be served from cache")
	})
	if err != nil || !cached || v.(string) != "fresh" {
		t.Fatalf("cache hit: v=%v cached=%v err=%v", v, cached, err)
	}
}
