// Package fleet is the horizontal scale-out layer: a consistent-hash
// ring that assigns every analysis cache key an owning replica, a
// static peer table describing the fleet's membership, and a
// breaker-gated HTTP forwarding client so any replica can accept any
// request while computes run on the key's owner.
//
// Ownership is cache locality: all replicas agree (same membership →
// byte-identical ring) on which node owns a key, so repeated requests
// for the same (dataset, analysis, params) triple land on one node's
// cache and singleflight group — the owner's existing per-key dedup
// becomes cluster-wide dedup without any shared state. Membership is
// static (the -peers flag); a membership change is a rolling restart
// with a new peer list, and the ring version lets replicas detect a
// split (mixed peer lists) and refuse misrouted computes instead of
// silently double-computing.
//
// The layer degrades, never fails: when an owner is unreachable,
// draining, or disagrees about ownership, the originating replica
// computes locally and serves — at worst the fleet briefly loses
// dedup, never availability. docs/cluster.md is the operator guide.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the number of ring points each member
// contributes when Options does not say otherwise. More virtual nodes
// smooth the key distribution and shrink the share moved by a
// membership change, at the cost of a larger (still tiny) sorted
// point table.
const DefaultVirtualNodes = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a fixed membership.
// Construction is deterministic: the same member set (in any order)
// yields a byte-identical ring, so every replica resolves every key to
// the same owner without coordination.
type Ring struct {
	vnodes  int
	nodes   []string // sorted membership
	points  []point  // sorted by (hash, node)
	version string   // 8-hex membership fingerprint
}

// NewRing builds a ring over nodes with the given virtual-node count
// (DefaultVirtualNodes when vnodes <= 0). Duplicate node IDs collapse;
// an empty membership yields a ring that owns nothing ("" from Owner).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	sorted := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			sorted = append(sorted, n)
		}
	}
	sort.Strings(sorted)
	r := &Ring{vnodes: vnodes, nodes: sorted, version: membershipVersion(sorted)}
	r.points = make([]point, 0, len(sorted)*vnodes)
	for _, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the node owning key: the first ring point at or after
// the key's hash, wrapping at the top. "" when the ring is empty.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the sorted membership.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Version returns the 8-hex membership fingerprint. Two replicas with
// the same version have byte-identical rings and therefore agree on
// every key's owner; forwarded requests carry it so a receiver can
// refuse computes routed under a divergent membership (not_owner)
// instead of breaking the ownership invariant.
func (r *Ring) Version() string { return r.version }

// VersionValue returns the fingerprint as a number, for the
// csm_fleet_ring_version gauge (exact in float64).
func (r *Ring) VersionValue() uint32 { return hash32(fmt.Sprint(r.nodes)) }

// membershipVersion fingerprints a sorted membership.
func membershipVersion(sorted []string) string {
	return fmt.Sprintf("%08x", hash32(fmt.Sprint(sorted)))
}

// hash64 is FNV-1a 64 with an avalanche finalizer. Raw FNV mixes the
// high-order bits of short strings poorly, which clusters ring points
// and key hashes into a narrow band and skews ownership badly; the
// finalizer (MurmurHash3's) spreads every input bit across the word.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return h.Sum32()
}
