package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csmaterials/internal/resilience"
)

// Wire protocol headers. A forwarded request carries the origin's node
// ID (the loop guard: forwarded requests are never re-forwarded) and
// its ring version (the handshake: the owner refuses computes routed
// under a divergent membership). Responses that went through the fleet
// layer name the node that computed them.
const (
	ForwardedHeader   = "X-CSM-Forwarded"
	RingVersionHeader = "X-CSM-Ring-Version"
	OwnerHeader       = "X-CSM-Owner"
)

// DefaultForwardTimeout caps one forwarded hop. Forwarding is an
// optimization (cache locality), not a requirement — past this the
// origin gives up and computes locally.
const DefaultForwardTimeout = 10 * time.Second

// Peer is one fleet member: a stable node ID (the ring identity) and
// the base URL its HTTP listener is reachable at.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Config is a fleet's static membership as seen by one member.
type Config struct {
	// Self is this replica's node ID. It must appear in Peers.
	Self string
	// Peers is the full membership, including self.
	Peers []Peer
}

// ParsePeers parses the -peers flag value — comma-separated
// "id=host:port" entries (a scheme is optional and defaults to
// http://) — into a Config for self. Every replica in a fleet must be
// started with the same membership list; self must be one of the IDs.
func ParsePeers(self, peers string) (Config, error) {
	if self == "" {
		return Config{}, errors.New("fleet: -node-id is required with -peers")
	}
	cfg := Config{Self: self}
	seen := make(map[string]bool)
	for _, entry := range strings.Split(peers, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, addr, ok := strings.Cut(entry, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return Config{}, fmt.Errorf("fleet: bad -peers entry %q (want id=host:port)", entry)
		}
		if seen[id] {
			return Config{}, fmt.Errorf("fleet: duplicate node id %q in -peers", id)
		}
		seen[id] = true
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		cfg.Peers = append(cfg.Peers, Peer{ID: id, URL: strings.TrimRight(addr, "/")})
	}
	if len(cfg.Peers) == 0 {
		return Config{}, errors.New("fleet: -peers is empty")
	}
	if !seen[self] {
		return Config{}, fmt.Errorf("fleet: -node-id %q not present in -peers", self)
	}
	return cfg, nil
}

// Options tune a Fleet. Zero values take defaults.
type Options struct {
	// VirtualNodes per member on the ring (DefaultVirtualNodes).
	VirtualNodes int
	// BreakerThreshold / BreakerCooldown configure the per-peer
	// forwarding breakers (resilience defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ForwardTimeout caps one forwarded hop (DefaultForwardTimeout).
	ForwardTimeout time.Duration
	// Client is the HTTP client for peer traffic (a fresh one).
	Client *http.Client
}

// Fleet is one replica's view of the scale-out layer: the ring, the
// peer table, the forwarding client with its per-peer breakers, the
// draining latch, and the csm_fleet_* counters.
type Fleet struct {
	self           string
	ring           *Ring
	peers          map[string]Peer // members other than self
	all            []Peer          // full membership, sorted by ID
	client         *http.Client
	breakers       *resilience.BreakerSet
	forwardTimeout time.Duration
	draining       atomic.Bool

	mu              sync.Mutex
	forwards        map[string]uint64 // per peer
	forwardFailures map[string]uint64 // per peer
	batchForwards   map[string]uint64 // per peer
	ownerComputes   uint64
	localFallbacks  uint64
	loopsPrevented  uint64
	notOwner        uint64
	drainRefused    uint64
	invalSent       uint64
	invalReceived   uint64
	batchFanouts    uint64
}

// New builds a Fleet from a parsed membership.
func New(cfg Config, o Options) (*Fleet, error) {
	if cfg.Self == "" || len(cfg.Peers) == 0 {
		return nil, errors.New("fleet: empty membership")
	}
	ids := make([]string, 0, len(cfg.Peers))
	peers := make(map[string]Peer, len(cfg.Peers))
	selfSeen := false
	for _, p := range cfg.Peers {
		ids = append(ids, p.ID)
		if p.ID == cfg.Self {
			selfSeen = true
			continue
		}
		peers[p.ID] = p
	}
	if !selfSeen {
		return nil, fmt.Errorf("fleet: self %q not in membership", cfg.Self)
	}
	all := append([]Peer(nil), cfg.Peers...)
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = DefaultForwardTimeout
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return &Fleet{
		self:            cfg.Self,
		ring:            NewRing(ids, o.VirtualNodes),
		peers:           peers,
		all:             all,
		client:          o.Client,
		breakers:        resilience.NewBreakerSet(o.BreakerThreshold, o.BreakerCooldown),
		forwardTimeout:  o.ForwardTimeout,
		forwards:        make(map[string]uint64),
		forwardFailures: make(map[string]uint64),
		batchForwards:   make(map[string]uint64),
	}, nil
}

// Self returns this replica's node ID.
func (f *Fleet) Self() string { return f.self }

// Owner returns the node ID owning key on this replica's ring.
func (f *Fleet) Owner(key string) string { return f.ring.Owner(key) }

// Owns reports whether this replica owns key.
func (f *Fleet) Owns(key string) bool { return f.ring.Owner(key) == f.self }

// Peers returns the full sorted membership, including self.
func (f *Fleet) Peers() []Peer { return append([]Peer(nil), f.all...) }

// PeerURL returns the base URL for a node ID ("" for self or unknown).
func (f *Fleet) PeerURL(id string) string { return f.peers[id].URL }

// RingVersion returns the membership fingerprint (see Ring.Version).
func (f *Fleet) RingVersion() string { return f.ring.Version() }

// RingVersionValue is the fingerprint as a gauge value.
func (f *Fleet) RingVersionValue() uint32 { return f.ring.VersionValue() }

// VersionMatches reports whether a forwarded request was routed under
// the same membership this replica runs. An empty header (a direct
// client talking to the internal endpoint) does not match.
func (f *Fleet) VersionMatches(r *http.Request) bool {
	return r.Header.Get(RingVersionHeader) == f.ring.Version()
}

// StartDraining latches the replica into drain mode: it finishes
// in-flight work and keeps answering direct client traffic, but
// refuses newly forwarded computes with 503 node_draining so peers
// fall back to local compute while this process shuts down.
func (f *Fleet) StartDraining() { f.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (f *Fleet) Draining() bool { return f.draining.Load() }

// Forward sends one hop to the owner peer: method + pathAndQuery
// against the peer's base URL, with the loop-guard and ring-version
// headers set and the peer's breaker consulted. The caller owns the
// response body. Transport errors and 5xx responses count against the
// peer's breaker; an open breaker fails fast with resilience.ErrOpen.
func (f *Fleet) Forward(ctx context.Context, owner, method, pathAndQuery string, body []byte) (*http.Response, error) {
	peer, ok := f.peers[owner]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown peer %q", owner)
	}
	br := f.breakers.Get(owner)
	if !br.Allow() {
		f.countForwardFailure(owner)
		return nil, fmt.Errorf("fleet: peer %s: %w", owner, resilience.ErrOpen)
	}
	ctx, cancel := context.WithTimeout(ctx, f.forwardTimeout)
	req, err := http.NewRequestWithContext(ctx, method, peer.URL+pathAndQuery, bytes.NewReader(body))
	if err != nil {
		cancel()
		br.Record(true) // not the peer's fault
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(ForwardedHeader, f.self)
	req.Header.Set(RingVersionHeader, f.ring.Version())
	f.countForward(owner)
	resp, err := f.client.Do(req)
	if err != nil {
		cancel()
		br.Record(false)
		f.countForwardFailure(owner)
		return nil, err
	}
	br.Record(resp.StatusCode < 500)
	// The timeout must outlive this call: the caller still reads the
	// body. Closing the body releases it.
	resp.Body = cancelOnClose{resp.Body, cancel}
	return resp, nil
}

// cancelOnClose releases a forwarded hop's timeout context when the
// caller finishes with the response body.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// ShouldFallback classifies a Forward outcome: true when the origin
// should give up on the owner and compute locally (transport error,
// breaker open, owner-side 5xx, or an ownership disagreement 421),
// false when the owner's response should be relayed to the client
// verbatim (2xx data, 4xx like validation errors, 429 shedding).
func ShouldFallback(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.StatusCode >= 500 || resp.StatusCode == http.StatusMisdirectedRequest
}

// BroadcastInvalidate tells every peer that dataset changed on this
// replica so they sweep its revisioned cache keys (POST
// /api/v1/fleet/invalidate). Best-effort and concurrent: a dead peer
// just misses the broadcast (its stale keys are revision-scoped and
// unreachable anyway once its registry catches up). Returns the number
// of peers that acknowledged.
func (f *Fleet) BroadcastInvalidate(ctx context.Context, dataset string) int {
	body := []byte(fmt.Sprintf(`{"dataset":%q}`, dataset))
	var (
		wg  sync.WaitGroup
		acc atomic.Int64
	)
	for id := range f.peers {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, err := f.Forward(ctx, id, http.MethodPost, "/api/v1/fleet/invalidate", body)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				acc.Add(1)
			}
		}(id)
	}
	wg.Wait()
	n := int(acc.Load())
	f.mu.Lock()
	f.invalSent += uint64(n)
	f.mu.Unlock()
	return n
}

// BreakerStats snapshots the per-peer forwarding breakers.
func (f *Fleet) BreakerStats() map[string]resilience.BreakerStats {
	return f.breakers.Stats()
}

// Counter hooks. The server calls these at the routing decision points;
// they are the source of truth for the csm_fleet_* families.

func (f *Fleet) countForward(peer string) {
	f.mu.Lock()
	f.forwards[peer]++
	f.mu.Unlock()
}

func (f *Fleet) countForwardFailure(peer string) {
	f.mu.Lock()
	f.forwardFailures[peer]++
	f.mu.Unlock()
}

// CountBatchForward records one sub-batch fanned out to peer.
func (f *Fleet) CountBatchForward(peer string) {
	f.mu.Lock()
	f.batchForwards[peer]++
	f.mu.Unlock()
}

// CountOwnerCompute records a forwarded compute served as owner.
func (f *Fleet) CountOwnerCompute() { f.bump(&f.ownerComputes) }

// CountLocalFallback records a compute run locally because the owner
// was unreachable, draining, or disagreed about ownership.
func (f *Fleet) CountLocalFallback() { f.bump(&f.localFallbacks) }

// CountLoopPrevented records a forwarded request that would have been
// re-forwarded (ownership disagreement) but was computed locally by
// the loop guard instead.
func (f *Fleet) CountLoopPrevented() { f.bump(&f.loopsPrevented) }

// CountNotOwner records a forwarded compute refused with 421.
func (f *Fleet) CountNotOwner() { f.bump(&f.notOwner) }

// CountDrainRefused records a forwarded compute refused with 503
// node_draining.
func (f *Fleet) CountDrainRefused() { f.bump(&f.drainRefused) }

// CountInvalidationReceived records an invalidation broadcast applied.
func (f *Fleet) CountInvalidationReceived() { f.bump(&f.invalReceived) }

// CountBatchFanout records one distributed batch partitioning.
func (f *Fleet) CountBatchFanout() { f.bump(&f.batchFanouts) }

func (f *Fleet) bump(p *uint64) {
	f.mu.Lock()
	*p++
	f.mu.Unlock()
}

// Stats is a point-in-time snapshot of the fleet counters.
type Stats struct {
	Self            string            `json:"self"`
	RingVersion     string            `json:"ring_version"`
	Draining        bool              `json:"draining"`
	Peers           int               `json:"peers"`
	Forwards        map[string]uint64 `json:"forwards_total"`
	ForwardFailures map[string]uint64 `json:"forward_failures_total"`
	BatchForwards   map[string]uint64 `json:"batch_forwards_total"`
	OwnerComputes   uint64            `json:"owner_computes_total"`
	LocalFallbacks  uint64            `json:"local_fallbacks_total"`
	LoopsPrevented  uint64            `json:"loops_prevented_total"`
	NotOwner        uint64            `json:"not_owner_total"`
	DrainRefused    uint64            `json:"drain_refused_total"`
	InvalSent       uint64            `json:"invalidations_sent_total"`
	InvalReceived   uint64            `json:"invalidations_received_total"`
	BatchFanouts    uint64            `json:"batch_fanouts_total"`
}

// Stats snapshots the counters.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		Self:            f.self,
		RingVersion:     f.ring.Version(),
		Draining:        f.draining.Load(),
		Peers:           len(f.all),
		Forwards:        make(map[string]uint64, len(f.forwards)),
		ForwardFailures: make(map[string]uint64, len(f.forwardFailures)),
		BatchForwards:   make(map[string]uint64, len(f.batchForwards)),
		OwnerComputes:   f.ownerComputes,
		LocalFallbacks:  f.localFallbacks,
		LoopsPrevented:  f.loopsPrevented,
		NotOwner:        f.notOwner,
		DrainRefused:    f.drainRefused,
		InvalSent:       f.invalSent,
		InvalReceived:   f.invalReceived,
		BatchFanouts:    f.batchFanouts,
	}
	for k, v := range f.forwards {
		s.Forwards[k] = v
	}
	for k, v := range f.forwardFailures {
		s.ForwardFailures[k] = v
	}
	for k, v := range f.batchForwards {
		s.BatchForwards[k] = v
	}
	return s
}
