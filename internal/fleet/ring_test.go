package fleet

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// keys returns a deterministic corpus of fleet-style ownership keys
// (dataset|analysis|paramKey) large enough for distribution claims.
func testKeys(n int) []string {
	ks := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ks = append(ks, fmt.Sprintf("ds%d|analysis%d|k=%d", i%7, i%5, i))
	}
	return ks
}

func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	orders := [][]string{
		{"a", "b", "c"},
		{"c", "a", "b"},
		{"b", "c", "a", "a", "b"}, // duplicates collapse
	}
	rings := make([]*Ring, len(orders))
	for i, o := range orders {
		rings[i] = NewRing(o, 0)
	}
	for _, r := range rings[1:] {
		if r.Version() != rings[0].Version() {
			t.Fatalf("version differs across insertion order: %s vs %s", r.Version(), rings[0].Version())
		}
	}
	for _, k := range testKeys(2000) {
		want := rings[0].Owner(k)
		for i, r := range rings[1:] {
			if got := r.Owner(k); got != want {
				t.Fatalf("order %d: Owner(%q) = %q, want %q", i+1, k, got, want)
			}
		}
	}
}

func TestRingOwnershipIsStableAndTotal(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	members := map[string]bool{"a": true, "b": true, "c": true}
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, k := range keys {
		o := r.Owner(k)
		if !members[o] {
			t.Fatalf("Owner(%q) = %q, not a member", k, o)
		}
		if o2 := r.Owner(k); o2 != o {
			t.Fatalf("Owner(%q) unstable: %q then %q", k, o, o2)
		}
		counts[o]++
	}
	// With 64 vnodes per member the split should be roughly even; a
	// member owning under 1/6 of keys (half its fair share for n=3)
	// would indicate a broken hash or sort.
	for m, c := range counts {
		if c < len(keys)/6 {
			t.Fatalf("member %s owns only %d/%d keys — distribution broken: %v", m, c, len(keys), counts)
		}
	}
}

func TestRingJoinMovesKeysOnlyToNewNode(t *testing.T) {
	before := NewRing([]string{"a", "b", "c"}, 0)
	after := NewRing([]string{"a", "b", "c", "d"}, 0)
	keys := testKeys(3000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		moved++
		if is != "d" {
			t.Fatalf("join: key %q moved %s→%s; keys may only move to the joining node", k, was, is)
		}
	}
	if moved == 0 {
		t.Fatal("join: no keys moved to the new node")
	}
	// Consistent hashing bound: the new node should take roughly 1/n
	// of the keyspace, not arbitrarily more.
	if moved > len(keys)/2 {
		t.Fatalf("join: %d/%d keys moved — far beyond the ~1/4 consistent-hash bound", moved, len(keys))
	}
}

func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	before := NewRing([]string{"a", "b", "c", "d"}, 0)
	after := NewRing([]string{"a", "b", "c"}, 0)
	for _, k := range testKeys(3000) {
		was, is := before.Owner(k), after.Owner(k)
		if was == "d" {
			if is == "d" {
				t.Fatalf("leave: key %q still owned by departed node", k)
			}
			continue
		}
		if was != is {
			t.Fatalf("leave: key %q moved %s→%s though its owner stayed", k, was, is)
		}
	}
}

func TestRingVersionTracksMembership(t *testing.T) {
	a := NewRing([]string{"a", "b"}, 0)
	b := NewRing([]string{"b", "a"}, 0)
	c := NewRing([]string{"a", "b", "c"}, 0)
	if a.Version() != b.Version() {
		t.Fatalf("same membership, different versions: %s vs %s", a.Version(), b.Version())
	}
	if a.Version() == c.Version() {
		t.Fatalf("different membership, same version %s", a.Version())
	}
	if len(a.Version()) != 8 {
		t.Fatalf("version %q not 8 hex chars", a.Version())
	}
	if a.VersionValue() == c.VersionValue() {
		t.Fatal("VersionValue collision across memberships")
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
}

func TestParsePeers(t *testing.T) {
	cfg, err := ParsePeers("b", "a=127.0.0.1:8080, b=http://127.0.0.1:8081/ ,c=localhost:8082")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	if cfg.Self != "b" || len(cfg.Peers) != 3 {
		t.Fatalf("unexpected config: %+v", cfg)
	}
	want := map[string]string{
		"a": "http://127.0.0.1:8080",
		"b": "http://127.0.0.1:8081",
		"c": "http://localhost:8082",
	}
	for _, p := range cfg.Peers {
		if want[p.ID] != p.URL {
			t.Fatalf("peer %s URL = %q, want %q", p.ID, p.URL, want[p.ID])
		}
	}

	for name, args := range map[string][2]string{
		"missing self":   {"z", "a=1:1,b=2:2"},
		"empty self":     {"", "a=1:1"},
		"bad entry":      {"a", "a"},
		"duplicate id":   {"a", "a=1:1,a=2:2"},
		"empty list":     {"a", " , "},
		"empty id":       {"a", "=1:1,a=2:2"},
		"empty addr":     {"a", "a=,b=2:2"},
		"id only equals": {"a", "a=1:1,b="},
	} {
		if _, err := ParsePeers(args[0], args[1]); err == nil {
			t.Errorf("%s: ParsePeers(%q, %q) succeeded, want error", name, args[0], args[1])
		}
	}
}

func TestFleetOwnershipAgreesAcrossReplicas(t *testing.T) {
	cfgStr := "a=127.0.0.1:1,b=127.0.0.1:2,c=127.0.0.1:3"
	fleets := make([]*Fleet, 0, 3)
	for _, self := range []string{"a", "b", "c"} {
		cfg, err := ParsePeers(self, cfgStr)
		if err != nil {
			t.Fatal(err)
		}
		f, err := New(cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fleets = append(fleets, f)
	}
	for _, k := range testKeys(1000) {
		want := fleets[0].Owner(k)
		for _, f := range fleets[1:] {
			if got := f.Owner(k); got != want {
				t.Fatalf("replica %s: Owner(%q) = %q, want %q", f.Self(), k, got, want)
			}
		}
	}
	if fleets[0].RingVersion() != fleets[2].RingVersion() {
		t.Fatal("replicas disagree on ring version")
	}
	owns := 0
	for _, f := range fleets {
		if f.Owns("ds0|analysis0|k=0") {
			owns++
		}
	}
	if owns != 1 {
		t.Fatalf("key owned by %d replicas, want exactly 1", owns)
	}
}

func TestFleetForwardUnknownPeerAndBreaker(t *testing.T) {
	cfg, err := ParsePeers("a", "a=127.0.0.1:1,b=127.0.0.1:2")
	if err != nil {
		t.Fatal(err)
	}
	// Port 2 is unroutable; threshold 1 opens the breaker after the
	// first transport failure.
	f, err := New(cfg, Options{BreakerThreshold: 1, BreakerCooldown: time.Hour, ForwardTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Forward(context.Background(), "nope", http.MethodGet, "/x", nil); err == nil {
		t.Fatal("Forward to unknown peer succeeded")
	}
	if _, err := f.Forward(context.Background(), "b", http.MethodGet, "/x", nil); err == nil {
		t.Fatal("Forward to dead peer succeeded")
	}
	_, err = f.Forward(context.Background(), "b", http.MethodGet, "/x", nil)
	if err == nil {
		t.Fatal("second Forward succeeded, want breaker rejection")
	}
	st := f.Stats()
	if st.Forwards["b"] != 1 {
		t.Fatalf("forwards[b] = %d, want 1 (breaker-rejected try must not count as a forward)", st.Forwards["b"])
	}
	if st.ForwardFailures["b"] != 2 {
		t.Fatalf("forward_failures[b] = %d, want 2", st.ForwardFailures["b"])
	}
}

func TestFleetDrainingLatch(t *testing.T) {
	cfg, _ := ParsePeers("a", "a=127.0.0.1:1,b=127.0.0.1:2")
	f, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Draining() {
		t.Fatal("new fleet already draining")
	}
	f.StartDraining()
	if !f.Draining() {
		t.Fatal("StartDraining did not latch")
	}
	if !f.Stats().Draining {
		t.Fatal("Stats does not reflect draining")
	}
}
