package search

import (
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

const (
	tagRecursion = "SDF/fundamental-programming-concepts/the-concept-of-recursion"
	tagBigO      = "AL/basic-analysis/big-o-notation-use"
	tagVars      = "SDF/fundamental-programming-concepts/variables-and-primitive-data-types"
)

func testRepo(t *testing.T) *materials.Repository {
	t.Helper()
	repo := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	course := &materials.Course{
		ID: "c", Name: "C", Group: materials.GroupCS1,
		Materials: []*materials.Material{
			{ID: "m1", Title: "Recursion slides", Type: materials.Lecture, Author: "saule",
				Language: "C++", CourseLevel: "CS1", Tags: []string{tagRecursion}},
			{ID: "m2", Title: "Big-O homework", Type: materials.Assignment, Author: "krs",
				Language: "Java", CourseLevel: "CS2", Datasets: []string{"earthquakes"},
				Tags: []string{tagBigO, tagRecursion}},
			{ID: "m3", Title: "Variables lab", Type: materials.Lab, Author: "saule",
				Language: "Python", CourseLevel: "CS1", Tags: []string{tagVars}},
		},
	}
	if err := repo.AddCourse(course); err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestSearchByTag(t *testing.T) {
	e := NewEngine(testRepo(t))
	res := e.Search(Query{Tags: []string{tagRecursion}})
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	ids := map[string]bool{res[0].Material.ID: true, res[1].Material.ID: true}
	if !ids["m1"] || !ids["m2"] {
		t.Fatalf("wrong results: %v", ids)
	}
	for _, r := range res {
		if len(r.MatchedTags) != 1 || r.MatchedTags[0] != tagRecursion {
			t.Fatalf("MatchedTags = %v", r.MatchedTags)
		}
		if r.Score <= 0 {
			t.Fatal("non-positive score")
		}
	}
}

func TestSearchScoringPrefersMoreMatches(t *testing.T) {
	e := NewEngine(testRepo(t))
	res := e.Search(Query{Tags: []string{tagRecursion, tagBigO}})
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Material.ID != "m2" {
		t.Fatalf("best result = %s, want m2 (matches both tags)", res[0].Material.ID)
	}
	if res[0].Score <= res[1].Score {
		t.Fatal("two-tag match must outscore one-tag match")
	}
}

func TestIDFRareTagsWeighMore(t *testing.T) {
	e := NewEngine(testRepo(t))
	// tagBigO appears in 1 material, tagRecursion in 2: bigO is rarer.
	if e.IDF(tagBigO) <= e.IDF(tagRecursion) {
		t.Fatalf("IDF(bigO)=%v should exceed IDF(recursion)=%v", e.IDF(tagBigO), e.IDF(tagRecursion))
	}
	if e.IDF("never-seen") <= e.IDF(tagBigO) {
		t.Fatal("unknown tag should have maximal IDF")
	}
}

func TestSearchByPrefix(t *testing.T) {
	e := NewEngine(testRepo(t))
	res := e.Search(Query{TagPrefixes: []string{"SDF/fundamental-programming-concepts/"}})
	if len(res) != 3 {
		t.Fatalf("prefix search = %d results, want 3", len(res))
	}
}

func TestSearchFacets(t *testing.T) {
	e := NewEngine(testRepo(t))
	if res := e.Search(Query{Tags: []string{tagRecursion}, Author: "saule"}); len(res) != 1 || res[0].Material.ID != "m1" {
		t.Fatalf("author facet = %v", res)
	}
	if res := e.Search(Query{Tags: []string{tagRecursion}, Language: "java"}); len(res) != 1 || res[0].Material.ID != "m2" {
		t.Fatalf("language facet (case-insensitive) = %v", res)
	}
	if res := e.Search(Query{Tags: []string{tagRecursion}, CourseLevel: "CS2"}); len(res) != 1 {
		t.Fatalf("level facet = %v", res)
	}
	if res := e.Search(Query{Tags: []string{tagRecursion}, Dataset: "earthquakes"}); len(res) != 1 || res[0].Material.ID != "m2" {
		t.Fatalf("dataset facet = %v", res)
	}
	if res := e.Search(Query{Tags: []string{tagRecursion}, Dataset: "nope"}); len(res) != 0 {
		t.Fatalf("missing dataset matched: %v", res)
	}
}

func TestFacetOnlyBrowse(t *testing.T) {
	e := NewEngine(testRepo(t))
	res := e.Search(Query{Author: "saule"})
	if len(res) != 2 {
		t.Fatalf("facet-only browse = %d results, want 2", len(res))
	}
}

func TestSearchText(t *testing.T) {
	e := NewEngine(testRepo(t))
	res := e.Search(Query{Text: "recursion"})
	if len(res) != 1 || res[0].Material.ID != "m1" {
		t.Fatalf("text search = %v", res)
	}
	// Text plus tags unions the criteria.
	res = e.Search(Query{Text: "recursion", Tags: []string{tagBigO}})
	if len(res) != 2 {
		t.Fatalf("text+tag = %d results", len(res))
	}
}

func TestSearchLimitAndDeterminism(t *testing.T) {
	e := NewEngine(testRepo(t))
	res := e.Search(Query{Tags: []string{tagRecursion}, Limit: 1})
	if len(res) != 1 {
		t.Fatalf("limit ignored: %d", len(res))
	}
	a := e.Search(Query{TagPrefixes: []string{"SDF/"}})
	b := e.Search(Query{TagPrefixes: []string{"SDF/"}})
	for i := range a {
		if a[i].Material.ID != b[i].Material.ID {
			t.Fatal("search not deterministic")
		}
	}
}

func TestSimilarTo(t *testing.T) {
	e := NewEngine(testRepo(t))
	res := e.SimilarTo("m1", 5)
	if len(res) != 1 || res[0].Material.ID != "m2" {
		t.Fatalf("SimilarTo(m1) = %v", res)
	}
	if e.SimilarTo("ghost", 5) != nil {
		t.Fatal("SimilarTo of unknown material should be nil")
	}
}

func TestSearchOnFullDataset(t *testing.T) {
	e := NewEngine(dataset.Repository())
	// Searching for parallel-decomposition content must surface PDC
	// course materials.
	res := e.Search(Query{TagPrefixes: []string{"PD/parallel-decomposition/"}, Limit: 10})
	if len(res) == 0 {
		t.Fatal("no results for PD content")
	}
	for _, r := range res {
		if r.Score <= 0 {
			t.Fatal("zero-score result returned")
		}
	}
	// All results come from PDC courses (only they carry PD tags).
	repo := dataset.Repository()
	pdcAuthors := map[string]bool{}
	for _, id := range dataset.PDCCourseIDs() {
		pdcAuthors[repo.Course(id).Instructor] = true
	}
	for _, r := range res {
		if !pdcAuthors[r.Material.Author] {
			t.Errorf("result %s authored by %s, not a PDC instructor", r.Material.ID, r.Material.Author)
		}
	}
}
