// Package search implements the CS Materials search of §3.1.2: find
// learning materials matching a set of curriculum topics and learning
// outcomes, with TF-IDF-style scoring (rarer curriculum tags weigh more)
// and facet filters for course level, author, programming language, and
// datasets used.
package search

import (
	"math"
	"sort"
	"strings"

	"csmaterials/internal/materials"
)

// Query describes a search.
type Query struct {
	// Tags are the curriculum entries to match (exact IDs). A material
	// scores by the weighted overlap of its tags with these.
	Tags []string
	// TagPrefixes match whole subtrees, e.g. "AL/basic-analysis/" matches
	// every entry of that knowledge unit.
	TagPrefixes []string
	// Text is matched case-insensitively against material titles and
	// descriptions (any word).
	Text string
	// CourseLevel, Author, Language, Dataset filter exactly when non-empty.
	CourseLevel string
	Author      string
	Language    string
	Dataset     string
	// Limit caps the result count; 0 means no cap.
	Limit int
}

// Result is a scored material.
type Result struct {
	Material *materials.Material
	Score    float64
	// MatchedTags are the query tags present on the material.
	MatchedTags []string
}

// Engine indexes a repository's materials for search.
type Engine struct {
	repo *materials.Repository
	// docFreq counts materials per tag for the IDF weighting.
	docFreq map[string]int
	numDocs int
}

// NewEngine indexes the repository.
func NewEngine(repo *materials.Repository) *Engine {
	e := &Engine{repo: repo, docFreq: map[string]int{}}
	for _, m := range repo.Materials() {
		e.numDocs++
		for tag := range m.TagSet() {
			e.docFreq[tag]++
		}
	}
	return e
}

// IDF returns the inverse document frequency weight of a tag: rare tags
// discriminate more. Unknown tags get the maximum weight.
func (e *Engine) IDF(tag string) float64 {
	df := e.docFreq[tag]
	return math.Log(float64(e.numDocs+1) / float64(df+1))
}

// Search scores every material against the query and returns matches in
// descending score order (ties broken by material ID for determinism).
func (e *Engine) Search(q Query) []Result {
	wanted := map[string]bool{}
	for _, t := range q.Tags {
		wanted[t] = true
	}
	var results []Result
	textWords := strings.Fields(strings.ToLower(q.Text))
	for _, m := range e.repo.Materials() {
		if !matchFacets(m, q) {
			continue
		}
		var matched []string
		score := 0.0
		for tag := range m.TagSet() {
			ok := wanted[tag]
			if !ok {
				for _, p := range q.TagPrefixes {
					if strings.HasPrefix(tag, p) {
						ok = true
						break
					}
				}
			}
			if ok {
				matched = append(matched, tag)
				score += e.IDF(tag)
			}
		}
		if len(textWords) > 0 {
			hay := strings.ToLower(m.Title + " " + m.Description)
			hits := 0
			for _, w := range textWords {
				if strings.Contains(hay, w) {
					hits++
				}
			}
			if hits == 0 && len(matched) == 0 {
				continue
			}
			score += float64(hits)
		} else if len(matched) == 0 {
			// Tag-only query and no overlap: not a result — unless the
			// query has no tag criteria at all (pure facet browse).
			if len(q.Tags)+len(q.TagPrefixes) > 0 {
				continue
			}
			score = 1 // facet-only match
		}
		sort.Strings(matched)
		results = append(results, Result{Material: m, Score: score, MatchedTags: matched})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Material.ID < results[j].Material.ID
	})
	if q.Limit > 0 && len(results) > q.Limit {
		results = results[:q.Limit]
	}
	return results
}

func matchFacets(m *materials.Material, q Query) bool {
	if q.CourseLevel != "" && !strings.EqualFold(m.CourseLevel, q.CourseLevel) {
		return false
	}
	if q.Author != "" && !strings.EqualFold(m.Author, q.Author) {
		return false
	}
	if q.Language != "" && !strings.EqualFold(m.Language, q.Language) {
		return false
	}
	if q.Dataset != "" {
		found := false
		for _, d := range m.Datasets {
			if strings.EqualFold(d, q.Dataset) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SimilarTo returns materials most similar to the given one by weighted
// tag overlap — "find a better set of slides to explain this concept".
// The material itself is excluded.
func (e *Engine) SimilarTo(id string, limit int) []Result {
	src := e.repo.Material(id)
	if src == nil {
		return nil
	}
	results := e.Search(Query{Tags: src.Tags, Limit: 0})
	out := results[:0]
	for _, r := range results {
		if r.Material.ID != id {
			out = append(out, r)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
