package audit

import (
	"strings"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

func mkCourse(id string, tags ...string) *materials.Course {
	return &materials.Course{
		ID: id, Name: id, Group: materials.GroupCS1,
		Materials: []*materials.Material{
			{ID: id + "-m", Title: "m", Type: materials.Lecture, Tags: tags},
		},
	}
}

func TestAuditCountsUnitLeaves(t *testing.T) {
	g := ontology.CS2013()
	c := mkCourse("c",
		"SDF/fundamental-programming-concepts/the-concept-of-recursion",
		"SDF/fundamental-programming-concepts/variables-and-primitive-data-types",
		"AL/basic-analysis/big-o-notation-use",
	)
	r := Audit(c, g)
	var fpc, ba UnitCoverage
	for _, u := range r.Units {
		switch u.Unit.ID {
		case "SDF/fundamental-programming-concepts":
			fpc = u
		case "AL/basic-analysis":
			ba = u
		}
	}
	if fpc.Covered != 2 {
		t.Fatalf("FPC covered = %d, want 2", fpc.Covered)
	}
	if fpc.Total < 10 {
		t.Fatalf("FPC total = %d, too small", fpc.Total)
	}
	if ba.Covered != 1 {
		t.Fatalf("basic-analysis covered = %d", ba.Covered)
	}
	if fpc.Tier != ontology.TierCore1 {
		t.Fatalf("FPC tier = %v", fpc.Tier)
	}
}

func TestAuditIgnoresForeignTags(t *testing.T) {
	g := ontology.CS2013()
	c := mkCourse("c", "ALGO/algorithmic-paradigms/reduction-as-a-parallel-pattern")
	r := Audit(c, g)
	for _, u := range r.Units {
		if u.Covered != 0 {
			t.Fatalf("PDC12 tag counted toward CS2013 unit %s", u.Unit.ID)
		}
	}
}

func TestTierCoverageAndGaps(t *testing.T) {
	g := ontology.CS2013()
	c := dataset.Repository().Course("ccc-csci40-kerney")
	r := Audit(c, g)
	c1 := r.TierCoverage(ontology.TierCore1)
	if c1 <= 0 || c1 >= 1 {
		t.Fatalf("a single CS1 course should cover some but not all of core-1: %v", c1)
	}
	// Gaps at threshold 1.0 lists every unit below full coverage; at 0 it
	// is empty.
	gaps := r.Gaps(ontology.TierCore1, 1.0)
	if len(gaps) == 0 {
		t.Fatal("no core-1 gaps for a single course — impossible")
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i].Fraction() < gaps[i-1].Fraction() {
			t.Fatal("gaps not sorted by coverage")
		}
	}
	if len(r.Gaps(ontology.TierCore1, 0)) != 0 {
		t.Fatal("threshold 0 must produce no gaps")
	}
}

func TestReportString(t *testing.T) {
	c := dataset.Repository().Course("ccc-csci40-kerney")
	out := Audit(c, ontology.CS2013()).String()
	if !strings.Contains(out, "core-1 coverage") || !strings.Contains(out, "SDF/fundamental-programming-concepts") {
		t.Fatalf("report incomplete:\n%s", out)
	}
}

func TestAuditCollection(t *testing.T) {
	g := ontology.CS2013()
	courses := dataset.Courses()
	cov := AuditCollection(courses, g)
	byID := map[string]CollectionCoverage{}
	for _, c := range cov {
		byID[c.Unit.ID] = c
	}
	// FPC is covered by many courses.
	fpc := byID["SDF/fundamental-programming-concepts"]
	if fpc.Courses < 6 {
		t.Fatalf("FPC covered by %d courses, want >= 6", fpc.Courses)
	}
	if fpc.LeavesCovered == 0 || fpc.LeavesCovered > fpc.Total {
		t.Fatalf("FPC leaves covered = %d of %d", fpc.LeavesCovered, fpc.Total)
	}
	// Union coverage is at least any single course's coverage.
	single := Audit(courses[0], g)
	for _, u := range single.Units {
		if byID[u.Unit.ID].LeavesCovered < u.Covered {
			t.Fatalf("union coverage of %s below single-course coverage", u.Unit.ID)
		}
	}
}

func TestUncoveredCore(t *testing.T) {
	g := ontology.CS2013()
	// A collection of one tiny course leaves most of core-1 uncovered.
	cov := AuditCollection([]*materials.Course{
		mkCourse("tiny", "SDF/fundamental-programming-concepts/the-concept-of-recursion"),
	}, g)
	un := UncoveredCore(cov)
	if len(un) == 0 {
		t.Fatal("a tiny course cannot cover all of core-1")
	}
	for _, u := range un {
		if u.Tier != ontology.TierCore1 || u.Courses != 0 {
			t.Fatalf("non-gap in UncoveredCore: %+v", u)
		}
	}
	// The full dataset covers far more.
	full := UncoveredCore(AuditCollection(dataset.Courses(), g))
	if len(full) >= len(un) {
		t.Fatal("the 20-course collection should cover more core-1 units than one tiny course")
	}
}

func TestPDCReadiness(t *testing.T) {
	// A PDC course covers much of the PDC12 core; an intro course covers
	// none of it but some prerequisites.
	pdcCourse := dataset.Repository().Course("uncc-3145-saule")
	r := AssessPDCReadiness(pdcCourse)
	if r.CoreTotal == 0 {
		t.Fatal("no PDC12 core topics found")
	}
	if float64(r.CoreCovered)/float64(r.CoreTotal) < 0.25 {
		t.Fatalf("PDC course covers only %d/%d of the PDC12 core", r.CoreCovered, r.CoreTotal)
	}
	if r.PrerequisiteScore() < 0.5 {
		t.Fatalf("PDC course prerequisite score %v too low", r.PrerequisiteScore())
	}

	intro := dataset.Repository().Course("tulane-cmps1100-kurdia")
	ri := AssessPDCReadiness(intro)
	if ri.CoreCovered != 0 {
		t.Fatalf("intro course covers %d PDC12 core topics; expected 0", ri.CoreCovered)
	}
	// The DS courses are better prepared (they cover more prerequisites)
	// than the pure intro course.
	ds := AssessPDCReadiness(dataset.Repository().Course("uncc-2214-krs"))
	if ds.PrerequisiteScore() <= ri.PrerequisiteScore() {
		t.Fatalf("DS prerequisite score %v not above intro's %v", ds.PrerequisiteScore(), ri.PrerequisiteScore())
	}
}

func TestPrerequisiteTagsResolve(t *testing.T) {
	g := ontology.CS2013()
	for _, tag := range PrerequisiteTags() {
		if g.Lookup(tag) == nil {
			t.Errorf("prerequisite %q not in CS2013", tag)
		}
	}
}
