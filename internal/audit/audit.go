// Package audit implements the curriculum audit that CS Materials offers
// instructors (§3.1): compare a course's classification against the
// CS2013 tier requirements — Core-1 units must be covered entirely by a
// curriculum, Core-2 units at 80% or more — and against the PDC12 core,
// reporting per-unit coverage and gaps. The aggregate audit over many
// courses shows what a whole collection covers, which is how the paper
// frames "understanding how computer science is being taught".
package audit

import (
	"fmt"
	"sort"
	"strings"

	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

// UnitCoverage reports how much of one knowledge unit a course covers.
type UnitCoverage struct {
	Unit    *ontology.Node
	Tier    ontology.Tier
	Covered int
	Total   int
}

// Fraction returns covered/total (0 for empty units).
func (u UnitCoverage) Fraction() float64 {
	if u.Total == 0 {
		return 0
	}
	return float64(u.Covered) / float64(u.Total)
}

// Report is a per-course audit against one guideline.
type Report struct {
	Course *materials.Course
	// Units lists every knowledge unit of the guideline with the course's
	// coverage, sorted by unit ID.
	Units []UnitCoverage
}

// Audit computes a course's coverage of every knowledge unit in the
// guideline. Tags that do not belong to the guideline are ignored (a
// CS2013 audit is unaffected by PDC12 tags and vice versa).
func Audit(c *materials.Course, g *ontology.Guideline) *Report {
	covered := map[string]int{} // unit ID → covered leaf count
	for tag := range c.TagSet() {
		n := g.Lookup(tag)
		if n == nil || len(n.Children) != 0 {
			continue
		}
		if u := ontology.UnitOf(n); u != nil {
			covered[u.ID]++
		}
	}
	var units []UnitCoverage
	for _, u := range g.NodesOfKind(ontology.KindUnit) {
		total := 0
		for _, child := range u.Children {
			if len(child.Children) == 0 {
				total++
			}
		}
		units = append(units, UnitCoverage{Unit: u, Tier: u.Tier, Covered: covered[u.ID], Total: total})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Unit.ID < units[j].Unit.ID })
	return &Report{Course: c, Units: units}
}

// TierCoverage returns the overall fraction of the tier's leaves the
// course covers.
func (r *Report) TierCoverage(tier ontology.Tier) float64 {
	covered, total := 0, 0
	for _, u := range r.Units {
		if u.Tier != tier {
			continue
		}
		covered += u.Covered
		total += u.Total
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// Gaps returns the units of the given tier covered strictly below the
// fraction threshold, least-covered first.
func (r *Report) Gaps(tier ontology.Tier, threshold float64) []UnitCoverage {
	var out []UnitCoverage
	for _, u := range r.Units {
		if u.Tier == tier && u.Fraction() < threshold {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction() != out[j].Fraction() {
			return out[i].Fraction() < out[j].Fraction()
		}
		return out[i].Unit.ID < out[j].Unit.ID
	})
	return out
}

// String renders the audit as a table of non-empty units.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit of %s\n", r.Course.ID)
	fmt.Fprintf(&b, "  core-1 coverage: %5.1f%% (CS2013 requires 100%% across a curriculum)\n", 100*r.TierCoverage(ontology.TierCore1))
	fmt.Fprintf(&b, "  core-2 coverage: %5.1f%% (CS2013 requires >= 80%% across a curriculum)\n", 100*r.TierCoverage(ontology.TierCore2))
	for _, u := range r.Units {
		if u.Covered == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-60s %2d/%2d (%s)\n", u.Unit.ID, u.Covered, u.Total, u.Tier)
	}
	return b.String()
}

// CollectionCoverage aggregates an audit over many courses: for each
// knowledge unit, how many of the courses touch it at all. A single
// course never covers the whole core — curricula do — so the aggregate
// view is the meaningful one.
type CollectionCoverage struct {
	Unit *ontology.Node
	Tier ontology.Tier
	// Courses is the number of courses covering at least one leaf of the
	// unit.
	Courses int
	// LeavesCovered is the number of distinct unit leaves covered by the
	// union of the courses.
	LeavesCovered int
	Total         int
}

// AuditCollection audits the union of courses against the guideline.
func AuditCollection(courses []*materials.Course, g *ontology.Guideline) []CollectionCoverage {
	unionLeaves := map[string]map[string]bool{} // unit → leaf set
	perUnitCourses := map[string]int{}
	for _, c := range courses {
		touched := map[string]bool{}
		for tag := range c.TagSet() {
			n := g.Lookup(tag)
			if n == nil || len(n.Children) != 0 {
				continue
			}
			u := ontology.UnitOf(n)
			if u == nil {
				continue
			}
			if unionLeaves[u.ID] == nil {
				unionLeaves[u.ID] = map[string]bool{}
			}
			unionLeaves[u.ID][tag] = true
			touched[u.ID] = true
		}
		for id := range touched {
			perUnitCourses[id]++
		}
	}
	var out []CollectionCoverage
	for _, u := range g.NodesOfKind(ontology.KindUnit) {
		total := 0
		for _, child := range u.Children {
			if len(child.Children) == 0 {
				total++
			}
		}
		out = append(out, CollectionCoverage{
			Unit:          u,
			Tier:          u.Tier,
			Courses:       perUnitCourses[u.ID],
			LeavesCovered: len(unionLeaves[u.ID]),
			Total:         total,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Unit.ID < out[j].Unit.ID })
	return out
}

// UncoveredCore returns the Core-1 units no course in the collection
// touches — the blind spots of the whole collection.
func UncoveredCore(cov []CollectionCoverage) []CollectionCoverage {
	var out []CollectionCoverage
	for _, c := range cov {
		if c.Tier == ontology.TierCore1 && c.Courses == 0 {
			out = append(out, c)
		}
	}
	return out
}

// PDCReadiness evaluates how prepared a course's students would be for
// PDC content: which PDC12 *core* topics the course already covers
// (directly, for PDC courses) and how many CS2013 entries it shares with
// the prerequisites the paper identifies (§4.7): directed graphs,
// recursion/divide-and-conquer, and Big-Oh analysis.
type PDCReadiness struct {
	Course *materials.Course
	// CoreCovered / CoreTotal: PDC12 core topics the course covers.
	CoreCovered, CoreTotal int
	// Prerequisites maps the paper's prerequisite entries to whether the
	// course covers them.
	Prerequisites map[string]bool
}

// PrerequisiteTags are the §4.7 CS1/DS entries that prepare students for
// PDC content.
func PrerequisiteTags() []string {
	return []string{
		"DS/graphs-and-trees/directed-graphs",
		"SDF/fundamental-programming-concepts/the-concept-of-recursion",
		"SDF/algorithms-and-design/divide-and-conquer-strategies",
		"AL/algorithmic-strategies/divide-and-conquer",
		"AL/basic-analysis/big-o-notation-use",
		"AL/basic-analysis/asymptotic-analysis-of-upper-and-expected-complexity-bounds",
	}
}

// AssessPDCReadiness audits a course against the PDC12 core and the
// paper's prerequisite entries.
func AssessPDCReadiness(c *materials.Course) *PDCReadiness {
	pdc := ontology.PDC12()
	tags := c.TagSet()
	r := &PDCReadiness{Course: c, Prerequisites: map[string]bool{}}
	for _, n := range pdc.NodesOfKind(ontology.KindTopic) {
		if !n.Core {
			continue
		}
		r.CoreTotal++
		if tags[n.ID] {
			r.CoreCovered++
		}
	}
	for _, p := range PrerequisiteTags() {
		r.Prerequisites[p] = tags[p]
	}
	return r
}

// PrerequisiteScore returns the fraction of prerequisite entries covered.
func (r *PDCReadiness) PrerequisiteScore() float64 {
	if len(r.Prerequisites) == 0 {
		return 0
	}
	n := 0
	for _, ok := range r.Prerequisites {
		if ok {
			n++
		}
	}
	return float64(n) / float64(len(r.Prerequisites))
}
