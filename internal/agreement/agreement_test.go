package agreement

import (
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

const (
	tagRecursion = "SDF/fundamental-programming-concepts/the-concept-of-recursion"
	tagBigO      = "AL/basic-analysis/big-o-notation-use"
	tagVars      = "SDF/fundamental-programming-concepts/variables-and-primitive-data-types"
	tagDigraph   = "DS/graphs-and-trees/directed-graphs"
)

func mkCourse(id string, tags ...string) *materials.Course {
	return &materials.Course{
		ID: id, Name: id, Group: materials.GroupCS1,
		Materials: []*materials.Material{
			{ID: id + "-m", Title: "m", Type: materials.Lecture, Tags: tags},
		},
	}
}

func analyzeOrDie(t *testing.T, cs []*materials.Course) *Analysis {
	t.Helper()
	a, err := Analyze(cs, ontology.CS2013(), ontology.PDC12())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, ontology.CS2013()); err == nil {
		t.Error("no courses accepted")
	}
	if _, err := Analyze([]*materials.Course{mkCourse("a", tagVars)}); err == nil {
		t.Error("no guidelines accepted")
	}
}

func TestCountsSmall(t *testing.T) {
	a := analyzeOrDie(t, []*materials.Course{
		mkCourse("a", tagVars, tagRecursion),
		mkCourse("b", tagRecursion, tagBigO),
		mkCourse("c", tagRecursion),
	})
	if a.NumTags() != 3 {
		t.Fatalf("NumTags = %d", a.NumTags())
	}
	if a.Counts[tagRecursion] != 3 || a.Counts[tagVars] != 1 || a.Counts[tagBigO] != 1 {
		t.Fatalf("Counts = %v", a.Counts)
	}
	if a.AtLeast(2) != 1 || a.AtLeast(1) != 3 || a.AtLeast(4) != 0 {
		t.Fatal("AtLeast wrong")
	}
	tags := a.TagsAtLeast(3)
	if len(tags) != 1 || tags[0] != tagRecursion {
		t.Fatalf("TagsAtLeast(3) = %v", tags)
	}
}

func TestHistogramAndSeries(t *testing.T) {
	a := analyzeOrDie(t, []*materials.Course{
		mkCourse("a", tagVars, tagRecursion),
		mkCourse("b", tagRecursion, tagBigO),
	})
	h := a.Histogram()
	if h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Fatalf("Histogram = %v", h.Counts)
	}
	s := a.Series()
	if len(s) != 3 || s[0] != 2 || s[1] != 1 || s[2] != 1 {
		t.Fatalf("Series = %v", s)
	}
}

func TestTreePruning(t *testing.T) {
	a := analyzeOrDie(t, []*materials.Course{
		mkCourse("a", tagVars, tagRecursion, tagBigO),
		mkCourse("b", tagRecursion, tagBigO),
		mkCourse("c", tagRecursion),
	})
	g := ontology.CS2013()
	t2 := a.Tree(g, 2)
	// tags with count >=2: recursion (3), bigO (2).
	if t2.Lookup(tagRecursion) == nil || t2.Lookup(tagBigO) == nil {
		t.Fatal("agreement-2 tree missing expected tags")
	}
	if t2.Lookup(tagVars) != nil {
		t.Fatal("agreement-2 tree contains single-course tag")
	}
	// Ancestors are retained.
	if t2.Lookup("SDF") == nil || t2.Lookup("AL/basic-analysis") == nil {
		t.Fatal("agreement tree lost ancestors")
	}
	t3 := a.Tree(g, 3)
	if t3.Lookup(tagBigO) != nil {
		t.Fatal("agreement-3 tree contains 2-course tag")
	}
	if t3.Lookup(tagRecursion) == nil {
		t.Fatal("agreement-3 tree lost 3-course tag")
	}
	// Threshold above the max yields an empty tree.
	if a.Tree(g, 4).Len() != 0 {
		t.Fatal("agreement-4 tree should be empty")
	}
}

func TestKASpanAndCounts(t *testing.T) {
	a := analyzeOrDie(t, []*materials.Course{
		mkCourse("a", tagVars, tagBigO, tagDigraph),
		mkCourse("b", tagVars, tagBigO),
	})
	span := a.KASpan(2)
	if len(span) != 2 || span[0] != "AL" || span[1] != "SDF" {
		t.Fatalf("KASpan(2) = %v", span)
	}
	span1 := a.KASpan(1)
	if len(span1) != 3 {
		t.Fatalf("KASpan(1) = %v", span1)
	}
	counts := a.KACounts(2)
	if counts["AL"] != 1 || counts["SDF"] != 1 || counts["DS"] != 0 {
		t.Fatalf("KACounts(2) = %v", counts)
	}
	units := a.UnitCounts(2)
	if units["SDF/fundamental-programming-concepts"] != 1 {
		t.Fatalf("UnitCounts = %v", units)
	}
}

func TestKASpanWithPDC12Tags(t *testing.T) {
	pdcTag := "ALGO/algorithmic-paradigms/reduction-as-a-parallel-pattern"
	a := analyzeOrDie(t, []*materials.Course{
		mkCourse("a", pdcTag),
		mkCourse("b", pdcTag),
	})
	span := a.KASpan(2)
	if len(span) != 1 || span[0] != "NSF/IEEE-TCPP PDC12:ALGO" {
		t.Fatalf("KASpan = %v", span)
	}
}

// TestFigure3Shapes replays the Figure 3 comparison on the synthesized
// dataset: Data Structures courses agree more than CS1 courses.
func TestFigure3Shapes(t *testing.T) {
	cs1 := analyzeOrDie(t, dataset.CoursesByID(dataset.CS1CourseIDs()))
	ds := analyzeOrDie(t, dataset.CoursesByID(dataset.DSCourseIDs()))

	if cs1.NumTags() < 200 {
		t.Errorf("CS1 tags = %d, want > 200", cs1.NumTags())
	}
	if ds.AtLeast(2) <= cs1.AtLeast(2) {
		t.Errorf("DS >=2 (%d) must exceed CS1 >=2 (%d)", ds.AtLeast(2), cs1.AtLeast(2))
	}
	// Series is the plotted curve: verify it is non-increasing and its
	// head equals the max agreement.
	s := cs1.Series()
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1] {
			t.Fatal("Series not sorted descending")
		}
	}
	if s[0] > len(cs1.Courses) {
		t.Fatalf("max agreement %d exceeds course count", s[0])
	}
}

// TestFigure4Trees replays the Figure 4 reading: the CS1 agreement tree
// narrows from several knowledge areas at >=2 to SDF only at >=4.
func TestFigure4Trees(t *testing.T) {
	a := analyzeOrDie(t, dataset.CoursesByID(dataset.CS1CourseIDs()))
	g := ontology.CS2013()
	t2, t3, t4 := a.Tree(g, 2), a.Tree(g, 3), a.Tree(g, 4)
	if !(t2.Len() > t3.Len() && t3.Len() > t4.Len()) {
		t.Fatalf("trees must shrink: %d, %d, %d", t2.Len(), t3.Len(), t4.Len())
	}
	if len(t2.Areas()) < 4 {
		t.Errorf("agreement-2 tree spans %d areas, want >= 4", len(t2.Areas()))
	}
	if got := t4.Areas(); len(got) != 1 || got[0].ID != "SDF" {
		ids := make([]string, len(got))
		for i, a := range got {
			ids[i] = a.ID
		}
		t.Errorf("agreement-4 tree spans %v, want [SDF] only", ids)
	}
	// "12 of those are in the Fundamental Programming Concepts" — the FPC
	// unit must hold the majority of the >=4 tags.
	units := a.UnitCounts(4)
	fpc := units["SDF/fundamental-programming-concepts"]
	if fpc*2 < a.AtLeast(4) {
		t.Errorf("FPC holds %d of %d >=4 tags; expected the majority", fpc, a.AtLeast(4))
	}
}

// TestFigure8PDCTree replays §4.7: at agreement 2, most of the PDC tree
// is PDC-related, and the CS1/DS anchors are present.
func TestFigure8PDCTree(t *testing.T) {
	a := analyzeOrDie(t, dataset.CoursesByID(dataset.PDCCourseIDs()))
	cs := ontology.CS2013()
	tree := a.Tree(cs, 2)
	// The PD knowledge area must be present and carry many tags.
	if tree.Lookup("PD") == nil {
		t.Fatal("PDC agreement tree missing the PD knowledge area")
	}
	counts := a.KACounts(2)
	if counts["PD"] < 15 {
		t.Errorf("PD area has %d agreed tags, want >= 15", counts["PD"])
	}
	// The anchors named by the paper are in the tree.
	for _, anchor := range []string{
		tagDigraph,
		tagRecursion,
		"SDF/algorithms-and-design/divide-and-conquer-strategies",
		tagBigO,
	} {
		if tree.Lookup(anchor) == nil {
			t.Errorf("PDC agreement tree missing anchor %q", anchor)
		}
	}
	// The PDC12 guideline tree shows agreement as well.
	pdcTree := a.Tree(ontology.PDC12(), 2)
	if pdcTree.Len() == 0 {
		t.Error("PDC12 agreement tree is empty")
	}
}

func TestAlign(t *testing.T) {
	left := []*materials.Material{
		{ID: "l1", Title: "t", Type: materials.Lecture, Tags: []string{tagVars, tagRecursion}},
	}
	right := []*materials.Material{
		{ID: "r1", Title: "t", Type: materials.Lecture, Tags: []string{tagRecursion, tagBigO}},
	}
	al := Align(left, right)
	if len(al.Shared) != 1 || al.Shared[0] != tagRecursion {
		t.Fatalf("Shared = %v", al.Shared)
	}
	if len(al.OnlyLeft) != 1 || al.OnlyLeft[0] != tagVars {
		t.Fatalf("OnlyLeft = %v", al.OnlyLeft)
	}
	if len(al.OnlyRight) != 1 || al.OnlyRight[0] != tagBigO {
		t.Fatalf("OnlyRight = %v", al.OnlyRight)
	}
	if al.Jaccard != 1.0/3.0 { // lint:exact — one IEEE division; rounds identically to the constant
		t.Fatalf("Jaccard = %v", al.Jaccard)
	}
}

func TestAlignIdenticalAndEmpty(t *testing.T) {
	ms := []*materials.Material{
		{ID: "m", Title: "t", Type: materials.Lecture, Tags: []string{tagVars}},
	}
	al := Align(ms, ms)
	if al.Jaccard != 1 || len(al.OnlyLeft) != 0 || len(al.OnlyRight) != 0 { // lint:exact — identical sets give Jaccard exactly 1
		t.Fatalf("self-alignment = %+v", al)
	}
	empty := Align(nil, nil)
	if empty.Jaccard != 1 { // lint:exact — empty-set convention is exactly 1
		t.Fatalf("empty alignment Jaccard = %v", empty.Jaccard)
	}
}
