// Package agreement implements the tag-agreement analysis of §4.3, §4.5,
// and §4.7: for a group of same-named courses, how many courses does each
// curriculum tag appear in? The distribution of those counts is Figure 3;
// pruning the guideline tree to tags above an agreement threshold yields
// the tree views of Figures 4, 6, and 8.
package agreement

import (
	"context"
	"fmt"
	"sort"

	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/stats"
)

// Analysis holds the per-tag course counts for a group of courses.
type Analysis struct {
	// Courses are the analyzed courses.
	Courses []*materials.Course
	// Counts maps each curriculum tag to the number of courses whose
	// materials reference it.
	Counts map[string]int

	guidelines []*ontology.Guideline
}

// Analyze counts, for every curriculum tag, how many of the given courses
// cover it. Guidelines are used for tree and knowledge-area summaries.
func Analyze(courses []*materials.Course, guidelines ...*ontology.Guideline) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), courses, guidelines...)
}

// AnalyzeCtx is Analyze with cooperative cancellation: the per-course
// tag scan checks ctx between courses and returns ctx.Err() as soon as
// the context is done.
func AnalyzeCtx(ctx context.Context, courses []*materials.Course, guidelines ...*ontology.Guideline) (*Analysis, error) {
	if len(courses) == 0 {
		return nil, fmt.Errorf("agreement: no courses")
	}
	if len(guidelines) == 0 {
		return nil, fmt.Errorf("agreement: no guidelines")
	}
	counts := map[string]int{}
	for _, c := range courses {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for tag := range c.TagSet() {
			counts[tag]++
		}
	}
	return &Analysis{Courses: courses, Counts: counts, guidelines: guidelines}, nil
}

// TagChange describes one course's tag-set difference between two
// revisions: the tags that entered and left the union of the course's
// material tags. It mirrors the dataset layer's delta summary without
// importing it.
type TagChange struct {
	Added   []string
	Removed []string
}

// Rebase derives the analysis of a new revision of the same course
// group from this one without rescanning every course: the per-tag
// course counts are adjusted by each course's tag-set change. courses
// is the new revision's course list (same group, same order); changes
// maps course ID → tag-set diff, and courses absent from it must be
// unchanged. Changes for courses outside the group are ignored — they
// cannot affect the counts. The arithmetic is exact, so the result
// equals a full AnalyzeCtx of the new courses, byte for byte.
func (a *Analysis) Rebase(courses []*materials.Course, changes map[string]TagChange) (*Analysis, error) {
	if len(courses) != len(a.Courses) {
		return nil, fmt.Errorf("agreement: rebase group size changed %d -> %d", len(a.Courses), len(courses))
	}
	in := make(map[string]bool, len(courses))
	for i, c := range courses {
		if a.Courses[i].ID != c.ID {
			return nil, fmt.Errorf("agreement: rebase course %d changed %q -> %q", i, a.Courses[i].ID, c.ID)
		}
		in[c.ID] = true
	}
	counts := make(map[string]int, len(a.Counts))
	for tag, n := range a.Counts {
		counts[tag] = n
	}
	ids := make([]string, 0, len(changes))
	for id := range changes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !in[id] {
			continue
		}
		tc := changes[id]
		for _, tag := range tc.Added {
			counts[tag]++
		}
		for _, tag := range tc.Removed {
			n := counts[tag] - 1
			switch {
			case n < 0:
				return nil, fmt.Errorf("agreement: rebase drove tag %q count negative — stale change set", tag)
			case n == 0:
				delete(counts, tag)
			default:
				counts[tag] = n
			}
		}
	}
	return &Analysis{Courses: courses, Counts: counts, guidelines: a.guidelines}, nil
}

// NumTags returns the number of distinct tags across the group.
func (a *Analysis) NumTags() int { return len(a.Counts) }

// AtLeast returns how many tags appear in at least k courses.
func (a *Analysis) AtLeast(k int) int {
	n := 0
	for _, c := range a.Counts {
		if c >= k {
			n++
		}
	}
	return n
}

// TagsAtLeast returns the tags appearing in at least k courses, sorted.
func (a *Analysis) TagsAtLeast(k int) []string {
	var out []string
	for tag, c := range a.Counts {
		if c >= k {
			out = append(out, tag)
		}
	}
	sort.Strings(out)
	return out
}

// Histogram returns the distribution of Figure 3: Counts[v] is the number
// of tags appearing in exactly v courses (index 0 is always empty).
func (a *Analysis) Histogram() *stats.Histogram {
	// Iterate tags in sorted order so obs — and anything downstream that
	// inspects it — is byte-identical run-to-run (determinism contract,
	// DESIGN §8).
	tags := make([]string, 0, len(a.Counts))
	for tag := range a.Counts {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	obs := make([]int, 0, len(tags))
	for _, tag := range tags {
		obs = append(obs, a.Counts[tag])
	}
	return stats.NewHistogram(obs)
}

// Series returns the per-tag counts sorted descending — the y-values of
// Figure 3 when tags are ordered by popularity along the x-axis.
func (a *Analysis) Series() []int {
	out := make([]int, 0, len(a.Counts))
	for _, c := range a.Counts {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Tree returns the guideline pruned to the tags that appear in at least k
// courses — the hit-tree of Figures 4, 6, and 8 at agreement level k.
// Only tags belonging to g are considered.
func (a *Analysis) Tree(g *ontology.Guideline, k int) *ontology.Guideline {
	return g.Prune(func(n *ontology.Node) bool {
		return a.Counts[n.ID] >= k && len(n.Children) == 0
	})
}

// KASpan returns the knowledge areas containing at least one tag with
// agreement >= k, as a sorted list of area IDs. Areas from guidelines
// after the first are prefixed with the guideline name.
func (a *Analysis) KASpan(k int) []string {
	seen := map[string]bool{}
	for tag, c := range a.Counts {
		if c < k {
			continue
		}
		for gi, g := range a.guidelines {
			n := g.Lookup(tag)
			if n == nil {
				continue
			}
			area := ontology.AreaOf(n)
			if area == nil {
				continue
			}
			id := area.ID
			if gi > 0 {
				id = g.Name + ":" + id
			}
			seen[id] = true
			break
		}
	}
	out := make([]string, 0, len(seen))
	for ka := range seen {
		out = append(out, ka)
	}
	sort.Strings(out)
	return out
}

// KACounts returns, for agreement level k, how many qualifying tags fall
// in each knowledge area.
func (a *Analysis) KACounts(k int) map[string]int {
	out := map[string]int{}
	for tag, c := range a.Counts {
		if c < k {
			continue
		}
		for gi, g := range a.guidelines {
			n := g.Lookup(tag)
			if n == nil {
				continue
			}
			area := ontology.AreaOf(n)
			if area == nil {
				continue
			}
			id := area.ID
			if gi > 0 {
				id = g.Name + ":" + id
			}
			out[id]++
			break
		}
	}
	return out
}

// UnitCounts returns, for agreement level k, how many qualifying tags
// fall in each knowledge unit (keyed by unit ID). Used for the paper's
// "12 of those are in the Fundamental Programming Concepts" reading.
func (a *Analysis) UnitCounts(k int) map[string]int {
	out := map[string]int{}
	for tag, c := range a.Counts {
		if c < k {
			continue
		}
		for _, g := range a.guidelines {
			n := g.Lookup(tag)
			if n == nil {
				continue
			}
			if u := ontology.UnitOf(n); u != nil {
				out[u.ID]++
			}
			break
		}
	}
	return out
}

// Alignment quantifies how much two sets of materials cover the same
// curriculum entries (the radial alignment view of §3.1.1): it returns
// the Jaccard similarity of the two tag sets together with the tags
// exclusive to each side and the shared ones.
type Alignment struct {
	Jaccard   float64
	Shared    []string
	OnlyLeft  []string
	OnlyRight []string
}

// Align compares the tag coverage of two material sets.
func Align(left, right []*materials.Material) Alignment {
	ls, rs := map[string]bool{}, map[string]bool{}
	for _, m := range left {
		for _, t := range m.Tags {
			ls[t] = true
		}
	}
	for _, m := range right {
		for _, t := range m.Tags {
			rs[t] = true
		}
	}
	al := Alignment{Jaccard: stats.Jaccard(ls, rs)}
	for t := range ls {
		if rs[t] {
			al.Shared = append(al.Shared, t)
		} else {
			al.OnlyLeft = append(al.OnlyLeft, t)
		}
	}
	for t := range rs {
		if !ls[t] {
			al.OnlyRight = append(al.OnlyRight, t)
		}
	}
	sort.Strings(al.Shared)
	sort.Strings(al.OnlyLeft)
	sort.Strings(al.OnlyRight)
	return al
}
