package agreement

import (
	"reflect"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
)

// TestRebaseMatchesFullAnalyze drives a real delta through the dataset
// layer and checks the incremental rebase reproduces a full rescan of
// the new revision exactly.
func TestRebaseMatchesFullAnalyze(t *testing.T) {
	r := dataset.NewRegistry(nil)
	base := r.Default()
	course := base.Repo().Courses()[0]
	mat := course.Materials[0]

	// Retag to a single tag chosen from another course so the course's
	// tag set genuinely changes.
	var newTag string
	for tag := range base.Repo().Courses()[5].TagSet() {
		if !course.TagSet()[tag] {
			newTag = tag
			break
		}
	}
	if newTag == "" {
		t.Fatal("no disjoint tag found")
	}
	snap, err := r.Apply(dataset.DefaultID, []dataset.Event{
		{Op: dataset.OpRetag, Course: course.ID, MaterialID: mat.ID, Tags: []string{newTag}},
	})
	if err != nil {
		t.Fatal(err)
	}

	prior := analyzeOrDie(t, base.Repo().Courses())
	changes := map[string]TagChange{}
	for id, tc := range snap.Delta().TagChanges {
		changes[id] = TagChange{Added: tc.Added, Removed: tc.Removed}
	}
	rebased, err := prior.Rebase(snap.Repo().Courses(), changes)
	if err != nil {
		t.Fatal(err)
	}
	full := analyzeOrDie(t, snap.Repo().Courses())
	if !reflect.DeepEqual(rebased.Counts, full.Counts) {
		t.Errorf("rebased counts diverge from full analyze:\nrebased: %v\nfull:    %v", rebased.Counts, full.Counts)
	}
	if !reflect.DeepEqual(rebased.Histogram(), full.Histogram()) {
		t.Error("rebased histogram diverges")
	}
	if !reflect.DeepEqual(rebased.KACounts(2), full.KACounts(2)) {
		t.Error("rebased KACounts diverges")
	}
}

func TestRebaseValidation(t *testing.T) {
	a := analyzeOrDie(t, []*materials.Course{
		mkCourse("c1", tagRecursion, tagBigO),
		mkCourse("c2", tagRecursion),
	})

	// Group membership changed.
	if _, err := a.Rebase([]*materials.Course{mkCourse("c1", tagRecursion)}, nil); err == nil {
		t.Error("size change must fail")
	}
	if _, err := a.Rebase([]*materials.Course{mkCourse("c1", tagRecursion), mkCourse("cX", tagVars)}, nil); err == nil {
		t.Error("membership change must fail")
	}
	// Removing a tag no course has is a stale change set.
	same := []*materials.Course{mkCourse("c1", tagRecursion, tagBigO), mkCourse("c2", tagRecursion)}
	if _, err := a.Rebase(same, map[string]TagChange{"c1": {Removed: []string{tagDigraph}}}); err == nil {
		t.Error("negative count must fail")
	}
	// Changes for out-of-group courses are ignored.
	out, err := a.Rebase(same, map[string]TagChange{"elsewhere": {Added: []string{tagVars}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Counts, a.Counts) {
		t.Error("out-of-group change must not affect counts")
	}
	// A removal that drops a tag to zero deletes the key.
	out, err = a.Rebase(same, map[string]TagChange{"c1": {Removed: []string{tagBigO}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Counts[tagBigO]; ok {
		t.Error("zero-count tag must be deleted")
	}
	// Guideline context survives the rebase (KA summaries still work).
	if len(out.KASpan(1)) == 0 {
		t.Error("rebased analysis lost guideline context")
	}
	if len(out.guidelines) != len(a.guidelines) {
		t.Error("rebase dropped guidelines")
	}
}
