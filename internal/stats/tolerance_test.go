package stats

import (
	"math"
	"testing"
)

func TestWithinTol(t *testing.T) {
	cases := []struct {
		a, b, abs float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1.05, 0.1, true},
		{1, 1.2, 0.1, false},
		{-1, 1, 3, true},
		{math.NaN(), 1, 1, false},
		{1, math.NaN(), 1, false},
		{math.NaN(), math.NaN(), 1, false},
		{math.Inf(1), math.Inf(1), 1, false}, // Inf-Inf is NaN: absolute tol cannot hold
	}
	for _, c := range cases {
		if got := WithinTol(c.a, c.b, c.abs); got != c.want {
			t.Errorf("WithinTol(%v, %v, %v) = %v, want %v", c.a, c.b, c.abs, got, c.want)
		}
	}
}

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-12, true},
		{0, 0, 0, true},
		// Relative comparison above magnitude 1.
		{1e12, 1e12 * (1 + 1e-10), 1e-9, true},
		{1e12, 1e12 * 1.01, 1e-9, false},
		// Absolute comparison at small magnitude.
		{1e-12, 2e-12, 1e-9, true},
		{0.5, 0.50002, 1e-9, false},
		// Infinities and NaN.
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(-1), math.Inf(-1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.Inf(1), 1e300, 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 1, 1e-9, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
		if got := AlmostEqual(c.b, c.a, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v (symmetry)", c.b, c.a, c.tol, got, c.want)
		}
	}

	// The classic decimal-fraction case that motivates the rule, computed
	// at runtime so Go's exact constant arithmetic doesn't fold it away.
	tenth, fifth := 0.1, 0.2
	sum := tenth + fifth
	if sum == 0.3 { // lint:exact — the motivating case: 0.1+0.2 is not bitwise 0.3
		t.Fatal("expected 0.1+0.2 to differ from 0.3 in float64")
	}
	if !AlmostEqual(sum, 0.3, 1e-12) {
		t.Errorf("AlmostEqual(%v, 0.3, 1e-12) = false, want true", sum)
	}
	if AlmostEqual(sum, 0.3, 0) {
		t.Errorf("AlmostEqual(%v, 0.3, 0) = true, want false", sum)
	}
}
