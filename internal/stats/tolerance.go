package stats

import "math"

// DefaultTol is the tolerance the analysis packages use when comparing
// accumulated floating-point quantities (agreement scores, NNMF
// objective values, eigenvalues). It is loose enough to absorb the
// rounding of a few thousand fused operations and tight enough to
// distinguish any two values the paper's figures report.
const DefaultTol = 1e-9

// WithinTol reports whether a and b differ by at most abs in absolute
// terms. NaN operands are never within tolerance of anything.
func WithinTol(a, b, abs float64) bool {
	return math.Abs(a-b) <= abs
}

// AlmostEqual reports whether a and b agree to tolerance tol: absolutely
// for magnitudes at or below 1, relatively above, so the same tol works
// for agreement fractions in [0,1] and unnormalized objective values
// alike. Equal infinities agree; NaN agrees with nothing. This is the
// comparison the floatcompare lint rule points at — use it instead of ==
// or != on floating-point values (DESIGN §8).
func AlmostEqual(a, b, tol float64) bool {
	if (math.IsInf(a, 1) && math.IsInf(b, 1)) || (math.IsInf(a, -1) && math.IsInf(b, -1)) {
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) {
		// Opposite infinities, or one infinite operand: Inf <= tol*Inf
		// would be vacuously true, so reject explicitly.
		return false
	}
	return diff <= tol || diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}
