package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 { // lint:exact — 2.5 is exactly representable
		t.Fatalf("Mean = %v", got)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mean(nil)
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 4.571428571, 1e-6) {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); !approx(got, math.Sqrt(4.571428571), 1e-6) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 { // lint:exact — exactly-representable golden value
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 { // lint:exact — exactly-representable golden value
		t.Fatalf("Median even = %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 { // lint:exact — input must come back bit-identical
		t.Fatal("Median mutated input")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 { // lint:exact — integer quantiles are exact
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 { // lint:exact — integer quantiles are exact
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 { // lint:exact — integer quantiles are exact
		t.Fatalf("q0.5 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 { // lint:exact — integer quantiles are exact
		t.Fatalf("q0.25 = %v", got)
	}
}

func TestQuantileBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 { // lint:exact — integer min/max are exact
		t.Fatalf("MinMax = %v, %v", min, max)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine([]float64{1, 2}, []float64{2, 4}); !approx(got, 1, 1e-12) {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 2}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

func TestJaccardDice(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "z": true}
	if got := Jaccard(a, b); !approx(got, 1.0/3.0, 1e-12) {
		t.Fatalf("Jaccard = %v", got)
	}
	if got := Dice(a, b); !approx(got, 0.5, 1e-12) {
		t.Fatalf("Dice = %v", got)
	}
	if Jaccard(nil, nil) != 1 || Dice(nil, nil) != 1 { // lint:exact — nil-set convention is exactly 1
		t.Fatal("empty-set similarity convention broken")
	}
	if got := Jaccard(a, nil); got != 0 {
		t.Fatalf("Jaccard with empty = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int{1, 1, 2, 3, 3, 3, 0})
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[3] != 3 || h.Counts[1] != 2 || h.Counts[0] != 1 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if h.AtLeast(2) != 4 {
		t.Fatalf("AtLeast(2) = %d", h.AtLeast(2))
	}
	if h.AtLeast(10) != 0 {
		t.Fatalf("AtLeast(10) = %d", h.AtLeast(10))
	}
	ccdf := h.CCDF()
	if ccdf[0] != 7 || ccdf[1] != 6 || ccdf[2] != 4 || ccdf[3] != 3 {
		t.Fatalf("CCDF = %v", ccdf)
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram([]int{-1})
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{1, 1}); !approx(got, math.Log(2), 1e-12) {
		t.Fatalf("uniform entropy = %v", got)
	}
	if got := Entropy([]float64{1, 0}); got != 0 {
		t.Fatalf("point-mass entropy = %v", got)
	}
	if got := Entropy([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero entropy = %v", got)
	}
}

func TestNormalizedEntropy(t *testing.T) {
	if got := NormalizedEntropy([]float64{1, 1, 1}); !approx(got, 1, 1e-12) {
		t.Fatalf("uniform normalized entropy = %v", got)
	}
	if got := NormalizedEntropy([]float64{5}); got != 0 {
		t.Fatalf("singleton normalized entropy = %v", got)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); !approx(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := Pearson(a, c); !approx(got, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	flat := []float64{5, 5, 5, 5}
	if got := Pearson(a, flat); got != 0 {
		t.Fatalf("zero-variance correlation = %v", got)
	}
}

func TestRankDescending(t *testing.T) {
	got := RankDescending([]float64{0.2, 0.9, 0.5})
	if got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("RankDescending = %v", got)
	}
	// Ties break by original index.
	got = RankDescending([]float64{1, 1, 1})
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("tie-break RankDescending = %v", got)
	}
}

func TestPropQuantileMonotone(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%20) + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropCosineBounded(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%10) + 1
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		c := Cosine(a, b)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropJaccardSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := map[string]bool{}
		b := map[string]bool{}
		letters := "abcdefgh"
		for i := 0; i < len(letters); i++ {
			if rng.Intn(2) == 0 {
				a[letters[i:i+1]] = true
			}
			if rng.Intn(2) == 0 {
				b[letters[i:i+1]] = true
			}
		}
		return Jaccard(a, b) == Jaccard(b, a) // lint:exact — symmetric counts divide identically
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropHistogramCCDFConsistent(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%30) + 1
		rng := rand.New(rand.NewSource(seed))
		obs := make([]int, n)
		for i := range obs {
			obs[i] = rng.Intn(8)
		}
		h := NewHistogram(obs)
		ccdf := h.CCDF()
		for v := range ccdf {
			if ccdf[v] != h.AtLeast(v) {
				return false
			}
		}
		return ccdf[0] == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
