// Package stats provides the descriptive statistics, similarity measures,
// and histogram helpers shared by the analysis packages: tag-agreement
// distributions (Figure 3 of the paper), cosine redundancy between NNMF
// basis vectors, and Jaccard similarity between material tag sets.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; it panics on an empty slice
// because a silent NaN propagates confusingly through the analyses.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		panic("stats: Variance needs at least two samples")
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without mutating it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v out of [0,1]", q))
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Cosine returns the cosine similarity of two equal-length vectors. Two
// zero vectors have similarity 0 by convention.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Cosine length mismatch %d vs %d", len(a), len(b)))
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Jaccard returns |a ∩ b| / |a ∪ b| for two string sets represented as
// maps. Two empty sets have similarity 1 by convention (identical).
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Dice returns the Sørensen–Dice coefficient 2|a∩b| / (|a|+|b|).
func Dice(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(a)+len(b))
}

// Histogram is a fixed-bin histogram over non-negative integer-valued
// observations (e.g. "this tag appears in n courses").
type Histogram struct {
	// Counts[v] is the number of observations with value v.
	Counts []int
}

// NewHistogram builds a histogram from integer observations.
func NewHistogram(obs []int) *Histogram {
	max := 0
	for _, o := range obs {
		if o < 0 {
			panic(fmt.Sprintf("stats: negative observation %d", o))
		}
		if o > max {
			max = o
		}
	}
	h := &Histogram{Counts: make([]int, max+1)}
	for _, o := range obs {
		h.Counts[o]++
	}
	return h
}

// Total returns the number of observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// AtLeast returns the number of observations with value ≥ v.
func (h *Histogram) AtLeast(v int) int {
	t := 0
	for i := v; i < len(h.Counts); i++ {
		if i >= 0 {
			t += h.Counts[i]
		}
	}
	return t
}

// CCDF returns, for each value v, the count of observations ≥ v — the
// complementary cumulative form used by Figure 3's narrative ("50 tags
// appear in 2 or more courses").
func (h *Histogram) CCDF() []int {
	out := make([]int, len(h.Counts))
	run := 0
	for v := len(h.Counts) - 1; v >= 0; v-- {
		run += h.Counts[v]
		out[v] = run
	}
	return out
}

// Entropy returns the Shannon entropy (nats) of a non-negative weight
// vector, used to quantify how evenly a course spreads across NNMF types
// (the paper's "UCF hits all three types evenly").
func Entropy(ws []float64) float64 {
	var sum float64
	for _, w := range ws {
		if w < 0 {
			panic("stats: Entropy of negative weight")
		}
		sum += w
	}
	if sum == 0 {
		return 0
	}
	h := 0.0
	for _, w := range ws {
		if w == 0 {
			continue
		}
		p := w / sum
		h -= p * math.Log(p)
	}
	return h
}

// NormalizedEntropy returns Entropy scaled into [0,1] by log(len(ws)).
func NormalizedEntropy(ws []float64) float64 {
	if len(ws) <= 1 {
		return 0
	}
	return Entropy(ws) / math.Log(float64(len(ws)))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) < 2 {
		panic("stats: Pearson needs at least two samples")
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// RankDescending returns the permutation that sorts xs in descending
// order: out[0] is the index of the largest value. Ties break by index
// for determinism.
func RankDescending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return xs[idx[i]] > xs[idx[j]] })
	return idx
}
