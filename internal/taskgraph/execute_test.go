package taskgraph

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// recorder tracks execution order with a mutex for race-safe assertions.
type recorder struct {
	mu    sync.Mutex
	order []string
	pos   map[string]int
}

func newRecorder() *recorder { return &recorder{pos: map[string]int{}} }

func (r *recorder) run(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pos[id] = len(r.order)
	r.order = append(r.order, id)
	return nil
}

func TestExecuteValidation(t *testing.T) {
	g := Chain(2)
	if err := g.Execute(0, func(string) error { return nil }); err == nil {
		t.Error("zero workers accepted")
	}
	if err := g.Execute(1, nil); err == nil {
		t.Error("nil run accepted")
	}
	cyc := NewGraph()
	_ = cyc.AddTask("a", 1)
	_ = cyc.AddTask("b", 1)
	_ = cyc.AddDep("a", "b")
	_ = cyc.AddDep("b", "a")
	if err := cyc.Execute(1, func(string) error { return nil }); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestExecuteRunsEveryTaskOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Layered(5, 6, 0.3, rng)
	for _, workers := range []int{1, 2, 8} {
		rec := newRecorder()
		if err := g.Execute(workers, rec.run); err != nil {
			t.Fatal(err)
		}
		if len(rec.order) != g.Len() {
			t.Fatalf("workers=%d: ran %d tasks, want %d", workers, len(rec.order), g.Len())
		}
		seen := map[string]bool{}
		for _, id := range rec.order {
			if seen[id] {
				t.Fatalf("task %s ran twice", id)
			}
			seen[id] = true
		}
	}
}

func TestExecuteRespectsDependencies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Layered(6, 4, 0.4, rng)
	for trial := 0; trial < 5; trial++ {
		rec := newRecorder()
		if err := g.Execute(8, rec.run); err != nil {
			t.Fatal(err)
		}
		for _, id := range g.Tasks() {
			for _, p := range g.Predecessors(id) {
				if rec.pos[p] > rec.pos[id] {
					t.Fatalf("task %s ran before its predecessor %s", id, p)
				}
			}
		}
	}
}

func TestExecutePropagatesError(t *testing.T) {
	g := Chain(5)
	boom := errors.New("boom")
	ran := 0
	var mu sync.Mutex
	err := g.Execute(2, func(id string) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if id == "t2" {
			return boom
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// Tasks after the failure point must not run (chain ordering).
	mu.Lock()
	defer mu.Unlock()
	if ran > 3 {
		t.Fatalf("%d tasks ran after failure in a chain", ran)
	}
}

func TestExecuteErrorInParallelBranchStops(t *testing.T) {
	g := ForkJoin(16)
	boom := errors.New("branch failed")
	err := g.Execute(4, func(id string) error {
		if id == "body3" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestExecuteSingleTask(t *testing.T) {
	g := NewGraph()
	if err := g.AddTask("only", 1); err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	if err := g.Execute(4, rec.run); err != nil {
		t.Fatal(err)
	}
	if len(rec.order) != 1 || rec.order[0] != "only" {
		t.Fatalf("order = %v", rec.order)
	}
}

func TestExecuteParallelismActuallyHappens(t *testing.T) {
	// With enough workers, two independent tasks must overlap: use a
	// barrier that only releases when both have started.
	g := NewGraph()
	_ = g.AddTask("a", 1)
	_ = g.AddTask("b", 1)
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	var once sync.Once
	err := g.Execute(2, func(id string) error {
		started <- struct{}{}
		once.Do(func() {
			// Wait for the second start before releasing both.
			go func() {
				<-started
				<-started
				close(release)
			}()
		})
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
