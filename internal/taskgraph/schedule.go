package taskgraph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Policy selects the priority used by the list scheduler when several
// tasks are ready at once.
type Policy int

const (
	// FIFO takes ready tasks in graph insertion order.
	FIFO Policy = iota
	// LPT (longest processing time) prefers heavier tasks.
	LPT
	// CriticalPathPriority prefers tasks with the largest bottom level —
	// the classic HLF/CP list-scheduling heuristic.
	CriticalPathPriority
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LPT:
		return "lpt"
	case CriticalPathPriority:
		return "critical-path"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Slot records where and when a task ran in a simulated schedule.
type Slot struct {
	Machine    int
	Start, End float64
}

// Schedule is the result of a list-scheduling simulation.
type Schedule struct {
	Machines  int
	Policy    Policy
	Makespan  float64
	Slots     map[string]Slot
	totalWork float64
}

// Speedup returns serial time divided by makespan.
func (s *Schedule) Speedup() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return s.totalWork / s.Makespan
}

// Efficiency returns speedup divided by machine count.
func (s *Schedule) Efficiency() float64 {
	return s.Speedup() / float64(s.Machines)
}

// readyItem is a heap entry: a ready task and its priority.
type readyItem struct {
	id       string
	priority float64 // larger = scheduled first
	seq      int     // insertion-order tiebreak
}

type readyQueue []readyItem

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q readyQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *readyQueue) Push(x interface{}) { *q = append(*q, x.(readyItem)) }
func (q *readyQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// machineItem tracks when each simulated machine becomes free.
type machineItem struct {
	id   int
	free float64
}

type machineQueue []machineItem

func (q machineQueue) Len() int { return len(q) }
func (q machineQueue) Less(i, j int) bool {
	if q[i].free != q[j].free {
		return q[i].free < q[j].free
	}
	return q[i].id < q[j].id
}
func (q machineQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *machineQueue) Push(x interface{}) { *q = append(*q, x.(machineItem)) }
func (q *machineQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// ListSchedule simulates list scheduling of the graph on m identical
// machines: whenever a machine is free and tasks are ready, the
// highest-priority ready task starts. This is the simulator §5.2
// describes as "a good application of priority queues and graphs".
func ListSchedule(g *Graph, machines int, policy Policy) (*Schedule, error) {
	if machines <= 0 {
		return nil, fmt.Errorf("taskgraph: need at least one machine, got %d", machines)
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("taskgraph: empty graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}

	priority := map[string]float64{}
	switch policy {
	case LPT:
		for id, t := range g.tasks {
			priority[id] = t.Work
		}
	case CriticalPathPriority:
		bl, err := g.BottomLevels()
		if err != nil {
			return nil, err
		}
		priority = bl
	default: // FIFO: earlier insertion = higher priority
		for i, id := range g.order {
			priority[id] = -float64(i)
		}
	}
	seq := map[string]int{}
	for i, id := range g.order {
		seq[id] = i
	}

	indeg := map[string]int{}
	for id := range g.tasks {
		indeg[id] = len(g.pred[id])
	}

	ready := &readyQueue{}
	for _, id := range g.order {
		if indeg[id] == 0 {
			heap.Push(ready, readyItem{id: id, priority: priority[id], seq: seq[id]})
		}
	}
	freeMachines := make([]int, 0, machines)
	for i := machines - 1; i >= 0; i-- {
		freeMachines = append(freeMachines, i) // pop from the back: lowest ID first
	}

	// Event-driven simulation: at each instant, greedily start ready
	// tasks on free machines in priority order (no machine idles while a
	// task is ready); when stuck, advance time to the next completion.
	type running struct {
		id      string
		machine int
		end     float64
	}
	var pending []running
	sched := &Schedule{Machines: machines, Policy: policy, Slots: map[string]Slot{}, totalWork: g.TotalWork()}
	now := 0.0

	for len(sched.Slots) < g.Len() {
		// Start everything startable at the current time.
		for ready.Len() > 0 && len(freeMachines) > 0 {
			item := heap.Pop(ready).(readyItem)
			m := freeMachines[len(freeMachines)-1]
			freeMachines = freeMachines[:len(freeMachines)-1]
			end := now + g.tasks[item.id].Work
			sched.Slots[item.id] = Slot{Machine: m, Start: now, End: end}
			pending = append(pending, running{id: item.id, machine: m, end: end})
			if end > sched.Makespan {
				sched.Makespan = end
			}
		}
		if len(sched.Slots) == g.Len() {
			break
		}
		// Advance to the earliest completion and retire every task that
		// finishes then, releasing machines and dependents.
		next := math.Inf(1)
		for _, r := range pending {
			if r.end < next {
				next = r.end
			}
		}
		now = next
		kept := pending[:0]
		var done []running
		for _, r := range pending {
			if r.end <= now+1e-12 {
				done = append(done, r)
			} else {
				kept = append(kept, r)
			}
		}
		pending = kept
		// Deterministic release order.
		sort.Slice(done, func(i, j int) bool { return done[i].id < done[j].id })
		for _, r := range done {
			freeMachines = append(freeMachines, r.machine)
			for _, s := range g.succ[r.id] {
				indeg[s]--
				if indeg[s] == 0 {
					heap.Push(ready, readyItem{id: s, priority: priority[s], seq: seq[s]})
				}
			}
		}
		// Keep machine pop order deterministic: highest index at the back
		// is popped first after sorting descending.
		sort.Sort(sort.Reverse(sort.IntSlice(freeMachines)))
	}
	return sched, nil
}

// Validate checks a schedule against its graph: every task scheduled
// exactly once, no machine overlap, and every dependency respected.
func (s *Schedule) Validate(g *Graph) error {
	if len(s.Slots) != g.Len() {
		return fmt.Errorf("taskgraph: schedule has %d slots for %d tasks", len(s.Slots), g.Len())
	}
	perMachine := map[int][]Slot{}
	for id, slot := range s.Slots {
		t := g.Task(id)
		if t == nil {
			return fmt.Errorf("taskgraph: schedule contains unknown task %q", id)
		}
		if math.Abs((slot.End-slot.Start)-t.Work) > 1e-9 {
			return fmt.Errorf("taskgraph: task %q scheduled for %v, work is %v", id, slot.End-slot.Start, t.Work)
		}
		if slot.Machine < 0 || slot.Machine >= s.Machines {
			return fmt.Errorf("taskgraph: task %q on machine %d of %d", id, slot.Machine, s.Machines)
		}
		perMachine[slot.Machine] = append(perMachine[slot.Machine], slot)
		for _, p := range g.pred[id] {
			if s.Slots[p].End > slot.Start+1e-9 {
				return fmt.Errorf("taskgraph: task %q starts at %v before predecessor %q ends at %v",
					id, slot.Start, p, s.Slots[p].End)
			}
		}
	}
	for m, slots := range perMachine {
		sort.Slice(slots, func(i, j int) bool { return slots[i].Start < slots[j].Start })
		for i := 1; i < len(slots); i++ {
			if slots[i].Start < slots[i-1].End-1e-9 {
				return fmt.Errorf("taskgraph: overlap on machine %d", m)
			}
		}
	}
	return nil
}
