package taskgraph

import (
	"fmt"
	"math"
	"sort"
)

// Machine is a processor in a heterogeneous platform: Speed scales task
// durations (a task of work w runs for w/Speed).
type Machine struct {
	Speed float64
}

// HeteroSchedule is a schedule on heterogeneous machines with
// communication costs — the output of HEFT. Slot durations depend on the
// machine the task landed on, so it is a distinct type from Schedule.
type HeteroSchedule struct {
	Machines []Machine
	// Comm is the per-unit communication latency between distinct
	// machines used when the schedule was built.
	Comm float64
	// Slots records placement and timing per task.
	Slots    map[string]Slot
	Makespan float64

	totalWork float64
}

// Speedup returns the best single-machine time divided by the makespan:
// serial time on the fastest machine.
func (s *HeteroSchedule) Speedup() float64 {
	if s.Makespan == 0 {
		return 0
	}
	fastest := 0.0
	for _, m := range s.Machines {
		if m.Speed > fastest {
			fastest = m.Speed
		}
	}
	return (s.totalWork / fastest) / s.Makespan
}

// HEFT schedules the graph on heterogeneous machines with the classic
// Heterogeneous-Earliest-Finish-Time heuristic (Topcuoglu et al.):
// tasks are prioritized by upward rank (critical-path-like, using mean
// execution and communication costs), then greedily assigned to the
// machine minimizing their earliest finish time, accounting for a
// uniform per-dependency communication delay `comm` when producer and
// consumer land on different machines.
//
// This extends the §5.2 list-scheduling assignment to the heterogeneous
// platforms real student clusters have.
func HEFT(g *Graph, machines []Machine, comm float64) (*HeteroSchedule, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("taskgraph: HEFT needs at least one machine")
	}
	for i, m := range machines {
		if m.Speed <= 0 {
			return nil, fmt.Errorf("taskgraph: machine %d has non-positive speed %v", i, m.Speed)
		}
	}
	if comm < 0 {
		return nil, fmt.Errorf("taskgraph: negative communication cost %v", comm)
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("taskgraph: empty graph")
	}
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}

	// Mean execution time per task over machines; mean communication is
	// comm scaled by the probability the endpoints differ.
	meanSpeedInv := 0.0
	for _, m := range machines {
		meanSpeedInv += 1 / m.Speed
	}
	meanSpeedInv /= float64(len(machines))
	meanComm := comm
	if len(machines) == 1 {
		meanComm = 0
	} else {
		meanComm = comm * float64(len(machines)-1) / float64(len(machines))
	}

	// Upward rank: rank(t) = meanExec(t) + max over successors of
	// (meanComm + rank(s)).
	rank := map[string]float64{}
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		best := 0.0
		for _, s := range g.succ[id] {
			if v := meanComm + rank[s]; v > best {
				best = v
			}
		}
		rank[id] = g.tasks[id].Work*meanSpeedInv + best
	}
	order := append([]string(nil), topo...)
	sort.SliceStable(order, func(i, j int) bool { return rank[order[i]] > rank[order[j]] })

	sched := &HeteroSchedule{
		Machines: machines, Comm: comm,
		Slots: map[string]Slot{}, totalWork: g.TotalWork(),
	}
	machineFree := make([]float64, len(machines))

	for _, id := range order {
		bestMachine, bestStart, bestEnd := -1, 0.0, math.Inf(1)
		for m := range machines {
			// Data-ready time on machine m: predecessors finish plus
			// communication if they ran elsewhere.
			ready := 0.0
			for _, p := range g.pred[id] {
				ps := sched.Slots[p]
				arrive := ps.End
				if ps.Machine != m {
					arrive += comm
				}
				if arrive > ready {
					ready = arrive
				}
			}
			start := math.Max(ready, machineFree[m])
			end := start + g.tasks[id].Work/machines[m].Speed
			if end < bestEnd {
				bestMachine, bestStart, bestEnd = m, start, end
			}
		}
		sched.Slots[id] = Slot{Machine: bestMachine, Start: bestStart, End: bestEnd}
		machineFree[bestMachine] = bestEnd
		if bestEnd > sched.Makespan {
			sched.Makespan = bestEnd
		}
	}
	return sched, nil
}

// Validate checks the heterogeneous schedule: every task placed once,
// durations match work/speed, machines never overlap, and every
// dependency (plus cross-machine communication) is respected.
func (s *HeteroSchedule) Validate(g *Graph) error {
	if len(s.Slots) != g.Len() {
		return fmt.Errorf("taskgraph: schedule has %d slots for %d tasks", len(s.Slots), g.Len())
	}
	perMachine := map[int][]Slot{}
	for id, slot := range s.Slots {
		t := g.Task(id)
		if t == nil {
			return fmt.Errorf("taskgraph: unknown task %q", id)
		}
		if slot.Machine < 0 || slot.Machine >= len(s.Machines) {
			return fmt.Errorf("taskgraph: task %q on machine %d of %d", id, slot.Machine, len(s.Machines))
		}
		wantDur := t.Work / s.Machines[slot.Machine].Speed
		if math.Abs((slot.End-slot.Start)-wantDur) > 1e-9 {
			return fmt.Errorf("taskgraph: task %q duration %v, want %v", id, slot.End-slot.Start, wantDur)
		}
		perMachine[slot.Machine] = append(perMachine[slot.Machine], slot)
		for _, p := range g.pred[id] {
			ps := s.Slots[p]
			arrive := ps.End
			if ps.Machine != slot.Machine {
				arrive += s.Comm
			}
			if arrive > slot.Start+1e-9 {
				return fmt.Errorf("taskgraph: task %q starts at %v before data from %q arrives at %v",
					id, slot.Start, p, arrive)
			}
		}
	}
	for m, slots := range perMachine {
		sort.Slice(slots, func(i, j int) bool { return slots[i].Start < slots[j].Start })
		for i := 1; i < len(slots); i++ {
			if slots[i].Start < slots[i-1].End-1e-9 {
				return fmt.Errorf("taskgraph: overlap on machine %d", m)
			}
		}
	}
	return nil
}

// UniformMachines builds n machines of speed 1 — the homogeneous special
// case, where HEFT degenerates to critical-path list scheduling with
// communication delays.
func UniformMachines(n int) []Machine {
	out := make([]Machine, n)
	for i := range out {
		out[i] = Machine{Speed: 1}
	}
	return out
}
