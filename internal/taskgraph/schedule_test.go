package taskgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSchedule(t *testing.T, g *Graph, m int, p Policy) *Schedule {
	t.Helper()
	s, err := ListSchedule(g, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	return s
}

func TestListScheduleValidation(t *testing.T) {
	g := Chain(3)
	if _, err := ListSchedule(g, 0, FIFO); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := ListSchedule(NewGraph(), 1, FIFO); err == nil {
		t.Error("empty graph accepted")
	}
	cyc := NewGraph()
	_ = cyc.AddTask("a", 1)
	_ = cyc.AddTask("b", 1)
	_ = cyc.AddDep("a", "b")
	_ = cyc.AddDep("b", "a")
	if _, err := ListSchedule(cyc, 1, FIFO); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestSingleMachineMakespanEqualsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Layered(4, 4, 0.3, rng)
	for _, p := range []Policy{FIFO, LPT, CriticalPathPriority} {
		s := mustSchedule(t, g, 1, p)
		if math.Abs(s.Makespan-g.TotalWork()) > 1e-9 {
			t.Fatalf("%v: single-machine makespan %v != total work %v", p, s.Makespan, g.TotalWork())
		}
		if math.Abs(s.Speedup()-1) > 1e-9 {
			t.Fatalf("single-machine speedup %v", s.Speedup())
		}
	}
}

func TestChainNoSpeedup(t *testing.T) {
	g := Chain(10)
	s := mustSchedule(t, g, 8, CriticalPathPriority)
	if math.Abs(s.Makespan-10) > 1e-9 {
		t.Fatalf("chain makespan = %v, want 10", s.Makespan)
	}
	if s.Speedup() > 1+1e-9 {
		t.Fatalf("chain speedup = %v", s.Speedup())
	}
}

func TestForkJoinPerfectSpeedup(t *testing.T) {
	g := ForkJoin(8)
	s := mustSchedule(t, g, 8, FIFO)
	// fork(1) + bodies in parallel(1) + join(1) = 3.
	if math.Abs(s.Makespan-3) > 1e-9 {
		t.Fatalf("fork-join makespan = %v, want 3", s.Makespan)
	}
	// With 4 machines, bodies take 2 rounds.
	s4 := mustSchedule(t, g, 4, FIFO)
	if math.Abs(s4.Makespan-4) > 1e-9 {
		t.Fatalf("fork-join on 4 machines = %v, want 4", s4.Makespan)
	}
}

func TestMakespanNeverBelowBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := Layered(5, 6, 0.35, rng)
		span, _, _ := g.CriticalPath()
		for _, m := range []int{1, 2, 4, 8} {
			for _, p := range []Policy{FIFO, LPT, CriticalPathPriority} {
				s := mustSchedule(t, g, m, p)
				lb := math.Max(span, g.TotalWork()/float64(m))
				if s.Makespan < lb-1e-9 {
					t.Fatalf("makespan %v below lower bound %v (m=%d, %v)", s.Makespan, lb, m, p)
				}
				// Graham's bound for greedy list scheduling.
				ub := g.TotalWork()/float64(m) + span*(1-1/float64(m)) + 1e-9
				if s.Makespan > ub {
					t.Fatalf("makespan %v above Graham bound %v (m=%d, %v)", s.Makespan, ub, m, p)
				}
			}
		}
	}
}

func TestMoreMachinesNeverHurt(t *testing.T) {
	// For a fixed priority order this holds for these workloads (list
	// scheduling anomalies need adversarial priorities).
	rng := rand.New(rand.NewSource(11))
	g := Layered(6, 8, 0.3, rng)
	prev := math.Inf(1)
	for _, m := range []int{1, 2, 4, 8, 16} {
		s := mustSchedule(t, g, m, CriticalPathPriority)
		if s.Makespan > prev+1e-6 {
			t.Fatalf("makespan grew from %v to %v at m=%d", prev, s.Makespan, m)
		}
		prev = s.Makespan
	}
}

func TestCriticalPathPolicyBeatsFIFOOnAdversarialGraph(t *testing.T) {
	// A long chain plus independent fillers: CP priority starts the chain
	// immediately; FIFO (insertion order) delays it behind the fillers.
	g := NewGraph()
	for i := 0; i < 8; i++ {
		mustAdd(g.AddTask("filler"+string(rune('0'+i)), 4))
	}
	mustAdd(g.AddTask("c0", 4))
	mustAdd(g.AddTask("c1", 4))
	mustAdd(g.AddTask("c2", 4))
	mustAdd(g.AddDep("c0", "c1"))
	mustAdd(g.AddDep("c1", "c2"))

	cp := mustSchedule(t, g, 2, CriticalPathPriority)
	ff := mustSchedule(t, g, 2, FIFO)
	if cp.Makespan >= ff.Makespan {
		t.Fatalf("critical-path makespan %v not better than FIFO %v", cp.Makespan, ff.Makespan)
	}
}

func TestEfficiencyBounds(t *testing.T) {
	g := ForkJoin(16)
	s := mustSchedule(t, g, 4, LPT)
	if s.Efficiency() <= 0 || s.Efficiency() > 1+1e-9 {
		t.Fatalf("efficiency = %v", s.Efficiency())
	}
}

func TestScheduleDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := Layered(5, 5, 0.4, rng)
	a := mustSchedule(t, g, 3, CriticalPathPriority)
	b := mustSchedule(t, g, 3, CriticalPathPriority)
	if a.Makespan != b.Makespan { // lint:exact — deterministic scheduler: identical runs, identical makespan
		t.Fatal("nondeterministic makespan")
	}
	for id, sa := range a.Slots {
		if b.Slots[id] != sa {
			t.Fatalf("slot for %s differs: %+v vs %+v", id, sa, b.Slots[id])
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Chain(3)
	s := mustSchedule(t, g, 1, FIFO)
	// Corrupt: shift a task before its predecessor.
	bad := *s
	bad.Slots = map[string]Slot{}
	for id, slot := range s.Slots {
		bad.Slots[id] = slot
	}
	sl := bad.Slots["t2"]
	sl.Start, sl.End = 0, 1
	bad.Slots["t2"] = sl
	if err := bad.Validate(g); err == nil {
		t.Fatal("corrupted schedule accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || LPT.String() != "lpt" || CriticalPathPriority.String() != "critical-path" {
		t.Fatal("Policy strings wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("out-of-range Policy string empty")
	}
}

func TestPropScheduleAlwaysValid(t *testing.T) {
	f := func(seed int64, m8, p8 uint8) bool {
		m := int(m8%8) + 1
		policy := Policy(int(p8) % 3)
		rng := rand.New(rand.NewSource(seed))
		g := Layered(4, 5, 0.3, rng)
		s, err := ListSchedule(g, m, policy)
		if err != nil {
			return false
		}
		return s.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
