package taskgraph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot format, with task work as node
// labels. When highlight is non-nil (e.g. the critical path), those tasks
// are drawn bold red — the way a student would mark the critical path in
// the §5.2 assignment.
func (g *Graph) DOT(name string, highlight []string) string {
	hi := map[string]bool{}
	for _, id := range highlight {
		hi[id] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"sans-serif\"];\n")
	for _, id := range g.Tasks() {
		t := g.Task(id)
		// DOT renders \n inside a quoted label as a line break; build the
		// label by hand so %q does not double-escape the backslash.
		attrs := fmt.Sprintf(`label="%s\n%.1f"`, strings.ReplaceAll(id, `"`, `\"`), t.Work)
		if hi[id] {
			attrs += ", color=red, penwidth=2, fontcolor=red"
		}
		fmt.Fprintf(&b, "  %q [%s];\n", id, attrs)
	}
	// Deterministic edge order.
	var edges [][2]string
	for _, from := range g.Tasks() {
		for _, to := range g.Successors(from) {
			edges = append(edges, [2]string{from, to})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		attrs := ""
		if hi[e[0]] && hi[e[1]] {
			attrs = " [color=red, penwidth=2]"
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e[0], e[1], attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
