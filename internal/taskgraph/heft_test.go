package taskgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHEFTValidation(t *testing.T) {
	g := Chain(3)
	if _, err := HEFT(g, nil, 0); err == nil {
		t.Error("no machines accepted")
	}
	if _, err := HEFT(g, []Machine{{Speed: 0}}, 0); err == nil {
		t.Error("zero-speed machine accepted")
	}
	if _, err := HEFT(g, UniformMachines(2), -1); err == nil {
		t.Error("negative comm accepted")
	}
	if _, err := HEFT(NewGraph(), UniformMachines(2), 0); err == nil {
		t.Error("empty graph accepted")
	}
	cyc := NewGraph()
	_ = cyc.AddTask("a", 1)
	_ = cyc.AddTask("b", 1)
	_ = cyc.AddDep("a", "b")
	_ = cyc.AddDep("b", "a")
	if _, err := HEFT(cyc, UniformMachines(2), 0); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestHEFTSingleFastMachineEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Layered(4, 4, 0.3, rng)
	s, err := HEFT(g, []Machine{{Speed: 2}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Makespan-g.TotalWork()/2) > 1e-9 {
		t.Fatalf("single-machine makespan %v, want %v", s.Makespan, g.TotalWork()/2)
	}
	if math.Abs(s.Speedup()-1) > 1e-9 {
		t.Fatalf("single-machine speedup %v", s.Speedup())
	}
}

func TestHEFTUniformNoCommMatchesListScheduleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Layered(6, 6, 0.3, rng)
	span, _, _ := g.CriticalPath()
	for _, m := range []int{1, 2, 4} {
		s, err := HEFT(g, UniformMachines(m), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(g); err != nil {
			t.Fatal(err)
		}
		lb := math.Max(span, g.TotalWork()/float64(m))
		if s.Makespan < lb-1e-9 {
			t.Fatalf("m=%d: makespan %v below bound %v", m, s.Makespan, lb)
		}
		// HEFT with no comm on uniform machines should match the greedy
		// list scheduler within Graham's factor.
		ub := g.TotalWork()/float64(m) + span*(1-1/float64(m)) + 1e-9
		if s.Makespan > ub {
			t.Fatalf("m=%d: makespan %v above Graham bound %v", m, s.Makespan, ub)
		}
	}
}

func TestHEFTPrefersFastMachine(t *testing.T) {
	// Independent tasks, one fast and one slow machine: the fast machine
	// must take more work.
	g := NewGraph()
	for i := 0; i < 8; i++ {
		mustAdd(g.AddTask(string(rune('a'+i)), 1))
	}
	s, err := HEFT(g, []Machine{{Speed: 3}, {Speed: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	fast, slow := 0, 0
	for _, slot := range s.Slots {
		if slot.Machine == 0 {
			fast++
		} else {
			slow++
		}
	}
	if fast <= slow {
		t.Fatalf("fast machine ran %d tasks, slow %d", fast, slow)
	}
	// Optimal makespan for 8 unit tasks on speeds {3,1} is 2 (6 on fast,
	// 2 on slow); HEFT should achieve it or be close.
	if s.Makespan > 3+1e-9 {
		t.Fatalf("makespan %v too far from optimal 2", s.Makespan)
	}
}

func TestHEFTCommunicationKeepsChainsTogether(t *testing.T) {
	// A chain with heavy communication: spreading it across machines
	// costs comm per hop, so HEFT should keep it on one machine and the
	// makespan should equal the serial time.
	g := Chain(6)
	s, err := HEFT(g, UniformMachines(4), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Makespan-6) > 1e-9 {
		t.Fatalf("chain makespan %v, want 6 (no pointless migration)", s.Makespan)
	}
	first := s.Slots["t0"].Machine
	for id, slot := range s.Slots {
		if slot.Machine != first {
			t.Fatalf("task %s migrated to machine %d despite heavy comm", id, slot.Machine)
		}
	}
}

func TestHEFTCommCostVsZero(t *testing.T) {
	// With communication costs, the makespan can only be >= the zero-comm
	// makespan on the same platform.
	rng := rand.New(rand.NewSource(3))
	g := Layered(5, 6, 0.3, rng)
	machines := []Machine{{Speed: 1}, {Speed: 1.5}, {Speed: 0.5}}
	free, err := HEFT(g, machines, 0)
	if err != nil {
		t.Fatal(err)
	}
	costly, err := HEFT(g, machines, 2)
	if err != nil {
		t.Fatal(err)
	}
	if costly.Makespan < free.Makespan-1e-9 {
		t.Fatalf("comm=2 makespan %v below comm=0 %v", costly.Makespan, free.Makespan)
	}
}

func TestHEFTHeterogeneousBeatsEquivalentUniformWhenSkewed(t *testing.T) {
	// Same aggregate capacity, but HEFT can exploit the fast machine for
	// the critical path: a chain on {2.0, 0.5, 0.5, 1.0} finishes faster
	// than on uniform speed-1 machines.
	g := Chain(8)
	fast, err := HEFT(g, []Machine{{Speed: 2}, {Speed: 0.5}, {Speed: 0.5}, {Speed: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := HEFT(g, UniformMachines(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan >= uniform.Makespan {
		t.Fatalf("heterogeneous chain %v not faster than uniform %v", fast.Makespan, uniform.Makespan)
	}
}

func TestPropHEFTAlwaysValid(t *testing.T) {
	f := func(seed int64, m8, c8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Layered(4, 4, 0.35, rng)
		nm := int(m8%4) + 1
		machines := make([]Machine, nm)
		for i := range machines {
			machines[i] = Machine{Speed: 0.5 + rng.Float64()*2}
		}
		comm := float64(c8%5) / 2
		s, err := HEFT(g, machines, comm)
		if err != nil {
			return false
		}
		return s.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
