package taskgraph

import (
	"fmt"
	"sync"
)

// Execute runs the graph for real on a pool of `workers` goroutines:
// every task's function runs exactly once, only after all its
// predecessors completed. The first error cancels remaining work (tasks
// already started still finish). Execute returns the first task error, or
// the cycle error if the graph is invalid.
//
// This is the "actually parallel" counterpart to the ListSchedule
// simulator — the executor the schedulerlab example uses to demonstrate
// real speedup to students.
func (g *Graph) Execute(workers int, run func(id string) error) error {
	if workers <= 0 {
		return fmt.Errorf("taskgraph: need at least one worker, got %d", workers)
	}
	if run == nil {
		return fmt.Errorf("taskgraph: nil run function")
	}
	if err := g.Validate(); err != nil {
		return err
	}

	var mu sync.Mutex
	indeg := make(map[string]int, len(g.tasks))
	for id := range g.tasks {
		indeg[id] = len(g.pred[id])
	}
	readyCh := make(chan string, len(g.tasks))
	for _, id := range g.order {
		if indeg[id] == 0 {
			readyCh <- id
		}
	}

	var firstErr error
	var failed bool
	remaining := len(g.tasks)
	done := make(chan struct{})

	complete := func(id string, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && !failed {
			failed = true
			firstErr = fmt.Errorf("taskgraph: task %q: %w", id, err)
		}
		if !failed {
			for _, s := range g.succ[id] {
				indeg[s]--
				if indeg[s] == 0 {
					readyCh <- s
				}
			}
		}
		remaining--
		// Finished: everything ran, or we failed and the already-released
		// queue has drained (tasks blocked behind the failure will never
		// become ready, so there is nothing left to wait for).
		if remaining == 0 || (failed && len(readyCh) == 0) {
			select {
			case <-done:
			default:
				close(done)
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case id := <-readyCh:
					mu.Lock()
					stop := failed
					mu.Unlock()
					if stop {
						complete(id, nil)
						continue
					}
					complete(id, run(id))
				}
			}
		}()
	}
	<-done
	// Workers parked on readyCh observe the closed done channel and exit.
	wg.Wait()
	return firstErr
}
