package taskgraph

import (
	"fmt"
	"math/rand"
)

// Chain builds a linear chain of n unit-work tasks — zero parallelism.
func Chain(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		mustAdd(g.AddTask(fmt.Sprintf("t%d", i), 1))
		if i > 0 {
			mustAdd(g.AddDep(fmt.Sprintf("t%d", i-1), fmt.Sprintf("t%d", i)))
		}
	}
	return g
}

// ForkJoin builds a source, n parallel unit-work tasks, and a sink — the
// parallel-for shape.
func ForkJoin(n int) *Graph {
	g := NewGraph()
	mustAdd(g.AddTask("fork", 1))
	mustAdd(g.AddTask("join", 1))
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("body%d", i)
		mustAdd(g.AddTask(id, 1))
		mustAdd(g.AddDep("fork", id))
		mustAdd(g.AddDep(id, "join"))
	}
	return g
}

// Layered builds a random layered DAG: `layers` levels of `width` tasks;
// each task depends on each task of the previous layer with probability
// p; tasks with no sampled predecessor get one, keeping layers honest.
// Work is drawn uniformly from [1, 2).
func Layered(layers, width int, p float64, rng *rand.Rand) *Graph {
	if rng == nil {
		panic("taskgraph: Layered requires a non-nil *rand.Rand")
	}
	g := NewGraph()
	id := func(l, w int) string { return fmt.Sprintf("l%dw%d", l, w) }
	for l := 0; l < layers; l++ {
		for w := 0; w < width; w++ {
			mustAdd(g.AddTask(id(l, w), 1+rng.Float64()))
		}
	}
	for l := 1; l < layers; l++ {
		for w := 0; w < width; w++ {
			any := false
			for pw := 0; pw < width; pw++ {
				if rng.Float64() < p {
					mustAdd(g.AddDep(id(l-1, pw), id(l, w)))
					any = true
				}
			}
			if !any {
				mustAdd(g.AddDep(id(l-1, rng.Intn(width)), id(l, w)))
			}
		}
	}
	return g
}

// MapReduce builds m map tasks feeding r reduce tasks through a full
// bipartite shuffle, with a final gather task.
func MapReduce(m, r int) *Graph {
	g := NewGraph()
	for i := 0; i < m; i++ {
		mustAdd(g.AddTask(fmt.Sprintf("map%d", i), 2))
	}
	for j := 0; j < r; j++ {
		id := fmt.Sprintf("reduce%d", j)
		mustAdd(g.AddTask(id, 3))
		for i := 0; i < m; i++ {
			mustAdd(g.AddDep(fmt.Sprintf("map%d", i), id))
		}
	}
	mustAdd(g.AddTask("gather", 1))
	for j := 0; j < r; j++ {
		mustAdd(g.AddDep(fmt.Sprintf("reduce%d", j), "gather"))
	}
	return g
}

// DivideAndConquer builds a binary recursion tree of the given depth with
// combine nodes — the cilk-style brute-force shape §5.2 discusses.
// Each level's leaves spawn two children; conquer nodes mirror the tree
// upward.
func DivideAndConquer(depth int) *Graph {
	g := NewGraph()
	var build func(path string, d int) (string, string)
	build = func(path string, d int) (string, string) {
		divide := "d" + path
		mustAdd(g.AddTask(divide, 1))
		if d == 0 {
			return divide, divide
		}
		combine := "c" + path
		mustAdd(g.AddTask(combine, 1))
		lDiv, lComb := build(path+"0", d-1)
		rDiv, rComb := build(path+"1", d-1)
		mustAdd(g.AddDep(divide, lDiv))
		mustAdd(g.AddDep(divide, rDiv))
		mustAdd(g.AddDep(lComb, combine))
		mustAdd(g.AddDep(rComb, combine))
		return divide, combine
	}
	build("r", depth)
	return g
}

func mustAdd(err error) {
	if err != nil {
		panic(err)
	}
}
