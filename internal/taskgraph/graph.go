// Package taskgraph implements the Parallel Task Graph model that §5.2
// proposes as PDC content for Data Structures courses: directed acyclic
// graphs of weighted tasks, topological sorting to derive a feasible
// execution order, critical-path analysis to measure how parallel a graph
// is, a list-scheduling simulator built on a priority queue, and a real
// goroutine-based executor. The anchor-point recommender points at this
// package as the concrete assignment artifact, and the benchmark harness
// uses it for the scheduling ablations.
package taskgraph

import (
	"fmt"
	"sort"
)

// Task is a unit of work in the graph.
type Task struct {
	ID   string
	Work float64 // abstract execution time, must be > 0
}

// Graph is a directed acyclic graph of tasks. Edges point from a
// prerequisite to its dependent: an edge (a, b) means a must finish
// before b starts.
type Graph struct {
	tasks map[string]*Task
	succ  map[string][]string
	pred  map[string][]string
	order []string // insertion order for determinism
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph {
	return &Graph{
		tasks: map[string]*Task{},
		succ:  map[string][]string{},
		pred:  map[string][]string{},
	}
}

// AddTask registers a task; IDs must be unique and work positive.
func (g *Graph) AddTask(id string, work float64) error {
	if id == "" {
		return fmt.Errorf("taskgraph: empty task ID")
	}
	if work <= 0 {
		return fmt.Errorf("taskgraph: task %q has non-positive work %v", id, work)
	}
	if _, dup := g.tasks[id]; dup {
		return fmt.Errorf("taskgraph: duplicate task %q", id)
	}
	g.tasks[id] = &Task{ID: id, Work: work}
	g.order = append(g.order, id)
	return nil
}

// AddDep records that `from` must complete before `to` starts. Both tasks
// must exist; self-loops and duplicate edges are rejected. Cycles are
// detected lazily by TopoSort/Validate.
func (g *Graph) AddDep(from, to string) error {
	if g.tasks[from] == nil {
		return fmt.Errorf("taskgraph: unknown task %q", from)
	}
	if g.tasks[to] == nil {
		return fmt.Errorf("taskgraph: unknown task %q", to)
	}
	if from == to {
		return fmt.Errorf("taskgraph: self-dependency on %q", from)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("taskgraph: duplicate edge %q -> %q", from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Task returns the task with the given ID, or nil.
func (g *Graph) Task(id string) *Task { return g.tasks[id] }

// Tasks returns all task IDs in insertion order.
func (g *Graph) Tasks() []string { return append([]string(nil), g.order...) }

// Predecessors returns the prerequisite IDs of a task, sorted.
func (g *Graph) Predecessors(id string) []string {
	out := append([]string(nil), g.pred[id]...)
	sort.Strings(out)
	return out
}

// Successors returns the dependent IDs of a task, sorted.
func (g *Graph) Successors(id string) []string {
	out := append([]string(nil), g.succ[id]...)
	sort.Strings(out)
	return out
}

// NumEdges returns the number of dependency edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// TopoSort returns a feasible execution order (Kahn's algorithm,
// deterministic: ready tasks are taken in insertion order) or an error if
// the graph has a cycle.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := map[string]int{}
	for id := range g.tasks {
		indeg[id] = len(g.pred[id])
	}
	var ready []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var out []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != len(g.tasks) {
		return nil, fmt.Errorf("taskgraph: cycle detected (%d of %d tasks sortable)", len(out), len(g.tasks))
	}
	return out, nil
}

// Validate reports whether the graph is acyclic.
func (g *Graph) Validate() error {
	_, err := g.TopoSort()
	return err
}

// TotalWork returns the sum of all task works — the serial execution
// time, and the "work" of the work/span model.
func (g *Graph) TotalWork() float64 {
	s := 0.0
	for _, t := range g.tasks {
		s += t.Work
	}
	return s
}

// CriticalPath returns the span of the graph — the longest
// work-weighted path — together with one path realizing it. This is the
// §5.2 "compute metrics like critical path to get a sense how parallel
// the graph is".
func (g *Graph) CriticalPath() (float64, []string, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return 0, nil, err
	}
	finish := map[string]float64{} // earliest finish = longest path ending at task
	prev := map[string]string{}
	best := 0.0
	bestID := ""
	for _, id := range topo {
		start := 0.0
		for _, p := range g.pred[id] {
			if finish[p] > start {
				start = finish[p]
				prev[id] = p
			}
		}
		finish[id] = start + g.tasks[id].Work
		if finish[id] > best {
			best = finish[id]
			bestID = id
		}
	}
	var path []string
	for id := bestID; id != ""; {
		path = append(path, id)
		id = prev[id]
	}
	// Reverse into source→sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path, nil
}

// Parallelism returns work/span — the average parallelism available in
// the graph, an upper bound on useful machine count.
func (g *Graph) Parallelism() (float64, error) {
	span, _, err := g.CriticalPath()
	if err != nil {
		return 0, err
	}
	if span == 0 {
		return 0, nil
	}
	return g.TotalWork() / span, nil
}

// BottomLevels returns, for every task, the length of the longest path
// from the task to any sink, inclusive of the task's own work. This is
// the priority used by critical-path list scheduling.
func (g *Graph) BottomLevels() (map[string]float64, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	bl := map[string]float64{}
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		best := 0.0
		for _, s := range g.succ[id] {
			if bl[s] > best {
				best = bl[s]
			}
		}
		bl[id] = best + g.tasks[id].Work
	}
	return bl, nil
}
