package taskgraph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// diamond builds a -> {b, c} -> d with the given works.
func diamond(t *testing.T, wa, wb, wc, wd float64) *Graph {
	t.Helper()
	g := NewGraph()
	for _, x := range []struct {
		id string
		w  float64
	}{{"a", wa}, {"b", wb}, {"c", wc}, {"d", wd}} {
		if err := g.AddTask(x.id, x.w); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if err := g.AddDep(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddTaskValidation(t *testing.T) {
	g := NewGraph()
	if err := g.AddTask("", 1); err == nil {
		t.Error("empty ID accepted")
	}
	if err := g.AddTask("a", 0); err == nil {
		t.Error("zero work accepted")
	}
	if err := g.AddTask("a", -1); err == nil {
		t.Error("negative work accepted")
	}
	if err := g.AddTask("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddTask("a", 1); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestAddDepValidation(t *testing.T) {
	g := NewGraph()
	if err := g.AddTask("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddTask("b", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep("a", "ghost"); err == nil {
		t.Error("unknown target accepted")
	}
	if err := g.AddDep("ghost", "a"); err == nil {
		t.Error("unknown source accepted")
	}
	if err := g.AddDep("a", "a"); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddDep("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep("a", "b"); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Fatalf("topological order violated: %v", order)
	}
}

func TestCycleDetected(t *testing.T) {
	g := NewGraph()
	for _, id := range []string{"a", "b", "c"} {
		if err := g.AddTask(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}} {
		if err := g.AddDep(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g := diamond(t, 1, 5, 2, 1)
	span, path, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(span, 7) { // a(1) + b(5) + d(1)
		t.Fatalf("span = %v, want 7", span)
	}
	if len(path) != 3 || path[0] != "a" || path[1] != "b" || path[2] != "d" {
		t.Fatalf("critical path = %v", path)
	}
}

func TestTotalWorkAndParallelism(t *testing.T) {
	g := diamond(t, 1, 5, 2, 1)
	if !approx(g.TotalWork(), 9) {
		t.Fatalf("TotalWork = %v", g.TotalWork())
	}
	p, err := g.Parallelism()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 9.0/7.0) {
		t.Fatalf("Parallelism = %v", p)
	}
}

func TestBottomLevels(t *testing.T) {
	g := diamond(t, 1, 5, 2, 1)
	bl, err := g.BottomLevels()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(bl["d"], 1) || !approx(bl["b"], 6) || !approx(bl["c"], 3) || !approx(bl["a"], 7) {
		t.Fatalf("BottomLevels = %v", bl)
	}
}

func TestChainProperties(t *testing.T) {
	g := Chain(10)
	if g.Len() != 10 || g.NumEdges() != 9 {
		t.Fatalf("chain: %d tasks %d edges", g.Len(), g.NumEdges())
	}
	span, _, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(span, 10) {
		t.Fatalf("chain span = %v", span)
	}
	p, _ := g.Parallelism()
	if !approx(p, 1) {
		t.Fatalf("chain parallelism = %v", p)
	}
}

func TestForkJoinProperties(t *testing.T) {
	g := ForkJoin(8)
	span, _, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(span, 3) { // fork + body + join
		t.Fatalf("fork-join span = %v", span)
	}
	p, _ := g.Parallelism()
	if !approx(p, 10.0/3.0) {
		t.Fatalf("fork-join parallelism = %v", p)
	}
}

func TestLayeredGeneratorValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Layered(6, 8, 0.3, rng)
	if g.Len() != 48 {
		t.Fatalf("layered size = %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every non-first-layer task has at least one predecessor.
	for _, id := range g.Tasks() {
		if id[:2] != "l0" && len(g.Predecessors(id)) == 0 {
			t.Fatalf("task %s has no predecessors", id)
		}
	}
}

func TestMapReduceShape(t *testing.T) {
	g := MapReduce(4, 2)
	if g.Len() != 7 {
		t.Fatalf("mapreduce size = %d", g.Len())
	}
	if len(g.Predecessors("reduce0")) != 4 {
		t.Fatalf("reduce0 preds = %v", g.Predecessors("reduce0"))
	}
	if len(g.Predecessors("gather")) != 2 {
		t.Fatal("gather must depend on both reducers")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDivideAndConquerShape(t *testing.T) {
	g := DivideAndConquer(3)
	// 2^(d+1)-1 divide nodes at levels 0..3 = 15, combine for internal
	// nodes = 7. Total 22.
	if g.Len() != 22 {
		t.Fatalf("D&C size = %d, want 22", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	span, _, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// 4 divides down (root to leaf) + 3 combines back up = 7 unit tasks.
	if !approx(span, 7) {
		t.Fatalf("D&C span = %v, want 7", span)
	}
}

func TestPropCriticalPathAtMostTotalWork(t *testing.T) {
	f := func(seed int64, l8, w8 uint8) bool {
		layers := int(l8%5) + 1
		width := int(w8%5) + 1
		rng := rand.New(rand.NewSource(seed))
		g := Layered(layers, width, 0.4, rng)
		span, _, err := g.CriticalPath()
		if err != nil {
			return false
		}
		return span <= g.TotalWork()+1e-9 && span > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropTopoSortIsValidPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Layered(4, 5, 0.3, rng)
		order, err := g.TopoSort()
		if err != nil || len(order) != g.Len() {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range g.Tasks() {
			for _, p := range g.Predecessors(id) {
				if pos[p] > pos[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTExport(t *testing.T) {
	g := diamond(t, 1, 5, 2, 1)
	_, path, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("diamond", path)
	for _, want := range []string{"digraph \"diamond\"", `"a" -> "b"`, `"c" -> "d"`, "color=red"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Edge count: one line per dependency.
	if got := strings.Count(dot, "->"); got != g.NumEdges() {
		t.Fatalf("DOT has %d edges, want %d", got, g.NumEdges())
	}
	// The off-critical-path edge is not highlighted.
	if strings.Contains(dot, `"a" -> "c" [color=red`) {
		t.Fatal("non-critical edge highlighted")
	}
}
