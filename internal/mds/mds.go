// Package mds implements multidimensional scaling: classical (Torgerson)
// MDS and SMACOF stress majorization. CS Materials uses MDS to lay out
// search results in 2D so that similar materials cluster together
// (§3.1.2); the paper also lists MDS as a dimension-reduction baseline.
package mds

import (
	"fmt"
	"math"
	"math/rand"

	"csmaterials/internal/matrix"
)

// Classical computes Torgerson's classical MDS embedding of a symmetric
// distance matrix d into k dimensions: double-center the squared
// distances and take the top-k eigenpairs of the resulting Gram matrix.
func Classical(d *matrix.Dense, k int) (*matrix.Dense, error) {
	if err := checkDistances(d); err != nil {
		return nil, err
	}
	n := d.Rows()
	if k <= 0 || k >= n {
		return nil, fmt.Errorf("mds: k=%d out of range for %d points", k, n)
	}
	// B = -1/2 · J · D² · J with J = I - 11ᵀ/n.
	sq := d.MulElem(d)
	rowMeans := sq.RowSums()
	for i := range rowMeans {
		rowMeans[i] /= float64(n)
	}
	grand := 0.0
	for _, v := range rowMeans {
		grand += v
	}
	grand /= float64(n)
	b := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, -0.5*(sq.At(i, j)-rowMeans[i]-rowMeans[j]+grand))
		}
	}
	vals, vecs := matrix.TopEigenSym(b, k)
	x := matrix.New(n, k)
	for t := 0; t < k; t++ {
		scale := math.Sqrt(math.Max(vals[t], 0))
		for i := 0; i < n; i++ {
			x.Set(i, t, vecs.At(i, t)*scale)
		}
	}
	return x, nil
}

// SMACOFOptions configures the SMACOF iteration.
type SMACOFOptions struct {
	// MaxIter bounds the majorization steps (default 300).
	MaxIter int
	// Tol stops when the relative stress improvement falls below it
	// (default 1e-6).
	Tol float64
	// Seed seeds the random initial configuration when Init is nil.
	Seed int64
	// Init optionally provides the starting configuration (n × k); it is
	// not mutated. When nil, a random configuration is used.
	Init *matrix.Dense
}

// SMACOF embeds a symmetric distance matrix into k dimensions by stress
// majorization, returning the configuration and its final raw stress.
func SMACOF(d *matrix.Dense, k int, opts SMACOFOptions) (*matrix.Dense, float64, error) {
	if err := checkDistances(d); err != nil {
		return nil, 0, err
	}
	n := d.Rows()
	if k <= 0 || k >= n {
		return nil, 0, fmt.Errorf("mds: k=%d out of range for %d points", k, n)
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 300
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-6
	}
	var x *matrix.Dense
	if opts.Init != nil {
		if opts.Init.Rows() != n || opts.Init.Cols() != k {
			return nil, 0, fmt.Errorf("mds: Init dims %dx%d, want %dx%d", opts.Init.Rows(), opts.Init.Cols(), n, k)
		}
		x = opts.Init.Clone()
	} else {
		rng := rand.New(rand.NewSource(opts.Seed))
		x = matrix.Random(n, k, rng)
	}

	prev := Stress(d, x)
	for it := 0; it < opts.MaxIter; it++ {
		x = guttmanTransform(d, x)
		cur := Stress(d, x)
		if prev-cur <= opts.Tol*math.Max(prev, 1e-12) {
			prev = cur
			break
		}
		prev = cur
	}
	return x, prev, nil
}

// guttmanTransform performs one SMACOF majorization step with uniform
// weights: X' = (1/n) · B(X) · X where B collects d_ij / dist_ij ratios.
func guttmanTransform(d, x *matrix.Dense) *matrix.Dense {
	n := x.Rows()
	b := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dist := pointDistance(x, i, j)
			if dist > 1e-12 {
				b.Set(i, j, -d.At(i, j)/dist)
			}
		}
	}
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				s += b.At(i, j)
			}
		}
		b.Set(i, i, -s)
	}
	return b.Mul(x).Scale(1 / float64(n))
}

// Stress returns the raw stress Σ_{i<j} (d_ij − dist_ij)².
func Stress(d, x *matrix.Dense) float64 {
	n := d.Rows()
	s := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			diff := d.At(i, j) - pointDistance(x, i, j)
			s += diff * diff
		}
	}
	return s
}

// NormalizedStress returns Kruskal's stress-1: sqrt(raw stress divided by
// Σ d_ij²). Values below ~0.1 indicate a good embedding.
func NormalizedStress(d, x *matrix.Dense) float64 {
	n := d.Rows()
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			diff := d.At(i, j) - pointDistance(x, i, j)
			num += diff * diff
			den += d.At(i, j) * d.At(i, j)
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

func pointDistance(x *matrix.Dense, i, j int) float64 {
	ri, rj := x.RowView(i), x.RowView(j)
	s := 0.0
	for t := range ri {
		d := ri[t] - rj[t]
		s += d * d
	}
	return math.Sqrt(s)
}

// EuclideanDistances builds the pairwise distance matrix of the rows of
// points.
func EuclideanDistances(points *matrix.Dense) *matrix.Dense {
	n := points.Rows()
	d := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := pointDistance(points, i, j)
			d.Set(i, j, dist)
			d.Set(j, i, dist)
		}
	}
	return d
}

// DistancesFromSimilarity converts a similarity matrix with entries in
// [0, 1] (1 = identical) into a distance matrix via d = 1 − s, forcing a
// zero diagonal. This is how CS Materials feeds material similarities to
// MDS.
func DistancesFromSimilarity(s *matrix.Dense) (*matrix.Dense, error) {
	if s.Rows() != s.Cols() {
		return nil, fmt.Errorf("mds: similarity matrix must be square, got %dx%d", s.Rows(), s.Cols())
	}
	n := s.Rows()
	d := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := s.At(i, j)
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("mds: similarity %v at (%d,%d) outside [0,1]", v, i, j)
			}
			d.Set(i, j, 1-v)
		}
	}
	return d, nil
}

func checkDistances(d *matrix.Dense) error {
	if d.Rows() != d.Cols() {
		return fmt.Errorf("mds: distance matrix must be square, got %dx%d", d.Rows(), d.Cols())
	}
	n := d.Rows()
	for i := 0; i < n; i++ {
		if d.At(i, i) != 0 {
			return fmt.Errorf("mds: non-zero diagonal at %d", i)
		}
		for j := 0; j < n; j++ {
			v := d.At(i, j)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("mds: invalid distance %v at (%d,%d)", v, i, j)
			}
			if math.Abs(v-d.At(j, i)) > 1e-9 {
				return fmt.Errorf("mds: asymmetric distances at (%d,%d)", i, j)
			}
		}
	}
	return nil
}
