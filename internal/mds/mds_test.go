package mds

import (
	"math"
	"math/rand"
	"testing"

	"csmaterials/internal/matrix"
)

// knownPoints builds a configuration and its exact distance matrix.
func knownPoints(n, k int, seed int64) (*matrix.Dense, *matrix.Dense) {
	rng := rand.New(rand.NewSource(seed))
	x := matrix.Random(n, k, rng).Scale(10)
	return x, EuclideanDistances(x)
}

func TestEuclideanDistances(t *testing.T) {
	x := matrix.NewFromRows([][]float64{{0, 0}, {3, 4}, {0, 8}})
	d := EuclideanDistances(x)
	if d.At(0, 1) != 5 || d.At(1, 0) != 5 { // lint:exact — 3-4-5 distances are exactly representable
		t.Fatalf("d(0,1) = %v, want 5", d.At(0, 1))
	}
	if d.At(0, 2) != 8 { // lint:exact — 3-4-5 distances are exactly representable
		t.Fatalf("d(0,2) = %v, want 8", d.At(0, 2))
	}
	if d.At(1, 2) != 5 { // lint:exact — 3-4-5 distances are exactly representable
		t.Fatalf("d(1,2) = %v, want 5", d.At(1, 2))
	}
	for i := 0; i < 3; i++ {
		if d.At(i, i) != 0 {
			t.Fatal("non-zero diagonal")
		}
	}
}

func TestClassicalRecoversExactDistances(t *testing.T) {
	// Distances generated from 2D points must be reproduced exactly by a
	// 2D classical MDS embedding (up to rotation), i.e. zero stress.
	_, d := knownPoints(10, 2, 1)
	x, err := Classical(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := EuclideanDistances(x)
	if !rec.EqualTol(d, 1e-6*(1+d.MaxAbs())) {
		t.Fatalf("classical MDS distance error %v", rec.Sub(d).MaxAbs())
	}
}

func TestClassicalValidation(t *testing.T) {
	_, d := knownPoints(5, 2, 2)
	if _, err := Classical(d, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Classical(d, 5); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := Classical(matrix.New(3, 4), 2); err == nil {
		t.Error("non-square accepted")
	}
	bad := d.Clone()
	bad.Set(0, 0, 1)
	if _, err := Classical(bad, 2); err == nil {
		t.Error("non-zero diagonal accepted")
	}
	asym := d.Clone()
	asym.Set(0, 1, asym.At(0, 1)+1)
	if _, err := Classical(asym, 2); err == nil {
		t.Error("asymmetric accepted")
	}
	neg := d.Clone()
	neg.Set(0, 1, -1)
	neg.Set(1, 0, -1)
	if _, err := Classical(neg, 2); err == nil {
		t.Error("negative distance accepted")
	}
}

func TestSMACOFReducesStress(t *testing.T) {
	_, d := knownPoints(12, 3, 3)
	rng := rand.New(rand.NewSource(7))
	init := matrix.Random(12, 2, rng)
	initialStress := Stress(d, init)
	x, finalStress, err := SMACOF(d, 2, SMACOFOptions{Init: init, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if finalStress >= initialStress {
		t.Fatalf("SMACOF did not reduce stress: %v -> %v", initialStress, finalStress)
	}
	if got := Stress(d, x); math.Abs(got-finalStress) > 1e-9*(1+got) {
		t.Fatalf("reported stress %v != recomputed %v", finalStress, got)
	}
}

func TestSMACOFExactEmbeddingNearZeroStress(t *testing.T) {
	// 2D-generated distances embedded in 2D starting from classical MDS
	// must reach (near) zero normalized stress.
	_, d := knownPoints(10, 2, 11)
	init, err := Classical(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := SMACOF(d, 2, SMACOFOptions{Init: init, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if ns := NormalizedStress(d, x); ns > 1e-3 {
		t.Fatalf("normalized stress %v, want ~0", ns)
	}
}

func TestSMACOFDeterministicWithSeed(t *testing.T) {
	_, d := knownPoints(8, 3, 13)
	x1, s1, err := SMACOF(d, 2, SMACOFOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x2, s2, err := SMACOF(d, 2, SMACOFOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !x1.Equal(x2) || s1 != s2 { // lint:exact — same-seed runs must agree to the last bit
		t.Fatal("SMACOF with same seed differs")
	}
}

func TestSMACOFInitValidation(t *testing.T) {
	_, d := knownPoints(6, 2, 17)
	if _, _, err := SMACOF(d, 2, SMACOFOptions{Init: matrix.New(3, 2)}); err == nil {
		t.Fatal("wrong-shape Init accepted")
	}
}

func TestSMACOFDoesNotMutateInit(t *testing.T) {
	_, d := knownPoints(6, 2, 19)
	rng := rand.New(rand.NewSource(3))
	init := matrix.Random(6, 2, rng)
	cp := init.Clone()
	if _, _, err := SMACOF(d, 2, SMACOFOptions{Init: init, MaxIter: 50}); err != nil {
		t.Fatal(err)
	}
	if !init.Equal(cp) {
		t.Fatal("SMACOF mutated Init")
	}
}

func TestStressZeroForPerfectConfig(t *testing.T) {
	x, d := knownPoints(7, 2, 23)
	if s := Stress(d, x); s > 1e-18 {
		t.Fatalf("stress of generating configuration = %v", s)
	}
	if ns := NormalizedStress(d, x); ns > 1e-9 {
		t.Fatalf("normalized stress = %v", ns)
	}
}

func TestDistancesFromSimilarity(t *testing.T) {
	s := matrix.NewFromRows([][]float64{{1, 0.75}, {0.75, 1}})
	d, err := DistancesFromSimilarity(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 1) != 0.25 || d.At(1, 0) != 0.25 { // lint:exact — 0.25 is exactly representable
		t.Fatalf("d = %v", d)
	}
	if d.At(0, 0) != 0 || d.At(1, 1) != 0 {
		t.Fatal("diagonal must be zero")
	}
	bad := matrix.NewFromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := DistancesFromSimilarity(bad); err == nil {
		t.Fatal("similarity > 1 accepted")
	}
	if _, err := DistancesFromSimilarity(matrix.New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestClassicalThenSimilarityPipeline(t *testing.T) {
	// The CS Materials search pipeline: similarities -> distances -> 2D.
	s := matrix.NewFromRows([][]float64{
		{1, 0.9, 0.1, 0.1},
		{0.9, 1, 0.1, 0.1},
		{0.1, 0.1, 1, 0.9},
		{0.1, 0.1, 0.9, 1},
	})
	d, err := DistancesFromSimilarity(s)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Classical(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The two similar pairs must end up closer than cross-pair distances.
	within := EuclideanDistances(x).At(0, 1)
	across := EuclideanDistances(x).At(0, 2)
	if within >= across {
		t.Fatalf("similar materials not clustered: within=%v across=%v", within, across)
	}
}
