package nnmf

import (
	"strings"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/matrix"
)

// corpusMatrix builds the real analysis input: the 20-course seed
// corpus's 0-1 course × curriculum matrix.
func corpusMatrix() *matrix.Dense {
	a, _ := materials.CourseMatrix(dataset.Courses())
	return a
}

func paperLike() Options {
	return Options{K: 4, Seed: 1, Restarts: 10, MaxIter: 500}
}

func warmFrom(prior *Result, opts Options) Options {
	opts.InitW, opts.InitH = prior.W, prior.H
	return opts
}

func TestWarmStartByteStableOnUnchangedMatrix(t *testing.T) {
	a := corpusMatrix()
	cold := factorizeOrDie(t, a, paperLike())

	warm, err := Factorize(a, warmFrom(cold, paperLike()))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.SeedRetained {
		t.Fatalf("warm run on unchanged matrix did not retain seeds (iterations=%d, residuals=%v)",
			warm.Iterations, warm.Residuals)
	}
	if !warm.Converged {
		t.Error("retained run must report Converged")
	}
	if !warm.W.Equal(cold.W) || !warm.H.Equal(cold.H) {
		t.Error("retained factors must be byte-identical to the seeds")
	}
	if warm.W == cold.W || warm.H == cold.H {
		t.Error("retained factors must be copies, not aliases of the seeds")
	}
	if warm.Iterations != 1 {
		t.Errorf("retention must cost exactly one probe iteration, got %d", warm.Iterations)
	}
	if cold.SeedRetained {
		t.Error("cold run must not report SeedRetained")
	}
}

func TestWarmStartSparseByteStable(t *testing.T) {
	a := corpusMatrix()
	csr := matrix.FromDense(a)
	cold, err := FactorizeCSR(csr, paperLike())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := FactorizeCSR(csr, warmFrom(cold, paperLike()))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.SeedRetained {
		t.Fatalf("sparse warm run on unchanged matrix did not retain seeds (iterations=%d)", warm.Iterations)
	}
	if !warm.W.Equal(cold.W) || !warm.H.Equal(cold.H) {
		t.Error("retained sparse factors must equal the seeds")
	}
}

// totalIterations sums iterations across all restarts a cold run pays:
// every restart iterates, even the losing ones. The winning restart's
// count is a lower bound; use Restarts as a conservative multiplier.
func TestWarmStartConvergesFastAfterSmallPerturbation(t *testing.T) {
	a := corpusMatrix()
	cold := factorizeOrDie(t, a, paperLike())

	// Perturb one cell of the matrix — one material retagged with one
	// extra guideline entry.
	b := a.Clone()
	r, c := b.Dims()
	for i := 0; i < r && b.At(0, 0) != 0; i++ {
		_ = i
	}
	flip := -1
	for j := 0; j < c; j++ {
		if b.At(0, j) == 0 {
			flip = j
			break
		}
	}
	if flip < 0 {
		t.Fatal("row 0 has no zero cell")
	}
	b.Set(0, flip, 1)

	warm, err := Factorize(b, warmFrom(cold, paperLike()))
	if err != nil {
		t.Fatal(err)
	}
	// A one-cell flip may leave the seeds within tolerance of a fixed
	// point of the new matrix, in which case retention is the correct
	// (and fastest) answer; either way convergence must be cheap.
	if !warm.Converged {
		t.Fatalf("warm run did not converge in %d iterations", warm.Iterations)
	}
	coldTotal := cold.Iterations * 10 // 10 restarts all iterate
	if warm.Iterations*10 > coldTotal {
		t.Errorf("warm iterations %d not ≤ 10%% of cold total %d", warm.Iterations, coldTotal)
	}
	if warm.Err > cold.Err*1.5 {
		t.Errorf("warm fit %.4f much worse than cold %.4f", warm.Err, cold.Err)
	}
}

// A broad perturbation must defeat the retention short-circuit and
// exercise the warm continuation loop, still converging much faster
// than a cold run.
func TestWarmStartIteratesAfterBroadPerturbation(t *testing.T) {
	a := corpusMatrix()
	cold := factorizeOrDie(t, a, paperLike())

	b := a.Clone()
	r, c := b.Dims()
	flipped := 0
	for i := 0; i < r && flipped < 60; i++ {
		for j := 0; j < c && flipped < 60; j += 3 {
			if b.At(i, j) == 0 {
				b.Set(i, j, 1)
				flipped++
			}
		}
	}
	warm, err := Factorize(b, warmFrom(cold, paperLike()))
	if err != nil {
		t.Fatal(err)
	}
	if warm.SeedRetained {
		t.Error("broadly changed matrix must not retain seeds")
	}
	if !warm.Converged {
		t.Fatalf("warm run did not converge in %d iterations", warm.Iterations)
	}
	if warm.Iterations <= 1 {
		t.Error("expected the continuation loop to run past the probe iteration")
	}
	coldTotal := cold.Iterations * 10
	if warm.Iterations*2 > coldTotal {
		t.Errorf("warm iterations %d should be far below cold total %d", warm.Iterations, coldTotal)
	}
	if len(warm.Residuals) != warm.Iterations+1 {
		t.Errorf("warm Residuals length %d, want seed error + %d iterations", len(warm.Residuals), warm.Iterations)
	}
}

func TestWarmStartReconcilesDimensions(t *testing.T) {
	a := corpusMatrix()
	cold := factorizeOrDie(t, a, Options{K: 3, Seed: 1, Restarts: 2, MaxIter: 200})

	// Grow: add a row (new course) and two columns (new tags).
	r, c := a.Dims()
	grown := matrix.New(r+1, c+2)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			grown.Set(i, j, a.At(i, j))
		}
	}
	grown.Set(r, 0, 1)
	grown.Set(r, c, 1)
	grown.Set(0, c+1, 1)

	warm, err := Factorize(grown, warmFrom(cold, Options{K: 3, MaxIter: 200}))
	if err != nil {
		t.Fatal(err)
	}
	if warm.SeedRetained {
		t.Error("dimension-reconciled seeds must never claim retention")
	}
	if wr, wk := warm.W.Dims(); wr != r+1 || wk != 3 {
		t.Errorf("W dims = %dx%d", wr, wk)
	}
	if hk, hc := warm.H.Dims(); hk != 3 || hc != c+2 {
		t.Errorf("H dims = %dx%d", hk, hc)
	}

	// Shrink: drop the last row and column.
	shrunk := matrix.New(r-1, c-1)
	for i := 0; i < r-1; i++ {
		for j := 0; j < c-1; j++ {
			shrunk.Set(i, j, a.At(i, j))
		}
	}
	warm2, err := Factorize(shrunk, warmFrom(cold, Options{K: 3, MaxIter: 200}))
	if err != nil {
		t.Fatal(err)
	}
	if wr, wk := warm2.W.Dims(); wr != r-1 || wk != 3 {
		t.Errorf("shrunk W dims = %dx%d", wr, wk)
	}
}

func TestWarmStartValidation(t *testing.T) {
	a := corpusMatrix()
	seed := matrix.New(3, 3)

	if _, err := Factorize(a, Options{K: 3, InitW: seed}); err == nil ||
		!strings.Contains(err.Error(), "both InitW and InitH") {
		t.Errorf("lone InitW error = %v", err)
	}
	if _, err := Factorize(a, Options{K: 3, InitH: seed}); err == nil ||
		!strings.Contains(err.Error(), "both InitW and InitH") {
		t.Errorf("lone InitH error = %v", err)
	}
	bad := matrix.New(3, 3)
	bad.Set(0, 0, -1)
	if _, err := Factorize(a, Options{K: 3, InitW: bad, InitH: seed}); err == nil ||
		!strings.Contains(err.Error(), "invalid entry") {
		t.Errorf("negative seed error = %v", err)
	}
}
