package nnmf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"csmaterials/internal/matrix"
)

// lowRankMatrix builds a non-negative matrix of exact rank k as W·H with
// random non-negative factors, so NNMF should reconstruct it nearly
// perfectly.
func lowRankMatrix(rows, cols, k int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	w := matrix.Random(rows, k, rng)
	h := matrix.Random(k, cols, rng)
	return w.Mul(h)
}

// blockMatrix builds a matrix with `blocks` disjoint row/column blocks of
// ones — the idealized "types of courses" structure.
func blockMatrix(rowsPerBlock, colsPerBlock, blocks int) *matrix.Dense {
	a := matrix.New(rowsPerBlock*blocks, colsPerBlock*blocks)
	for b := 0; b < blocks; b++ {
		for i := 0; i < rowsPerBlock; i++ {
			for j := 0; j < colsPerBlock; j++ {
				a.Set(b*rowsPerBlock+i, b*colsPerBlock+j, 1)
			}
		}
	}
	return a
}

func factorizeOrDie(t *testing.T, a *matrix.Dense, opts Options) *Result {
	t.Helper()
	res, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFactorizeRejectsBadInput(t *testing.T) {
	a := lowRankMatrix(6, 8, 2, 1)
	if _, err := Factorize(a, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Factorize(a, Options{K: 7}); err == nil {
		t.Error("K > rows accepted")
	}
	neg := a.Clone()
	neg.Set(0, 0, -1)
	if _, err := Factorize(neg, Options{K: 2}); err == nil {
		t.Error("negative entry accepted")
	}
	nan := a.Clone()
	nan.Set(0, 0, math.NaN())
	if _, err := Factorize(nan, Options{K: 2}); err == nil {
		t.Error("NaN entry accepted")
	}
	zero := matrix.New(3, 3)
	if _, err := Factorize(zero, Options{K: 2}); err == nil {
		t.Error("all-zero matrix accepted")
	}
}

func TestFactorizeShapes(t *testing.T) {
	a := lowRankMatrix(10, 15, 3, 2)
	res := factorizeOrDie(t, a, Options{K: 3, Seed: 1})
	if r, c := res.W.Dims(); r != 10 || c != 3 {
		t.Fatalf("W dims %dx%d", r, c)
	}
	if r, c := res.H.Dims(); r != 3 || c != 15 {
		t.Fatalf("H dims %dx%d", r, c)
	}
}

func TestFactorsNonNegative(t *testing.T) {
	a := lowRankMatrix(8, 12, 3, 3)
	for _, alg := range []Algorithm{MultiplicativeFrobenius, MultiplicativeKL, HALS} {
		res := factorizeOrDie(t, a, Options{K: 3, Algorithm: alg, Seed: 5})
		for _, m := range []*matrix.Dense{res.W, res.H} {
			for i := 0; i < m.Rows(); i++ {
				for _, v := range m.RowView(i) {
					if v < 0 {
						t.Fatalf("%v produced negative factor entry %v", alg, v)
					}
				}
			}
		}
	}
}

func TestLowRankRecovery(t *testing.T) {
	// A matrix of exact rank 3 must be reconstructed to small error.
	a := lowRankMatrix(12, 20, 3, 7)
	for _, alg := range []Algorithm{MultiplicativeFrobenius, HALS} {
		res := factorizeOrDie(t, a, Options{K: 3, Algorithm: alg, Seed: 3, Restarts: 3, MaxIter: 2000, Tol: 1e-10})
		if res.Err > 0.02 {
			t.Errorf("%v: relative error %v too high for exact low-rank input", alg, res.Err)
		}
	}
}

func TestKLRecovery(t *testing.T) {
	a := lowRankMatrix(10, 14, 2, 11)
	res := factorizeOrDie(t, a, Options{K: 2, Algorithm: MultiplicativeKL, Seed: 3, Restarts: 3, MaxIter: 2000, Tol: 1e-10})
	if res.Err > 0.05 {
		t.Errorf("KL: relative error %v too high", res.Err)
	}
}

func TestBlockStructureRecovery(t *testing.T) {
	// Disjoint blocks: each NNMF dimension should light up exactly one
	// block of rows. This is the idealized version of Figure 2.
	a := blockMatrix(3, 5, 3)
	res := factorizeOrDie(t, a, Options{K: 3, Seed: 9, Restarts: 5, MaxIter: 1000})
	// All rows of the same block must share the same dominant dimension,
	// and different blocks must get different dimensions.
	blockDim := make([]int, 3)
	for b := 0; b < 3; b++ {
		d := res.W.ArgMaxRow(b * 3)
		for i := 0; i < 3; i++ {
			if got := res.W.ArgMaxRow(b*3 + i); got != d {
				t.Fatalf("rows of block %d disagree on dominant dimension: %d vs %d", b, got, d)
			}
		}
		blockDim[b] = d
	}
	if blockDim[0] == blockDim[1] || blockDim[1] == blockDim[2] || blockDim[0] == blockDim[2] {
		t.Fatalf("blocks share dimensions: %v", blockDim)
	}
}

func TestResidualsMonotoneNonIncreasing(t *testing.T) {
	a := lowRankMatrix(10, 12, 4, 13)
	res := factorizeOrDie(t, a, Options{K: 3, Seed: 2, MaxIter: 200})
	for i := 1; i < len(res.Residuals); i++ {
		// Multiplicative updates are monotone for their objective; allow
		// tiny numerical jitter.
		if res.Residuals[i] > res.Residuals[i-1]+1e-9 {
			t.Fatalf("residual increased at iteration %d: %v -> %v", i, res.Residuals[i-1], res.Residuals[i])
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := lowRankMatrix(9, 11, 3, 17)
	r1 := factorizeOrDie(t, a, Options{K: 3, Seed: 42})
	r2 := factorizeOrDie(t, a, Options{K: 3, Seed: 42})
	if !r1.W.Equal(r2.W) || !r1.H.Equal(r2.H) {
		t.Fatal("same seed produced different factorizations")
	}
	r3 := factorizeOrDie(t, a, Options{K: 3, Seed: 43})
	if r1.W.Equal(r3.W) {
		t.Fatal("different seeds produced identical W (suspicious)")
	}
}

func TestRestartsPickBest(t *testing.T) {
	a := blockMatrix(2, 4, 3)
	single := factorizeOrDie(t, a, Options{K: 3, Seed: 1, Restarts: 1})
	multi := factorizeOrDie(t, a, Options{K: 3, Seed: 1, Restarts: 8})
	if multi.Err > single.Err+1e-12 {
		t.Fatalf("restarts made things worse: %v vs %v", multi.Err, single.Err)
	}
	if multi.Restart < 0 || multi.Restart >= 8 {
		t.Fatalf("winning restart index %d out of range", multi.Restart)
	}
}

func TestNNDSVDDeterministicAndGood(t *testing.T) {
	a := lowRankMatrix(10, 16, 3, 23)
	r1 := factorizeOrDie(t, a, Options{K: 3, Init: InitNNDSVD})
	r2 := factorizeOrDie(t, a, Options{K: 3, Init: InitNNDSVD})
	if !r1.W.Equal(r2.W) || !r1.H.Equal(r2.H) {
		t.Fatal("NNDSVD must be deterministic")
	}
	if r1.Err > 0.05 {
		t.Fatalf("NNDSVD error %v too high", r1.Err)
	}
}

func TestNNDSVDTallMatrix(t *testing.T) {
	// rows > cols exercises the AᵀA eigen branch.
	a := lowRankMatrix(20, 8, 2, 29)
	res := factorizeOrDie(t, a, Options{K: 2, Init: InitNNDSVD, MaxIter: 1000})
	if res.Err > 0.05 {
		t.Fatalf("NNDSVD (tall) error %v", res.Err)
	}
}

func TestConvergenceFlag(t *testing.T) {
	a := lowRankMatrix(8, 10, 2, 31)
	res := factorizeOrDie(t, a, Options{K: 2, Seed: 1, MaxIter: 2000, Tol: 1e-4})
	if !res.Converged {
		t.Fatal("expected convergence within 2000 iterations at loose tolerance")
	}
	res2 := factorizeOrDie(t, a, Options{K: 2, Seed: 1, MaxIter: 2, Tol: 1e-12})
	if res2.Converged {
		t.Fatal("2 iterations at tight tolerance should not converge")
	}
	if res2.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2", res2.Iterations)
	}
}

func TestCosineRedundancy(t *testing.T) {
	// Two identical rows -> redundancy 1.
	h := matrix.NewFromRows([][]float64{{1, 2, 3}, {2, 4, 6}, {1, 0, 0}})
	if got := CosineRedundancy(h); math.Abs(got-1) > 1e-12 {
		t.Fatalf("redundancy = %v, want 1", got)
	}
	// Orthogonal rows -> 0.
	h2 := matrix.NewFromRows([][]float64{{1, 0}, {0, 1}})
	if got := CosineRedundancy(h2); got != 0 {
		t.Fatalf("orthogonal redundancy = %v", got)
	}
}

func TestRedundancyDetectsOverfitK(t *testing.T) {
	// 2 true blocks factorized with k=4 should produce more redundant H
	// rows than k=2 — the paper's overfit signal.
	a := blockMatrix(4, 6, 2)
	diag, err := SelectK(a, []int{2, 4}, Options{Seed: 3, Restarts: 4, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if diag[1].Redundancy <= diag[0].Redundancy {
		t.Fatalf("k=4 redundancy %v not larger than k=2 %v", diag[1].Redundancy, diag[0].Redundancy)
	}
	// The exact value depends on the local optimum reached, but splitting 2
	// true blocks across 4 dimensions always forces substantial overlap.
	if diag[1].Redundancy < 0.5 {
		t.Fatalf("k=4 on 2-block data should be substantially redundant, got %v", diag[1].Redundancy)
	}
}

func TestSelectKReportsAllKs(t *testing.T) {
	a := lowRankMatrix(10, 12, 3, 37)
	diag, err := SelectK(a, []int{2, 3, 4}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(diag) != 3 {
		t.Fatalf("got %d diagnostics", len(diag))
	}
	for i, k := range []int{2, 3, 4} {
		if diag[i].K != k || diag[i].Result == nil {
			t.Fatalf("diag[%d] = %+v", i, diag[i])
		}
	}
	// Larger k cannot fit worse on the same data (given enough restarts
	// this holds with overwhelming probability; tolerate small slack).
	if diag[2].Err > diag[0].Err+0.05 {
		t.Fatalf("k=4 error %v much worse than k=2 %v", diag[2].Err, diag[0].Err)
	}
}

func TestSelectKPropagatesError(t *testing.T) {
	a := lowRankMatrix(4, 5, 2, 1)
	if _, err := SelectK(a, []int{2, 99}, Options{Seed: 1}); err == nil {
		t.Fatal("expected error for k=99")
	}
}

func TestEnumStrings(t *testing.T) {
	if InitRandom.String() != "random" || InitNNDSVD.String() != "nndsvd" {
		t.Fatal("Init strings wrong")
	}
	if MultiplicativeFrobenius.String() != "mu-frobenius" || HALS.String() != "hals" || MultiplicativeKL.String() != "mu-kl" {
		t.Fatal("Algorithm strings wrong")
	}
	if Init(9).String() == "" || Algorithm(9).String() == "" {
		t.Fatal("out-of-range String empty")
	}
}

func TestPropReconstructionErrorBounded(t *testing.T) {
	// For any non-negative matrix, the relative error after factorization
	// is in [0, 1]: WH=0 gives exactly 1, and updates never increase it.
	f := func(seed int64, r8, c8, k8 uint8) bool {
		rows := int(r8%6) + 3
		cols := int(c8%6) + 3
		k := int(k8%2) + 1
		if k > rows || k > cols {
			k = 1
		}
		rng := rand.New(rand.NewSource(seed))
		a := matrix.Random(rows, cols, rng)
		res, err := Factorize(a, Options{K: k, Seed: seed, MaxIter: 50})
		if err != nil {
			return false
		}
		return res.Err >= 0 && res.Err <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropScaleInvarianceOfRelativeError(t *testing.T) {
	// Scaling A by c>0 must not change the *relative* reconstruction
	// error of the scaled factorization (same seed, same iterations).
	f := func(seed int64) bool {
		a := lowRankMatrix(6, 8, 2, seed)
		r1, err1 := Factorize(a, Options{K: 2, Seed: 7, MaxIter: 100, Tol: 1e-12})
		r2, err2 := Factorize(a.Scale(3), Options{K: 2, Seed: 7, MaxIter: 100, Tol: 1e-12})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1.Err-r2.Err) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
