package nnmf

import (
	"context"
	"errors"
	"testing"

	"csmaterials/internal/matrix"
)

// cancelAfterChecks is a context that reports itself done after its
// Err method has been consulted n times — a deterministic stand-in for
// "the client disconnected mid-compute" that needs no goroutines or
// sleeps.
type cancelAfterChecks struct {
	context.Context
	remaining int
}

func (c *cancelAfterChecks) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func cancelAfter(n int) *cancelAfterChecks {
	return &cancelAfterChecks{Context: context.Background(), remaining: n}
}

// hardOptions returns options that need many iterations, so a prompt
// cancellation is distinguishable from running to convergence.
func hardOptions(k int) Options {
	return Options{K: k, Seed: 1, MaxIter: 400, Tol: 1e-12}
}

func TestFactorizeCtxCancelledBeforeStart(t *testing.T) {
	a := lowRankMatrix(10, 15, 3, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FactorizeCtx(ctx, a, hardOptions(3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFactorizeCtxStopsMidCompute is the cancellation contract: the
// iteration loop notices a done context after a handful of update
// steps and returns ctx.Err(), long before the convergence the same
// configuration needs when left alone.
func TestFactorizeCtxStopsMidCompute(t *testing.T) {
	a := lowRankMatrix(20, 30, 4, 3)
	opts := hardOptions(4)

	// Baseline: uncancelled, this configuration iterates far past the
	// budget the cancelled run gets.
	base, err := FactorizeCtx(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	const checks = 3
	if base.Iterations <= checks+1 {
		t.Fatalf("baseline converged in %d iterations; too fast to observe mid-compute cancellation", base.Iterations)
	}

	res, err := FactorizeCtx(cancelAfter(checks), a, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled factorization returned a result")
	}
}

func TestFactorizeCSRCtxStopsMidCompute(t *testing.T) {
	a := blockMatrix(5, 6, 3)
	opts := hardOptions(3)
	base, err := FactorizeCSRCtx(context.Background(), matrix.FromDense(a), opts)
	if err != nil {
		t.Fatal(err)
	}
	const checks = 3
	if base.Iterations <= checks+1 {
		t.Fatalf("baseline converged in %d iterations; too fast to observe mid-compute cancellation", base.Iterations)
	}
	if _, err := FactorizeCSRCtx(cancelAfter(checks), matrix.FromDense(a), opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFactorizeCtxDoesNotPerturbResult: threading a live context through
// the loop must not change the numbers — same seed, bit-identical error.
func TestFactorizeCtxDoesNotPerturbResult(t *testing.T) {
	a := lowRankMatrix(12, 18, 3, 5)
	opts := Options{K: 3, Seed: 7, MaxIter: 60}
	plain, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := FactorizeCtx(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Err != withCtx.Err || plain.Iterations != withCtx.Iterations { // lint:exact
		t.Fatalf("ctx changed the numbers: %v/%d vs %v/%d",
			plain.Err, plain.Iterations, withCtx.Err, withCtx.Iterations)
	}
}
