package nnmf

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"csmaterials/internal/matrix"
)

// FactorizeCSR computes an NNMF of a sparse non-negative matrix using
// multiplicative Frobenius updates whose A-products skip zeros — the
// right representation for course × curriculum matrices, which are 0-1
// with well under 20% density. It matches Factorize with
// MultiplicativeFrobenius on the dense expansion of a, at a fraction of
// the per-iteration cost (see BenchmarkSparseNNMF).
//
// Only the Frobenius multiplicative algorithm is implemented sparsely;
// Options.Algorithm is ignored.
func FactorizeCSR(a *matrix.CSR, opts Options) (*Result, error) {
	return FactorizeCSRCtx(context.Background(), a, opts)
}

// FactorizeCSRCtx is FactorizeCSR with cooperative cancellation; see
// FactorizeCtx for the contract.
func FactorizeCSRCtx(ctx context.Context, a *matrix.CSR, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	rows, cols := a.Dims()
	if opts.K <= 0 {
		return nil, fmt.Errorf("nnmf: K must be positive, got %d", opts.K)
	}
	if opts.K > rows || opts.K > cols {
		return nil, fmt.Errorf("nnmf: K=%d exceeds matrix dimensions %dx%d", opts.K, rows, cols)
	}
	if a.AnyNegative() {
		return nil, fmt.Errorf("nnmf: input matrix has negative entries")
	}
	normA := a.FrobeniusNorm()
	if normA == 0 {
		return nil, fmt.Errorf("nnmf: input matrix is all zeros")
	}
	mean := normA * normA / float64(rows*cols) // mean of A for 0-1 matrices equals density; use ‖A‖²/(r·c) which matches for 0-1 entries

	if opts.InitW != nil || opts.InitH != nil {
		w, h, exact, err := warmSeeds(opts, rows, cols, mean)
		if err != nil {
			return nil, err
		}
		return runWarm(ctx, opts, exact, w, h,
			func(w, h *matrix.Dense) (*matrix.Dense, *matrix.Dense) {
				return stepFrobeniusSparse(a, w, h, opts.Eps)
			},
			func(w, h *matrix.Dense) float64 { return sparseRelativeError(a, w, h, normA) })
	}

	restarts := opts.Restarts
	if opts.Init == InitNNDSVD {
		restarts = 1
	}
	var best *Result
	total := 0
	for r := 0; r < restarts; r++ {
		var w, h *matrix.Dense
		if opts.Init == InitNNDSVD {
			w, h = nndsvd(a.ToDense(), opts.K)
		} else {
			w, h = randomInit(rows, cols, opts.K, mean, opts.Seed+int64(r))
		}
		res, err := runSparse(ctx, a, w, h, opts, normA)
		if err != nil {
			return nil, err
		}
		res.Restart = r
		total += res.Iterations
		if best == nil || res.Err < best.Err {
			best = res
		}
	}
	best.TotalIterations = total
	return best, nil
}

// randomInit mirrors initialize()'s scaling without requiring the dense
// matrix: for 0-1 inputs, mean(A) = ‖A‖²/(rows·cols).
func randomInit(rows, cols, k int, mean float64, seed int64) (*matrix.Dense, *matrix.Dense) {
	rng := rand.New(rand.NewSource(seed))
	scale := math.Sqrt(mean / float64(k))
	w := matrix.Random(rows, k, rng).Scale(scale)
	h := matrix.Random(k, cols, rng).Scale(scale)
	return w, h
}

func runSparse(ctx context.Context, a *matrix.CSR, w, h *matrix.Dense, opts Options, normA float64) (*Result, error) {
	res := &Result{}
	prev := math.Inf(1)
	init := 0.0
	for it := 0; it < opts.MaxIter; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w, h = stepFrobeniusSparse(a, w, h, opts.Eps)
		err := sparseRelativeError(a, w, h, normA)
		res.Residuals = append(res.Residuals, err)
		res.Iterations = it + 1
		if it == 0 {
			init = err
		} else if prev-err <= opts.Tol*init {
			res.Converged = true
			break
		}
		prev = err
	}
	res.W, res.H = w, h
	res.Err = res.Residuals[len(res.Residuals)-1]
	return res, nil
}

// stepFrobeniusSparse is stepFrobenius with the two A-products computed
// through the CSR structure.
func stepFrobeniusSparse(a *matrix.CSR, w, h *matrix.Dense, eps float64) (*matrix.Dense, *matrix.Dense) {
	wtA := a.MulAtB(w).T() // (AᵀW)ᵀ = WᵀA, k × cols
	wtWH := w.MulAtB(w).Mul(h)
	h = h.MulElem(wtA.DivElem(wtWH, eps))

	aHt := a.MulABt(h) // rows × k
	wHHt := w.Mul(h.MulABt(h))
	w = w.MulElem(aHt.DivElem(wHHt, eps))
	return w, h
}

// sparseRelativeError computes ‖A − WH‖_F / normA without materializing
// WH: ‖A−WH‖² = ‖A‖² − 2·⟨A, WH⟩ + tr((WᵀW)(HHᵀ)). The inner product
// touches only the non-zeros of A; the trace term is k×k.
func sparseRelativeError(a *matrix.CSR, w, h *matrix.Dense, normA float64) float64 {
	dot := a.InnerWithProduct(w, h)
	wtw := w.MulAtB(w)
	hht := h.MulABt(h)
	k := wtw.Rows()
	trace := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			trace += wtw.At(i, j) * hht.At(i, j) // both symmetric
		}
	}
	errSq := normA*normA - 2*dot + trace
	if errSq < 0 {
		errSq = 0
	}
	return math.Sqrt(errSq) / normA
}
