package nnmf

import (
	"testing"

	"csmaterials/internal/matrix"
)

func countZeros(m *matrix.Dense) int {
	n := 0
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.RowView(i) {
			if v == 0 {
				n++
			}
		}
	}
	return n
}

func TestL1HIncreasesHSparsity(t *testing.T) {
	a := lowRankMatrix(12, 30, 3, 41)
	dense, err := Factorize(a, Options{K: 3, Algorithm: HALS, Seed: 2, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Factorize(a, Options{K: 3, Algorithm: HALS, Seed: 2, MaxIter: 300, L1H: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if countZeros(sparse.H) <= countZeros(dense.H) {
		t.Fatalf("L1H did not increase H sparsity: %d vs %d zeros",
			countZeros(sparse.H), countZeros(dense.H))
	}
	// The fit degrades but stays usable.
	if sparse.Err > dense.Err*3+0.2 {
		t.Fatalf("L1 fit collapsed: %v vs %v", sparse.Err, dense.Err)
	}
	// Factors stay non-negative.
	for i := 0; i < sparse.H.Rows(); i++ {
		for _, v := range sparse.H.RowView(i) {
			if v < 0 {
				t.Fatal("negative entry under L1")
			}
		}
	}
}

func TestL1WIncreasesWSparsity(t *testing.T) {
	a := lowRankMatrix(30, 12, 3, 43)
	dense, err := Factorize(a, Options{K: 3, Algorithm: HALS, Seed: 2, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Factorize(a, Options{K: 3, Algorithm: HALS, Seed: 2, MaxIter: 300, L1W: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if countZeros(sparse.W) <= countZeros(dense.W) {
		t.Fatalf("L1W did not increase W sparsity: %d vs %d zeros",
			countZeros(sparse.W), countZeros(dense.W))
	}
}

func TestL1IgnoredByMultiplicative(t *testing.T) {
	// The multiplicative algorithms document L1 as ignored: same result
	// with and without the penalty.
	a := lowRankMatrix(8, 10, 2, 47)
	r1, err := Factorize(a, Options{K: 2, Seed: 3, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Factorize(a, Options{K: 2, Seed: 3, MaxIter: 50, L1H: 10, L1W: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.H.Equal(r2.H) || !r1.W.Equal(r2.W) {
		t.Fatal("L1 changed the multiplicative update result")
	}
}
