// Package nnmf implements Non-Negative Matrix Factorization from scratch —
// the analysis engine of the paper (§4.1). Given a non-negative matrix A
// (courses × curriculum entries), it finds W (courses × k) and H
// (k × curriculum entries) with non-negative entries such that A ≈ W·H.
//
// Three algorithms are provided:
//
//   - Multiplicative updates minimizing the Frobenius norm (Lee & Seung
//     2000) — the classical NNMF the paper cites.
//   - Multiplicative updates minimizing generalized Kullback-Leibler
//     divergence.
//   - HALS (hierarchical alternating least squares) coordinate descent,
//     matching the default algorithm of scikit-learn's NMF, which the
//     paper used ("scikit learn v1.3.0 with default parameters").
//
// Initialization is either uniform random (the paper's choice) or NNDSVD
// (deterministic, SVD-seeded), and multiple random restarts can be
// requested, keeping the factorization with the lowest reconstruction
// error.
package nnmf

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"csmaterials/internal/matrix"
	"csmaterials/internal/stats"
)

// Init selects the initialization strategy.
type Init int

const (
	// InitRandom seeds W and H with uniform random entries scaled to the
	// magnitude of A (the paper's configuration).
	InitRandom Init = iota
	// InitNNDSVD seeds W and H from the truncated SVD of A
	// (Boutsidis & Gallopoulos 2008); deterministic.
	InitNNDSVD
)

func (i Init) String() string {
	switch i {
	case InitRandom:
		return "random"
	case InitNNDSVD:
		return "nndsvd"
	default:
		return fmt.Sprintf("Init(%d)", int(i))
	}
}

// Algorithm selects the update rule.
type Algorithm int

const (
	// MultiplicativeFrobenius is the Lee-Seung update for squared error.
	MultiplicativeFrobenius Algorithm = iota
	// MultiplicativeKL is the Lee-Seung update for generalized KL divergence.
	MultiplicativeKL
	// HALS is hierarchical alternating least squares coordinate descent.
	HALS
)

func (a Algorithm) String() string {
	switch a {
	case MultiplicativeFrobenius:
		return "mu-frobenius"
	case MultiplicativeKL:
		return "mu-kl"
	case HALS:
		return "hals"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a factorization. The zero value is not usable: K
// must be set. All other fields have sensible defaults applied by
// Factorize.
type Options struct {
	// K is the inner dimension (number of course types to extract).
	K int
	// Init selects the initialization strategy (default InitRandom).
	Init Init
	// Algorithm selects the update rule (default MultiplicativeFrobenius).
	Algorithm Algorithm
	// MaxIter bounds the number of update iterations (default 300).
	MaxIter int
	// Tol stops iteration when the relative improvement of the
	// reconstruction error between checks falls below it (default 1e-5).
	Tol float64
	// Seed seeds random initialization; restarts use Seed, Seed+1, ...
	Seed int64
	// Restarts > 1 runs that many random restarts and keeps the best
	// factorization (default 1). Ignored for InitNNDSVD, which is
	// deterministic.
	Restarts int
	// Eps guards divisions in the multiplicative updates (default 1e-12).
	Eps float64
	// L1H applies an L1 penalty to H under the HALS algorithm, driving
	// small H entries to exact zero — sparser, more interpretable types.
	// Ignored by the multiplicative algorithms.
	L1H float64
	// L1W is the corresponding penalty on W.
	L1W float64
	// InitW and InitH, when both set, warm-start the factorization from
	// prior factors instead of random or NNDSVD initialization: a single
	// run is seeded from them (Init, Seed and Restarts are ignored) and
	// iterated from there. Dimensions are reconciled positionally —
	// overlapping cells are copied, cells introduced by grown dimensions
	// are filled with the random-init scale sqrt(mean(A)/K). Near a
	// fixed point the run converges in a handful of iterations; on an
	// unchanged matrix whose seeds are already converged factors, the
	// output is the seeds themselves, byte-stable (see
	// Result.SeedRetained). Setting only one of the two is an error.
	InitW *matrix.Dense
	InitH *matrix.Dense
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 300
	}
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	if o.Eps == 0 {
		o.Eps = 1e-12
	}
	return o
}

// Result holds a factorization A ≈ W·H and its convergence trace.
type Result struct {
	W, H *matrix.Dense
	// Iterations actually performed (of the winning restart).
	Iterations int
	// TotalIterations is the work actually done: the sum of iterations
	// across every restart (equal to Iterations for warm-started runs,
	// which perform exactly one). Warm-vs-cold speedups are measured
	// against this, not the winning restart's count.
	TotalIterations int
	// Converged reports whether the tolerance was reached before MaxIter.
	Converged bool
	// Residuals traces the relative Frobenius reconstruction error
	// ‖A−WH‖_F / ‖A‖_F at every iteration of the winning restart.
	Residuals []float64
	// Err is the final relative reconstruction error.
	Err float64
	// Restart is the index of the winning restart.
	Restart int
	// SeedRetained reports that a warm-started run (Options.InitW/InitH)
	// found the seeds already at a fixed point — one full update round
	// improved the reconstruction error by no more than the tolerance —
	// and returned copies of the seed factors unchanged. When true, W
	// and H are byte-identical to the seeds, so any result derived from
	// them is byte-identical to the result derived from the prior
	// factorization. Consumers use this flag (not a float comparison) to
	// decide whether a warm recompute can stand in for a cold one.
	SeedRetained bool
}

// Factorize computes an NNMF of a with the given options.
func Factorize(a *matrix.Dense, opts Options) (*Result, error) {
	return FactorizeCtx(context.Background(), a, opts)
}

// FactorizeCtx is Factorize with cooperative cancellation: the iteration
// loop checks ctx between updates and returns ctx.Err() as soon as the
// context is done, so a dead client or a tripped timeout stops the CPU
// work instead of letting it converge for nobody. Cancellation does not
// affect the numbers: a factorization that runs to completion is
// byte-identical with or without a context.
func FactorizeCtx(ctx context.Context, a *matrix.Dense, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	rows, cols := a.Dims()
	if opts.K <= 0 {
		return nil, fmt.Errorf("nnmf: K must be positive, got %d", opts.K)
	}
	if opts.K > rows || opts.K > cols {
		return nil, fmt.Errorf("nnmf: K=%d exceeds matrix dimensions %dx%d", opts.K, rows, cols)
	}
	for i := 0; i < rows; i++ {
		for _, v := range a.RowView(i) {
			if v < 0 {
				return nil, fmt.Errorf("nnmf: input matrix has negative entry %v", v)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("nnmf: input matrix has non-finite entry %v", v)
			}
		}
	}
	normA := a.FrobeniusNorm()
	if normA == 0 {
		return nil, fmt.Errorf("nnmf: input matrix is all zeros")
	}

	if opts.InitW != nil || opts.InitH != nil {
		w, h, exact, err := warmSeeds(opts, rows, cols, a.Mean())
		if err != nil {
			return nil, err
		}
		return runWarm(ctx, opts, exact, w, h,
			func(w, h *matrix.Dense) (*matrix.Dense, *matrix.Dense) {
				switch opts.Algorithm {
				case MultiplicativeKL:
					return stepKL(a, w, h, opts.Eps)
				case HALS:
					return stepHALS(a, w, h, opts.Eps, opts.L1W, opts.L1H)
				default:
					return stepFrobenius(a, w, h, opts.Eps)
				}
			},
			func(w, h *matrix.Dense) float64 { return RelativeError(a, w, h, normA) })
	}

	restarts := opts.Restarts
	if opts.Init == InitNNDSVD {
		restarts = 1
	}
	var best *Result
	total := 0
	for r := 0; r < restarts; r++ {
		w, h := initialize(a, opts, opts.Seed+int64(r))
		res, err := run(ctx, a, w, h, opts, normA)
		if err != nil {
			return nil, err
		}
		res.Restart = r
		total += res.Iterations
		if best == nil || res.Err < best.Err {
			best = res
		}
	}
	best.TotalIterations = total
	return best, nil
}

func initialize(a *matrix.Dense, opts Options, seed int64) (w, h *matrix.Dense) {
	rows, cols := a.Dims()
	switch opts.Init {
	case InitNNDSVD:
		return nndsvd(a, opts.K)
	default:
		rng := rand.New(rand.NewSource(seed))
		// Scale like scikit-learn: sqrt(mean(A)/K) keeps W·H at the
		// magnitude of A so early updates are well-conditioned.
		scale := math.Sqrt(a.Mean() / float64(opts.K))
		w = matrix.Random(rows, opts.K, rng).Scale(scale)
		h = matrix.Random(opts.K, cols, rng).Scale(scale)
		return w, h
	}
}

func run(ctx context.Context, a, w, h *matrix.Dense, opts Options, normA float64) (*Result, error) {
	res := &Result{}
	prev := math.Inf(1)
	init := 0.0
	for it := 0; it < opts.MaxIter; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch opts.Algorithm {
		case MultiplicativeKL:
			w, h = stepKL(a, w, h, opts.Eps)
		case HALS:
			w, h = stepHALS(a, w, h, opts.Eps, opts.L1W, opts.L1H)
		default:
			w, h = stepFrobenius(a, w, h, opts.Eps)
		}
		err := RelativeError(a, w, h, normA)
		res.Residuals = append(res.Residuals, err)
		res.Iterations = it + 1
		if it == 0 {
			init = err
		} else if prev-err <= opts.Tol*init {
			// Converged: the improvement has stalled relative to the
			// initial error (scikit-learn's criterion). The <= matters:
			// once the residual bottoms out exactly (prev == err, possibly
			// 0), a strict inequality would never trigger.
			res.Converged = true
			break
		}
		prev = err
	}
	res.W, res.H = w, h
	res.Err = res.Residuals[len(res.Residuals)-1]
	return res, nil
}

// warmSeeds validates the warm-start options and reconciles the seed
// factors to the current matrix dimensions. It reports whether the
// seeds matched the target dimensions exactly — the precondition for
// the byte-stable SeedRetained short-circuit.
func warmSeeds(opts Options, rows, cols int, mean float64) (w, h *matrix.Dense, exact bool, err error) {
	if opts.InitW == nil || opts.InitH == nil {
		return nil, nil, false, fmt.Errorf("nnmf: warm start requires both InitW and InitH")
	}
	if err := checkSeed("InitW", opts.InitW); err != nil {
		return nil, nil, false, err
	}
	if err := checkSeed("InitH", opts.InitH); err != nil {
		return nil, nil, false, err
	}
	fill := math.Sqrt(mean / float64(opts.K))
	w, h, exact = reconcileFactors(opts.InitW, opts.InitH, rows, cols, opts.K, fill)
	return w, h, exact, nil
}

func checkSeed(name string, m *matrix.Dense) error {
	rows := m.Rows()
	for i := 0; i < rows; i++ {
		for _, v := range m.RowView(i) {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nnmf: %s seed has invalid entry %v", name, v)
			}
		}
	}
	return nil
}

// reconcileFactors adapts prior factors to the target dimensions. A
// matching-dimension seed is cloned as-is; otherwise overlapping cells
// are copied positionally and cells introduced by grown dimensions are
// filled with fill, so the seed still steers the search even when a
// course (row) or curriculum tag (column) appeared or disappeared.
func reconcileFactors(initW, initH *matrix.Dense, rows, cols, k int, fill float64) (w, h *matrix.Dense, exact bool) {
	wr, wk := initW.Dims()
	hk, hc := initH.Dims()
	if wr == rows && wk == k && hk == k && hc == cols {
		return initW.Clone(), initH.Clone(), true
	}
	w = matrix.New(rows, k)
	h = matrix.New(k, cols)
	for i := 0; i < rows; i++ {
		for t := 0; t < k; t++ {
			if i < wr && t < wk {
				w.Set(i, t, initW.At(i, t))
			} else {
				w.Set(i, t, fill)
			}
		}
	}
	for t := 0; t < k; t++ {
		for j := 0; j < cols; j++ {
			if t < hk && j < hc {
				h.Set(t, j, initH.At(t, j))
			} else {
				h.Set(t, j, fill)
			}
		}
	}
	return w, h, false
}

// runWarm drives a warm-started factorization: the seeds are scored,
// one full update round is taken, and if that round cannot improve on
// the seeds by more than the tolerance (at exactly matching
// dimensions) the seed factors are returned unchanged — rather than
// the infinitesimally different stepped factors — which is the
// byte-stability guarantee the delta-refresh path relies on.
// Otherwise iteration continues with the seed error as the convergence
// baseline, typically finishing in a handful of iterations near a
// fixed point. Residuals[0] is the seed error, before any update.
func runWarm(ctx context.Context, opts Options, exact bool, w, h *matrix.Dense,
	step func(w, h *matrix.Dense) (*matrix.Dense, *matrix.Dense),
	score func(w, h *matrix.Dense) float64) (*Result, error) {

	res := &Result{}
	seedW, seedH := w, h
	seedErr := score(w, h)
	res.Residuals = append(res.Residuals, seedErr)
	prev := seedErr
	for it := 0; it < opts.MaxIter; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w, h = step(w, h)
		e := score(w, h)
		res.Residuals = append(res.Residuals, e)
		res.Iterations = it + 1
		res.TotalIterations = res.Iterations
		// The retention threshold is absolute in relative-error units
		// (floored at Tol·seedErr for badly-fit seeds): converged seeds
		// came from a run that stopped once a round improved less than
		// Tol·init with init up to ~1 for normalized inputs, so one more
		// round improves at most on that order.
		if it == 0 && exact && prev-e <= opts.Tol*math.Max(1, seedErr) {
			res.W, res.H = seedW, seedH
			res.Err = seedErr
			res.Converged = true
			res.SeedRetained = true
			return res, nil
		}
		if prev-e <= opts.Tol*seedErr {
			res.Converged = true
			break
		}
		prev = e
	}
	res.W, res.H = w, h
	res.Err = res.Residuals[len(res.Residuals)-1]
	return res, nil
}

// RelativeError returns ‖A − W·H‖_F / normA. Pass a.FrobeniusNorm() (or
// any positive normalizer) as normA.
func RelativeError(a, w, h *matrix.Dense, normA float64) float64 {
	return a.Sub(w.Mul(h)).FrobeniusNorm() / normA
}

// stepFrobenius applies one round of Lee-Seung multiplicative updates for
// the squared-error objective:
//
//	H ← H ⊙ (WᵀA) ⊘ (WᵀWH)
//	W ← W ⊙ (AHᵀ) ⊘ (WHHᵀ)
func stepFrobenius(a, w, h *matrix.Dense, eps float64) (*matrix.Dense, *matrix.Dense) {
	wtA := w.MulAtB(a)
	wtWH := w.MulAtB(w).Mul(h)
	h = h.MulElem(wtA.DivElem(wtWH, eps))

	aHt := a.MulABt(h)
	wHHt := w.Mul(h.MulABt(h))
	w = w.MulElem(aHt.DivElem(wHHt, eps))
	return w, h
}

// stepKL applies one round of multiplicative updates for the generalized
// Kullback-Leibler divergence:
//
//	H ← H ⊙ (Wᵀ(A ⊘ WH)) ⊘ (Wᵀ𝟙)
//	W ← W ⊙ ((A ⊘ WH)Hᵀ) ⊘ (𝟙Hᵀ)
func stepKL(a, w, h *matrix.Dense, eps float64) (*matrix.Dense, *matrix.Dense) {
	// H update.
	ratio := a.DivElem(w.Mul(h), eps)
	num := w.MulAtB(ratio)
	colSumW := w.ColSums() // (Wᵀ𝟙)_t, one per type
	h = h.Apply(func(t, j int, v float64) float64 {
		return v * num.At(t, j) / (colSumW[t] + eps)
	})

	// W update with the updated H.
	ratio = a.DivElem(w.Mul(h), eps)
	num = ratio.MulABt(h)
	rowSumH := h.RowSums() // (𝟙Hᵀ)_t
	w = w.Apply(func(i, t int, v float64) float64 {
		return v * num.At(i, t) / (rowSumH[t] + eps)
	})
	return w, h
}

// stepHALS applies one round of hierarchical alternating least squares:
// each column of W (and row of H) is updated in closed form holding the
// others fixed, then clamped to non-negativity. Positive l1w/l1h shift
// the closed-form solution toward zero before clamping (soft
// thresholding), yielding exactly sparse factors.
func stepHALS(a, w, h *matrix.Dense, eps, l1w, l1h float64) (*matrix.Dense, *matrix.Dense) {
	k := w.Cols()
	w = w.Clone()
	h = h.Clone()

	// Update rows of H: H[t,:] ← max(0, H[t,:] + (WᵀA − WᵀW·H)[t,:] / (WᵀW)[t,t])
	wtA := w.MulAtB(a)
	wtW := w.MulAtB(w)
	for t := 0; t < k; t++ {
		denom := wtW.At(t, t) + eps
		ht := h.RowView(t)
		// grad[t,:] = wtA[t,:] − Σ_s wtW[t,s]·H[s,:]
		for j := range ht {
			g := wtA.At(t, j) - l1h
			for s := 0; s < k; s++ {
				g -= wtW.At(t, s) * h.At(s, j)
			}
			v := ht[j] + g/denom
			if v < 0 {
				v = 0
			}
			ht[j] = v
		}
	}

	// Update columns of W symmetrically.
	aHt := a.MulABt(h)
	hHt := h.MulABt(h)
	rows := w.Rows()
	for t := 0; t < k; t++ {
		denom := hHt.At(t, t) + eps
		for i := 0; i < rows; i++ {
			g := aHt.At(i, t) - l1w
			for s := 0; s < k; s++ {
				g -= w.At(i, s) * hHt.At(s, t)
			}
			v := w.At(i, t) + g/denom
			if v < 0 {
				v = 0
			}
			w.Set(i, t, v)
		}
	}
	return w, h
}

// nndsvd computes the non-negative double SVD initialization: the leading
// k singular triplets of A, with each (u_t, v_t) replaced by its dominant
// non-negative part. Singular pairs are obtained from the eigensystem of
// AᵀA (or AAᵀ, whichever is smaller).
func nndsvd(a *matrix.Dense, k int) (w, h *matrix.Dense) {
	rows, cols := a.Dims()
	w = matrix.New(rows, k)
	h = matrix.New(k, cols)

	var vals []float64
	var u, v *matrix.Dense
	if rows <= cols {
		// Eigen of A·Aᵀ gives U; V = Aᵀ·U / σ.
		gram := a.MulABt(a)
		vals, u = matrix.TopEigenSym(gram, k)
		v = matrix.New(cols, k)
		for t := 0; t < k; t++ {
			sigma := math.Sqrt(math.Max(vals[t], 0))
			if sigma == 0 {
				continue
			}
			ut := u.Col(t)
			for j := 0; j < cols; j++ {
				s := 0.0
				for i := 0; i < rows; i++ {
					s += a.At(i, j) * ut[i]
				}
				v.Set(j, t, s/sigma)
			}
		}
	} else {
		gram := a.MulAtB(a)
		vals, v = matrix.TopEigenSym(gram, k)
		u = matrix.New(rows, k)
		for t := 0; t < k; t++ {
			sigma := math.Sqrt(math.Max(vals[t], 0))
			if sigma == 0 {
				continue
			}
			vt := v.Col(t)
			for i := 0; i < rows; i++ {
				s := 0.0
				for j := 0; j < cols; j++ {
					s += a.At(i, j) * vt[j]
				}
				u.Set(i, t, s/sigma)
			}
		}
	}

	for t := 0; t < k; t++ {
		sigma := math.Sqrt(math.Max(vals[t], 0))
		ut, vt := u.Col(t), v.Col(t)
		if t == 0 {
			// The leading singular vectors of a non-negative matrix can be
			// chosen non-negative (Perron-Frobenius); flip sign if needed.
			if sum(ut) < 0 {
				neg(ut)
				neg(vt)
			}
			for i, x := range ut {
				w.Set(i, t, math.Sqrt(sigma)*math.Max(x, 0))
			}
			for j, x := range vt {
				h.Set(t, j, math.Sqrt(sigma)*math.Max(x, 0))
			}
			continue
		}
		up, un := split(ut)
		vp, vn := split(vt)
		upn, vpn := norm2(up), norm2(vp)
		unn, vnn := norm2(un), norm2(vn)
		mp := upn * vpn
		mn := unn * vnn
		var uu, vv []float64
		var m float64
		if mp >= mn {
			uu, vv, m = up, vp, mp
			if upn > 0 {
				scaleVec(uu, 1/upn)
			}
			if vpn > 0 {
				scaleVec(vv, 1/vpn)
			}
		} else {
			uu, vv, m = un, vn, mn
			if unn > 0 {
				scaleVec(uu, 1/unn)
			}
			if vnn > 0 {
				scaleVec(vv, 1/vnn)
			}
		}
		c := math.Sqrt(sigma * m)
		for i, x := range uu {
			w.Set(i, t, c*x)
		}
		for j, x := range vv {
			h.Set(t, j, c*x)
		}
	}

	// Replace exact zeros with a small epsilon so multiplicative updates
	// can move them (zeros are absorbing states under ⊙ updates).
	tiny := a.Mean() * 1e-4
	w = w.Apply(func(_, _ int, v float64) float64 {
		if v == 0 {
			return tiny
		}
		return v
	})
	h = h.Apply(func(_, _ int, v float64) float64 {
		if v == 0 {
			return tiny
		}
		return v
	})
	return w, h
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func neg(xs []float64) {
	for i := range xs {
		xs[i] = -xs[i]
	}
}

// split returns the positive part and the magnitude of the negative part.
func split(xs []float64) (pos, negPart []float64) {
	pos = make([]float64, len(xs))
	negPart = make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			pos[i] = x
		} else {
			negPart[i] = -x
		}
	}
	return pos, negPart
}

func norm2(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s)
}

func scaleVec(xs []float64, f float64) {
	for i := range xs {
		xs[i] *= f
	}
}

// CosineRedundancy returns the maximum pairwise cosine similarity between
// the rows of H. The paper uses near-duplicate H rows (two dimensions
// "almost identical") as the signal that k is too large; values close to
// 1 indicate overfitting.
func CosineRedundancy(h *matrix.Dense) float64 {
	k := h.Rows()
	max := 0.0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if c := stats.Cosine(h.RowView(i), h.RowView(j)); c > max {
				max = c
			}
		}
	}
	return max
}

// KDiagnostics summarizes one candidate k during model selection.
type KDiagnostics struct {
	K          int
	Err        float64 // relative reconstruction error
	Redundancy float64 // max pairwise cosine among H rows
	Result     *Result
}

// SelectK factorizes a for each candidate k and reports reconstruction
// error and H-row redundancy, automating the paper's manual inspection
// across k = 2, 3, 4.
func SelectK(a *matrix.Dense, ks []int, opts Options) ([]KDiagnostics, error) {
	out := make([]KDiagnostics, 0, len(ks))
	for _, k := range ks {
		o := opts
		o.K = k
		res, err := Factorize(a, o)
		if err != nil {
			return nil, fmt.Errorf("nnmf: SelectK at k=%d: %w", k, err)
		}
		out = append(out, KDiagnostics{K: k, Err: res.Err, Redundancy: CosineRedundancy(res.H), Result: res})
	}
	return out, nil
}
