package nnmf

import (
	"math"
	"math/rand"
	"testing"

	"csmaterials/internal/matrix"
)

func random01(rows, cols int, density float64, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				a.Set(i, j, 1)
			}
		}
	}
	a.Set(0, 0, 1) // never all-zero
	return a
}

func TestFactorizeCSRMatchesDense(t *testing.T) {
	// On a 0-1 matrix, the sparse path must reproduce the dense
	// multiplicative-Frobenius factorization exactly (same init, same
	// updates, only the evaluation order of the products differs).
	a := random01(15, 40, 0.15, 51)
	c := matrix.FromDense(a)
	opts := Options{K: 3, Seed: 9, MaxIter: 100, Tol: 1e-9}
	dense, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := FactorizeCSR(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.W.EqualTol(dense.W, 1e-8) || !sparse.H.EqualTol(dense.H, 1e-8) {
		t.Fatal("sparse factorization differs from dense")
	}
	if math.Abs(sparse.Err-dense.Err) > 1e-8 {
		t.Fatalf("sparse err %v vs dense %v", sparse.Err, dense.Err)
	}
}

func TestFactorizeCSRValidation(t *testing.T) {
	a := matrix.FromDense(random01(5, 6, 0.3, 1))
	if _, err := FactorizeCSR(a, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := FactorizeCSR(a, Options{K: 10}); err == nil {
		t.Error("oversized K accepted")
	}
	zero := matrix.FromDense(matrix.New(3, 3))
	if _, err := FactorizeCSR(zero, Options{K: 2}); err == nil {
		t.Error("all-zero accepted")
	}
	neg := matrix.New(2, 2)
	neg.Set(0, 0, -1)
	if _, err := FactorizeCSR(matrix.FromDense(neg), Options{K: 1}); err == nil {
		t.Error("negative entries accepted")
	}
}

func TestFactorizeCSRRestartsAndNNDSVD(t *testing.T) {
	a := random01(12, 25, 0.2, 77)
	c := matrix.FromDense(a)
	multi, err := FactorizeCSR(c, Options{K: 3, Seed: 1, Restarts: 4, MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	single, err := FactorizeCSR(c, Options{K: 3, Seed: 1, MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Err > single.Err+1e-12 {
		t.Fatalf("restarts worsened fit: %v vs %v", multi.Err, single.Err)
	}
	nn, err := FactorizeCSR(c, Options{K: 3, Init: InitNNDSVD, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if nn.Err <= 0 || nn.Err > 1 {
		t.Fatalf("NNDSVD sparse err %v", nn.Err)
	}
}

func TestSparseResidualIdentity(t *testing.T) {
	// The trace identity used by the sparse residual must agree with the
	// direct computation.
	a := random01(8, 12, 0.3, 91)
	c := matrix.FromDense(a)
	rng := rand.New(rand.NewSource(3))
	w := matrix.Random(8, 3, rng)
	h := matrix.Random(3, 12, rng)
	normA := a.FrobeniusNorm()
	direct := RelativeError(a, w, h, normA)
	viaIdentity := sparseRelativeError(c, w, h, normA)
	if math.Abs(direct-viaIdentity) > 1e-9 {
		t.Fatalf("residual identity broken: %v vs %v", direct, viaIdentity)
	}
}
