// Package simgraph builds the material similarity graph of §3.1.2: the
// materials (queries and results) are vertices, edges are weighted by the
// similarity of their curriculum classifications, and a Multidimensional
// Scaling projection maps the materials to 2D locations where similar
// materials cluster together.
package simgraph

import (
	"fmt"
	"sort"

	"csmaterials/internal/materials"
	"csmaterials/internal/matrix"
	"csmaterials/internal/mds"
	"csmaterials/internal/stats"
)

// Metric selects the set-similarity measure between tag sets.
type Metric int

const (
	// Jaccard similarity |A∩B| / |A∪B|.
	Jaccard Metric = iota
	// Dice similarity 2|A∩B| / (|A|+|B|).
	Dice
)

func (m Metric) String() string {
	switch m {
	case Jaccard:
		return "jaccard"
	case Dice:
		return "dice"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Edge is a weighted undirected edge between two materials.
type Edge struct {
	From, To string
	Weight   float64
}

// Graph is a material similarity graph.
type Graph struct {
	// Materials are the vertices, in input order.
	Materials []*materials.Material
	// Sim is the symmetric similarity matrix aligned with Materials.
	Sim *matrix.Dense
	// Metric records how Sim was computed.
	Metric Metric
}

// Build computes the pairwise similarity graph of the given materials.
func Build(ms []*materials.Material, metric Metric) (*Graph, error) {
	if len(ms) < 2 {
		return nil, fmt.Errorf("simgraph: need at least 2 materials, got %d", len(ms))
	}
	sets := make([]map[string]bool, len(ms))
	for i, m := range ms {
		sets[i] = m.TagSet()
	}
	sim := matrix.New(len(ms), len(ms))
	for i := range ms {
		sim.Set(i, i, 1)
		for j := i + 1; j < len(ms); j++ {
			var s float64
			switch metric {
			case Dice:
				s = stats.Dice(sets[i], sets[j])
			default:
				s = stats.Jaccard(sets[i], sets[j])
			}
			sim.Set(i, j, s)
			sim.Set(j, i, s)
		}
	}
	return &Graph{Materials: ms, Sim: sim, Metric: metric}, nil
}

// UpdateMaterial derives the graph for a revision in which the single
// material m (matched by ID) was retagged: only row and column i of
// the similarity matrix are recomputed — O(n) set similarities instead
// of the O(n²) full rebuild — and every other cell is copied
// unchanged, so the result is byte-identical to a full Build of the
// updated material list. The receiver is not modified.
func (g *Graph) UpdateMaterial(m *materials.Material) (*Graph, error) {
	idx := -1
	for i, v := range g.Materials {
		if v.ID == m.ID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("simgraph: material %q not in graph", m.ID)
	}
	ms := append([]*materials.Material(nil), g.Materials...)
	ms[idx] = m
	sim := g.Sim.Clone()
	set := m.TagSet()
	for j, other := range ms {
		if j == idx {
			sim.Set(idx, idx, 1)
			continue
		}
		var s float64
		switch g.Metric {
		case Dice:
			s = stats.Dice(set, other.TagSet())
		default:
			s = stats.Jaccard(set, other.TagSet())
		}
		sim.Set(idx, j, s)
		sim.Set(j, idx, s)
	}
	return &Graph{Materials: ms, Sim: sim, Metric: g.Metric}, nil
}

// Edges returns every edge with weight at least minWeight, sorted by
// descending weight (ties by ID pair).
func (g *Graph) Edges(minWeight float64) []Edge {
	var out []Edge
	n := len(g.Materials)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := g.Sim.At(i, j)
			if w >= minWeight && w > 0 {
				out = append(out, Edge{From: g.Materials[i].ID, To: g.Materials[j].ID, Weight: w})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Weight != out[b].Weight {
			return out[a].Weight > out[b].Weight
		}
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To < out[b].To
	})
	return out
}

// Neighbors returns the k most similar materials to the material at
// index i, sorted by descending similarity.
func (g *Graph) Neighbors(i, k int) []Edge {
	n := len(g.Materials)
	if i < 0 || i >= n {
		panic(fmt.Sprintf("simgraph: index %d out of range %d", i, n))
	}
	var out []Edge
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		out = append(out, Edge{From: g.Materials[i].ID, To: g.Materials[j].ID, Weight: g.Sim.At(i, j)})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Weight != out[b].Weight {
			return out[a].Weight > out[b].Weight
		}
		return out[a].To < out[b].To
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Point is a material placed at a 2D location.
type Point struct {
	Material *materials.Material
	X, Y     float64
}

// Embed projects the graph's materials to 2D with classical MDS over
// 1−similarity distances, then refines with SMACOF. This reproduces the
// search-result map of §3.1.2.
func (g *Graph) Embed(seed int64) ([]Point, error) {
	d, err := mds.DistancesFromSimilarity(g.Sim)
	if err != nil {
		return nil, fmt.Errorf("simgraph: %w", err)
	}
	init, err := mds.Classical(d, 2)
	if err != nil {
		return nil, fmt.Errorf("simgraph: %w", err)
	}
	x, _, err := mds.SMACOF(d, 2, mds.SMACOFOptions{Init: init, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("simgraph: %w", err)
	}
	out := make([]Point, len(g.Materials))
	for i, m := range g.Materials {
		out[i] = Point{Material: m, X: x.At(i, 0), Y: x.At(i, 1)}
	}
	return out, nil
}

// ConnectedComponents returns the vertex indices of each connected
// component of the graph thresholded at minWeight, largest first.
func (g *Graph) ConnectedComponents(minWeight float64) [][]int {
	n := len(g.Materials)
	visited := make([]bool, n)
	var comps [][]int
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		visited[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := 0; u < n; u++ {
				if u != v && !visited[u] && g.Sim.At(v, u) >= minWeight && g.Sim.At(v, u) > 0 {
					visited[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}
