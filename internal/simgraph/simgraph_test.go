package simgraph

import (
	"math"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
)

func mat(id string, tags ...string) *materials.Material {
	return &materials.Material{ID: id, Title: id, Type: materials.Lecture, Tags: tags}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]*materials.Material{mat("a", "x")}, Jaccard); err == nil {
		t.Fatal("single material accepted")
	}
}

func TestSimilarityValues(t *testing.T) {
	ms := []*materials.Material{
		mat("a", "x", "y"),
		mat("b", "y", "z"),
		mat("c", "p", "q"),
	}
	g, err := Build(ms, Jaccard)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Sim.At(0, 1); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("sim(a,b) = %v", got)
	}
	if got := g.Sim.At(0, 2); got != 0 {
		t.Fatalf("sim(a,c) = %v", got)
	}
	for i := 0; i < 3; i++ {
		if g.Sim.At(i, i) != 1 { // lint:exact — self-similarity is exactly 1 by construction
			t.Fatal("self-similarity must be 1")
		}
	}
	// Dice metric differs.
	g2, err := Build(ms, Dice)
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.Sim.At(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("dice(a,b) = %v", got)
	}
}

func TestEdgesThresholdAndOrder(t *testing.T) {
	ms := []*materials.Material{
		mat("a", "x", "y"),
		mat("b", "x", "y"),
		mat("c", "y", "z"),
		mat("d", "unrelated"),
	}
	g, _ := Build(ms, Jaccard)
	edges := g.Edges(0.3)
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0].From != "a" || edges[0].To != "b" || edges[0].Weight != 1 { // lint:exact — identical tag sets weigh exactly 1
		t.Fatalf("strongest edge = %+v", edges[0])
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].Weight > edges[i-1].Weight {
			t.Fatal("edges not sorted by weight")
		}
	}
	// Zero-weight pairs are never emitted even at threshold 0.
	for _, e := range g.Edges(0) {
		if e.Weight == 0 {
			t.Fatal("zero-weight edge emitted")
		}
	}
}

func TestNeighbors(t *testing.T) {
	ms := []*materials.Material{
		mat("a", "x", "y"),
		mat("b", "x", "y"),
		mat("c", "y"),
		mat("d", "q"),
	}
	g, _ := Build(ms, Jaccard)
	nb := g.Neighbors(0, 2)
	if len(nb) != 2 {
		t.Fatalf("neighbors = %v", nb)
	}
	if nb[0].To != "b" {
		t.Fatalf("nearest neighbor of a = %s", nb[0].To)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index must panic")
		}
	}()
	g.Neighbors(99, 1)
}

func TestEmbedClustersSimilarMaterials(t *testing.T) {
	ms := []*materials.Material{
		mat("a1", "x", "y", "z"),
		mat("a2", "x", "y", "w"),
		mat("b1", "p", "q", "r"),
		mat("b2", "p", "q", "s"),
	}
	g, _ := Build(ms, Jaccard)
	pts, err := g.Embed(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	dist := func(i, j int) float64 {
		dx, dy := pts[i].X-pts[j].X, pts[i].Y-pts[j].Y
		return math.Hypot(dx, dy)
	}
	if dist(0, 1) >= dist(0, 2) || dist(2, 3) >= dist(1, 3) {
		t.Fatalf("similar materials not clustered: within %v/%v, across %v/%v",
			dist(0, 1), dist(2, 3), dist(0, 2), dist(1, 3))
	}
}

func TestConnectedComponents(t *testing.T) {
	ms := []*materials.Material{
		mat("a", "x", "y"),
		mat("b", "x", "y"),
		mat("c", "p"),
		mat("d", "p"),
		mat("e", "lonely"),
	}
	g, _ := Build(ms, Jaccard)
	comps := g.ConnectedComponents(0.5)
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 2 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestGraphOnDatasetMaterials(t *testing.T) {
	// Build a graph over one real course's materials: it must be
	// connected at threshold 0 (self-course materials share tags rarely,
	// so just check shape and symmetry).
	repo := dataset.Repository()
	ms := repo.Course("uncc-2214-krs").Materials[:20]
	g, err := Build(ms, Jaccard)
	if err != nil {
		t.Fatal(err)
	}
	n := len(ms)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if g.Sim.At(i, j) != g.Sim.At(j, i) { // lint:exact — symmetric by construction
				t.Fatal("similarity not symmetric")
			}
			if g.Sim.At(i, j) < 0 || g.Sim.At(i, j) > 1 {
				t.Fatal("similarity out of range")
			}
		}
	}
}

func TestMetricString(t *testing.T) {
	if Jaccard.String() != "jaccard" || Dice.String() != "dice" || Metric(9).String() == "" {
		t.Fatal("Metric.String wrong")
	}
}

func TestUpdateMaterialMatchesFullBuild(t *testing.T) {
	seed := dataset.Repository().Courses()[2]
	ms := seed.Materials
	if len(ms) < 3 {
		t.Skip("course too small")
	}
	for _, metric := range []Metric{Jaccard, Dice} {
		g, err := Build(ms, metric)
		if err != nil {
			t.Fatal(err)
		}
		// Retag the middle material with tags borrowed from its neighbor.
		retagged := ms[1].Clone()
		retagged.Tags = append([]string(nil), ms[0].Tags...)
		updated, err := g.UpdateMaterial(retagged)
		if err != nil {
			t.Fatal(err)
		}

		// Full rebuild over the updated material list.
		ms2 := append([]*materials.Material(nil), ms...)
		ms2[1] = retagged
		full, err := Build(ms2, metric)
		if err != nil {
			t.Fatal(err)
		}
		if !updated.Sim.Equal(full.Sim) {
			t.Errorf("%v: incremental Sim diverges from full Build", metric)
		}
		if updated.Materials[1] != retagged || updated.Materials[0] != ms[0] {
			t.Error("updated graph has wrong material list")
		}
		// The receiver must be untouched.
		if g.Materials[1] != ms[1] {
			t.Error("UpdateMaterial mutated the receiver's material list")
		}
		orig, _ := Build(ms, metric)
		if !g.Sim.Equal(orig.Sim) {
			t.Error("UpdateMaterial mutated the receiver's similarity matrix")
		}
	}

	g, _ := Build(ms, Jaccard)
	if _, err := g.UpdateMaterial(mat("not-there", "x")); err == nil {
		t.Error("unknown material must fail")
	}
}
