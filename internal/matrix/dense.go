// Package matrix provides a dense float64 matrix type and the linear
// algebra needed by the rest of the repository: element-wise arithmetic,
// serial and goroutine-parallel matrix multiplication, norms, reductions,
// and a symmetric Jacobi eigendecomposition used by the PCA and classical
// MDS baselines.
//
// The package is deliberately self-contained (stdlib only) and favors
// predictable, allocation-conscious code over generality. Matrices are
// stored row-major. Dimension mismatches are programming errors and
// panic with a descriptive message, mirroring the convention of most Go
// numeric libraries.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zero-initialized r×c matrix.
func New(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("matrix: non-positive dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromSlice returns an r×c matrix backed by a copy of data, which must
// have length r*c and is interpreted row-major.
func NewFromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: data length %d does not match %dx%d", len(data), r, c))
	}
	m := New(r, c)
	copy(m.data, data)
	return m
}

// NewFromRows builds a matrix from a slice of equal-length rows.
func NewFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: empty row data")
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged rows: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Random returns an r×c matrix with entries drawn uniformly from [0, 1)
// using rng. A nil rng panics: every randomized routine in this repository
// takes an explicit source so experiments stay reproducible.
func Random(r, c int, rng *rand.Rand) *Dense {
	if rng == nil {
		panic("matrix: Random requires a non-nil *rand.Rand")
	}
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.Float64()
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// RowView returns the i-th row as a slice aliasing the matrix storage.
// Mutating the slice mutates the matrix.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Row returns a copy of the i-th row.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.RowView(i))
	return out
}

// Col returns a copy of the j-th column.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: column %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies row into the i-th row.
func (m *Dense) SetRow(i int, row []float64) {
	if len(row) != m.cols {
		panic(fmt.Sprintf("matrix: SetRow length %d, want %d", len(row), m.cols))
	}
	copy(m.RowView(i), row)
}

// SetCol copies col into the j-th column.
func (m *Dense) SetCol(j int, col []float64) {
	if len(col) != m.rows {
		panic(fmt.Sprintf("matrix: SetCol length %d, want %d", len(col), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = col[i]
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Equal reports whether m and n have the same shape and identical entries.
func (m *Dense) Equal(n *Dense) bool { return m.EqualTol(n, 0) }

// EqualTol reports whether m and n have the same shape and entries that
// differ by at most tol in absolute value.
func (m *Dense) EqualTol(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// Add returns m + n.
func (m *Dense) Add(n *Dense) *Dense {
	m.sameShape(n, "Add")
	out := m.Clone()
	for i, v := range n.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m - n.
func (m *Dense) Sub(n *Dense) *Dense {
	m.sameShape(n, "Sub")
	out := m.Clone()
	for i, v := range n.data {
		out.data[i] -= v
	}
	return out
}

// MulElem returns the element-wise (Hadamard) product m ⊙ n.
func (m *Dense) MulElem(n *Dense) *Dense {
	m.sameShape(n, "MulElem")
	out := m.Clone()
	for i, v := range n.data {
		out.data[i] *= v
	}
	return out
}

// DivElem returns the element-wise quotient m ⊘ n, guarding each divisor
// with eps to avoid division by zero (the standard trick in NNMF
// multiplicative updates).
func (m *Dense) DivElem(n *Dense, eps float64) *Dense {
	m.sameShape(n, "DivElem")
	out := m.Clone()
	for i, v := range n.data {
		out.data[i] /= v + eps
	}
	return out
}

// Scale returns s * m.
func (m *Dense) Scale(s float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Apply returns a new matrix with f applied to every element. f receives
// the row, column, and current value.
func (m *Dense) Apply(f func(i, j int, v float64) float64) *Dense {
	out := m.Clone()
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[i*m.cols+j] = f(i, j, out.data[i*m.cols+j])
		}
	}
	return out
}

func (m *Dense) sameShape(n *Dense, op string) {
	if m.rows != n.rows || m.cols != n.cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, n.rows, n.cols))
	}
}

// Sum returns the sum of all entries.
func (m *Dense) Sum() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all entries.
func (m *Dense) Mean() float64 { return m.Sum() / float64(len(m.data)) }

// MaxAbs returns the largest absolute value among the entries.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Max returns the largest entry and its position.
func (m *Dense) Max() (v float64, i, j int) {
	v = math.Inf(-1)
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if x := m.data[r*m.cols+c]; x > v {
				v, i, j = x, r, c
			}
		}
	}
	return v, i, j
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// RowSums returns the per-row sums.
func (m *Dense) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for _, v := range m.RowView(i) {
			s += v
		}
		out[i] = s
	}
	return out
}

// ColSums returns the per-column sums.
func (m *Dense) ColSums() []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		ri := m.RowView(i)
		for j, v := range ri {
			out[j] += v
		}
	}
	return out
}

// ArgMaxRow returns the index of the largest entry in row i.
func (m *Dense) ArgMaxRow(i int) int {
	row := m.RowView(i)
	best := 0
	for j, v := range row {
		if v > row[best] {
			best = j
		}
	}
	return best
}

// NormalizeRowsL1 scales each row to sum to one; rows that sum to zero are
// left untouched. It returns a new matrix.
func (m *Dense) NormalizeRowsL1() *Dense {
	out := m.Clone()
	for i := 0; i < out.rows; i++ {
		row := out.RowView(i)
		s := 0.0
		for _, v := range row {
			s += v
		}
		if s == 0 {
			continue
		}
		for j := range row {
			row[j] /= s
		}
	}
	return out
}

// CenterCols subtracts from each column its mean and returns the centered
// matrix together with the column means (needed by PCA).
func (m *Dense) CenterCols() (*Dense, []float64) {
	means := m.ColSums()
	for j := range means {
		means[j] /= float64(m.rows)
	}
	out := m.Clone()
	for i := 0; i < out.rows; i++ {
		row := out.RowView(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	return out, means
}

// String renders the matrix with 4-decimal entries; large matrices are
// elided in the middle. Intended for debugging and test failure output.
func (m *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d\n", m.rows, m.cols)
	const maxShow = 12
	for i := 0; i < m.rows; i++ {
		if m.rows > maxShow && i == maxShow/2 {
			b.WriteString("...\n")
			i = m.rows - maxShow/2
		}
		row := m.RowView(i)
		for j, v := range row {
			if m.cols > maxShow && j == maxShow/2 {
				b.WriteString(" ...")
				j = m.cols - maxShow/2
				for ; j < m.cols; j++ {
					fmt.Fprintf(&b, " %7.4f", row[j])
				}
				break
			}
			fmt.Fprintf(&b, " %7.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
