package matrix

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-accumulate
// operations before Mul fans out across goroutines. Below this, the
// goroutine scheduling overhead dominates any speedup.
const parallelThreshold = 64 * 64 * 64

// Mul returns the matrix product m × n, parallelizing across rows when
// the problem is large enough to amortize goroutine startup.
func (m *Dense) Mul(n *Dense) *Dense {
	if m.cols != n.rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d × %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	if m.rows*m.cols*n.cols >= parallelThreshold {
		return m.mulParallel(n, runtime.GOMAXPROCS(0))
	}
	return m.mulSerial(n)
}

// MulSerial returns m × n computed on the calling goroutine only. It is
// exported so the benchmark harness can measure the parallel speedup.
func (m *Dense) MulSerial(n *Dense) *Dense {
	if m.cols != n.rows {
		panic(fmt.Sprintf("matrix: MulSerial shape mismatch %dx%d × %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	return m.mulSerial(n)
}

// MulParallel returns m × n using exactly workers goroutines (or
// GOMAXPROCS when workers <= 0). Exported for the ablation benchmarks.
func (m *Dense) MulParallel(n *Dense, workers int) *Dense {
	if m.cols != n.rows {
		panic(fmt.Sprintf("matrix: MulParallel shape mismatch %dx%d × %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return m.mulParallel(n, workers)
}

// mulSerial uses the i-k-j loop order so the inner loop streams through
// contiguous rows of both the output and n, which is cache-friendly for
// row-major storage.
func (m *Dense) mulSerial(n *Dense) *Dense {
	out := New(m.rows, n.cols)
	m.mulRows(n, out, 0, m.rows)
	return out
}

func (m *Dense) mulParallel(n *Dense, workers int) *Dense {
	out := New(m.rows, n.cols)
	if workers > m.rows {
		workers = m.rows
	}
	var wg sync.WaitGroup
	chunk := (m.rows + workers - 1) / workers
	for lo := 0; lo < m.rows; lo += chunk {
		hi := lo + chunk
		if hi > m.rows {
			hi = m.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulRows(n, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// mulRows computes rows [lo, hi) of out = m × n. Each goroutine writes a
// disjoint row range, so no synchronization beyond the WaitGroup is needed.
func (m *Dense) mulRows(n, out *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			nk := n.data[k*n.cols : (k+1)*n.cols]
			for j, nkj := range nk {
				oi[j] += mik * nkj
			}
		}
	}
}

// MulAtB returns mᵀ × n without materializing the transpose.
func (m *Dense) MulAtB(n *Dense) *Dense {
	if m.rows != n.rows {
		panic(fmt.Sprintf("matrix: MulAtB shape mismatch %dx%d vs %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := New(m.cols, n.cols)
	for k := 0; k < m.rows; k++ {
		mk := m.data[k*m.cols : (k+1)*m.cols]
		nk := n.data[k*n.cols : (k+1)*n.cols]
		for i, mki := range mk {
			if mki == 0 {
				continue
			}
			oi := out.data[i*out.cols : (i+1)*out.cols]
			for j, nkj := range nk {
				oi[j] += mki * nkj
			}
		}
	}
	return out
}

// MulABt returns m × nᵀ without materializing the transpose.
func (m *Dense) MulABt(n *Dense) *Dense {
	if m.cols != n.cols {
		panic(fmt.Sprintf("matrix: MulABt shape mismatch %dx%d vs %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := New(m.rows, n.rows)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for j := 0; j < n.rows; j++ {
			nj := n.data[j*n.cols : (j+1)*n.cols]
			s := 0.0
			for k, v := range mi {
				s += v * nj[k]
			}
			oi[j] = s
		}
	}
	return out
}
