package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSparse01 builds a random 0-1 dense matrix with the given density.
func randomSparse01(rows, cols int, density float64, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	a := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				a.Set(i, j, 1)
			}
		}
	}
	return a
}

func TestCSRRoundTrip(t *testing.T) {
	a := randomSparse01(13, 29, 0.15, 1)
	c := FromDense(a)
	if !c.ToDense().Equal(a) {
		t.Fatal("CSR round trip lost entries")
	}
	if r, cols := c.Dims(); r != 13 || cols != 29 {
		t.Fatalf("Dims = %d,%d", r, cols)
	}
	// NNZ matches the dense count.
	nnz := 0
	for i := 0; i < 13; i++ {
		for _, v := range a.RowView(i) {
			if v != 0 {
				nnz++
			}
		}
	}
	if c.NNZ() != nnz {
		t.Fatalf("NNZ = %d, want %d", c.NNZ(), nnz)
	}
	if d := c.Density(); d <= 0 || d >= 1 {
		t.Fatalf("Density = %v", d)
	}
}

func TestCSRFrobeniusMatchesDense(t *testing.T) {
	a := randomSparse01(9, 17, 0.2, 2)
	if got, want := FromDense(a).FrobeniusNorm(), a.FrobeniusNorm(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("CSR norm %v, dense %v", got, want)
	}
}

func TestCSRAnyNegative(t *testing.T) {
	a := randomSparse01(4, 4, 0.5, 3)
	if FromDense(a).AnyNegative() {
		t.Fatal("0-1 matrix reported negative")
	}
	a.Set(0, 0, -1)
	if !FromDense(a).AnyNegative() {
		t.Fatal("negative entry missed")
	}
}

func TestCSRMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSparse01(11, 23, 0.2, 5)
	c := FromDense(a)
	b := Random(23, 6, rng)
	if !c.Mul(b).EqualTol(a.Mul(b), 1e-10) {
		t.Fatal("CSR Mul differs from dense")
	}
}

func TestCSRMulAtBMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomSparse01(11, 23, 0.2, 7)
	c := FromDense(a)
	w := Random(11, 4, rng)
	if !c.MulAtB(w).EqualTol(a.MulAtB(w), 1e-10) {
		t.Fatal("CSR MulAtB differs from dense")
	}
}

func TestCSRMulABtMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomSparse01(11, 23, 0.2, 9)
	c := FromDense(a)
	h := Random(4, 23, rng)
	if !c.MulABt(h).EqualTol(a.MulABt(h), 1e-10) {
		t.Fatal("CSR MulABt differs from dense")
	}
}

func TestCSRInnerWithProductMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomSparse01(10, 15, 0.25, 11)
	c := FromDense(a)
	w := Random(10, 3, rng)
	h := Random(3, 15, rng)
	want := a.MulElem(w.Mul(h)).Sum()
	got := c.InnerWithProduct(w, h)
	if !almostEqual(got, want, 1e-9) {
		t.Fatalf("InnerWithProduct = %v, want %v", got, want)
	}
}

func TestCSRShapePanics(t *testing.T) {
	a := FromDense(randomSparse01(3, 4, 0.5, 12))
	for name, f := range map[string]func(){
		"Mul":              func() { a.Mul(New(3, 2)) },
		"MulAtB":           func() { a.MulAtB(New(4, 2)) },
		"MulABt":           func() { a.MulABt(New(2, 3)) },
		"InnerWithProduct": func() { a.InnerWithProduct(New(3, 2), New(3, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on shape mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestPropCSREquivalence(t *testing.T) {
	f := func(seed int64, r8, c8, k8 uint8) bool {
		rows, cols := int(r8%8)+2, int(c8%8)+2
		k := int(k8%3) + 1
		a := randomSparse01(rows, cols, 0.3, seed)
		// Ensure non-empty.
		a.Set(0, 0, 1)
		c := FromDense(a)
		rng := rand.New(rand.NewSource(seed + 1))
		w := Random(rows, k, rng)
		h := Random(k, cols, rng)
		return c.MulAtB(w).EqualTol(a.MulAtB(w), 1e-9) &&
			c.MulABt(h).EqualTol(a.MulABt(h), 1e-9) &&
			almostEqual(c.InnerWithProduct(w, h), a.MulElem(w.Mul(h)).Sum(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
