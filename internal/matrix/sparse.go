package matrix

import (
	"fmt"
	"math"
)

// CSR is a compressed-sparse-row matrix. The course × curriculum matrices
// of this repository are 0-1 and very sparse (each course covers well
// under a fifth of the ~700 curriculum entries), so the NNMF products
// involving A — WᵀA and AHᵀ — can skip the zeros entirely.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// FromDense compresses a dense matrix, keeping entries with |v| > 0.
func FromDense(a *Dense) *CSR {
	rows, cols := a.Dims()
	c := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		for j, v := range a.RowView(i) {
			if v != 0 {
				c.colIdx = append(c.colIdx, j)
				c.vals = append(c.vals, v)
			}
		}
		c.rowPtr[i+1] = len(c.vals)
	}
	return c
}

// Dims returns (rows, cols).
func (c *CSR) Dims() (int, int) { return c.rows, c.cols }

// NNZ returns the number of stored non-zeros.
func (c *CSR) NNZ() int { return len(c.vals) }

// Density returns NNZ / (rows·cols).
func (c *CSR) Density() float64 {
	return float64(c.NNZ()) / float64(c.rows*c.cols)
}

// ToDense expands the sparse matrix back to dense form.
func (c *CSR) ToDense() *Dense {
	out := New(c.rows, c.cols)
	for i := 0; i < c.rows; i++ {
		for p := c.rowPtr[i]; p < c.rowPtr[i+1]; p++ {
			out.Set(i, c.colIdx[p], c.vals[p])
		}
	}
	return out
}

// MulAtB returns Aᵀ × B where A is this sparse matrix and B is dense —
// the WᵀA-shaped product of the NNMF H update (with the roles of the
// operands swapped: call as a.MulAtB(w) computes AᵀW). A.rows must equal
// B.rows.
func (c *CSR) MulAtB(b *Dense) *Dense {
	if c.rows != b.Rows() {
		panic(fmt.Sprintf("matrix: CSR MulAtB shape mismatch %dx%d vs %dx%d", c.rows, c.cols, b.Rows(), b.Cols()))
	}
	out := New(c.cols, b.Cols())
	for i := 0; i < c.rows; i++ {
		bi := b.RowView(i)
		for p := c.rowPtr[i]; p < c.rowPtr[i+1]; p++ {
			row := out.RowView(c.colIdx[p])
			v := c.vals[p]
			for j, bij := range bi {
				row[j] += v * bij
			}
		}
	}
	return out
}

// Mul returns A × B with A sparse and B dense.
func (c *CSR) Mul(b *Dense) *Dense {
	if c.cols != b.Rows() {
		panic(fmt.Sprintf("matrix: CSR Mul shape mismatch %dx%d × %dx%d", c.rows, c.cols, b.Rows(), b.Cols()))
	}
	out := New(c.rows, b.Cols())
	for i := 0; i < c.rows; i++ {
		oi := out.RowView(i)
		for p := c.rowPtr[i]; p < c.rowPtr[i+1]; p++ {
			bk := b.RowView(c.colIdx[p])
			v := c.vals[p]
			for j, bkj := range bk {
				oi[j] += v * bkj
			}
		}
	}
	return out
}

// MulABt returns A × Bᵀ with A sparse and B dense (the AHᵀ-shaped product
// of the NNMF W update).
func (c *CSR) MulABt(b *Dense) *Dense {
	if c.cols != b.Cols() {
		panic(fmt.Sprintf("matrix: CSR MulABt shape mismatch %dx%d vs %dx%d", c.rows, c.cols, b.Rows(), b.Cols()))
	}
	out := New(c.rows, b.Rows())
	for i := 0; i < c.rows; i++ {
		oi := out.RowView(i)
		for p := c.rowPtr[i]; p < c.rowPtr[i+1]; p++ {
			k := c.colIdx[p]
			v := c.vals[p]
			for j := 0; j < b.Rows(); j++ {
				oi[j] += v * b.At(j, k)
			}
		}
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of the stored entries.
func (c *CSR) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range c.vals {
		s += v * v
	}
	return math.Sqrt(s)
}

// InnerWithProduct returns ⟨A, W·H⟩ = Σ over the non-zeros of A of
// a_ij · (W_i · H_:j), without forming W·H. W must be rows×k and H k×cols.
func (c *CSR) InnerWithProduct(w, h *Dense) float64 {
	if w.Rows() != c.rows || h.Cols() != c.cols || w.Cols() != h.Rows() {
		panic(fmt.Sprintf("matrix: InnerWithProduct shape mismatch A %dx%d, W %dx%d, H %dx%d",
			c.rows, c.cols, w.Rows(), w.Cols(), h.Rows(), h.Cols()))
	}
	k := w.Cols()
	s := 0.0
	for i := 0; i < c.rows; i++ {
		wi := w.RowView(i)
		for p := c.rowPtr[i]; p < c.rowPtr[i+1]; p++ {
			j := c.colIdx[p]
			dot := 0.0
			for t := 0; t < k; t++ {
				dot += wi[t] * h.At(t, j)
			}
			s += c.vals[p] * dot
		}
	}
	return s
}

// AnyNegative reports whether any stored entry is negative.
func (c *CSR) AnyNegative() bool {
	for _, v := range c.vals {
		if v < 0 {
			return true
		}
	}
	return false
}
