package matrix

import (
	"math/rand"
	"testing"
)

func TestMulSmall(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Random(7, 7, rng)
	if !a.Mul(Identity(7)).EqualTol(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !Identity(7).Mul(a).EqualTol(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulRectangular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	b := NewFromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	want := NewFromRows([][]float64{{7, 16}, {6, 15}})
	if got := a.Mul(b); !got.Equal(want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Random(97, 65, rng)
	b := Random(65, 83, rng)
	serial := a.MulSerial(b)
	for _, workers := range []int{1, 2, 4, 8, 200} {
		par := a.MulParallel(b, workers)
		if !par.EqualTol(serial, 1e-10) {
			t.Fatalf("MulParallel(workers=%d) differs from serial", workers)
		}
	}
	// workers <= 0 means GOMAXPROCS.
	if !a.MulParallel(b, 0).EqualTol(serial, 1e-10) {
		t.Fatal("MulParallel(0) differs from serial")
	}
}

func TestMulLargeUsesParallelPathCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Random(80, 80, rng) // 80^3 > parallelThreshold
	b := Random(80, 80, rng)
	if !a.Mul(b).EqualTol(a.MulSerial(b), 1e-10) {
		t.Fatal("auto-parallel Mul differs from serial")
	}
}

func TestMulAtB(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	b := NewFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	want := a.T().Mul(b)
	if got := a.MulAtB(b); !got.EqualTol(want, 1e-12) {
		t.Fatalf("MulAtB = %v, want %v", got, want)
	}
}

func TestMulABt(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := NewFromRows([][]float64{{1, 1, 1}, {2, 0, 2}})
	want := a.Mul(b.T())
	if got := a.MulABt(b); !got.EqualTol(want, 1e-12) {
		t.Fatalf("MulABt = %v, want %v", got, want)
	}
}

func TestMulAtBShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).MulAtB(New(3, 2))
}

func TestMulABtShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).MulABt(New(3, 2))
}

func BenchmarkMulSerial128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := Random(128, 128, rng)
	y := Random(128, 128, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MulSerial(y)
	}
}

func BenchmarkMulParallel128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := Random(128, 128, rng)
	y := Random(128, 128, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MulParallel(y, 0)
	}
}
