package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSymmetric builds a random symmetric matrix A = BᵀB (positive
// semidefinite, guaranteeing real non-negative eigenvalues).
func randomSymmetric(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	b := Random(n, n, rng)
	return b.MulAtB(b)
}

func TestEigenSymDiagonal(t *testing.T) {
	d := NewFromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs := EigenSym(d)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !almostEqual(vals[i], w, 1e-10) {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit vectors.
	for j := 0; j < 3; j++ {
		col := vecs.Col(j)
		nonzero := 0
		for _, v := range col {
			if math.Abs(v) > 1e-8 {
				nonzero++
			}
		}
		if nonzero != 1 {
			t.Fatalf("eigenvector %d not axis-aligned: %v", j, col)
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewFromRows([][]float64{{2, 1}, {1, 2}})
	vals, _ := EigenSym(m)
	if !almostEqual(vals[0], 3, 1e-10) || !almostEqual(vals[1], 1, 1e-10) {
		t.Fatalf("vals = %v, want [3 1]", vals)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10, 20} {
		a := randomSymmetric(n, int64(n))
		vals, vecs := EigenSym(a)
		// Reconstruct V · diag(vals) · Vᵀ.
		d := New(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		rec := vecs.Mul(d).MulABt(vecs)
		if !rec.EqualTol(a, 1e-7*(1+a.MaxAbs())) {
			t.Fatalf("n=%d: reconstruction error %v", n, rec.Sub(a).MaxAbs())
		}
	}
}

func TestEigenSymOrthonormalVectors(t *testing.T) {
	a := randomSymmetric(8, 42)
	_, vecs := EigenSym(a)
	gram := vecs.MulAtB(vecs)
	if !gram.EqualTol(Identity(8), 1e-8) {
		t.Fatalf("VᵀV != I: %v", gram)
	}
}

func TestEigenSymDescendingOrder(t *testing.T) {
	a := randomSymmetric(12, 7)
	vals, _ := EigenSym(a)
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-10 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
}

func TestEigenSymNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EigenSym(New(2, 3))
}

func TestTopEigenSym(t *testing.T) {
	a := randomSymmetric(6, 11)
	allVals, allVecs := EigenSym(a)
	vals, vecs := TopEigenSym(a, 2)
	if len(vals) != 2 || vecs.Cols() != 2 || vecs.Rows() != 6 {
		t.Fatalf("TopEigenSym dims wrong: %d vals, %dx%d vecs", len(vals), vecs.Rows(), vecs.Cols())
	}
	for j := 0; j < 2; j++ {
		if !almostEqual(vals[j], allVals[j], 1e-12) {
			t.Fatalf("top value %d = %v, want %v", j, vals[j], allVals[j])
		}
		for i := 0; i < 6; i++ {
			if !almostEqual(vecs.At(i, j), allVecs.At(i, j), 1e-12) {
				t.Fatal("top vectors differ from full decomposition")
			}
		}
	}
}

func TestTopEigenSymBadK(t *testing.T) {
	a := randomSymmetric(3, 1)
	for _, k := range []int{0, -1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TopEigenSym(k=%d) did not panic", k)
				}
			}()
			TopEigenSym(a, k)
		}()
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns.
	m := NewFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov := Covariance(m)
	if !almostEqual(cov.At(0, 0), 1, 1e-12) {
		t.Fatalf("var(x) = %v, want 1", cov.At(0, 0))
	}
	if !almostEqual(cov.At(1, 1), 4, 1e-12) {
		t.Fatalf("var(y) = %v, want 4", cov.At(1, 1))
	}
	if !almostEqual(cov.At(0, 1), 2, 1e-12) || !almostEqual(cov.At(1, 0), 2, 1e-12) {
		t.Fatalf("cov(x,y) = %v, want 2", cov.At(0, 1))
	}
}

func TestCovarianceNeedsTwoRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Covariance(New(1, 3))
}

func TestPropEigenTraceEqualsSumOfEigenvalues(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%8) + 2
		a := randomSymmetric(n, seed)
		vals, _ := EigenSym(a)
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		for _, v := range vals {
			sum += v
		}
		return almostEqual(trace, sum, 1e-7*(1+math.Abs(trace)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropEigenvaluesNonNegativeForPSD(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%6) + 2
		a := randomSymmetric(n, seed)
		vals, _ := EigenSym(a)
		for _, v := range vals {
			if v < -1e-8*(1+a.MaxAbs()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
