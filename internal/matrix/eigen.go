package matrix

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. It returns the eigenvalues in descending
// order and a matrix whose columns are the corresponding orthonormal
// eigenvectors, so that m = V · diag(values) · Vᵀ.
//
// Jacobi is O(n³) per sweep but unconditionally stable and more than fast
// enough for the covariance and Gram matrices in this repository (tens to
// a few hundred rows).
func EigenSym(m *Dense) (values []float64, vectors *Dense) {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: EigenSym requires a square matrix, got %dx%d", m.rows, m.cols))
	}
	n := m.rows
	a := m.Clone()
	v := Identity(n)

	const maxSweeps = 100
	tol := 1e-12 * (1 + a.MaxAbs())
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(a)
		if off < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.data[p*n+q]
				if math.Abs(apq) < tol/float64(n) {
					continue
				}
				app := a.data[p*n+p]
				aqq := a.data[q*n+q]
				// Standard Jacobi rotation angle.
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(a, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = a.data[i*n+i]
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })

	sortedVals := make([]float64, n)
	vectors = New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			vectors.data[r*n+newCol] = v.data[r*n+oldCol]
		}
	}
	return sortedVals, vectors
}

// rotate applies the Jacobi rotation G(p,q,θ) to a (as GᵀAG) and
// accumulates it into v (as VG).
func rotate(a, v *Dense, p, q int, c, s float64) {
	n := a.rows
	for k := 0; k < n; k++ {
		akp := a.data[k*n+p]
		akq := a.data[k*n+q]
		a.data[k*n+p] = c*akp - s*akq
		a.data[k*n+q] = s*akp + c*akq
	}
	for k := 0; k < n; k++ {
		apk := a.data[p*n+k]
		aqk := a.data[q*n+k]
		a.data[p*n+k] = c*apk - s*aqk
		a.data[q*n+k] = s*apk + c*aqk
	}
	for k := 0; k < n; k++ {
		vkp := v.data[k*n+p]
		vkq := v.data[k*n+q]
		v.data[k*n+p] = c*vkp - s*vkq
		v.data[k*n+q] = s*vkp + c*vkq
	}
}

func offDiagNorm(a *Dense) float64 {
	n := a.rows
	s := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += a.data[i*n+j] * a.data[i*n+j]
			}
		}
	}
	return math.Sqrt(s)
}

// TopEigenSym returns the k leading eigenpairs of a symmetric matrix.
// vectors has one column per requested eigenpair.
func TopEigenSym(m *Dense, k int) (values []float64, vectors *Dense) {
	if k <= 0 || k > m.rows {
		panic(fmt.Sprintf("matrix: TopEigenSym k=%d out of range for %dx%d", k, m.rows, m.cols))
	}
	all, vecs := EigenSym(m)
	values = all[:k]
	vectors = New(m.rows, k)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < k; j++ {
			vectors.data[i*k+j] = vecs.data[i*vecs.cols+j]
		}
	}
	return values, vectors
}

// Covariance returns the column covariance matrix of m (features are
// columns, observations are rows), using the 1/(n-1) unbiased estimator.
func Covariance(m *Dense) *Dense {
	if m.rows < 2 {
		panic("matrix: Covariance needs at least two observations")
	}
	centered, _ := m.CenterCols()
	cov := centered.MulAtB(centered)
	return cov.Scale(1 / float64(m.rows-1))
}
