package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims() = %d,%d, want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestNewFromSliceRoundTrip(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromSlice(2, 3, data)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 { // lint:exact — exactly-representable integer fill
		t.Fatalf("row-major layout wrong: %v", m)
	}
	// The matrix must own a copy, not alias the input.
	data[0] = 99
	if m.At(0, 0) != 1 { // lint:exact — exactly-representable integer fill
		t.Fatal("NewFromSlice aliased caller data")
	}
}

func TestNewFromSliceLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewFromSlice(2, 3, []float64{1, 2, 3})
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 { // lint:exact — exactly-representable integer fill
		t.Fatalf("unexpected matrix %v", m)
	}
}

func TestNewFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want { // lint:exact — exactly-representable integer fill
				t.Fatalf("Identity(4).At(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestRandomRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Random(5, 7, rng)
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			v := m.At(i, j)
			if v < 0 || v >= 1 {
				t.Fatalf("Random entry %v out of [0,1)", v)
			}
		}
	}
}

func TestRandomNilRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil rng")
		}
	}()
	Random(2, 2, nil)
}

func TestRowViewAliases(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	m.RowView(1)[0] = 42
	if m.At(1, 0) != 42 { // lint:exact — exactly-representable integer fill
		t.Fatal("RowView must alias storage")
	}
}

func TestRowAndColCopies(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 { // lint:exact — exactly-representable integer fill
		t.Fatal("Row must copy")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 { // lint:exact — exactly-representable integer fill
		t.Fatalf("Col(1) = %v, want [2 4]", c)
	}
	c[0] = 99
	if m.At(0, 1) != 2 { // lint:exact — exactly-representable integer fill
		t.Fatal("Col must copy")
	}
}

func TestSetRowSetCol(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	m.SetCol(0, []float64{1, 2})
	if m.At(1, 0) != 2 || m.At(1, 2) != 9 || m.At(0, 0) != 1 { // lint:exact — exactly-representable integer fill
		t.Fatalf("unexpected matrix after SetRow/SetCol: %v", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	n := m.Clone()
	n.Set(0, 0, 100)
	if m.At(0, 0) != 1 { // lint:exact — exactly-representable integer fill
		t.Fatal("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T dims = %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) { // lint:exact — transpose copies bits
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestAddSubMulElemDivElem(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	if got := a.Add(b); !got.Equal(NewFromRows([][]float64{{6, 8}, {10, 12}})) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(NewFromRows([][]float64{{4, 4}, {4, 4}})) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.MulElem(b); !got.Equal(NewFromRows([][]float64{{5, 12}, {21, 32}})) {
		t.Fatalf("MulElem = %v", got)
	}
	if got := b.DivElem(a, 0); !got.Equal(NewFromRows([][]float64{{5, 3}, {7.0 / 3.0, 2}})) {
		t.Fatalf("DivElem = %v", got)
	}
}

func TestDivElemEpsilonGuard(t *testing.T) {
	a := NewFromRows([][]float64{{1}})
	z := NewFromRows([][]float64{{0}})
	got := a.DivElem(z, 1e-9).At(0, 0)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("DivElem with eps produced %v", got)
	}
}

func TestScaleApply(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if got := a.Scale(2); !got.Equal(NewFromRows([][]float64{{2, 4}, {6, 8}})) {
		t.Fatalf("Scale = %v", got)
	}
	got := a.Apply(func(i, j int, v float64) float64 { return v + float64(i*10+j) })
	want := NewFromRows([][]float64{{1, 3}, {13, 15}})
	if !got.Equal(want) {
		t.Fatalf("Apply = %v, want %v", got, want)
	}
}

func TestSumMeanMaxAbsMax(t *testing.T) {
	a := NewFromRows([][]float64{{-5, 2}, {3, 4}})
	if a.Sum() != 4 { // lint:exact — small-integer arithmetic is exact
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 1 { // lint:exact — small-integer arithmetic is exact
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.MaxAbs() != 5 { // lint:exact — small-integer arithmetic is exact
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	v, i, j := a.Max()
	if v != 4 || i != 1 || j != 1 { // lint:exact — small-integer arithmetic is exact
		t.Fatalf("Max = %v at (%d,%d)", v, i, j)
	}
}

func TestRowColSumsArgMax(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	rs := a.RowSums()
	if rs[0] != 6 || rs[1] != 15 { // lint:exact — small-integer arithmetic is exact
		t.Fatalf("RowSums = %v", rs)
	}
	cs := a.ColSums()
	if cs[0] != 5 || cs[1] != 7 || cs[2] != 9 { // lint:exact — small-integer arithmetic is exact
		t.Fatalf("ColSums = %v", cs)
	}
	if a.ArgMaxRow(0) != 2 || a.ArgMaxRow(1) != 2 {
		t.Fatal("ArgMaxRow wrong")
	}
}

func TestNormalizeRowsL1(t *testing.T) {
	a := NewFromRows([][]float64{{2, 2}, {0, 0}, {1, 3}})
	n := a.NormalizeRowsL1()
	if !almostEqual(n.At(0, 0), 0.5, 1e-12) || !almostEqual(n.At(2, 1), 0.75, 1e-12) {
		t.Fatalf("NormalizeRowsL1 = %v", n)
	}
	if n.At(1, 0) != 0 || n.At(1, 1) != 0 {
		t.Fatal("zero row must remain zero")
	}
	if a.At(0, 0) != 2 { // lint:exact — small-integer arithmetic is exact
		t.Fatal("NormalizeRowsL1 mutated receiver")
	}
}

func TestCenterCols(t *testing.T) {
	a := NewFromRows([][]float64{{1, 10}, {3, 20}})
	c, means := a.CenterCols()
	if means[0] != 2 || means[1] != 15 { // lint:exact — small-integer arithmetic is exact
		t.Fatalf("means = %v", means)
	}
	for j := 0; j < 2; j++ {
		if s := c.Col(j)[0] + c.Col(j)[1]; !almostEqual(s, 0, 1e-12) {
			t.Fatalf("column %d not centered, sum=%v", j, s)
		}
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := NewFromRows([][]float64{{3, 4}})
	if a.FrobeniusNorm() != 5 { // lint:exact — 3-4-5: the norm is exactly 5
		t.Fatalf("FrobeniusNorm = %v", a.FrobeniusNorm())
	}
}

func TestStringElision(t *testing.T) {
	big := New(30, 30)
	s := big.String()
	if len(s) == 0 {
		t.Fatal("String() empty")
	}
}

// --- property-based tests ---

// genMatrix builds a reproducible pseudo-random matrix from quick's seed.
func genMatrix(r, c int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64, r8, c8 uint8) bool {
		r, c := int(r8%10)+1, int(c8%10)+1
		m := genMatrix(r, c, seed)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropAddCommutative(t *testing.T) {
	f := func(seed int64, r8, c8 uint8) bool {
		r, c := int(r8%8)+1, int(c8%8)+1
		a := genMatrix(r, c, seed)
		b := genMatrix(r, c, seed+1)
		return a.Add(b).EqualTol(b.Add(a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulTransposeIdentity(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ
	f := func(seed int64, r8, k8, c8 uint8) bool {
		r, k, c := int(r8%6)+1, int(k8%6)+1, int(c8%6)+1
		a := genMatrix(r, k, seed)
		b := genMatrix(k, c, seed+7)
		return a.Mul(b).T().EqualTol(b.T().Mul(a.T()), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulAtBMatchesExplicitTranspose(t *testing.T) {
	f := func(seed int64, r8, c8, c28 uint8) bool {
		r, c, c2 := int(r8%6)+1, int(c8%6)+1, int(c28%6)+1
		a := genMatrix(r, c, seed)
		b := genMatrix(r, c2, seed+3)
		return a.MulAtB(b).EqualTol(a.T().Mul(b), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulABtMatchesExplicitTranspose(t *testing.T) {
	f := func(seed int64, r8, c8, r28 uint8) bool {
		r, c, r2 := int(r8%6)+1, int(c8%6)+1, int(r28%6)+1
		a := genMatrix(r, c, seed)
		b := genMatrix(r2, c, seed+5)
		return a.MulABt(b).EqualTol(a.Mul(b.T()), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropFrobeniusTransposeInvariant(t *testing.T) {
	f := func(seed int64, r8, c8 uint8) bool {
		r, c := int(r8%10)+1, int(c8%10)+1
		m := genMatrix(r, c, seed)
		return almostEqual(m.FrobeniusNorm(), m.T().FrobeniusNorm(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
