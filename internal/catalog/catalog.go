// Package catalog models the public learning-material repositories the
// paper surveys in §2.2 — Nifty Assignments, Peachy Parallel Assignments,
// and PDC Unplugged — as CS Materials entries classified against the
// CS2013 and PDC12 guidelines. It implements the paper's stated future
// work: "classify more of the publicly available PDC materials in the
// system to help recommend PDC materials for particular courses".
//
// Entry titles follow the published repositories; classifications are
// this package's own (the repositories only loosely tag their content),
// which is exactly the curation step the paper says the community needs.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
	"csmaterials/internal/stats"
)

// Source identifies which public repository an entry comes from.
type Source string

// The §2.2 repositories.
const (
	Nifty          Source = "nifty"           // Nifty Assignments (SIGCSE)
	PeachyParallel Source = "peachy-parallel" // EduPar/EduHPC Peachy Parallel Assignments
	PDCUnplugged   Source = "pdc-unplugged"   // PDC Unplugged activities
)

// Entry is one public material with its source repository.
type Entry struct {
	Material *materials.Material
	Source   Source
	// CourseLevels lists the early courses the repository targets the
	// entry at (CS0, CS1, CS2, DS, ...).
	CourseLevels []string
}

var (
	once    sync.Once
	entries []Entry
)

// Entries returns every catalog entry, validated against the guidelines.
// The slice is shared; treat it as read-only.
func Entries() []Entry {
	once.Do(func() {
		entries = buildEntries()
		cs, pdc := ontology.CS2013(), ontology.PDC12()
		for _, e := range entries {
			for _, tag := range e.Material.Tags {
				if cs.Lookup(tag) == nil && pdc.Lookup(tag) == nil {
					panic(fmt.Sprintf("catalog: entry %q has unknown tag %q", e.Material.ID, tag))
				}
			}
		}
	})
	return entries
}

// BySource returns the entries from one repository.
func BySource(s Source) []Entry {
	var out []Entry
	for _, e := range Entries() {
		if e.Source == s {
			out = append(out, e)
		}
	}
	return out
}

// Recommendation ranks a catalog entry for a course.
type Recommendation struct {
	Entry Entry
	// Fit is how much of the entry's CS2013 anchoring the course already
	// covers (Jaccard of CS2013 tag sets restricted to the entry side).
	Fit float64
	// NewPDC counts the PDC12 entries the material would introduce that
	// the course does not yet cover.
	NewPDC int
	// Score combines both: materials that fit the course AND bring new
	// PDC content rank first.
	Score float64
	// SharedTags are the CS2013 entries the course and material share.
	SharedTags []string
}

// Recommend ranks catalog materials for a course: the paper's future-work
// recommendation pipeline. Only entries with positive score are returned,
// best first, at most k (k <= 0 means all).
func Recommend(c *materials.Course, k int) []Recommendation {
	cs := ontology.CS2013()
	pdc := ontology.PDC12()
	courseTags := c.TagSet()
	var out []Recommendation
	for _, e := range Entries() {
		var shared []string
		csAnchor := 0
		newPDC := 0
		for _, tag := range e.Material.Tags {
			switch {
			case cs.Lookup(tag) != nil:
				csAnchor++
				if courseTags[tag] {
					shared = append(shared, tag)
				}
			case pdc.Lookup(tag) != nil:
				if !courseTags[tag] {
					newPDC++
				}
			}
		}
		if csAnchor == 0 {
			continue
		}
		fit := float64(len(shared)) / float64(csAnchor)
		score := fit * (1 + float64(newPDC))
		if len(shared) == 0 {
			continue
		}
		sort.Strings(shared)
		out = append(out, Recommendation{Entry: e, Fit: fit, NewPDC: newPDC, Score: score, SharedTags: shared})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entry.Material.ID < out[j].Entry.Material.ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SimilarEntries returns catalog entries most similar to a given material
// (by Jaccard over full tag sets) — "a better set of slides or examples".
func SimilarEntries(m *materials.Material, k int) []Recommendation {
	src := m.TagSet()
	var out []Recommendation
	for _, e := range Entries() {
		if e.Material.ID == m.ID {
			continue
		}
		sim := stats.Jaccard(src, e.Material.TagSet())
		if sim == 0 {
			continue
		}
		out = append(out, Recommendation{Entry: e, Score: sim, Fit: sim})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entry.Material.ID < out[j].Entry.Material.ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// AsCourses wraps the catalog as pseudo-courses (one per source) so the
// entries can be loaded into a materials.Repository next to real courses.
func AsCourses() []*materials.Course {
	bySource := map[Source][]*materials.Material{}
	for _, e := range Entries() {
		bySource[e.Source] = append(bySource[e.Source], e.Material)
	}
	names := map[Source]string{
		Nifty:          "Nifty Assignments (public repository)",
		PeachyParallel: "Peachy Parallel Assignments (public repository)",
		PDCUnplugged:   "PDC Unplugged (public repository)",
	}
	var out []*materials.Course
	for _, s := range []Source{Nifty, PeachyParallel, PDCUnplugged} {
		ms := bySource[s]
		sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
		out = append(out, &materials.Course{
			ID:        "catalog-" + string(s),
			Name:      names[s],
			Group:     materials.GroupOther,
			Materials: ms,
		})
	}
	return out
}
