package catalog

import (
	"strings"
	"testing"

	"csmaterials/internal/dataset"
	"csmaterials/internal/materials"
	"csmaterials/internal/ontology"
)

func TestEntriesValidateAndCount(t *testing.T) {
	es := Entries()
	if len(es) < 20 {
		t.Fatalf("catalog has %d entries; expected a substantial set (>= 20)", len(es))
	}
	seen := map[string]bool{}
	for _, e := range es {
		if seen[e.Material.ID] {
			t.Errorf("duplicate catalog ID %q", e.Material.ID)
		}
		seen[e.Material.ID] = true
		if len(e.Material.Tags) < 2 {
			t.Errorf("entry %q has too few tags", e.Material.ID)
		}
		if len(e.CourseLevels) == 0 {
			t.Errorf("entry %q has no course levels", e.Material.ID)
		}
		if e.Source != Nifty && e.Source != PeachyParallel && e.Source != PDCUnplugged {
			t.Errorf("entry %q has unknown source %q", e.Material.ID, e.Source)
		}
	}
}

func TestBySourceCoversAllThreeRepositories(t *testing.T) {
	for _, s := range []Source{Nifty, PeachyParallel, PDCUnplugged} {
		if len(BySource(s)) < 5 {
			t.Errorf("source %s has %d entries, want >= 5", s, len(BySource(s)))
		}
	}
}

func TestPDCSourcesCarryPDC12Content(t *testing.T) {
	pdc := ontology.PDC12()
	// Peachy Parallel and PDC Unplugged entries must teach PDC12 content;
	// Nifty entries (early CS, not PDC) must not.
	for _, e := range Entries() {
		n := 0
		for _, tag := range e.Material.Tags {
			if pdc.Lookup(tag) != nil {
				n++
			}
		}
		switch e.Source {
		case Nifty:
			if n != 0 {
				t.Errorf("Nifty entry %q carries PDC12 tags", e.Material.ID)
			}
		default:
			if n == 0 {
				t.Errorf("%s entry %q teaches no PDC12 content", e.Source, e.Material.ID)
			}
		}
	}
}

func TestEveryEntryAnchorsOnCS2013(t *testing.T) {
	cs := ontology.CS2013()
	for _, e := range Entries() {
		n := 0
		for _, tag := range e.Material.Tags {
			if cs.Lookup(tag) != nil {
				n++
			}
		}
		if n == 0 {
			t.Errorf("entry %q has no CS2013 anchor — unadoptable by an early CS course", e.Material.ID)
		}
	}
}

func TestRecommendForDSCourse(t *testing.T) {
	course := dataset.Repository().Course("uncc-2214-krs")
	recs := Recommend(course, 10)
	if len(recs) == 0 {
		t.Fatal("no recommendations for a Data Structures course")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatal("recommendations not sorted")
		}
	}
	for _, r := range recs {
		if len(r.SharedTags) == 0 {
			t.Errorf("recommendation %q shares no tags with the course", r.Entry.Material.ID)
		}
		if r.Fit <= 0 || r.Fit > 1 {
			t.Errorf("fit %v out of range", r.Fit)
		}
	}
	// A DS course covering graphs and priority queues should see the
	// task-graph activity near the top (it both fits and brings new PDC).
	found := false
	for _, r := range recs {
		if strings.HasSuffix(r.Entry.Material.ID, "task-graph-blocks") {
			found = true
			if r.NewPDC == 0 {
				t.Error("task-graph activity should introduce new PDC12 content")
			}
		}
	}
	if !found {
		t.Error("task-graph-blocks not recommended for a graph-covering DS course")
	}
}

func TestRecommendPrefersNewPDCContent(t *testing.T) {
	// For a PDC course that already covers the PDC12 entries, NewPDC
	// drops and with it the score relative to an early course.
	early := dataset.Repository().Course("ccc-csci40-kerney")
	pdcCourse := dataset.Repository().Course("uncc-3145-saule")
	// NewPDC for the reduction activity must be smaller for the PDC
	// course (it already covers reduction-as-a-parallel-pattern).
	var earlyNew, pdcNew = -1, -1
	for _, r := range Recommend(early, 0) {
		if strings.HasSuffix(r.Entry.Material.ID, "reduction-tree-humans") {
			earlyNew = r.NewPDC
		}
	}
	for _, r := range Recommend(pdcCourse, 0) {
		if strings.HasSuffix(r.Entry.Material.ID, "reduction-tree-humans") {
			pdcNew = r.NewPDC
		}
	}
	if earlyNew <= 0 {
		t.Fatalf("reduction activity not recommended to the imperative CS1 (NewPDC=%d)", earlyNew)
	}
	if pdcNew >= earlyNew && pdcNew != -1 {
		t.Errorf("PDC course NewPDC (%d) should be below the CS1's (%d)", pdcNew, earlyNew)
	}
}

func TestRecommendLimit(t *testing.T) {
	course := dataset.Repository().Course("uncc-2214-krs")
	if got := Recommend(course, 3); len(got) > 3 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestSimilarEntries(t *testing.T) {
	// The dataset's own Game-of-Life-ish material: use a synthetic probe
	// with the same tags as the Nifty entry.
	probe := &materials.Material{
		ID: "probe", Title: "p", Type: materials.Assignment,
		Tags: []string{
			"SDF/fundamental-data-structures/arrays",
			"SDF/fundamental-programming-concepts/iterative-control-structures",
		},
	}
	sims := SimilarEntries(probe, 5)
	if len(sims) == 0 {
		t.Fatal("no similar entries")
	}
	if !strings.Contains(sims[0].Entry.Material.ID, "game-of-life") &&
		!strings.Contains(sims[0].Entry.Material.ID, "mandelbrot") {
		t.Errorf("unexpected top match %q", sims[0].Entry.Material.ID)
	}
	// Self-exclusion: searching from a catalog entry never returns itself.
	first := Entries()[0]
	for _, s := range SimilarEntries(first.Material, 0) {
		if s.Entry.Material.ID == first.Material.ID {
			t.Fatal("SimilarEntries returned the query material")
		}
	}
}

func TestAsCoursesLoadsIntoRepository(t *testing.T) {
	repo := materials.NewRepository(ontology.CS2013(), ontology.PDC12())
	for _, c := range AsCourses() {
		if err := repo.AddCourse(c); err != nil {
			t.Fatalf("catalog pseudo-course rejected: %v", err)
		}
	}
	if len(repo.Courses()) != 3 {
		t.Fatalf("expected 3 pseudo-courses, got %d", len(repo.Courses()))
	}
	if repo.NumMaterials() != len(Entries()) {
		t.Fatalf("repository has %d materials, want %d", repo.NumMaterials(), len(Entries()))
	}
}
