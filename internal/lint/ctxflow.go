package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"csmaterials/internal/lint/callgraph"
)

// detachLayers are the package-path suffixes allowed to detach from a
// caller's context when annotated: the engine executor (the blessed
// guardedWith stale-refresh detach, DESIGN §9) and the serving cache
// (detached singleflight flights that must survive a cancelled leader,
// DESIGN §7). A lint:detach annotation anywhere else is not honored —
// handlers and compute code have no sanctioned reason to detach.
var detachLayers = []string{"internal/engine", "internal/serving"}

// CtxFlowAnalyzer enforces the context-threading contract on every
// path reachable from the serving roots: HTTP handlers (any function
// taking *http.Request) and the engine executor's context-taking
// methods. Reachability follows the module call graph conservatively —
// static calls, interface dispatch to every implementation, function
// values, and go statements.
//
// Inside that reachable set, context.Background()/context.TODO() is
// flagged: work detached from the request keeps running after the
// client is gone and defeats the singleflight/breaker/shutdown
// plumbing built on ctx. The only sanctioned detach points are lines
// annotated `// lint:detach <rationale>` inside the engine or serving
// layer (the guardedWith stale-refresh and the detached singleflight
// flight); an annotation outside those layers does not suppress the
// finding.
func CtxFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc: "Code reachable from HTTP handlers or the engine executor must thread " +
			"the request context; context.Background()/TODO() there is flagged unless " +
			"annotated // lint:detach inside internal/engine or internal/serving.",
		Run: runCtxFlow,
	}
}

const ctxflowReachKey = "ctxflow.reachable"

// ctxflowReachable computes (once per run) the set of nodes reachable
// from the serving roots.
func ctxflowReachable(mod *Module) map[*callgraph.Node]bool {
	v := mod.Memo(ctxflowReachKey, func() interface{} {
		g := mod.Graph
		var roots []*callgraph.Node
		for _, n := range g.Nodes() {
			if n.Decl == nil || n.IsTest() {
				continue
			}
			if isHandlerDecl(n) || isExecutorEntry(n) {
				roots = append(roots, n)
			}
		}
		return g.Reachable(roots)
	})
	return v.(map[*callgraph.Node]bool)
}

// isHandlerDecl reports whether the node's signature carries a
// *net/http.Request parameter — the module's definition of handler
// code.
func isHandlerDecl(n *callgraph.Node) bool {
	sig, ok := n.Func.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Type().String() == "*net/http.Request" {
			return true
		}
	}
	return false
}

// isExecutorEntry reports whether the node is an exported
// context-taking method of the engine executor (type Executor in a
// package ending internal/engine): the roots of every compute path.
func isExecutorEntry(n *callgraph.Node) bool {
	fn := n.Func
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/engine") {
		return false
	}
	if !fn.Exported() {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Executor" {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Type().String() == "context.Context" {
			return true
		}
	}
	return false
}

func runCtxFlow(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	reachable := ctxflowReachable(pass.Mod)
	inDetachLayer := false
	for _, s := range detachLayers {
		if strings.HasSuffix(pass.Pkg.Path(), s) || strings.Contains(pass.Pkg.Path(), s+"/") {
			inDetachLayer = true
			break
		}
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		detach := detachLines(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			node := pass.Mod.Graph.NodeOfDecl(fn)
			if node == nil || !reachable[node] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				c, isPkg := pass.pkgCallee(call)
				if !isPkg || c.path != "context" || (c.name != "Background" && c.name != "TODO") {
					return true
				}
				line := pass.Fset.Position(call.Pos()).Line
				if detach[line] {
					if inDetachLayer {
						return true // blessed detach point
					}
					pass.Reportf(call.Pos(),
						"lint:detach is only honored inside internal/engine and internal/serving; this context.%s still detaches handler-reachable work from its request",
						c.name)
					return true
				}
				pass.Reportf(call.Pos(),
					"context.%s on a path reachable from handlers/executor detaches the work from its request; thread the caller's ctx (sanctioned detach points are annotated // lint:detach in the engine/serving layer)",
					c.name)
				return true
			})
		}
	}
}

// detachLines collects the lines of file annotated "// lint:detach"
// (trailing text is free-form rationale, same contract as lint:exact).
func detachLines(pass *Pass, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "lint:detach" || strings.HasPrefix(text, "lint:detach ") {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
