package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// goroutineScopes are the package-path suffixes whose goroutines must
// prove a stop/wait path: the serving stack and the dataset layer run
// for the process lifetime, so an unmanaged goroutine there is either a
// leak (loops forever, pinned past shutdown) or an untracked background
// task (fire-and-forget work that graceful drain cannot wait for).
// Compute packages are out of scope: their goroutines are bounded
// fan-out joined by channel sends (matrix, factorize, robustness), and
// the determinism analyzer already polices them.
var goroutineScopes = []string{
	"internal/server",
	"internal/serving",
	"internal/resilience",
	"internal/dataset",
}

// GoroutineLifeAnalyzer checks every `go` statement in the serving
// stack for a reachable stop or wait path. Accepted proofs, searched in
// the launched body and transitively through the static call graph:
//
//   - a ctx.Done() receive (the reaper pattern — StartIdleReaper);
//   - a WaitGroup Done (the tracked-background-task pattern);
//   - a channel send or close (the completion-signal pattern — the
//     spawner or a waiter observes the goroutine finishing);
//   - a `range` over a channel (terminates when the feeder closes it);
//   - a select case receive whose body returns (stop-channel pattern).
//
// A goroutine with none of these is fire-and-forget: nothing can stop
// it and nothing can wait for it.
func GoroutineLifeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutinelife",
		Doc: "In the serving stack (internal/server, serving, resilience, dataset), " +
			"every go statement needs a reachable stop/wait path: ctx.Done, a " +
			"WaitGroup Done, a channel send/close, a channel range, or a " +
			"receive-then-return select case.",
		Run: runGoroutineLife,
	}
}

func inGoroutineScope(path string) bool {
	for _, s := range goroutineScopes {
		if strings.HasSuffix(path, s) || strings.Contains(path, s+"/") {
			return true
		}
	}
	return false
}

func runGoroutineLife(pass *Pass) {
	if !inGoroutineScope(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, resolved := launchedBody(pass, gs)
			if !resolved {
				pass.Reportf(gs.Pos(),
					"goroutine launches a dynamic function value; its stop/wait path cannot be proven — launch a named function or literal with a ctx.Done/WaitGroup/channel exit")
				return true
			}
			if !hasLifecycleProof(pass, body, map[*ast.BlockStmt]bool{}) {
				pass.Reportf(gs.Pos(),
					"goroutine has no reachable stop or wait path (no ctx.Done receive, WaitGroup Done, channel send/close, or channel range); fire-and-forget work can neither be drained on shutdown nor stopped")
			}
			return true
		})
	}
}

// launchedBody resolves the body a go statement executes: a literal's
// own body, or the declaration of a statically named function/method.
func launchedBody(pass *Pass, gs *ast.GoStmt) (*ast.BlockStmt, bool) {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, true
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			if body := declBodyOf(pass, fn); body != nil {
				return body, true
			}
		}
	case *ast.SelectorExpr:
		var fn *types.Func
		if sel := pass.Info.Selections[fun]; sel != nil {
			fn, _ = sel.Obj().(*types.Func)
		} else if f, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			fn = f
		}
		if fn != nil {
			if body := declBodyOf(pass, fn); body != nil {
				return body, true
			}
		}
	}
	return nil, false
}

// declBodyOf finds the module declaration body for fn via the call
// graph (cross-package safe).
func declBodyOf(pass *Pass, fn *types.Func) *ast.BlockStmt {
	if pass.Mod == nil {
		return nil
	}
	node := pass.Mod.Graph.NodeOf(fn)
	if node == nil || node.Decl == nil {
		return nil
	}
	return node.Decl.Body
}

// hasLifecycleProof scans body (and the bodies of statically called
// module functions, transitively) for any accepted stop/wait evidence.
func hasLifecycleProof(pass *Pass, body *ast.BlockStmt, visited map[*ast.BlockStmt]bool) bool {
	if body == nil || visited[body] {
		return false
	}
	visited[body] = true
	found := false
	var callees []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true // completion signal
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true // exits when the feeder closes the channel
				}
			}
		case *ast.CommClause:
			// select { case <-stop: return } — a receive whose case body
			// leaves the goroutine.
			if expr, ok := x.Comm.(*ast.ExprStmt); ok {
				if u, ok := expr.X.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
					for _, s := range x.Body {
						if _, isRet := s.(*ast.ReturnStmt); isRet {
							found = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if isCtxDone(pass, x) || isWaitGroupDone(pass, x) || isChanClose(pass, x) {
				found = true
				return false
			}
			// Defer the transitive search until the local scan finishes.
			if fn := staticCallee(pass, x); fn != nil {
				callees = append(callees, fn)
			}
		}
		return !found
	})
	if found {
		return true
	}
	for _, fn := range callees {
		if b := declBodyOf(pass, fn); b != nil && hasLifecycleProof(pass, b, visited) {
			return true
		}
	}
	return false
}

// isCtxDone matches ctx.Done() on a context.Context receiver.
func isCtxDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := pass.Info.TypeOf(sel.X)
	return t != nil && t.String() == "context.Context"
}

// isWaitGroupDone matches wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	s := t.String()
	return s == "sync.WaitGroup" || s == "*sync.WaitGroup"
}

// isChanClose matches close(ch).
func isChanClose(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// staticCallee resolves a call to a module *types.Func, or nil.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[fun]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
