package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// computeSuffixes lists the module packages that form the reproduction's
// deterministic compute core: given the same inputs and seeds they must
// produce byte-identical output run-to-run, because the paper's figures
// and the serving layer's cached analyses are built from them. The
// serving stack (internal/server, internal/serving, internal/resilience)
// is deliberately absent: it measures real time and handles real
// concurrency. So is the engine executor (internal/engine) — its
// singleflight, breaker, and batch-pool plumbing is real concurrency —
// but the registered analyses (internal/engine/analyses) are pure
// dispatch into the compute core and are held to the same contract.
// DESIGN §8 documents the boundary.
var computeSuffixes = []string{
	"internal/agreement",
	"internal/anchor",
	"internal/audit",
	"internal/bicluster",
	"internal/catalog",
	"internal/cluster",
	"internal/core",
	"internal/dataset",
	"internal/engine/analyses",
	"internal/factorize",
	"internal/materials",
	"internal/matrix",
	"internal/mds",
	"internal/nnmf",
	"internal/ontology",
	"internal/pca",
	"internal/robustness",
	"internal/search",
	"internal/simgraph",
	"internal/stats",
	"internal/taskgraph",
	"internal/viz",
}

// IsComputePackage reports whether an import path belongs to the
// deterministic compute core.
func IsComputePackage(path string) bool {
	for _, s := range computeSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand(/v2) package-level functions that
// build explicit, seedable generators rather than consulting the global
// source; calling them is the *fix* for a determinism finding.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// DeterminismAnalyzer flags the three classic ways a compute package goes
// nondeterministic: top-level (globally seeded) math/rand calls, wall
// clock reads via time.Now, and map iteration feeding order-sensitive
// output (slice appends that are never sorted, or direct writes/encodes
// inside the loop).
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "In compute packages (see DESIGN §8), randomness must flow through an " +
			"explicitly seeded *rand.Rand, time must be injected rather than read from " +
			"time.Now, and map iteration must not determine output order.",
		Run: runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	if !IsComputePackage(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		isTest := pass.IsTestFile(file)
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkAmbientCall(pass, call)
			}
			// Map-order findings in test files are noise: tests assert on
			// sorted or set-like views and get to iterate freely.
			if fn, ok := n.(*ast.FuncDecl); ok && !isTest && fn.Body != nil {
				checkMapOrder(pass, fn)
			}
			return true
		})
	}
}

// checkAmbientCall flags calls that consult ambient process state:
// globally seeded math/rand functions and time.Now.
func checkAmbientCall(pass *Pass, call *ast.CallExpr) {
	c, ok := pass.pkgCallee(call)
	if !ok {
		return
	}
	switch c.path {
	case "math/rand", "math/rand/v2":
		if !randConstructors[c.name] {
			pass.Reportf(call.Pos(),
				"unseeded rand.%s uses the global source; thread an explicitly seeded *rand.Rand through this compute path",
				c.name)
		}
	case "time":
		if c.name == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now in a compute package makes output depend on the wall clock; inject the timestamp or clock from the caller")
		}
	}
}

// checkMapOrder walks one function looking for `for ... range m` over a
// map whose body either appends to a slice declared outside the loop
// (without the function ever sorting that slice) or writes/encodes output
// directly — both of which leak Go's randomized map iteration order into
// results.
func checkMapOrder(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch stmt := m.(type) {
			case *ast.AssignStmt:
				if obj := appendTarget(pass, stmt, rng); obj != nil && !sortedInFunc(pass, fn, obj) {
					pass.Reportf(stmt.Pos(),
						"append to %s inside map iteration fixes nondeterministic order into the slice; sort the keys first (or sort %s before use)",
						obj.Name(), obj.Name())
				}
			case *ast.CallExpr:
				if name, ok := outputCall(pass, stmt); ok {
					pass.Reportf(stmt.Pos(),
						"%s inside map iteration emits output in nondeterministic order; iterate sorted keys instead", name)
				}
			}
			return true
		})
		return true
	})
}

// appendTarget returns the object of `s` in a statement of the form
// `s = append(s, ...)` where s is declared outside the range statement,
// or nil.
func appendTarget(pass *Pass, stmt *ast.AssignStmt, rng *ast.RangeStmt) types.Object {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
		return nil
	}
	lhs, ok := stmt.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	obj := pass.Info.Uses[first]
	if obj == nil {
		return nil
	}
	// Declared inside the loop: each iteration starts fresh, order cannot
	// accumulate.
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil
	}
	return obj
}

// sortedInFunc reports whether fn ever passes obj to a sort.* or
// slices.Sort* call, which launders the map-order dependence away.
func sortedInFunc(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		c, ok := pass.pkgCallee(call)
		if !ok || (c.path != "sort" && c.path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// outputCall reports whether call writes or encodes output (fmt.Fprint*,
// Write/WriteString/Encode methods) — the forms that serialize map order
// straight into artifacts.
func outputCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if c, ok := pass.pkgCallee(call); ok && c.path == "fmt" && strings.HasPrefix(c.name, "Fprint") {
		return "fmt." + c.name, true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pass.Info.Selections[sel] == nil {
		return "", false // qualified package call, not a method
	}
	switch sel.Sel.Name {
	case "WriteString", "Encode":
		return sel.Sel.Name, true
	}
	return "", false
}
