package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"csmaterials/internal/lint/callgraph"
)

// computeSuffixes lists the module packages that form the reproduction's
// deterministic compute core: given the same inputs and seeds they must
// produce byte-identical output run-to-run, because the paper's figures
// and the serving layer's cached analyses are built from them. The
// serving stack (internal/server, internal/serving, internal/resilience)
// is deliberately absent: it measures real time and handles real
// concurrency. So is the engine executor (internal/engine) — its
// singleflight, breaker, and batch-pool plumbing is real concurrency —
// but the registered analyses (internal/engine/analyses) are pure
// dispatch into the compute core and are held to the same contract.
// DESIGN §8 documents the boundary.
var computeSuffixes = []string{
	"internal/agreement",
	"internal/anchor",
	"internal/audit",
	"internal/bicluster",
	"internal/catalog",
	"internal/cluster",
	"internal/core",
	"internal/dataset",
	"internal/engine/analyses",
	"internal/factorize",
	"internal/materials",
	"internal/matrix",
	"internal/mds",
	"internal/nnmf",
	"internal/ontology",
	"internal/pca",
	"internal/robustness",
	"internal/search",
	"internal/simgraph",
	"internal/stats",
	"internal/taskgraph",
	"internal/viz",
}

// IsComputePackage reports whether an import path belongs to the
// deterministic compute core.
func IsComputePackage(path string) bool {
	for _, s := range computeSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand(/v2) package-level functions that
// build explicit, seedable generators rather than consulting the global
// source; calling them is the *fix* for a determinism finding.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// DeterminismAnalyzer flags the three classic ways a compute package goes
// nondeterministic: top-level (globally seeded) math/rand calls, wall
// clock reads via time.Now, and map iteration feeding order-sensitive
// output (slice appends that are never sorted, or direct writes/encodes
// inside the loop).
//
// The map-order check is interprocedural: the collect-then-sort idiom
// is recognised whether the sort happens in the same function, inside a
// helper the slice is passed to (a callee that sorts its parameter, per
// the call-graph summaries), or — when the slice is returned — in the
// callers: a collect-in-callee/sort-in-caller split is deterministic as
// long as *every* caller sorts the returned slice before it can matter,
// so the analyzer only reports when some caller (or the absence of any
// module caller) leaves the order observable.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "In compute packages (see DESIGN §8), randomness must flow through an " +
			"explicitly seeded *rand.Rand, time must be injected rather than read from " +
			"time.Now, and map iteration must not determine output order (sorting in a " +
			"helper or in every caller satisfies the contract).",
		Run: runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	if !IsComputePackage(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		isTest := pass.IsTestFile(file)
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkAmbientCall(pass, call)
			}
			// Map-order findings in test files are noise: tests assert on
			// sorted or set-like views and get to iterate freely.
			if fn, ok := n.(*ast.FuncDecl); ok && !isTest && fn.Body != nil {
				checkMapOrder(pass, fn)
			}
			return true
		})
	}
}

// checkAmbientCall flags calls that consult ambient process state:
// globally seeded math/rand functions and time.Now.
func checkAmbientCall(pass *Pass, call *ast.CallExpr) {
	c, ok := pass.pkgCallee(call)
	if !ok {
		return
	}
	switch c.path {
	case "math/rand", "math/rand/v2":
		if !randConstructors[c.name] {
			pass.Reportf(call.Pos(),
				"unseeded rand.%s uses the global source; thread an explicitly seeded *rand.Rand through this compute path",
				c.name)
		}
	case "time":
		if c.name == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now in a compute package makes output depend on the wall clock; inject the timestamp or clock from the caller")
		}
	}
}

// checkMapOrder walks one function looking for `for ... range m` over a
// map whose body either appends to a slice declared outside the loop
// (without the function ever sorting that slice) or writes/encodes output
// directly — both of which leak Go's randomized map iteration order into
// results.
func checkMapOrder(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch stmt := m.(type) {
			case *ast.AssignStmt:
				if obj := appendTarget(pass, stmt, rng); obj != nil && !orderLaundered(pass, fn, obj) {
					pass.Reportf(stmt.Pos(),
						"append to %s inside map iteration fixes nondeterministic order into the slice; sort the keys first (or sort %s before use)",
						obj.Name(), obj.Name())
				}
			case *ast.CallExpr:
				if name, ok := outputCall(pass, stmt); ok {
					pass.Reportf(stmt.Pos(),
						"%s inside map iteration emits output in nondeterministic order; iterate sorted keys instead", name)
				}
			}
			return true
		})
		return true
	})
}

// orderLaundered reports whether the map-iteration order captured in obj
// is laundered away before it can be observed: sorted in fn itself or by
// a helper fn passes it to (call-graph sorts-param summary), or — when
// fn returns the slice — sorted by every module caller of fn.
func orderLaundered(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	if sortedInFunc(pass, fn, obj) {
		return true
	}
	if pass.Mod == nil {
		return false
	}
	g := pass.Mod.Graph
	node := g.NodeOfDecl(fn)
	if node == nil {
		return false
	}
	// A helper that sorts the parameter obj is passed at.
	if callgraph.ObjSortedIn(g, fn, modulePkgOf(pass), obj) {
		return true
	}
	// Collect-in-callee/sort-in-caller: obj must be returned, and every
	// caller must sort the result it receives. Zero callers keeps the
	// obligation local (an unsorted escape hatch would silently spread).
	indices := returnIndices(pass, fn, obj)
	if len(indices) == 0 {
		return false
	}
	callers := 0
	for _, e := range node.In {
		if (e.Kind != callgraph.Call && e.Kind != callgraph.Dynamic) || e.Site == nil || e.Caller.Decl == nil {
			continue
		}
		callers++
		for _, idx := range indices {
			if !callerSortsResult(pass.Mod, e, idx) {
				return false
			}
		}
	}
	return callers > 0
}

// modulePkgOf adapts the current pass to the callgraph package shape.
func modulePkgOf(pass *Pass) *callgraph.Package {
	return &callgraph.Package{Path: pass.Pkg.Path(), Fset: pass.Fset, Files: pass.Files, Types: pass.Pkg, Info: pass.Info}
}

// returnIndices finds the result positions at which fn returns obj.
func returnIndices(pass *Pass, fn *ast.FuncDecl, obj types.Object) []int {
	var out []int
	seen := map[int]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && pass.Info.Uses[id] == obj && !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
		return true
	})
	return out
}

// callerSortsResult reports whether the caller behind edge e assigns the
// call's result at index idx to a variable it then sorts (directly or
// via a sorting helper). Results consumed any other way — returned
// onward, used inline — do not count: conservatism errs toward
// reporting.
func callerSortsResult(mod *Module, e *callgraph.Edge, idx int) bool {
	caller := e.Caller
	info := caller.Pkg.Info
	var obj types.Object
	ast.Inspect(caller.Decl.Body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		if assign.Rhs[0] != e.Site {
			return true
		}
		if idx >= len(assign.Lhs) {
			return true
		}
		if id, ok := assign.Lhs[0+idx].(*ast.Ident); ok && id.Name != "_" {
			if o := info.Defs[id]; o != nil {
				obj = o
			} else if o := info.Uses[id]; o != nil {
				obj = o
			}
		}
		return true
	})
	if obj == nil {
		return false
	}
	return callgraph.ObjSortedIn(mod.Graph, caller.Decl, caller.Pkg, obj)
}

// appendTarget returns the object of `s` in a statement of the form
// `s = append(s, ...)` where s is declared outside the range statement,
// or nil.
func appendTarget(pass *Pass, stmt *ast.AssignStmt, rng *ast.RangeStmt) types.Object {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
		return nil
	}
	lhs, ok := stmt.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	obj := pass.Info.Uses[first]
	if obj == nil {
		return nil
	}
	// Declared inside the loop: each iteration starts fresh, order cannot
	// accumulate.
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil
	}
	return obj
}

// sortedInFunc reports whether fn ever passes obj to a sort.* or
// slices.Sort* call, which launders the map-order dependence away.
func sortedInFunc(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		c, ok := pass.pkgCallee(call)
		if !ok || (c.path != "sort" && c.path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// outputCall reports whether call writes or encodes output (fmt.Fprint*,
// Write/WriteString/Encode methods) — the forms that serialize map order
// straight into artifacts.
func outputCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if c, ok := pass.pkgCallee(call); ok && c.path == "fmt" && strings.HasPrefix(c.name, "Fprint") {
		return "fmt." + c.name, true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pass.Info.Selections[sel] == nil {
		return "", false // qualified package call, not a method
	}
	switch sel.Sel.Name {
	case "WriteString", "Encode":
		return sel.Sel.Name, true
	}
	return "", false
}
