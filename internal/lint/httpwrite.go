package lint

import (
	"go/ast"
	"strings"
)

// HTTPWriteAnalyzer enforces the response-write protocol in the HTTP
// layer (internal/server): along any straight-line statement sequence a
// handler may call WriteHeader at most once and never after the body has
// started, and handler code must not invoke computes with a context
// detached from the request (context.Background/context.TODO), which
// would keep a cancelled client's work running and defeat the
// singleflight/breaker plumbing built on r.Context().
func HTTPWriteAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "httpwrite",
		Doc: "In internal/server: no double WriteHeader, no WriteHeader after a body " +
			"write in the same block, and handlers must derive contexts from " +
			"r.Context() rather than context.Background/TODO.",
		Run: runHTTPWrite,
	}
}

func runHTTPWrite(pass *Pass) {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/server") {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.BlockStmt:
				checkWriteSequence(pass, fn)
			case *ast.FuncDecl:
				if fn.Body != nil && hasRequestParam(pass, fn.Type) {
					checkDetachedContext(pass, fn.Body)
				}
			case *ast.FuncLit:
				if hasRequestParam(pass, fn.Type) {
					checkDetachedContext(pass, fn.Body)
				}
			}
			return true
		})
	}
}

// checkWriteSequence scans one block's statement list in order, tracking
// per-writer protocol state. Branch bodies are separate blocks, so each
// control-flow arm is judged on its own straight-line sequence.
func checkWriteSequence(pass *Pass, block *ast.BlockStmt) {
	wroteHeader := map[string]bool{}
	wroteBody := map[string]bool{}
	for _, stmt := range block.List {
		var call *ast.CallExpr
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.AssignStmt:
			// `_, _ = w.Write(body)` is the project idiom for body writes.
			if len(s.Rhs) == 1 {
				call, _ = s.Rhs[0].(*ast.CallExpr)
			}
		}
		if call == nil {
			continue
		}
		w, method, ok := responseWriterCall(pass, call)
		if !ok {
			continue
		}
		switch method {
		case "WriteHeader":
			if wroteHeader[w] {
				pass.Reportf(call.Pos(), "second WriteHeader on %s in the same block; the first status line already went out", w)
			}
			if wroteBody[w] {
				pass.Reportf(call.Pos(), "WriteHeader on %s after its body write; headers are already flushed", w)
			}
			wroteHeader[w] = true
		case "Write":
			wroteBody[w] = true
		}
	}
}

// responseWriterCall matches method calls on a value of the interface
// type net/http.ResponseWriter and returns the receiver's source text and
// the method name.
func responseWriterCall(pass *Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || pass.Info.Selections[sel] == nil {
		return "", "", false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil || t.String() != "net/http.ResponseWriter" {
		return "", "", false
	}
	return exprString(pass.Fset, sel.X), sel.Sel.Name, true
}

// hasRequestParam reports whether the function signature takes a
// *http.Request — the analyzer's definition of "handler code".
func hasRequestParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.Info.TypeOf(field.Type); t != nil && t.String() == "*net/http.Request" {
			return true
		}
	}
	return false
}

// checkDetachedContext flags context.Background()/context.TODO() inside
// handler bodies.
func checkDetachedContext(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c, isPkg := pass.pkgCallee(call); isPkg && c.path == "context" && (c.name == "Background" || c.name == "TODO") {
			pass.Reportf(call.Pos(),
				"handler detaches from the request context with context.%s; derive from r.Context() so client disconnects cancel the compute",
				c.name)
		}
		return true
	})
}
