package lint

import (
	"go/ast"
)

// HTTPWriteAnalyzer enforces the response-write protocol wherever
// handler code lives: along any straight-line statement sequence a
// handler may call WriteHeader at most once and never after the body
// has started. The scope is not a hardcoded package list — any module
// package whose call graph contains a handler root (a function taking
// *net/http.Request) is checked, so a handler added to a new package
// (a debug endpoint in internal/obs, a test double grown into a real
// mux) is covered the day it appears.
//
// The detached-context check that used to live here moved to the
// ctxflow analyzer, which follows the call graph beyond the handler's
// own body instead of stopping at its braces.
func HTTPWriteAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "httpwrite",
		Doc: "In every package defining http.Handler code (found via call-graph " +
			"handler roots): no double WriteHeader, and no WriteHeader after a body " +
			"write in the same block.",
		Run: runHTTPWrite,
	}
}

const httpwritePkgsKey = "httpwrite.pkgs"

// handlerPackages computes (once per run) the set of package paths that
// define handler code: any function or literal-bearing declaration
// whose signature takes *net/http.Request.
func handlerPackages(mod *Module) map[string]bool {
	v := mod.Memo(httpwritePkgsKey, func() interface{} {
		pkgs := map[string]bool{}
		for _, n := range mod.Graph.Nodes() {
			if n.IsTest() {
				continue
			}
			if isHandlerDecl(n) {
				pkgs[n.Pkg.Path] = true
			}
		}
		return pkgs
	})
	return v.(map[string]bool)
}

func runHTTPWrite(pass *Pass) {
	if pass.Mod == nil || !handlerPackages(pass.Mod)[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if block, ok := n.(*ast.BlockStmt); ok {
				checkWriteSequence(pass, block)
			}
			return true
		})
	}
}

// checkWriteSequence scans one block's statement list in order, tracking
// per-writer protocol state. Branch bodies are separate blocks, so each
// control-flow arm is judged on its own straight-line sequence.
func checkWriteSequence(pass *Pass, block *ast.BlockStmt) {
	wroteHeader := map[string]bool{}
	wroteBody := map[string]bool{}
	for _, stmt := range block.List {
		var call *ast.CallExpr
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.AssignStmt:
			// `_, _ = w.Write(body)` is the project idiom for body writes.
			if len(s.Rhs) == 1 {
				call, _ = s.Rhs[0].(*ast.CallExpr)
			}
		}
		if call == nil {
			continue
		}
		w, method, ok := responseWriterCall(pass, call)
		if !ok {
			continue
		}
		switch method {
		case "WriteHeader":
			if wroteHeader[w] {
				pass.Reportf(call.Pos(), "second WriteHeader on %s in the same block; the first status line already went out", w)
			}
			if wroteBody[w] {
				pass.Reportf(call.Pos(), "WriteHeader on %s after its body write; headers are already flushed", w)
			}
			wroteHeader[w] = true
		case "Write":
			wroteBody[w] = true
		}
	}
}

// responseWriterCall matches method calls on a value of the interface
// type net/http.ResponseWriter and returns the receiver's source text and
// the method name.
func responseWriterCall(pass *Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || pass.Info.Selections[sel] == nil {
		return "", "", false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil || t.String() != "net/http.ResponseWriter" {
		return "", "", false
	}
	return exprString(pass.Fset, sel.X), sel.Sel.Name, true
}
