// Package lint is the project's static-analysis engine: a small,
// stdlib-only analogue of golang.org/x/tools/go/analysis that loads every
// package in the module with go/parser + go/types (source importer, no
// external dependencies) and runs a registry of project-specific analyzers
// enforcing the contracts the reproduction depends on:
//
//   - determinism: compute packages must not consult ambient randomness
//     (unseeded math/rand), wall-clock time, or map iteration order when
//     producing output (DESIGN §8 defines the compute set);
//   - floatcompare: no ==/!= between floating-point operands in numeric
//     code — use the tolerance helpers in internal/stats;
//   - errdrop: no silently discarded error returns outside tests;
//   - httpwrite: HTTP handlers must not double-WriteHeader, write headers
//     after the body, or invoke computes with a context detached from the
//     request;
//   - lockdiscipline: every mu.Lock() pairs with an Unlock in the same
//     block (preferably deferred), and mutexes never travel by value.
//
// Diagnostics are emitted as "file:line:col: [rule] message" (or JSON via
// cmd/lint -json) and the engine is wired into `make lint` and CI so a
// regression in any contract fails the build.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"csmaterials/internal/lint/callgraph"
)

// Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical file:line:col: [rule] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one lint rule. Run inspects a type-checked package through
// the Pass and reports findings via pass.Reportf.
type Analyzer struct {
	// Name identifies the rule in diagnostics and in cmd/lint -rules.
	Name string
	// Doc is a one-paragraph description shown by cmd/lint -help.
	Doc string
	// Run executes the rule against one package.
	Run func(*Pass)
}

// Module is the whole-run view shared by every Pass: the call graph
// with its per-function summaries (DESIGN §8), the full package list,
// and a memo space where interprocedural analyzers stash facts computed
// once per run (reachability sets, the metric-family table) instead of
// once per package.
type Module struct {
	Graph *callgraph.Graph
	Pkgs  []*Package

	memo map[string]interface{}
}

// NewModule builds the shared interprocedural state for a package set.
func NewModule(pkgs []*Package) *Module {
	cps := make([]*callgraph.Package, 0, len(pkgs))
	for _, p := range pkgs {
		cps = append(cps, &callgraph.Package{
			Path: p.Path, Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info,
		})
	}
	return &Module{
		Graph: callgraph.Build(cps),
		Pkgs:  pkgs,
		memo:  make(map[string]interface{}),
	}
}

// Memo returns the cached value under key, building it on first use.
// Run is single-threaded; no locking.
func (m *Module) Memo(key string, build func() interface{}) interface{} {
	if v, ok := m.memo[key]; ok {
		return v
	}
	v := build()
	m.memo[key] = v
	return v
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info
	// Mod is the shared module-wide state (call graph, summaries, memo).
	Mod *Module

	rule   string
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether file sits in a _test.go source file.
func (p *Pass) IsTestFile(file *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(file.Pos()).Filename, "_test.go")
}

// importedPkgName resolves an identifier to the *types.PkgName it denotes,
// or nil. Analyzers use it to recognise qualified calls like rand.Intn.
func (p *Pass) importedPkgName(id *ast.Ident) *types.PkgName {
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// isPkgCall reports whether call invokes path.name (a package-level
// function of the package with the given import path).
func (p *Pass) isPkgCall(call *ast.CallExpr, path, name string) bool {
	got, ok := p.pkgCallee(call)
	return ok && got.path == path && got.name == name
}

type callee struct{ path, name string }

// pkgCallee extracts the (import path, func name) of a qualified
// package-level call, e.g. rand.Intn -> ("math/rand", "Intn").
func (p *Pass) pkgCallee(call *ast.CallExpr) (callee, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return callee{}, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return callee{}, false
	}
	pn := p.importedPkgName(id)
	if pn == nil {
		return callee{}, false
	}
	return callee{path: pn.Imported().Path(), name: sel.Sel.Name}, true
}

// All returns the full analyzer registry in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		FloatCompareAnalyzer(),
		ErrDropAnalyzer(),
		HTTPWriteAnalyzer(),
		LockDisciplineAnalyzer(),
		CtxFlowAnalyzer(),
		GoroutineLifeAnalyzer(),
		MetricLabelAnalyzer(),
	}
}

// Select returns the analyzers whose names appear in the comma-separated
// rules list ("" selects all), erroring on unknown names.
func Select(rules string) ([]*Analyzer, error) {
	all := All()
	if rules == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", name, strings.Join(known, ", "))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// Run executes each analyzer over each package and returns the combined
// diagnostics sorted by file, line, column, then rule. The module-wide
// call graph and summaries are built once up front and shared by every
// pass through Pass.Mod.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	mod := NewModule(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:  pkg.Fset,
				Pkg:   pkg.Types,
				Files: pkg.Files,
				Info:  pkg.Info,
				Mod:   mod,
				rule:  a.Name,
				report: func(d Diagnostic) {
					diags = append(diags, d)
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}
