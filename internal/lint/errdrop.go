package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDropAnalyzer flags call statements that discard an error result in
// non-test code. An explicit `_ =` assignment stays legal — it is visible
// intent that survives code review — and so do writes to in-memory sinks
// (*strings.Builder, *bytes.Buffer) whose Write methods are documented to
// never return a non-nil error. Deferred calls are exempt too: the
// `defer f.Close()` read-path idiom is accepted project style, while
// write-path closes are expected to be checked explicitly.
func ErrDropAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc: "A statement-position call whose result set includes an error silently " +
			"discards it; handle the error or assign it to _ explicitly. In-memory " +
			"builder/buffer writes and deferred closes are exempt.",
		Run: runErrDrop,
	}
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || isMemorySinkWrite(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s returns an error that is silently discarded; handle it or assign it to _ explicitly",
				calleeLabel(pass, call))
			return true
		})
	}
}

// returnsError reports whether any result of call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// memorySinks are receiver/destination types whose Write* methods always
// return a nil error (documented in the standard library; hash.Hash
// states "It never returns an error").
var memorySinks = map[string]bool{
	"*strings.Builder": true,
	"strings.Builder":  true,
	"*bytes.Buffer":    true,
	"bytes.Buffer":     true,
	"hash.Hash":        true,
	"hash.Hash32":      true,
	"hash.Hash64":      true,
}

// isMemorySinkWrite reports whether call is a write whose error can never
// fire or never matters: a method on a strings.Builder/bytes.Buffer, an
// fmt.Fprint* whose destination is one, fmt.Print* (stdout diagnostics),
// or fmt.Fprint* to a *os.File (console output; data-bearing file writes
// in this repo go through os.WriteFile and checked encoders instead).
func isMemorySinkWrite(pass *Pass, call *ast.CallExpr) bool {
	if c, ok := pass.pkgCallee(call); ok {
		if c.path == "fmt" {
			if strings.HasPrefix(c.name, "Print") {
				return true
			}
			if strings.HasPrefix(c.name, "Fprint") && len(call.Args) > 0 {
				if t := pass.Info.TypeOf(call.Args[0]); t != nil && (memorySinks[t.String()] || t.String() == "*os.File") {
					return true
				}
			}
		}
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pass.Info.Selections[sel] == nil {
		return false
	}
	t := pass.Info.TypeOf(sel.X)
	return t != nil && memorySinks[t.String()]
}

// calleeLabel names the called function for the diagnostic message.
func calleeLabel(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return "(...)." + fun.Sel.Name
	}
	return "call"
}
