package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"csmaterials/internal/lint/callgraph"
)

// MetricLabelAnalyzer enforces the Prometheus exposition hygiene the
// dashboards and alert rules depend on (DESIGN §6, docs/operations.md):
//
//   - family names match csm_[a-z][a-z0-9_]*; counters end in _total and
//     nothing else does;
//   - label names inside a []obs.Label literal appear in alphabetical
//     order (the exposition's stable-shape contract);
//   - every construction and emission site of the same family name
//     agrees module-wide on metric type and label-key set — a sample
//     appended with labels the registration never declared (or vice
//     versa) silently forks the series;
//   - the `dataset` label is only populated from registry-bounded
//     sources: a hard-coded string or a request-derived value
//     (r.PathValue, query params) would keep emitting series for
//     datasets that were deleted, or mint unbounded cardinality from
//     client input.
//
// The check is interprocedural: families built through helpers
// (counterFam/gaugeFam) are resolved through the helper's body, and
// label slices produced by functions (scopeLabels) are resolved through
// their return statements via the call graph.
func MetricLabelAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "metriclabel",
		Doc: "obs.Family names must match csm_* with _total reserved for counters; " +
			"label literals stay alphabetical; type and label-key sets for one family " +
			"name must agree across every construction/emission site; dataset label " +
			"values must come from registry-bounded sources, not literals or request input.",
		Run: runMetricLabel,
	}
}

var metricNameRE = regexp.MustCompile(`^csm_[a-z][a-z0-9_]*$`)

// metricFinding is one diagnostic, attributed to the package whose pass
// should emit it (positions are only meaningful against that package's
// FileSet).
type metricFinding struct {
	pkgPath string
	pos     token.Pos
	msg     string
}

// famSite is one place a family name is constructed or fed samples.
type famSite struct {
	pkgPath string
	pos     token.Pos
	where   token.Position // rendered into cross-package messages
	name    string
	typ     string     // "counter" | "gauge" | "histogram" | "" unknown
	labels  [][]string // resolved label-key sets contributed at this site
}

const metricFindingsKey = "metriclabel.findings"

func runMetricLabel(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	v := pass.Mod.Memo(metricFindingsKey, func() interface{} {
		return metricLabelFindings(pass.Mod)
	})
	for _, f := range v.([]metricFinding) {
		if f.pkgPath == pass.Pkg.Path() {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// metricLabelFindings scans the whole module once: collects every
// family site, runs the local checks as it goes, then cross-checks the
// sites per family name.
func metricLabelFindings(mod *Module) []metricFinding {
	var findings []metricFinding
	var sites []famSite
	for _, pkg := range mod.Pkgs {
		mc := &metricCtx{mod: mod, pkg: pkg}
		for _, file := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				s, f := mc.scanFunc(fn)
				sites = append(sites, s...)
				findings = append(findings, f...)
			}
		}
	}
	findings = append(findings, crossCheckFamilies(sites)...)
	return findings
}

// metricCtx carries one package's view during the module scan.
type metricCtx struct {
	mod *Module
	pkg *Package
}

func (mc *metricCtx) finding(pos token.Pos, format string, args ...any) metricFinding {
	return metricFinding{pkgPath: mc.pkg.Path, pos: pos, msg: fmt.Sprintf(format, args...)}
}

// scanFunc collects the family sites inside one function — resolvable
// obs.Family literals, family-builder helper calls, and Samples appends
// onto family-typed variables — and runs the local checks: name shape
// at construction sites, label order and dataset boundedness at every
// []obs.Label literal.
func (mc *metricCtx) scanFunc(fn *ast.FuncDecl) ([]famSite, []metricFinding) {
	var sites []famSite
	var findings []metricFinding
	info := mc.pkg.Info

	// famVars maps local variables holding an obs.Family to the family
	// name they were constructed with, so later Samples appends can be
	// attributed.
	famVars := map[types.Object]string{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		lit, ok := ast.Unparen(rhs).(*ast.CompositeLit)
		if !ok || !mc.isObsType(info.TypeOf(lit), "Family") {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if name, ok := mc.familyLitName(lit); ok {
			if obj := info.Defs[id]; obj != nil {
				famVars[obj] = name
			} else if obj := info.Uses[id]; obj != nil {
				famVars[obj] = name
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					bind(x.Lhs[i], x.Rhs[i])
				}
			}
			if s, ok := mc.samplesAppend(fn, famVars, x); ok {
				sites = append(sites, s)
			}
		case *ast.ValueSpec:
			for i := range x.Values {
				if i < len(x.Names) {
					bind(x.Names[i], x.Values[i])
				}
			}
		case *ast.CompositeLit:
			if mc.isObsType(info.TypeOf(x), "Family") {
				if s, f, ok := mc.familyLitSite(fn, x); ok {
					sites = append(sites, s)
					findings = append(findings, f...)
				}
			} else if mc.isObsLabelSlice(info.TypeOf(x)) {
				findings = append(findings, mc.checkLabelLit(fn, x)...)
			}
		case *ast.CallExpr:
			if s, f, ok := mc.helperCallSite(x); ok {
				sites = append(sites, s)
				findings = append(findings, f...)
			}
		}
		return true
	})
	return sites, findings
}

// isObsType reports whether t is (or points to) the named type
// internal/obs.<name>.
func (mc *metricCtx) isObsType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// isObsLabelSlice reports whether t is []obs.Label.
func (mc *metricCtx) isObsLabelSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	return ok && mc.isObsType(sl.Elem(), "Label")
}

// constStringOf resolves e to a compile-time string value (literal or
// named constant).
func constStringOf(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// familyLitName resolves a Family literal's Name field to a constant
// string; parametric literals (helpers taking the name as an argument)
// return false and are handled at their call sites.
func (mc *metricCtx) familyLitName(lit *ast.CompositeLit) (string, bool) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Name" {
			return constStringOf(mc.pkg.Info, kv.Value)
		}
	}
	return "", false
}

// familyLitType reads the Type field of a Family literal
// (obs.Counter/Gauge/Histogram selectors or the local constants).
func familyLitType(lit *ast.CompositeLit) string {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Type" {
			switch v := ast.Unparen(kv.Value).(type) {
			case *ast.SelectorExpr:
				return strings.ToLower(v.Sel.Name)
			case *ast.Ident:
				return strings.ToLower(v.Name)
			}
		}
	}
	return ""
}

// familyLitSite builds the site record for a resolvable Family literal
// and runs the local name checks.
func (mc *metricCtx) familyLitSite(fn *ast.FuncDecl, lit *ast.CompositeLit) (famSite, []metricFinding, bool) {
	name, ok := mc.familyLitName(lit)
	if !ok {
		return famSite{}, nil, false
	}
	typ := familyLitType(lit)
	site := famSite{
		pkgPath: mc.pkg.Path, pos: lit.Pos(),
		where: mc.pkg.Fset.Position(lit.Pos()),
		name:  name, typ: typ,
	}
	findings := mc.checkFamilyName(lit.Pos(), name, typ)
	// Inline samples contribute label sets.
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Samples" {
			if samplesLit, ok := ast.Unparen(kv.Value).(*ast.CompositeLit); ok {
				for _, sel := range samplesLit.Elts {
					if keys, resolved := mc.sampleLabels(fn, sel); resolved {
						site.labels = append(site.labels, keys)
					}
				}
			}
		}
	}
	return site, findings, true
}

// checkFamilyName runs the name-shape and _total conventions.
func (mc *metricCtx) checkFamilyName(pos token.Pos, name, typ string) []metricFinding {
	var out []metricFinding
	if !metricNameRE.MatchString(name) {
		out = append(out, mc.finding(pos,
			"metric family %q does not match the module namespace csm_[a-z][a-z0-9_]*", name))
		return out
	}
	total := strings.HasSuffix(name, "_total")
	switch {
	case typ == "counter" && !total:
		out = append(out, mc.finding(pos,
			"counter family %q must end in _total (Prometheus counter naming)", name))
	case typ != "" && typ != "counter" && total:
		out = append(out, mc.finding(pos,
			"%s family %q must not end in _total; that suffix is reserved for counters", typ, name))
	}
	return out
}

// helperCallSite resolves a call to a module family-builder helper — a
// function whose body returns an obs.Family literal with Name taken
// from one of its parameters — into a site named by the call's constant
// argument.
func (mc *metricCtx) helperCallSite(call *ast.CallExpr) (famSite, []metricFinding, bool) {
	if !mc.isObsType(mc.pkg.Info.TypeOf(call), "Family") {
		return famSite{}, nil, false
	}
	callee := mc.calleeNode(call)
	if callee == nil || callee.Decl == nil {
		return famSite{}, nil, false
	}
	tmpl, ok := mc.familyTemplate(callee)
	if !ok || tmpl.nameParam >= len(call.Args) {
		return famSite{}, nil, false
	}
	name, ok := constStringOf(mc.pkg.Info, call.Args[tmpl.nameParam])
	if !ok {
		return famSite{}, nil, false
	}
	site := famSite{
		pkgPath: mc.pkg.Path, pos: call.Pos(),
		where: mc.pkg.Fset.Position(call.Pos()),
		name:  name, typ: tmpl.typ, labels: tmpl.labels,
	}
	return site, mc.checkFamilyName(call.Pos(), name, tmpl.typ), true
}

// famTemplate is the shape a family-builder helper stamps out.
type famTemplate struct {
	nameParam int
	typ       string
	labels    [][]string
}

// familyTemplate inspects a helper's body for `return obs.Family{Name:
// <param>, ...}` and extracts the template.
func (mc *metricCtx) familyTemplate(n *callgraph.Node) (famTemplate, bool) {
	helperMC := &metricCtx{mod: mc.mod, pkg: &Package{
		Path: n.Pkg.Path, Fset: n.Pkg.Fset, Files: n.Pkg.Files,
		Types: n.Pkg.Types, Info: n.Pkg.Info,
	}}
	params := helperParamObjects(n)
	var tmpl famTemplate
	found := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		ret, ok := x.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			lit, ok := ast.Unparen(res).(*ast.CompositeLit)
			if !ok || !helperMC.isObsType(n.Pkg.Info.TypeOf(lit), "Family") {
				continue
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "Name":
					id, ok := ast.Unparen(kv.Value).(*ast.Ident)
					if !ok {
						continue
					}
					obj := n.Pkg.Info.Uses[id]
					for i, p := range params {
						if p != nil && p == obj {
							tmpl.nameParam = i
							found = true
						}
					}
				case "Samples":
					if samplesLit, ok := ast.Unparen(kv.Value).(*ast.CompositeLit); ok {
						for _, sel := range samplesLit.Elts {
							if keys, resolved := helperMC.sampleLabels(n.Decl, sel); resolved {
								tmpl.labels = append(tmpl.labels, keys)
							}
						}
					}
				}
			}
			tmpl.typ = familyLitType(lit)
		}
		return true
	})
	return tmpl, found
}

// helperParamObjects lists a node's parameter objects in order.
func helperParamObjects(n *callgraph.Node) []types.Object {
	var out []types.Object
	if n.Decl.Type.Params == nil {
		return out
	}
	for _, field := range n.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, n.Pkg.Info.Defs[name])
		}
	}
	return out
}

// calleeNode resolves a call's static callee to its module node.
func (mc *metricCtx) calleeNode(call *ast.CallExpr) *callgraph.Node {
	if mc.mod == nil {
		return nil
	}
	var fn *types.Func
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = mc.pkg.Info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		if sel := mc.pkg.Info.Selections[f]; sel != nil {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = mc.pkg.Info.Uses[f.Sel].(*types.Func)
		}
	}
	if fn == nil {
		return nil
	}
	return mc.mod.Graph.NodeOf(fn)
}

// samplesAppend recognises `X.Samples = append(X.Samples, elems...)`
// where X holds a known family, and resolves the label sets the
// appended samples carry.
func (mc *metricCtx) samplesAppend(fn *ast.FuncDecl, famVars map[types.Object]string, assign *ast.AssignStmt) (famSite, bool) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return famSite{}, false
	}
	sel, ok := assign.Lhs[0].(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Samples" {
		return famSite{}, false
	}
	recv, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return famSite{}, false
	}
	obj := mc.pkg.Info.Uses[recv]
	name, known := famVars[obj]
	if !known {
		return famSite{}, false
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return famSite{}, false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return famSite{}, false
	}
	site := famSite{
		pkgPath: mc.pkg.Path, pos: assign.Pos(),
		where: mc.pkg.Fset.Position(assign.Pos()),
		name:  name,
	}
	for _, arg := range call.Args[1:] {
		if keys, resolved := mc.sampleLabels(fn, arg); resolved {
			site.labels = append(site.labels, keys)
		}
	}
	return site, true
}

// sampleLabels resolves one appended/declared sample expression to its
// label-key set. Handles obs.Sample literals and
// obs.HistogramSamples(...) spreads (the explicit labels, before the
// implicit le).
func (mc *metricCtx) sampleLabels(fn *ast.FuncDecl, e ast.Expr) ([]string, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit:
		if !mc.isObsType(mc.pkg.Info.TypeOf(x), "Sample") {
			return nil, false
		}
		for _, el := range x.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Labels" {
				return mc.labelListKeys(fn, kv.Value, 0)
			}
		}
		return nil, true // sample without labels: empty key set
	case *ast.CallExpr:
		// obs.HistogramSamples(labels, ...) — shared labels are arg 0.
		if f, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && f.Sel.Name == "HistogramSamples" {
			if len(x.Args) > 0 {
				return mc.labelListKeys(fn, x.Args[0], 0)
			}
		}
	}
	return nil, false
}

// labelListKeys resolves a []obs.Label expression to its ordered key
// list: a literal directly, a local variable traced to its assignment,
// or a module function traced to its return literal. depth bounds the
// ident/call chase. Checks are not run here — every label literal is
// checked once at its own site by scanFunc.
func (mc *metricCtx) labelListKeys(fn *ast.FuncDecl, e ast.Expr, depth int) ([]string, bool) {
	if depth > 3 {
		return nil, false
	}
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit:
		if !mc.isObsLabelSlice(mc.pkg.Info.TypeOf(x)) {
			return nil, false
		}
		return mc.labelLitKeys(x)
	case *ast.Ident:
		obj := mc.pkg.Info.Uses[x]
		if obj == nil {
			return nil, false
		}
		init := localInitExpr(mc.pkg.Info, fn, obj)
		if init == nil {
			return nil, false
		}
		return mc.labelListKeys(fn, init, depth+1)
	case *ast.CallExpr:
		callee := mc.calleeNode(x)
		if callee == nil || callee.Decl == nil {
			return nil, false
		}
		calleeMC := &metricCtx{mod: mc.mod, pkg: &Package{
			Path: callee.Pkg.Path, Fset: callee.Pkg.Fset, Files: callee.Pkg.Files,
			Types: callee.Pkg.Types, Info: callee.Pkg.Info,
		}}
		var keys []string
		resolved := false
		ast.Inspect(callee.Decl.Body, func(n ast.Node) bool {
			if resolved {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if k, ok := calleeMC.labelListKeys(callee.Decl, res, depth+1); ok {
					keys, resolved = k, true
				}
			}
			return true
		})
		return keys, resolved
	}
	return nil, false
}

// labelLitKeys reads a []obs.Label literal's ordered constant key
// names.
func (mc *metricCtx) labelLitKeys(lit *ast.CompositeLit) ([]string, bool) {
	var keys []string
	for _, el := range lit.Elts {
		elLit, ok := ast.Unparen(el).(*ast.CompositeLit)
		if !ok {
			return nil, false
		}
		nameExpr, _ := labelFields(elLit)
		if nameExpr == nil {
			return nil, false
		}
		key, ok := constStringOf(mc.pkg.Info, nameExpr)
		if !ok {
			return nil, false
		}
		keys = append(keys, key)
	}
	return keys, true
}

// checkLabelLit runs the per-literal checks on a []obs.Label literal:
// alphabetical key order and dataset-value boundedness.
func (mc *metricCtx) checkLabelLit(fn *ast.FuncDecl, lit *ast.CompositeLit) []metricFinding {
	var findings []metricFinding
	var keys []string
	ordered := true
	for _, el := range lit.Elts {
		elLit, ok := ast.Unparen(el).(*ast.CompositeLit)
		if !ok {
			ordered = false
			continue
		}
		nameExpr, valueExpr := labelFields(elLit)
		if nameExpr == nil {
			ordered = false
			continue
		}
		key, ok := constStringOf(mc.pkg.Info, nameExpr)
		if !ok {
			ordered = false
			continue
		}
		keys = append(keys, key)
		if key == "dataset" && valueExpr != nil {
			findings = append(findings, mc.checkDatasetValue(fn, valueExpr)...)
		}
	}
	if ordered {
		for i := 1; i < len(keys); i++ {
			if keys[i] < keys[i-1] {
				findings = append(findings, mc.finding(lit.Pos(),
					"label names out of alphabetical order (%s after %s); the exposition's stable-shape contract sorts label keys",
					keys[i], keys[i-1]))
				break
			}
		}
	}
	return findings
}

// labelFields extracts the Name and Value expressions of one obs.Label
// element literal, keyed or positional.
func labelFields(lit *ast.CompositeLit) (nameExpr, valueExpr ast.Expr) {
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				switch key.Name {
				case "Name":
					nameExpr = kv.Value
				case "Value":
					valueExpr = kv.Value
				}
			}
			continue
		}
		switch i {
		case 0:
			nameExpr = el
		case 1:
			valueExpr = el
		}
	}
	return nameExpr, valueExpr
}

// checkDatasetValue flags dataset label values that are not
// registry-bounded: raw string literals (stale after a dataset DELETE)
// and request-derived values (unbounded cardinality from client input).
// Named constants (dataset.DefaultID) and registry-iteration variables
// pass.
func (mc *metricCtx) checkDatasetValue(fn *ast.FuncDecl, value ast.Expr) []metricFinding {
	value = ast.Unparen(value)
	if _, isLit := value.(*ast.BasicLit); isLit {
		return []metricFinding{mc.finding(value.Pos(),
			"dataset label value is a hard-coded string; use a registry-bounded ID (registry iteration or dataset.DefaultID) so deleted datasets stop being emitted")}
	}
	exprs := []ast.Expr{value}
	if id, ok := value.(*ast.Ident); ok {
		if obj := mc.pkg.Info.Uses[id]; obj != nil {
			if init := localInitExpr(mc.pkg.Info, fn, obj); init != nil {
				exprs = append(exprs, init)
			}
		}
	}
	for _, e := range exprs {
		if mc.requestDerived(e) {
			return []metricFinding{mc.finding(value.Pos(),
				"dataset label value derives from request input; label with the registry-validated dataset ID, not raw client data (unbounded label cardinality)")}
		}
	}
	return nil
}

// requestDerived reports whether e contains a call on *net/http.Request
// or net/url.Values — client-controlled input.
func (mc *metricCtx) requestDerived(e ast.Expr) bool {
	derived := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		t := mc.pkg.Info.TypeOf(sel.X)
		if t == nil {
			return true
		}
		switch t.String() {
		case "*net/http.Request", "net/url.Values", "net/http.Header", "*net/url.URL":
			derived = true
			return false
		}
		return true
	})
	return derived
}

// localInitExpr finds the expression most recently assigned to obj
// within fn (single-value := or = forms). Used for one-level tracing of
// label slices and dataset values.
func localInitExpr(info *types.Info, fn *ast.FuncDecl, obj types.Object) ast.Expr {
	var init ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i := range x.Lhs {
				id, ok := x.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if info.Defs[id] == obj || info.Uses[id] == obj {
					init = x.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if info.Defs[name] == obj && i < len(x.Values) {
					init = x.Values[i]
				}
			}
		}
		return true
	})
	return init
}

// crossCheckFamilies verifies that every site of one family name agrees
// on metric type and label-key set. The first site (module package
// order) is canonical; disagreeing sites are reported where they occur.
func crossCheckFamilies(sites []famSite) []metricFinding {
	byName := map[string][]famSite{}
	var names []string
	for _, s := range sites {
		if _, seen := byName[s.name]; !seen {
			names = append(names, s.name)
		}
		byName[s.name] = append(byName[s.name], s)
	}
	sort.Strings(names)
	var findings []metricFinding
	for _, name := range names {
		group := byName[name]
		canonical := group[0]
		canonicalKeys, haveKeys := firstKeySet(group)
		for _, s := range group[1:] {
			if s.typ != "" && canonical.typ != "" && s.typ != canonical.typ {
				findings = append(findings, metricFinding{
					pkgPath: s.pkgPath, pos: s.pos,
					msg: fmt.Sprintf("metric family %q is a %s here but a %s at %s; one family name, one type",
						name, s.typ, canonical.typ, canonical.where),
				})
			}
		}
		if !haveKeys {
			continue
		}
		for _, s := range group {
			if s.pos == canonicalKeys.pos && s.pkgPath == canonicalKeys.pkgPath {
				// The reference site still checks its own internal agreement.
				for _, ks := range s.labels[1:] {
					if !sameKeySet(ks, canonicalKeys.keys) {
						findings = append(findings, metricFinding{
							pkgPath: s.pkgPath, pos: s.pos,
							msg: fmt.Sprintf("metric family %q carries samples with differing label sets ({%s} vs {%s}) at one site",
								name, strings.Join(sortedCopy(ks), ","), strings.Join(sortedCopy(canonicalKeys.keys), ",")),
						})
						break
					}
				}
				continue
			}
			for _, ks := range s.labels {
				if !sameKeySet(ks, canonicalKeys.keys) {
					findings = append(findings, metricFinding{
						pkgPath: s.pkgPath, pos: s.pos,
						msg: fmt.Sprintf("metric family %q emitted with labels {%s} here but {%s} at %s; a forked label set splits the series",
							name, strings.Join(sortedCopy(ks), ","),
							strings.Join(sortedCopy(canonicalKeys.keys), ","), canonicalKeys.where),
					})
					break
				}
			}
		}
	}
	return findings
}

// keySetRef is the first resolved label-key set of a family group and
// the site that carried it.
type keySetRef struct {
	keys    []string
	pkgPath string
	pos     token.Pos
	where   token.Position
}

func firstKeySet(group []famSite) (keySetRef, bool) {
	for _, s := range group {
		if len(s.labels) > 0 {
			return keySetRef{keys: s.labels[0], pkgPath: s.pkgPath, pos: s.pos, where: s.where}, true
		}
	}
	return keySetRef{}, false
}

func sameKeySet(a, b []string) bool {
	as, bs := sortedCopy(a), sortedCopy(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}
