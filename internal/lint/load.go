package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit of analysis: a module package together
// with its in-package _test.go files, or a synthetic external-test
// (package foo_test) unit.
type Package struct {
	// Path is the import path ("csmaterials/internal/nnmf"); external
	// test packages get the real build-system spelling with a "_test"
	// suffix ("csmaterials_test").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft go/types errors; analysis still runs on
	// the partial package, but cmd/lint reports them and exits non-zero.
	TypeErrors []error
}

// Loader parses and type-checks module packages using only the standard
// library: go/parser for syntax, go/types for checking, and the source
// importer for GOROOT packages. Module-internal imports are resolved by
// mapping the import path onto a directory under the module root, exactly
// as the go tool would, and are type-checked without their test files so
// the import graph matches the real build graph (no artificial cycles
// through _test.go files).
type Loader struct {
	Root    string // module root (directory containing go.mod)
	ModPath string // module path from go.mod

	fset     *token.FileSet
	std      types.Importer            // source importer for GOROOT packages
	imported map[string]*types.Package // no-test packages, by import path
	loading  map[string]bool           // cycle detection for imports
}

// NewLoader builds a Loader rooted at the directory containing go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     abs,
		ModPath:  modPath,
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		imported: make(map[string]*types.Package),
		loading:  make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer. Module-internal paths load from disk
// (without test files); everything else delegates to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		return l.importModulePkg(path)
	}
	return l.std.Import(path)
}

// importModulePkg type-checks (and caches) a module package without its
// test files, for use as an import.
func (l *Loader) importModulePkg(path string) (*types.Package, error) {
	if pkg, ok := l.imported[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
	files, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files for import %q in %s", path, dir)
	}
	pkg, _, errs := l.check(path, files)
	if pkg == nil {
		return nil, fmt.Errorf("lint: type-checking import %q failed: %v", path, errs[0])
	}
	l.imported[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file in dir, split into package files,
// in-package test files, and external (package foo_test) test files.
func (l *Loader) parseDir(dir string) (pkgFiles, testFiles, xtestFiles []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("lint: %w", err)
		}
		switch {
		case strings.HasSuffix(file.Name.Name, "_test"):
			xtestFiles = append(xtestFiles, file)
		case strings.HasSuffix(name, "_test.go"):
			testFiles = append(testFiles, file)
		default:
			pkgFiles = append(pkgFiles, file)
		}
	}
	return pkgFiles, testFiles, xtestFiles, nil
}

// check runs go/types over files, collecting soft errors so analysis can
// proceed on partially broken packages.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && len(errs) == 0 {
		errs = append(errs, err)
	}
	return pkg, info, errs
}

// LoadDirAs type-checks the package in dir (non-test plus in-package test
// files, with any external-test files as a second package) under the given
// import path and returns the analysis packages. Fixture tests use the
// asPath override to exercise path-sensitive analyzers such as determinism.
func (l *Loader) LoadDirAs(dir, asPath string) ([]*Package, error) {
	pkgFiles, testFiles, xtestFiles, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	if len(pkgFiles)+len(testFiles) > 0 {
		files := append(append([]*ast.File(nil), pkgFiles...), testFiles...)
		tpkg, info, errs := l.check(asPath, files)
		if tpkg == nil {
			return nil, fmt.Errorf("lint: type-checking %s failed: %v", dir, errs[0])
		}
		pkgs = append(pkgs, &Package{
			Path: asPath, Dir: dir, Fset: l.fset,
			Files: files, Types: tpkg, Info: info, TypeErrors: errs,
		})
	}
	if len(xtestFiles) > 0 {
		tpkg, info, errs := l.check(asPath+"_test", xtestFiles)
		if tpkg == nil {
			return nil, fmt.Errorf("lint: type-checking %s external tests failed: %v", dir, errs[0])
		}
		pkgs = append(pkgs, &Package{
			Path: asPath + "_test", Dir: dir, Fset: l.fset,
			Files: xtestFiles, Types: tpkg, Info: info, TypeErrors: errs,
		})
	}
	return pkgs, nil
}

// LoadAll walks the module tree and loads every package for analysis,
// in deterministic directory order. Hidden directories, testdata, and
// vendor trees are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		loaded, err := l.LoadDirAs(dir, path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}
