package lint

import (
	"testing"

	"csmaterials/internal/lint/callgraph"
)

// loadCallgraphFixture type-checks testdata/callgraph under the import
// path fixture/cg and returns the built graph.
func loadCallgraphFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadDirAs("testdata/callgraph", "fixture/cg")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture does not type-check: %v", terr)
		}
	}
	return NewModule(pkgs).Graph
}

func mustNode(t *testing.T, g *callgraph.Graph, key string) *callgraph.Node {
	t.Helper()
	n := g.Lookup(key)
	if n == nil {
		t.Fatalf("graph has no node %q", key)
	}
	return n
}

// edgeKinds collects the kinds of edges from caller to the callee key.
func edgeKinds(n *callgraph.Node, calleeKey string) []callgraph.EdgeKind {
	var out []callgraph.EdgeKind
	for _, e := range n.Out {
		if e.Callee != nil && e.Callee.Key == calleeKey {
			out = append(out, e.Kind)
		}
	}
	return out
}

func TestCallgraphStaticEdges(t *testing.T) {
	g := loadCallgraphFixture(t)
	direct := mustNode(t, g, "fixture/cg.direct")
	if kinds := edgeKinds(direct, "fixture/cg.measure"); len(kinds) != 1 || kinds[0] != callgraph.Call {
		t.Errorf("direct -> measure: got %v, want exactly one Call edge", kinds)
	}
	// A stdlib call produces no module edge.
	sorts := mustNode(t, g, "fixture/cg.sortsParam")
	if len(sorts.Out) != 0 {
		t.Errorf("sortsParam should have no module out-edges, got %d", len(sorts.Out))
	}
}

func TestCallgraphDynamicDispatchIsConservative(t *testing.T) {
	g := loadCallgraphFixture(t)
	measure := mustNode(t, g, "fixture/cg.measure")
	// The interface call must fan out to BOTH implementations...
	for _, impl := range []string{"fixture/cg.(Circle).Area", "fixture/cg.(Square).Area"} {
		kinds := edgeKinds(measure, impl)
		if len(kinds) != 1 || kinds[0] != callgraph.Dynamic {
			t.Errorf("measure -> %s: got %v, want exactly one Dynamic edge", impl, kinds)
		}
	}
	// ...but never to a type whose method set does not satisfy the
	// interface, and never as a static Call.
	if kinds := edgeKinds(measure, "fixture/cg.(NotAShape).Area"); len(kinds) != 0 {
		t.Errorf("measure -> NotAShape.Area: got %v, want no edges (wrong signature)", kinds)
	}
}

func TestCallgraphGoAndRefEdges(t *testing.T) {
	g := loadCallgraphFixture(t)
	spawner := mustNode(t, g, "fixture/cg.spawner")
	if kinds := edgeKinds(spawner, "fixture/cg.worker"); len(kinds) != 1 || kinds[0] != callgraph.Go {
		t.Errorf("spawner -> worker: got %v, want exactly one Go edge", kinds)
	}
	// runner is only mentioned as a value — a Ref edge, not a Call.
	if kinds := edgeKinds(spawner, "fixture/cg.runner"); len(kinds) != 1 || kinds[0] != callgraph.Ref {
		t.Errorf("spawner -> runner: got %v, want exactly one Ref edge", kinds)
	}
}

func TestCallgraphReachability(t *testing.T) {
	g := loadCallgraphFixture(t)
	entry := mustNode(t, g, "fixture/cg.entry")
	seen := g.Reachable([]*callgraph.Node{entry})
	wantIn := []string{
		"fixture/cg.direct",
		"fixture/cg.measure",
		"fixture/cg.(Circle).Area", // via dynamic dispatch
		"fixture/cg.(Square).Area",
		"fixture/cg.worker", // via go statement
		"fixture/cg.runner", // via function-value reference
		"fixture/cg.ctxSink",
	}
	for _, key := range wantIn {
		if !seen[mustNode(t, g, key)] {
			t.Errorf("%s not reachable from entry; conservative closure must include it", key)
		}
	}
	for _, key := range []string{"fixture/cg.collect", "fixture/cg.transitive"} {
		if seen[mustNode(t, g, key)] {
			t.Errorf("%s reachable from entry but nothing links it", key)
		}
	}
}

func TestCallgraphSummaries(t *testing.T) {
	g := loadCallgraphFixture(t)
	for key, want := range map[string]string{
		"fixture/cg.sortsParam":    "sorts-param(0)",
		"fixture/cg.transitive":    "sorts-param(0)", // fixpoint through the callee
		"fixture/cg.doesNotSort":   "-",
		"fixture/cg.collect":       "returns-map-ranged-slice(0)",
		"fixture/cg.collectSorted": "-", // sorting callee launders the obligation
		"fixture/cg.lessByX":       "compares-float-pair(0~1.X)",
		"fixture/cg.viaLess":       "compares-float-pair(0~1.X)", // composed through the call site
		"fixture/cg.spawner":       "spawns-goroutine",
		"fixture/cg.ctxThread":     "ctx-param propagates-ctx",
		"fixture/cg.ctxDrop":       "ctx-param",
	} {
		if got := mustNode(t, g, key).Describe(); got != want {
			t.Errorf("%s summary = %q, want %q", key, got, want)
		}
	}
}

func TestCallgraphFuncKeyCollapsesTestInstances(t *testing.T) {
	// The same fixture loaded twice must produce identical keys, so the
	// import-instance and analysis-instance of a package collapse onto
	// one node. Cheap proxy: keys are stable across two builds.
	g1 := loadCallgraphFixture(t)
	g2 := loadCallgraphFixture(t)
	n1, n2 := g1.Nodes(), g2.Nodes()
	if len(n1) != len(n2) {
		t.Fatalf("node counts differ: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i].Key != n2[i].Key {
			t.Errorf("node %d key differs: %q vs %q", i, n1[i].Key, n2[i].Key)
		}
	}
}
