// Fixture for the goroutinelife analyzer, loaded under the import path
// csmaterials/internal/serving so the serving-stack scope applies;
// expect.txt pins the exact diagnostics.
package serving

import (
	"context"
	"sync"
)

func work() {}

// reaper loops with a ctx.Done exit: legal.
func reaper(ctx context.Context, tick <-chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
				work()
			}
		}
	}()
}

// tracked joins a WaitGroup the spawner can drain: legal.
func tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// signalled closes a done channel a waiter can observe: legal.
func signalled() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// sender reports completion over a result channel: legal.
func sender(results chan<- int) {
	go func() {
		results <- 1
	}()
}

// drainer ranges a jobs channel and stops when the feeder closes it:
// legal.
func drainer(jobs <-chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// throughHelper's proof lives in a callee, found through the call
// graph: legal.
func throughHelper(ctx context.Context) {
	go func() {
		loopUntilDone(ctx)
	}()
}

func loopUntilDone(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		}
	}
}

// fireAndForget has no stop or wait path: flagged.
func fireAndForget() {
	go func() {
		work()
	}()
}

// namedFireAndForget launches a named function with no exit evidence:
// flagged.
func namedFireAndForget() {
	go work()
}

// dynamic launches an arbitrary function value; nothing can be proven
// about it: flagged.
func dynamic(f func()) {
	go f()
}
