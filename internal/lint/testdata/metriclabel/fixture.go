// Fixture for the metriclabel analyzer; expect.txt pins the exact
// diagnostics. Covers the name conventions, label ordering, the
// module-wide type/label-set agreement, helper resolution, and the
// dataset-label boundedness rules.
package metriclabel

import (
	"net/http"

	"csmaterials/internal/obs"
)

const defaultID = "default"

// goodFamilies follows every convention: namespaced counter name,
// alphabetical labels, dataset values from the caller's (bounded)
// slice.
func goodFamilies(ids []string) []obs.Family {
	reqs := obs.Family{Name: "csm_fixture_requests_total", Help: "h", Type: obs.Counter}
	for _, id := range ids {
		reqs.Samples = append(reqs.Samples, obs.Sample{
			Labels: []obs.Label{{Name: "dataset", Value: id}, {Name: "route", Value: defaultID}},
			Value:  1,
		})
	}
	return []obs.Family{reqs}
}

// badName escapes the module namespace: flagged.
func badName() obs.Family {
	return obs.Family{Name: "fixture_bad", Help: "h", Type: obs.Gauge}
}

// badCounterSuffix is a counter without _total: flagged.
func badCounterSuffix() obs.Family {
	return obs.Family{Name: "csm_fixture_events", Help: "h", Type: obs.Counter}
}

// badGaugeSuffix is a gauge ending _total: flagged.
func badGaugeSuffix() obs.Family {
	return obs.Family{Name: "csm_fixture_depth_total", Help: "h", Type: obs.Gauge}
}

// unsortedLabels breaks the alphabetical contract: flagged.
func unsortedLabels() obs.Family {
	return obs.Family{Name: "csm_fixture_unsorted", Help: "h", Type: obs.Gauge,
		Samples: []obs.Sample{{Labels: []obs.Label{{Name: "route", Value: "/"}, {Name: "dataset", Value: defaultID}}, Value: 1}}}
}

// hardcodedDataset pins a dataset label to a string literal — the
// series would outlive a dataset DELETE: flagged.
func hardcodedDataset() obs.Family {
	return obs.Family{Name: "csm_fixture_pinned", Help: "h", Type: obs.Gauge,
		Samples: []obs.Sample{{Labels: []obs.Label{{Name: "dataset", Value: "workshop"}}, Value: 1}}}
}

// requestDataset mints dataset label values from client input —
// unbounded cardinality: flagged.
func requestDataset(r *http.Request) obs.Family {
	f := obs.Family{Name: "csm_fixture_by_request_total", Help: "h", Type: obs.Counter}
	ds := r.PathValue("dataset")
	f.Samples = append(f.Samples, obs.Sample{
		Labels: []obs.Label{{Name: "dataset", Value: ds}},
		Value:  1,
	})
	return f
}

// forkedLabels registers {dataset} inline, then appends samples shaped
// {analysis, dataset}: the emission site is flagged.
func forkedLabels(ids []string) obs.Family {
	f := obs.Family{Name: "csm_fixture_forked", Help: "h", Type: obs.Gauge,
		Samples: []obs.Sample{{Labels: []obs.Label{{Name: "dataset", Value: defaultID}}, Value: 0}}}
	for _, id := range ids {
		f.Samples = append(f.Samples, obs.Sample{
			Labels: []obs.Label{{Name: "analysis", Value: "pca"}, {Name: "dataset", Value: id}},
			Value:  1,
		})
	}
	return f
}

// typeForkA and typeForkB give one family name two metric types: the
// second site is flagged.
func typeForkA() obs.Family {
	return obs.Family{Name: "csm_fixture_typefork", Help: "h", Type: obs.Gauge}
}

func typeForkB() obs.Family {
	return obs.Family{Name: "csm_fixture_typefork", Help: "h", Type: obs.Histogram}
}

// counterFam mirrors the server's family-builder helper; family names
// flow from the call sites through the helper's return literal.
func counterFam(name, help string, v uint64) obs.Family {
	return obs.Family{Name: name, Help: help, Type: obs.Counter, Samples: []obs.Sample{{Value: float64(v)}}}
}

// viaHelper builds families through the helper: the convention breach
// is flagged at the call site that commits it.
func viaHelper() []obs.Family {
	return []obs.Family{
		counterFam("csm_fixture_helper_total", "h", 1),
		counterFam("csm_fixture_helper_events", "h", 2),
	}
}

// scopeLabels mirrors the server helper; its return literal supplies
// the label keys at emission sites through the call graph.
func scopeLabels(analysis, ds string) []obs.Label {
	return []obs.Label{{Name: "analysis", Value: analysis}, {Name: "dataset", Value: ds}}
}

// viaScope emits through the label helper and stays consistent: legal.
func viaScope(names []string) obs.Family {
	f := obs.Family{Name: "csm_fixture_scoped", Help: "h", Type: obs.Gauge}
	for _, n := range names {
		f.Samples = append(f.Samples, obs.Sample{Labels: scopeLabels(n, defaultID), Value: 1})
	}
	return f
}

// histo emits histogram samples; the shared labels resolve through the
// obs.HistogramSamples spread: legal.
func histo(bounds []float64, counts []uint64) obs.Family {
	f := obs.Family{Name: "csm_fixture_latency_seconds", Help: "h", Type: obs.Histogram}
	f.Samples = append(f.Samples, obs.HistogramSamples(
		[]obs.Label{{Name: "route", Value: "/x"}}, bounds, counts, 1, 2)...)
	return f
}
