// Fixture for the httpwrite analyzer's widened scope: this package is
// loaded under a path far from internal/server, but it defines handler
// code (a function taking *http.Request), so the call-graph root scan
// brings it in scope and the write-protocol violations are flagged.
package anywhere

import (
	"net/http"
)

// debugEndpoint is a handler grown outside internal/server; the
// protocol still applies.
func debugEndpoint(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusTeapot)
}

// plumbing is not handler code and writes nothing; never flagged.
func plumbing(n int) int { return n + 1 }
