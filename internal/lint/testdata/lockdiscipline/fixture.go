// Fixture for the lockdiscipline analyzer; expect.txt pins the exact
// diagnostics.
package lockdiscipline

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

// deferred is the preferred pairing: legal.
func deferred(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// manual releases explicitly in the same block (hot-path idiom): legal.
func manual(b *box) int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n
}

// branchRelease unlocks on every exit, inside nested statements of the
// same block: legal.
func branchRelease(b *box, cond bool) {
	b.mu.Lock()
	if cond {
		b.mu.Unlock()
		return
	}
	b.n++
	b.mu.Unlock()
}

// leak never releases in the locking block: flagged.
func leak(b *box) {
	b.mu.Lock()
	b.n++
}

// readLeak takes a read lock with no RUnlock: flagged.
func readLeak(mu *sync.RWMutex) {
	mu.RLock()
}

// readPaired pairs RLock with a deferred RUnlock: legal.
func readPaired(mu *sync.RWMutex) {
	mu.RLock()
	defer mu.RUnlock()
}

// byValueParam copies a bare mutex into the callee: flagged (the Lock
// itself is properly paired, so only the copy is reported).
func byValueParam(mu sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

// byValueStruct copies a mutex-bearing struct: flagged.
func byValueStruct(b box) int {
	return b.n
}

// byValueRecv is a value receiver on a mutex-bearing type: flagged.
func (b box) byValueRecv() int {
	return b.n
}

// ptrRecv is the correct receiver form: legal.
func (b *box) ptrRecv() int {
	return b.n
}
