// Fixture for the ctxflow analyzer, loaded under the import path
// csmaterials/internal/engine — a detach layer, so lint:detach
// annotations are honored. The local Executor type's exported
// ctx-taking methods are the reachability roots.
package engine

import "context"

// Executor mirrors the real engine executor; its exported ctx-taking
// methods root the reachable set.
type Executor struct{}

// Run is a root: everything it reaches must thread ctx.
func (e *Executor) Run(ctx context.Context, name string) error {
	return e.dispatch(ctx, name)
}

// dispatch is reachable from Run; its context.TODO is flagged.
func (e *Executor) dispatch(ctx context.Context, name string) error {
	_ = context.TODO()
	detachedHelper()
	blessedDetach()
	return nil
}

// detachedHelper is reachable (transitively) and detaches without an
// annotation: flagged.
func detachedHelper() {
	ctx := context.Background()
	_ = ctx
}

// blessedDetach is the sanctioned pattern: annotated, inside a detach
// layer: legal.
func blessedDetach() {
	ctx := context.Background() // lint:detach refresh must outlive the triggering request
	_ = ctx
}

// startupWiring is reachable from no root; Background is legitimate
// process wiring: legal.
func startupWiring() context.Context {
	return context.Background()
}
