// Fixture for the httpwrite analyzer. Loaded under the import path
// csmaterials/internal/server so the package matcher is exercised;
// expect.txt pins the exact diagnostics.
package server

import (
	"context"
	"net/http"
)

// good follows the protocol: header once, then body.
func good(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok"))
}

// doubleHeader calls WriteHeader twice in one block: flagged.
func doubleHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusInternalServerError)
}

// headerAfterBody flushes headers implicitly with the body write, then
// tries to set a status: flagged.
func headerAfterBody(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("body"))
	w.WriteHeader(http.StatusOK)
}

// branches writes the header once per control-flow arm: legal.
func branches(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/" {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusNotFound)
	}
}

// detached invokes work under a context disconnected from the request:
// flagged.
func detached(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	_ = ctx
	w.WriteHeader(http.StatusOK)
}

// attached derives from the request: legal.
func attached(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_ = ctx
	w.WriteHeader(http.StatusOK)
}

// notHandler has no *http.Request parameter, so background contexts are
// fine (startup wiring does this legitimately).
func notHandler() context.Context {
	return context.Background()
}
