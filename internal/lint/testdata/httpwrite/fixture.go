// Fixture for the httpwrite analyzer. Loaded under the import path
// csmaterials/internal/server so a package with handler roots is
// exercised; expect.txt pins the exact diagnostics. The detached-context
// cases that used to live here belong to the ctxflow analyzer now.
package server

import (
	"net/http"
)

// good follows the protocol: header once, then body.
func good(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok"))
}

// doubleHeader calls WriteHeader twice in one block: flagged.
func doubleHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusInternalServerError)
}

// headerAfterBody flushes headers implicitly with the body write, then
// tries to set a status: flagged.
func headerAfterBody(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("body"))
	w.WriteHeader(http.StatusOK)
}

// branches writes the header once per control-flow arm: legal.
func branches(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/" {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusNotFound)
	}
}
