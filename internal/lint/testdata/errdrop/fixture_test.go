// In-package test file: errdrop does not apply to _test.go sources, so
// nothing here may appear in expect.txt.
package errdrop

func testHelperDrop() {
	fails()
}
