// Fixture for the errdrop analyzer; expect.txt pins the exact
// diagnostics.
package errdrop

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

func fails() error { return errors.New("x") }

func multi() (int, error) { return 0, nil }

func clean() {}

func body() {
	fails()                         // flagged: error discarded
	multi()                         // flagged: second result is an error
	clean()                         // legal: no error result
	_ = fails()                     // legal: explicit discard
	_, _ = multi()                  // legal: explicit discard
	if err := fails(); err != nil { // legal: handled
		return
	}
	fmt.Println("progress")     // legal: stdout diagnostics
	fmt.Fprintf(os.Stderr, "x") // legal: console output
	var b strings.Builder
	fmt.Fprintf(&b, "x") // legal: in-memory sink
	b.WriteString("y")   // legal: builder writes never fail
	h := fnv.New64a()
	fmt.Fprintf(h, "%s", b.String()) // legal: hash writes never fail
	_ = h.Sum64()
	defer fails() // legal: deferred calls are out of scope
}
