// Fixture for the ctxflow analyzer's layer gate, loaded under the
// import path csmaterials/internal/server — handler code, but NOT a
// detach layer: a lint:detach annotation here is refused with its own
// message instead of suppressing the finding.
package server

import (
	"context"
	"net/http"
)

// handler is a reachability root. Its annotated Background is still
// flagged (wrong layer), with the annotation-specific message.
func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // lint:detach not honored outside engine/serving
	_ = ctx
	helperFromHandler()
	w.WriteHeader(http.StatusOK)
}

// helperFromHandler is handler-reachable; unannotated Background:
// flagged with the standard message.
func helperFromHandler() {
	_ = context.Background()
}

// offline is unreachable from any handler: Background is legal wiring.
func offline() context.Context {
	return context.Background()
}
