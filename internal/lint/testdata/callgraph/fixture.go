// Fixture for the callgraph unit suite (callgraph_test.go): exercises
// edge construction (static calls, interface dispatch, function values,
// go statements) and every summary fact, including the fixpoint
// propagation through helpers.
package cg

import (
	"context"
	"sort"
)

// Shape is dispatched through an interface in measure: CHA must fan the
// call out to both implementations, and only to types that actually
// implement the interface.
type Shape interface {
	Area() float64
}

type Circle struct{ R float64 }

func (c Circle) Area() float64 { return 3 * c.R * c.R }

type Square struct{ S float64 }

func (s Square) Area() float64 { return s.S * s.S }

// NotAShape has an Area method with the wrong signature; CHA must not
// link it.
type NotAShape struct{}

func (NotAShape) Area() int { return 0 }

func measure(sh Shape) float64 { return sh.Area() }

func direct() float64 { return measure(Circle{R: 1}) }

// sortsParam sorts its own parameter; transitive inherits the fact
// through the fixpoint; doesNotSort passes the slice somewhere harmless.
func sortsParam(xs []string) { sort.Strings(xs) }

func transitive(xs []string) { sortsParam(xs) }

func doesNotSort(xs []string) { _ = len(xs) }

// collect returns a map-ranged slice without sorting it — the caller
// inherits the obligation. collectSorted launders it through a callee.
func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func collectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortsParam(out)
	return out
}

type pt struct{ X, Y float64 }

// lessByX compares params 0 and 1 through the .X path; viaLess
// composes the pair through a call site with swapped arguments.
func lessByX(a, b pt) bool { return a.X < b.X }

func viaLess(p, q pt) bool { return lessByX(q, p) }

// spawner launches worker via go and holds runner as a value (Ref
// edge); neither is a plain Call.
func spawner() {
	go worker()
	use(runner)
}

func worker() {}

func runner() {}

func use(f func()) { f() }

// ctxThread threads its context into a callee; ctxDrop has one but
// never passes it on.
func ctxThread(ctx context.Context) { ctxSink(ctx) }

func ctxSink(ctx context.Context) { <-ctx.Done() }

func ctxDrop(ctx context.Context) { worker() }

// entry ties the pieces together so everything is reachable from one
// root in the reachability test.
func entry(ctx context.Context) {
	_ = direct()
	spawner()
	ctxThread(ctx)
}
