// Fixture for the floatcompare analyzer; expect.txt pins the exact
// diagnostics.
package floatcompare

// eq compares two computed floats exactly: flagged.
func eq(a, b float64) bool {
	return a == b
}

// neq likewise: flagged.
func neq(a, b float64) bool {
	return a != b
}

// zeroGuard tests the exact zero bit pattern: legal.
func zeroGuard(x float64) bool {
	return x == 0
}

// nanTest is the portable NaN check: legal.
func nanTest(x float64) bool {
	return x != x
}

// tieBreak pairs the exact compare with an ordering of the same
// operands, the comparator idiom: legal.
func tieBreak(a, b float64) bool {
	if a != b {
		return a > b
	}
	return false
}

// f32 is flagged at float32 too.
func f32(a, b float32) bool {
	return a == b
}

// nonZeroConst compares against a non-zero constant: flagged.
func nonZeroConst(a float64) bool {
	return a == 0.5
}

// intCompare is integer equality: legal, not a float.
func intCompare(a, b int) bool {
	return a == b
}

// annotated carries the lint:exact marker, which works outside tests
// too: legal.
func annotated(a, b float64) bool {
	return a == b // lint:exact — interning check wants bit equality
}

// lessHelper holds the relational half of a split comparator; the
// call-graph summary carries its param pair back to call sites.
func lessHelper(a, b float64) bool {
	return a > b
}

// splitCallerSide keeps the exact half but delegates the ordering of
// the same operands to lessHelper: legal (callee contributes the pair).
func splitCallerSide(x, y float64) bool {
	if x != y {
		return lessHelper(x, y)
	}
	return false
}

// tieEq holds the exact half of a comparator split the other way; its
// caller performs the relational compare over the corresponding
// arguments: legal (caller contributes the pair).
func tieEq(a, b float64) bool {
	return a == b
}

// splitCalleeSide is the caller providing tieEq's relational half.
func splitCalleeSide(x, y float64) bool {
	if tieEq(x, y) {
		return false
	}
	return x > y
}
