// Test-file fixture: _test.go sources are in scope for floatcompare, and
// the per-assertion "// lint:exact" annotation is the only test-specific
// escape hatch.
package floatcompare

import "testing"

// TestBitIdentity asserts same-seed reproducibility, where a tolerance
// would weaken the test: annotated, legal.
func TestBitIdentity(t *testing.T) {
	a, b := eq(1, 2), eq(1, 2)
	x, y := 0.1, 0.1
	_ = a
	_ = b
	if x != y { // lint:exact — same-seed runs must agree to the last bit
		t.Fatal("drift")
	}
}

// TestUnannotated compares computed floats without an annotation:
// flagged, exactly like non-test code.
func TestUnannotated(t *testing.T) {
	x, y := 0.1+0.2, 0.3
	if x == y {
		t.Fatal("accidentally exact")
	}
}

// TestAnnotationMustShareTheLine puts the marker on the previous line,
// which does not count: flagged.
func TestAnnotationMustShareTheLine(t *testing.T) {
	x, y := 0.1+0.2, 0.3
	// lint:exact
	if x == y {
		t.Fatal("marker on the wrong line")
	}
}

// TestZeroStillLegal: the structural exemptions apply in tests too.
func TestZeroStillLegal(t *testing.T) {
	x := 0.0
	if x != 0 {
		t.Fatal("nonzero")
	}
}
