// Fixture for the determinism analyzer. Loaded by lint_test.go under the
// import path csmaterials/internal/dataset so the default compute-package
// matcher is exercised; expect.txt pins the exact diagnostics.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// unseeded consults the globally seeded source: flagged.
func unseeded() int {
	return rand.Intn(10)
}

// seeded threads an explicit generator: legal.
func seeded(rng *rand.Rand) int {
	return rng.Intn(10)
}

// construct builds an explicit generator with the constructor funcs: legal.
func construct() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

// stamp reads the wall clock: flagged.
func stamp() time.Time {
	return time.Now()
}

// leakOrder appends map keys in iteration order and never sorts: flagged.
func leakOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sortedOrder appends in iteration order but sorts before returning: legal.
func sortedOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// emit serializes during map iteration; the string cannot be sorted
// afterwards: flagged.
func emit(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.String()
}

// freshPerIter appends to a slice declared inside the loop, so no
// cross-iteration order accumulates: legal.
func freshPerIter(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []string
		local = append(local, "x")
		n += len(vs) + len(local)
	}
	return n
}

// sortViaHelper never calls sort itself; it hands the slice to a helper
// whose call-graph summary says it sorts its parameter: legal.
func sortViaHelper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	normalize(out)
	return out
}

// normalize sorts its parameter; the summary propagates to callers.
func normalize(xs []string) {
	sort.Strings(xs)
}

// collectHelper is the collect-in-callee half of the split idiom: it
// returns the keys unsorted, and its only caller sorts them before the
// order can be observed: legal.
func collectHelper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// callerSorts is the sort-in-caller half.
func callerSorts(m map[string]int) []string {
	keys := collectHelper(m)
	sort.Strings(keys)
	return keys
}

// collectLeaky looks identical, but one of its callers consumes the
// slice without sorting, so the laundering is incomplete: flagged.
func collectLeaky(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// goodConsumer sorts collectLeaky's result.
func goodConsumer(m map[string]int) []string {
	ks := collectLeaky(m)
	sort.Strings(ks)
	return ks
}

// badConsumer joins it raw — the caller that keeps collectLeaky flagged.
func badConsumer(m map[string]int) string {
	ks := collectLeaky(m)
	return strings.Join(ks, ",")
}
