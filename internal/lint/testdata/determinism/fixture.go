// Fixture for the determinism analyzer. Loaded by lint_test.go under the
// import path csmaterials/internal/dataset so the default compute-package
// matcher is exercised; expect.txt pins the exact diagnostics.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// unseeded consults the globally seeded source: flagged.
func unseeded() int {
	return rand.Intn(10)
}

// seeded threads an explicit generator: legal.
func seeded(rng *rand.Rand) int {
	return rng.Intn(10)
}

// construct builds an explicit generator with the constructor funcs: legal.
func construct() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

// stamp reads the wall clock: flagged.
func stamp() time.Time {
	return time.Now()
}

// leakOrder appends map keys in iteration order and never sorts: flagged.
func leakOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sortedOrder appends in iteration order but sorts before returning: legal.
func sortedOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// emit serializes during map iteration; the string cannot be sorted
// afterwards: flagged.
func emit(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.String()
}

// freshPerIter appends to a slice declared inside the loop, so no
// cross-iteration order accumulates: legal.
func freshPerIter(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []string
		local = append(local, "x")
		n += len(vs) + len(local)
	}
	return n
}
