package lint

import (
	"go/ast"
	"go/types"
)

// LockDisciplineAnalyzer enforces the two mutex contracts the serving
// and resilience layers rely on:
//
//  1. a mu.Lock() (or RLock) statement must be paired with an Unlock of
//     the same mutex in the same block — ideally `defer mu.Unlock()` as
//     the very next statement, but an explicit same-block Unlock (the
//     hot-path pattern) also satisfies the rule. A lock whose unlock
//     lives in a different block is how early returns leak locks;
//  2. mutexes never travel by value: a parameter or receiver whose type
//     contains a sync.Mutex/sync.RWMutex by value copies lock state and
//     splits the critical section in two.
func LockDisciplineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockdiscipline",
		Doc: "Every Lock/RLock must have a same-block Unlock (prefer an immediate " +
			"defer), and no function may take a mutex-bearing type by value.",
		Run: runLockDiscipline,
	}
}

// lockPairs maps acquire methods to their release methods.
var lockPairs = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func runLockDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BlockStmt:
				checkLockPairing(pass, node)
			case *ast.FuncDecl:
				checkMutexByValue(pass, node)
			}
			return true
		})
	}
}

// checkLockPairing scans one block for Lock/RLock statements and verifies
// each has a matching release in the same block (deferred or explicit,
// including inside nested statements of the same block, so
// `if cond { mu.Unlock(); return }` counts).
func checkLockPairing(pass *Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		recv, acquire, ok := mutexCallStmt(pass, stmt)
		if !ok {
			continue
		}
		release, isAcquire := lockPairs[acquire]
		if !isAcquire {
			continue
		}
		if hasRelease(pass, block.List[i+1:], recv, release) {
			continue
		}
		pass.Reportf(stmt.Pos(),
			"%s.%s() has no %s of %s in the same block; add `defer %s.%s()` right after the lock (or release before every exit)",
			recv, acquire, release, recv, recv, release)
	}
}

// mutexCallStmt matches `mu.Lock()`-shaped expression statements where the
// receiver is a sync.Mutex or sync.RWMutex (possibly behind a pointer) and
// returns the receiver's source text and the method name.
func mutexCallStmt(pass *Pass, stmt ast.Stmt) (recv, method string, ok bool) {
	expr, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	return mutexCall(pass, expr.X)
}

func mutexCall(pass *Pass, e ast.Expr) (recv, method string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || pass.Info.Selections[sel] == nil {
		return "", "", false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if !isSyncMutexType(t) {
		return "", "", false
	}
	return exprString(pass.Fset, sel.X), sel.Sel.Name, true
}

// hasRelease reports whether any of stmts (searched recursively, so
// releases inside branches and defers count) calls recv.<release>().
func hasRelease(pass *Pass, stmts []ast.Stmt, recv, release string) bool {
	for _, stmt := range stmts {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if r, m, ok := mutexCall(pass, call); ok && r == recv && m == release {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// checkMutexByValue flags receivers and parameters whose type carries a
// sync.Mutex or sync.RWMutex by value.
func checkMutexByValue(pass *Pass, fn *ast.FuncDecl) {
	var fields []*ast.Field
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	for _, field := range fields {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if m := mutexInType(t, map[*types.Named]bool{}); m != "" {
			pass.Reportf(field.Pos(),
				"%s is passed by value but contains %s; copying a mutex splits its critical section — pass a pointer",
				types.TypeString(t, types.RelativeTo(pass.Pkg)), m)
		}
	}
}

// isSyncMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// mutexInType returns the name of a sync mutex type reachable from t by
// value (fields, arrays, embedding), or "".
func mutexInType(t types.Type, seen map[*types.Named]bool) string {
	switch tt := t.(type) {
	case *types.Named:
		if isSyncMutexType(tt) {
			return "sync." + tt.Obj().Name()
		}
		if seen[tt] {
			return ""
		}
		seen[tt] = true
		return mutexInType(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if m := mutexInType(tt.Field(i).Type(), seen); m != "" {
				return m
			}
		}
	case *types.Array:
		return mutexInType(tt.Elem(), seen)
	}
	return ""
}
