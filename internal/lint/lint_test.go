package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// -update regenerates the expect.txt golden files from current analyzer
// output (review the diff before committing, exactly like the figure
// goldens in internal/core).
var update = flag.Bool("update", false, "rewrite testdata expect.txt files")

// sharedLoader amortizes stdlib type-checking (the source importer
// compiles net/http and friends once) across all fixture tests.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader("../..")
})

// runFixture loads testdata/<name> under asPath, runs exactly one
// analyzer, and compares the rendered diagnostics against
// testdata/<name>/expect.txt.
func runFixture(t *testing.T, a *Analyzer, name, asPath string) {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join("testdata", name)
	pkgs, err := loader.LoadDirAs(dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s does not type-check: %v", dir, terr)
		}
	}
	var got []string
	for _, d := range Run(pkgs, []*Analyzer{a}) {
		got = append(got, fmt.Sprintf("%s:%d:%d: [%s] %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message))
	}

	goldenPath := filepath.Join(dir, "expect.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatalf("updating %s: %v", goldenPath, err)
		}
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (run with -update to generate): %v", goldenPath, err)
	}
	var want []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			want = append(want, line)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: got %d diagnostics, want %d\n--- got ---\n%s\n--- want ---\n%s",
			name, len(got), len(want), strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: diagnostic %d\n  got:  %s\n  want: %s", name, i, got[i], want[i])
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	// Loaded as internal/dataset so the real compute-package matcher,
	// not a test shim, decides applicability.
	runFixture(t, DeterminismAnalyzer(), "determinism", "csmaterials/internal/dataset")
}

func TestFloatCompareFixture(t *testing.T) {
	runFixture(t, FloatCompareAnalyzer(), "floatcompare", "fixture/floatcompare")
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, ErrDropAnalyzer(), "errdrop", "fixture/errdrop")
}

func TestHTTPWriteFixture(t *testing.T) {
	runFixture(t, HTTPWriteAnalyzer(), "httpwrite", "csmaterials/internal/server")
}

func TestLockDisciplineFixture(t *testing.T) {
	runFixture(t, LockDisciplineAnalyzer(), "lockdiscipline", "fixture/lockdiscipline")
}

// TestHTTPWriteWideFixture pins the widened scope: a package far from
// internal/server is still checked once it defines handler code.
func TestHTTPWriteWideFixture(t *testing.T) {
	runFixture(t, HTTPWriteAnalyzer(), "httpwritewide", "fixture/anywhere")
}

func TestCtxFlowFixture(t *testing.T) {
	// Loaded as internal/engine so the Executor roots and the detach
	// layer's lint:detach blessing are both exercised.
	runFixture(t, CtxFlowAnalyzer(), "ctxflow", "csmaterials/internal/engine")
}

// TestCtxFlowScopeFixture pins the layer gate: lint:detach outside the
// engine/serving layer does not suppress, it gets its own message.
func TestCtxFlowScopeFixture(t *testing.T) {
	runFixture(t, CtxFlowAnalyzer(), "ctxflowscope", "csmaterials/internal/server")
}

func TestGoroutineLifeFixture(t *testing.T) {
	runFixture(t, GoroutineLifeAnalyzer(), "goroutinelife", "csmaterials/internal/serving")
}

func TestMetricLabelFixture(t *testing.T) {
	runFixture(t, MetricLabelAnalyzer(), "metriclabel", "fixture/metriclabel")
}

// TestDeterminismSkipsServingStack pins the compute-package boundary: the
// serving stack legitimately reads real time and may iterate maps.
func TestDeterminismSkipsServingStack(t *testing.T) {
	for path, want := range map[string]bool{
		"csmaterials/internal/nnmf":            true,
		"csmaterials/internal/dataset":         true,
		"csmaterials/internal/matrix":          true,
		"csmaterials/internal/factorize":       true,
		"csmaterials/internal/viz":             true,
		"csmaterials/internal/engine/analyses": true,
		"csmaterials/internal/engine":          false,
		"csmaterials/internal/server":          false,
		"csmaterials/internal/serving":         false,
		"csmaterials/internal/resilience":      false,
		"csmaterials/internal/lint":            false,
		"csmaterials/cmd/serve":                false,
		"csmaterials":                          false,
	} {
		if got := IsComputePackage(path); got != want {
			t.Errorf("IsComputePackage(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := Select("determinism, errdrop")
	if err != nil || len(two) != 2 || two[0].Name != "determinism" || two[1].Name != "errdrop" {
		t.Fatalf("Select picked %v, err %v", two, err)
	}
	if _, err := Select("nosuchrule"); err == nil {
		t.Fatal("Select accepted an unknown rule")
	}
}

// TestLoaderResolvesModuleImports exercises the custom importer on a real
// package whose imports span the module (materials, ontology, stats) and
// the standard library.
func TestLoaderResolvesModuleImports(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join(loader.Root, "internal", "agreement")
	pkgs, err := loader.LoadDirAs(dir, "csmaterials/internal/agreement")
	if err != nil {
		t.Fatalf("loading internal/agreement: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error: %v", terr)
		}
		if pkg.Types == nil || pkg.Info == nil {
			t.Fatalf("package %s missing type information", pkg.Path)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "determinism", Message: "m"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line, d.Pos.Column = 3, 7
	if got, want := d.String(), "a/b.go:3:7: [determinism] m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
