package lint

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"csmaterials/internal/lint/callgraph"
)

// FloatCompareAnalyzer flags == and != between floating-point operands.
// Three comparisons stay legal because exactness is the point:
//
//   - x == 0 (and != 0): sparsity guards and division guards test the
//     exact zero bit pattern, which survives every IEEE-754 operation
//     that produced it deliberately;
//   - x != x: the portable NaN test;
//   - the sort tie-break idiom, `if a != b { return a > b }`: a
//     comparator must use exact equality or it loses transitivity, so an
//     exact compare whose operand pair also appears in a relational
//     (< <= > >=) compare within the same function is exempt. The pair
//     matching is interprocedural: a comparator split across helpers is
//     recognised through the call-graph compares-float-pair summaries —
//     the relational half may live in a callee (the pair is substituted
//     through the call site's arguments) or in a caller (an exact
//     compare on a parameter pair is exempt when some caller provides
//     the relational half over the corresponding arguments).
//
// Beyond the structural exemptions, a comparison can be declared
// intentionally exact with a `// lint:exact` comment on the same line
// (trailing text after the marker is free-form rationale). Tests use it
// for same-seed bit-identity checks (the determinism contract itself),
// symmetry-by-construction checks (At(i,j) == At(j,i)), and golden values
// on exactly-representable integers — assertions where a tolerance would
// weaken the test. The annotation replaced an earlier blanket _test.go
// skip: every exemption is now visible and reviewable at the assertion
// that needs it, and new test code gets flagged instead of silently
// ignored. Unannotated code has no excuse: NNMF convergence checks,
// agreement scores, and eigenvalue iterations all accumulate rounding
// that makes bitwise equality a coin flip, so they must go through the
// tolerance helpers in internal/stats (stats.AlmostEqual /
// stats.WithinTol).
func FloatCompareAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "floatcompare",
		Doc: "Floating-point operands must not be compared with == or != except " +
			"against exact zero, as the x != x NaN test, as a sort tie-break, or " +
			"on a line annotated // lint:exact; use stats.AlmostEqual or stats.WithinTol.",
		Run: runFloatCompare,
	}
}

func runFloatCompare(pass *Pass) {
	for _, file := range pass.Files {
		exact := exactLines(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			tieBreaks := effectiveRelPairs(pass, fn)
			ast.Inspect(fn.Body, func(m ast.Node) bool {
				bin, ok := m.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.Info.TypeOf(bin.X)) || !isFloat(pass.Info.TypeOf(bin.Y)) {
					return true
				}
				if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
					return true
				}
				x, y := exprString(pass.Fset, bin.X), exprString(pass.Fset, bin.Y)
				if bin.Op == token.NEQ && x == y {
					return true // x != x NaN test
				}
				if tieBreaks[pairKey(x, y)] {
					return true // comparator tie-break; exactness is required
				}
				if callerTieBreak(pass, fn, bin) {
					return true // split comparator: relational half in a caller
				}
				if exact[pass.Fset.Position(bin.Pos()).Line] {
					return true // annotated intentionally exact
				}
				pass.Reportf(bin.Pos(),
					"floating-point %s comparison is exact to the last bit; use stats.AlmostEqual/stats.WithinTol (or compare against exact zero)",
					bin.Op)
				return true
			})
			return false // fn.Body already walked; don't descend twice
		})
	}
}

// effectiveRelPairs is the function's direct relational pairs plus the
// pairs its callees contribute: a call h(a, b) where h relationally
// compares its params i and j through path S adds the pair
// (render(args[i])+S, render(args[j])+S) — the relational half of a
// comparator split into a helper.
func effectiveRelPairs(pass *Pass, fn *ast.FuncDecl) map[string]bool {
	pairs := relationalPairs(pass, fn.Body)
	if pass.Mod == nil {
		return pairs
	}
	node := pass.Mod.Graph.NodeOfDecl(fn)
	if node == nil {
		return pairs
	}
	for _, e := range node.Out {
		if e.Kind != callgraph.Call || e.Site == nil || e.Callee.Decl == nil {
			continue
		}
		for pp := range e.Callee.Summary.RelFloatPairs {
			if pp.I >= len(e.Site.Args) || pp.J >= len(e.Site.Args) {
				continue
			}
			x := exprString(pass.Fset, e.Site.Args[pp.I]) + pp.Path
			y := exprString(pass.Fset, e.Site.Args[pp.J]) + pp.Path
			pairs[pairKey(x, y)] = true
		}
	}
	return pairs
}

// callerTieBreak handles the other half of a split comparator: an exact
// compare on a parameter pair inside a helper is exempt when some
// caller performs (directly or through its own callees) a relational
// float compare over the expressions it passes for those parameters.
func callerTieBreak(pass *Pass, fn *ast.FuncDecl, bin *ast.BinaryExpr) bool {
	if pass.Mod == nil {
		return false
	}
	g := pass.Mod.Graph
	node := g.NodeOfDecl(fn)
	if node == nil {
		return false
	}
	params := nodeParamObjects(pass, fn)
	i1, p1, ok1 := paramPathOf(pass, params, bin.X)
	i2, p2, ok2 := paramPathOf(pass, params, bin.Y)
	if !ok1 || !ok2 || i1 == i2 || p1 != p2 {
		return false
	}
	for _, e := range node.In {
		if (e.Kind != callgraph.Call && e.Kind != callgraph.Dynamic) || e.Site == nil || e.Caller.Decl == nil {
			continue
		}
		if i1 >= len(e.Site.Args) || i2 >= len(e.Site.Args) {
			continue
		}
		cFset := e.Caller.Pkg.Fset
		x := callgraph.Render(cFset, e.Site.Args[i1]) + p1
		y := callgraph.Render(cFset, e.Site.Args[i2]) + p2
		// The caller's own effective relational pairs: direct compares
		// plus its callees' contributions (which include fn's siblings).
		callerPairs := callerRelPairs(e.Caller)
		if callerPairs[pairKey(x, y)] {
			return true
		}
	}
	return false
}

// callerRelPairs renders a caller node's direct + callee-contributed
// relational pairs using its own package info.
func callerRelPairs(n *callgraph.Node) map[string]bool {
	pairs := map[string]bool{}
	info, fset := n.Pkg.Info, n.Pkg.Fset
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		bin, ok := x.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if floatT(info.TypeOf(bin.X)) && floatT(info.TypeOf(bin.Y)) {
				pairs[pairKey(callgraph.Render(fset, bin.X), callgraph.Render(fset, bin.Y))] = true
			}
		}
		return true
	})
	for _, e := range n.Out {
		if e.Kind != callgraph.Call || e.Site == nil || e.Callee.Decl == nil {
			continue
		}
		for pp := range e.Callee.Summary.RelFloatPairs {
			if pp.I >= len(e.Site.Args) || pp.J >= len(e.Site.Args) {
				continue
			}
			x := callgraph.Render(fset, e.Site.Args[pp.I]) + pp.Path
			y := callgraph.Render(fset, e.Site.Args[pp.J]) + pp.Path
			pairs[pairKey(x, y)] = true
		}
	}
	return pairs
}

func floatT(t types.Type) bool { return isFloat(t) }

// nodeParamObjects lists fn's parameter objects in order (nil for
// unnamed), mirroring the callgraph's internal helper for use with the
// current pass's type info.
func nodeParamObjects(pass *Pass, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, pass.Info.Defs[name])
		}
	}
	return out
}

// paramPathOf resolves expr to (param index, selector suffix) against
// the current pass's info.
func paramPathOf(pass *Pass, params []types.Object, expr ast.Expr) (int, string, bool) {
	var suffix []string
	e := ast.Unparen(expr)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				return -1, "", false
			}
			for i, p := range params {
				if p != nil && p == obj {
					path := ""
					for k := len(suffix) - 1; k >= 0; k-- {
						path += "." + suffix[k]
					}
					return i, path, true
				}
			}
			return -1, "", false
		case *ast.SelectorExpr:
			suffix = append(suffix, x.Sel.Name)
			e = ast.Unparen(x.X)
		default:
			return -1, "", false
		}
	}
}

// exactLines collects the source lines of file carrying a "// lint:exact"
// annotation. The marker must open the comment; anything after it is
// free-form rationale. A comparison on an annotated line is intentionally
// exact and not reported.
func exactLines(pass *Pass, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "lint:exact" || strings.HasPrefix(text, "lint:exact ") {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// relationalPairs collects the unordered operand-text pairs of every
// float < <= > >= comparison in body; an exact ==/!= over the same pair
// is the tie-break half of a deterministic comparator.
func relationalPairs(pass *Pass, body *ast.BlockStmt) map[string]bool {
	pairs := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if isFloat(pass.Info.TypeOf(bin.X)) && isFloat(pass.Info.TypeOf(bin.Y)) {
				pairs[pairKey(exprString(pass.Fset, bin.X), exprString(pass.Fset, bin.Y))] = true
			}
		}
		return true
	})
	return pairs
}

// pairKey builds an order-insensitive key for an operand pair.
func pairKey(x, y string) string {
	if x > y {
		x, y = y, x
	}
	return x + "\x00" + y
}

// isFloat reports whether t is (or has underlying) float32/float64,
// including untyped float constants.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.Kind() != constant.Unknown && constant.Sign(tv.Value) == 0
}

// exprString renders an expression for identity comparison.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return ""
	}
	return b.String()
}
