package lint

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// FloatCompareAnalyzer flags == and != between floating-point operands.
// Three comparisons stay legal because exactness is the point:
//
//   - x == 0 (and != 0): sparsity guards and division guards test the
//     exact zero bit pattern, which survives every IEEE-754 operation
//     that produced it deliberately;
//   - x != x: the portable NaN test;
//   - the sort tie-break idiom, `if a != b { return a > b }`: a
//     comparator must use exact equality or it loses transitivity, so an
//     exact compare whose operand pair also appears in a relational
//     (< <= > >=) compare within the same function is exempt.
//
// Beyond the structural exemptions, a comparison can be declared
// intentionally exact with a `// lint:exact` comment on the same line
// (trailing text after the marker is free-form rationale). Tests use it
// for same-seed bit-identity checks (the determinism contract itself),
// symmetry-by-construction checks (At(i,j) == At(j,i)), and golden values
// on exactly-representable integers — assertions where a tolerance would
// weaken the test. The annotation replaced an earlier blanket _test.go
// skip: every exemption is now visible and reviewable at the assertion
// that needs it, and new test code gets flagged instead of silently
// ignored. Unannotated code has no excuse: NNMF convergence checks,
// agreement scores, and eigenvalue iterations all accumulate rounding
// that makes bitwise equality a coin flip, so they must go through the
// tolerance helpers in internal/stats (stats.AlmostEqual /
// stats.WithinTol).
func FloatCompareAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "floatcompare",
		Doc: "Floating-point operands must not be compared with == or != except " +
			"against exact zero, as the x != x NaN test, as a sort tie-break, or " +
			"on a line annotated // lint:exact; use stats.AlmostEqual or stats.WithinTol.",
		Run: runFloatCompare,
	}
}

func runFloatCompare(pass *Pass) {
	for _, file := range pass.Files {
		exact := exactLines(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			tieBreaks := relationalPairs(pass, fn.Body)
			ast.Inspect(fn.Body, func(m ast.Node) bool {
				bin, ok := m.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.Info.TypeOf(bin.X)) || !isFloat(pass.Info.TypeOf(bin.Y)) {
					return true
				}
				if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
					return true
				}
				x, y := exprString(pass.Fset, bin.X), exprString(pass.Fset, bin.Y)
				if bin.Op == token.NEQ && x == y {
					return true // x != x NaN test
				}
				if tieBreaks[pairKey(x, y)] {
					return true // comparator tie-break; exactness is required
				}
				if exact[pass.Fset.Position(bin.Pos()).Line] {
					return true // annotated intentionally exact
				}
				pass.Reportf(bin.Pos(),
					"floating-point %s comparison is exact to the last bit; use stats.AlmostEqual/stats.WithinTol (or compare against exact zero)",
					bin.Op)
				return true
			})
			return false // fn.Body already walked; don't descend twice
		})
	}
}

// exactLines collects the source lines of file carrying a "// lint:exact"
// annotation. The marker must open the comment; anything after it is
// free-form rationale. A comparison on an annotated line is intentionally
// exact and not reported.
func exactLines(pass *Pass, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "lint:exact" || strings.HasPrefix(text, "lint:exact ") {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// relationalPairs collects the unordered operand-text pairs of every
// float < <= > >= comparison in body; an exact ==/!= over the same pair
// is the tie-break half of a deterministic comparator.
func relationalPairs(pass *Pass, body *ast.BlockStmt) map[string]bool {
	pairs := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if isFloat(pass.Info.TypeOf(bin.X)) && isFloat(pass.Info.TypeOf(bin.Y)) {
				pairs[pairKey(exprString(pass.Fset, bin.X), exprString(pass.Fset, bin.Y))] = true
			}
		}
		return true
	})
	return pairs
}

// pairKey builds an order-insensitive key for an operand pair.
func pairKey(x, y string) string {
	if x > y {
		x, y = y, x
	}
	return x + "\x00" + y
}

// isFloat reports whether t is (or has underlying) float32/float64,
// including untyped float constants.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.Kind() != constant.Unknown && constant.Sign(tv.Value) == 0
}

// exprString renders an expression for identity comparison.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return ""
	}
	return b.String()
}
