// Package callgraph builds a static, module-wide call graph over the
// type-checked packages the lint loader produces, and computes the
// per-function summaries the interprocedural analyzers consume
// (DESIGN §8). The graph is deliberately conservative:
//
//   - direct calls and concrete method calls become static Call edges;
//   - calls through an interface method become Dynamic edges to every
//     module type whose method set satisfies the interface (class
//     hierarchy analysis — over-approximate, never under);
//   - a function mentioned as a *value* (stored, passed, converted to
//     http.HandlerFunc, ...) gets a Ref edge from the mentioning
//     function, so reachability survives first-class function plumbing
//     without tracking dataflow;
//   - `go f(...)` produces a Go edge to the launched function.
//
// Functions are keyed by a stable string (package path + receiver +
// name) rather than by *types.Func identity, because the lint loader
// type-checks a package twice — once as an import (without test files)
// and once as the unit under analysis (with them) — and the two
// instances must collapse into one node.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit, mirroring lint.Package
// without importing it (the lint package imports this one).
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// EdgeKind classifies how control can flow from caller to callee.
type EdgeKind int

const (
	// Call is a direct call to a statically known function or method.
	Call EdgeKind = iota
	// Dynamic is a call through an interface method, resolved
	// conservatively to every implementing module type.
	Dynamic
	// Ref records a function mentioned as a value; whoever holds the
	// value may call it, so reachability must follow the edge.
	Ref
	// Go is a `go` statement launching the callee.
	Go
)

func (k EdgeKind) String() string {
	switch k {
	case Call:
		return "call"
	case Dynamic:
		return "dynamic"
	case Ref:
		return "ref"
	case Go:
		return "go"
	}
	return "?"
}

// Edge is one caller→callee relationship at a specific site.
type Edge struct {
	Caller *Node
	Callee *Node
	Kind   EdgeKind
	// Site is the call (or reference) expression; nil for Ref edges
	// where only an identifier was seen. Dynamic and Go edges carry the
	// CallExpr too.
	Site *ast.CallExpr
	Pos  token.Pos
}

// Node is one module function or method.
type Node struct {
	// Key is the stable identity: "pkgpath.Func" or
	// "pkgpath.(Type).Method" (pointer receivers are collapsed onto the
	// named type).
	Key string
	// Func is the types object from the instance that carried syntax.
	Func *types.Func
	// Decl is the declaration, nil for functions without module source
	// (should not happen for nodes created from walked packages).
	Decl *ast.FuncDecl
	// Pkg is the analysis package the declaration was found in.
	Pkg *Package
	// Out and In are the edges leaving and entering this node, in
	// source order of their sites.
	Out []*Edge
	In  []*Edge
	// Summary holds the per-function facts computed by Summarize.
	Summary Summary
}

// IsTest reports whether the node's declaration sits in a _test.go
// file.
func (n *Node) IsTest() bool {
	if n.Decl == nil || n.Pkg == nil {
		return false
	}
	return strings.HasSuffix(n.Pkg.Fset.Position(n.Decl.Pos()).Filename, "_test.go")
}

// Graph is the module call graph.
type Graph struct {
	nodes  map[string]*Node
	byDecl map[*ast.FuncDecl]*Node
	// ifaceMethods maps an interface method key to the concrete
	// implementations CHA resolved it to (for tests and -summary).
	pkgs []*Package
}

// FuncKey renders the stable node identity for a types.Func:
// "pkg/path.Name" for package functions, "pkg/path.(Recv).Name" for
// methods (pointer receivers collapse onto the named type, generic
// instantiations onto their origin).
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name() // error.Error and friends
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := "?"
		switch tt := t.(type) {
		case *types.Named:
			name = tt.Obj().Name()
		case *types.Interface:
			name = "interface"
		}
		return pkg.Path() + ".(" + name + ")." + fn.Name()
	}
	return pkg.Path() + "." + fn.Name()
}

// Build walks every package and assembles the graph. Deterministic:
// nodes and edges follow source order of the sorted package list.
func Build(pkgs []*Package) *Graph {
	g := &Graph{
		nodes:  make(map[string]*Node),
		byDecl: make(map[*ast.FuncDecl]*Node),
		pkgs:   pkgs,
	}
	// Pass 1: create a node for every function declaration.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := FuncKey(obj)
				n, exists := g.nodes[key]
				if !exists {
					n = &Node{Key: key}
					g.nodes[key] = n
				}
				n.Func, n.Decl, n.Pkg = obj, fd, pkg
				g.byDecl[fd] = n
			}
		}
	}
	// Pass 2: edges. Calls inside function literals are attributed to
	// the enclosing declared function — the literal only exists because
	// its encloser ran, so reachability is preserved (over-approximated
	// for literals that escape, which is the conservative direction).
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := g.byDecl[fd]
				g.addEdges(caller, pkg, fd.Body)
			}
		}
	}
	g.resolveInterfaceEdges()
	summarize(g)
	return g
}

// addEdges walks body once recording Call/Ref/Go edges. A pre-pass
// collects the identifiers standing in call position (and go-launched
// call sites) so a direct call yields exactly one edge of the right
// kind rather than a Call edge shadowed by a Ref edge.
func (g *Graph) addEdges(caller *Node, pkg *Package, body *ast.BlockStmt) {
	goCalls := map[*ast.CallExpr]bool{}
	callIdents := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			goCalls[x.Call] = true
		case *ast.CallExpr:
			switch fun := ast.Unparen(x.Fun).(type) {
			case *ast.Ident:
				callIdents[fun] = true
			case *ast.SelectorExpr:
				callIdents[fun.Sel] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if callee := g.calleeOf(pkg, x); callee != nil {
				kind := Call
				if goCalls[x] {
					kind = Go
				}
				g.link(&Edge{Caller: caller, Callee: callee, Kind: kind, Site: x, Pos: x.Pos()})
			}
		case *ast.Ident:
			// A function named outside call position is a value
			// reference: stored, passed, or converted. Whoever receives
			// it may call it.
			if callIdents[x] {
				return true
			}
			if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
				if callee := g.nodes[FuncKey(fn)]; callee != nil {
					g.link(&Edge{Caller: caller, Callee: callee, Kind: Ref, Pos: x.Pos()})
				}
			}
		}
		return true
	})
}

// calleeOf resolves the target of a call expression to a module node,
// or nil (stdlib calls, func values, builtins).
func (g *Graph) calleeOf(pkg *Package, call *ast.CallExpr) *Node {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return g.nodes[FuncKey(fn)]
		}
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if recvIsInterface(sel.Recv()) {
					// Marked for CHA resolution in resolveInterfaceEdges;
					// record under the interface method key so lookups
					// from any instance converge.
					return g.ifaceNode(fn)
				}
				return g.nodes[FuncKey(fn)]
			}
		}
		// Qualified package call: pkgname.Func.
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
					return g.nodes[FuncKey(fn)]
				}
			}
		}
	}
	return nil
}

// ifaceNode returns (creating on demand) the placeholder node for an
// interface method; resolveInterfaceEdges fans its edges out to the
// implementations.
func (g *Graph) ifaceNode(fn *types.Func) *Node {
	key := "interface:" + FuncKey(fn)
	n, ok := g.nodes[key]
	if !ok {
		n = &Node{Key: key, Func: fn}
		g.nodes[key] = n
	}
	return n
}

func recvIsInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// resolveInterfaceEdges performs class-hierarchy analysis: every edge
// into an interface-method placeholder is fanned out as a Dynamic edge
// to each module type implementing the interface.
func (g *Graph) resolveInterfaceEdges() {
	// Collect module named types once.
	var named []*types.Named
	seen := map[string]bool{}
	for _, pkg := range g.pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			nt, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			k := pkg.Types.Path() + "." + tn.Name()
			if !seen[k] {
				seen[k] = true
				named = append(named, nt)
			}
		}
	}
	for _, n := range g.nodes {
		if !strings.HasPrefix(n.Key, "interface:") || len(n.In) == 0 {
			continue
		}
		sig, _ := n.Func.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			continue
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, nt := range named {
			var impl types.Type = nt
			if !types.Implements(impl, iface) {
				impl = types.NewPointer(nt)
				if !types.Implements(impl, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, n.Func.Pkg(), n.Func.Name())
			m, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			target := g.nodes[FuncKey(m)]
			if target == nil {
				continue
			}
			for _, e := range n.In {
				g.link(&Edge{Caller: e.Caller, Callee: target, Kind: Dynamic, Site: e.Site, Pos: e.Pos})
			}
		}
	}
}

func (g *Graph) link(e *Edge) {
	if e.Caller == nil || e.Callee == nil {
		return
	}
	e.Caller.Out = append(e.Caller.Out, e)
	e.Callee.In = append(e.Callee.In, e)
}

// NodeOf returns the node for a types.Func from any type-check
// instance, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[FuncKey(fn)]
}

// NodeOfDecl returns the node for a function declaration, or nil.
func (g *Graph) NodeOfDecl(fd *ast.FuncDecl) *Node { return g.byDecl[fd] }

// Lookup returns the node with the given stable key, or nil.
func (g *Graph) Lookup(key string) *Node { return g.nodes[key] }

// Nodes returns every declared (non-placeholder) node sorted by key.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for key, n := range g.nodes {
		if strings.HasPrefix(key, "interface:") || n.Decl == nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Reachable computes the transitive closure from roots over Call,
// Dynamic, Ref, and Go edges — everything that may execute as a
// consequence of a root running.
func (g *Graph) Reachable(roots []*Node) map[*Node]bool {
	seen := make(map[*Node]bool)
	var stack []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			c := e.Callee
			if c == nil || seen[c] {
				continue
			}
			if strings.HasPrefix(c.Key, "interface:") {
				continue // placeholders resolved separately
			}
			seen[c] = true
			stack = append(stack, c)
		}
	}
	return seen
}
