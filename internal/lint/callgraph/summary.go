package callgraph

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ParamPair is an unordered pair of parameter indices compared through
// the same selector path: {0, 1, ".Score"} means param0.Score and
// param1.Score are compared. I < J always.
type ParamPair struct {
	I, J int
	// Path is the selector suffix applied to both parameters ("" for
	// the bare parameter).
	Path string
}

// Summary is the per-function fact set the interprocedural analyzers
// consume. All sets are computed conservatively: a missing fact never
// means "proven absent", only "not proven present" — each analyzer
// documents which direction it errs.
type Summary struct {
	// HasCtxParam: the signature carries a context.Context parameter.
	HasCtxParam bool
	// PropagatesCtx: the context parameter is passed on to at least one
	// call (the function threads its context rather than dropping it).
	PropagatesCtx bool
	// SpawnsGoroutine: the body contains a `go` statement.
	SpawnsGoroutine bool
	// SortsParams marks parameter indices the function passes to a
	// sort.*/slices.* call, directly or through a callee that sorts its
	// own parameter (fixpoint over static call edges).
	SortsParams map[int]bool
	// MapRangedResults marks result indices returning a slice that was
	// appended to inside a `range` over a map without being sorted in
	// this function — the caller inherits the sorting obligation.
	MapRangedResults map[int]bool
	// RelFloatPairs holds the parameter pairs the function compares
	// with a relational float operator (< <= > >=), directly or through
	// a callee (fixpoint). An exact ==/!= on the same pair elsewhere is
	// the split-comparator tie-break idiom.
	RelFloatPairs map[ParamPair]bool
}

// summarize computes every node's Summary, running the two fixpoint
// passes (SortsParams, RelFloatPairs) to convergence.
func summarize(g *Graph) {
	nodes := g.Nodes()
	for _, n := range nodes {
		initSummary(n)
	}
	// Fixpoint: propagate sorts-param and rel-float-pair facts through
	// static call edges until stable. The module graph is shallow; this
	// converges in a handful of rounds.
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if propagateThroughCalls(g, n) {
				changed = true
			}
		}
	}
	// MapRangedResults depends on the final SortsParams facts (a callee
	// that sorts its parameter launders the obligation).
	for _, n := range nodes {
		fillMapRangedResults(g, n)
	}
}

func initSummary(n *Node) {
	s := &n.Summary
	s.SortsParams = map[int]bool{}
	s.MapRangedResults = map[int]bool{}
	s.RelFloatPairs = map[ParamPair]bool{}
	if n.Decl == nil || n.Pkg == nil {
		return
	}
	params := paramObjects(n)
	ctxIdx := -1
	for i, p := range params {
		if p != nil && isContextType(p.Type()) {
			ctxIdx = i
			s.HasCtxParam = true
		}
	}
	if n.Decl.Body == nil {
		return
	}
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch node := x.(type) {
		case *ast.GoStmt:
			s.SpawnsGoroutine = true
		case *ast.CallExpr:
			// Direct sort.* / slices.* on a parameter.
			if isSortCall(info, node) {
				for _, arg := range node.Args {
					if idx := paramIndexOf(info, params, arg); idx >= 0 {
						s.SortsParams[idx] = true
					}
				}
			}
			// Context propagation: the ctx param appears as an argument.
			if ctxIdx >= 0 {
				for _, arg := range node.Args {
					if idx, path, ok := paramPath(info, params, arg); ok && idx == ctxIdx && path == "" {
						s.PropagatesCtx = true
					}
				}
			}
		case *ast.BinaryExpr:
			switch node.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				if isFloatType(info.TypeOf(node.X)) && isFloatType(info.TypeOf(node.Y)) {
					if pp, ok := pairOf(info, params, node.X, node.Y); ok {
						s.RelFloatPairs[pp] = true
					}
				}
			}
		}
		return true
	})
}

// propagateThroughCalls folds callee facts into n's summary through
// its static call sites; reports whether anything changed.
func propagateThroughCalls(g *Graph, n *Node) bool {
	if n.Decl == nil || n.Decl.Body == nil {
		return false
	}
	info := n.Pkg.Info
	params := paramObjects(n)
	changed := false
	for _, e := range n.Out {
		if e.Kind != Call || e.Site == nil || e.Callee.Decl == nil {
			continue
		}
		cs := e.Callee.Summary
		// sorts-param: passing my param where the callee sorts its own.
		for idx := range cs.SortsParams {
			if idx < len(e.Site.Args) {
				if my := paramIndexOf(info, params, e.Site.Args[idx]); my >= 0 && !n.Summary.SortsParams[my] {
					n.Summary.SortsParams[my] = true
					changed = true
				}
			}
		}
		// compares-float-pair: callee relationally compares params I,J
		// through Path; compose with my argument expressions when they
		// are parameter-rooted.
		for pp := range cs.RelFloatPairs {
			if pp.I >= len(e.Site.Args) || pp.J >= len(e.Site.Args) {
				continue
			}
			i1, p1, ok1 := paramPath(info, params, e.Site.Args[pp.I])
			i2, p2, ok2 := paramPath(info, params, e.Site.Args[pp.J])
			if !ok1 || !ok2 || i1 == i2 || p1 != p2 {
				continue
			}
			np := normalizePair(i1, i2, p1+pp.Path)
			if !n.Summary.RelFloatPairs[np] {
				n.Summary.RelFloatPairs[np] = true
				changed = true
			}
		}
	}
	return changed
}

// fillMapRangedResults records which result indices return a slice
// filled from a map range and never sorted in-function (directly or via
// a sorting callee).
func fillMapRangedResults(g *Graph, n *Node) {
	if n.Decl == nil || n.Decl.Body == nil {
		return
	}
	info := n.Pkg.Info
	var tainted []types.Object
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		rng, ok := x.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(y ast.Node) bool {
			if stmt, ok := y.(*ast.AssignStmt); ok {
				if obj := appendTargetObj(info, stmt, rng); obj != nil {
					tainted = append(tainted, obj)
				}
			}
			return true
		})
		return true
	})
	if len(tainted) == 0 {
		return
	}
	for _, obj := range tainted {
		if objSortedIn(g, n, obj) {
			continue
		}
		for _, idx := range returnIndicesOf(info, n.Decl, obj) {
			n.Summary.MapRangedResults[idx] = true
		}
	}
}

// ObjSortedIn reports whether fn's body ever sorts obj: a direct
// sort.*/slices.* call taking it, or a static callee that sorts the
// parameter position obj is passed at. This is the module-wide version
// of the old function-local sortedInFunc.
func ObjSortedIn(g *Graph, fd *ast.FuncDecl, pkg *Package, obj types.Object) bool {
	n := g.NodeOfDecl(fd)
	if n == nil {
		// Fall back to a node-less direct scan (function literals).
		return directSortScan(pkg.Info, fd.Body, obj)
	}
	return objSortedIn(g, n, obj)
}

func objSortedIn(g *Graph, n *Node, obj types.Object) bool {
	info := n.Pkg.Info
	if directSortScan(info, n.Decl.Body, obj) {
		return true
	}
	for _, e := range n.Out {
		if e.Kind != Call || e.Site == nil || e.Callee.Decl == nil {
			continue
		}
		for idx := range e.Callee.Summary.SortsParams {
			if idx < len(e.Site.Args) {
				if id, ok := ast.Unparen(e.Site.Args[idx]).(*ast.Ident); ok && info.Uses[id] == obj {
					return true
				}
			}
		}
	}
	return false
}

func directSortScan(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// appendTargetObj mirrors lint's appendTarget: `s = append(s, ...)`
// where s is declared outside the range statement.
func appendTargetObj(info *types.Info, stmt *ast.AssignStmt, rng *ast.RangeStmt) types.Object {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
		return nil
	}
	lhs, ok := stmt.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	obj := info.Uses[first]
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil
	}
	return obj
}

// returnIndicesOf finds the result indices at which fd returns obj
// (plain `return ..., obj, ...` or a named result).
func returnIndicesOf(info *types.Info, fd *ast.FuncDecl, obj types.Object) []int {
	var out []int
	seen := map[int]bool{}
	add := func(i int) {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	// Named results: obj may be the result variable itself.
	if fd.Type.Results != nil {
		idx := 0
		for _, field := range fd.Type.Results.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					add(idx)
				}
				idx++
			}
		}
	}
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false // returns inside literals belong to the literal
		}
		ret, ok := x.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && info.Uses[id] == obj {
				add(i)
			}
		}
		return true
	})
	sort.Ints(out)
	return out
}

// paramObjects returns fd's parameter objects in declaration order
// (nil for unnamed/underscore parameters).
func paramObjects(n *Node) []types.Object {
	var out []types.Object
	if n.Decl == nil || n.Decl.Type.Params == nil {
		return out
	}
	for _, field := range n.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, n.Pkg.Info.Defs[name])
		}
	}
	return out
}

// paramIndexOf resolves expr to a bare parameter index, or -1.
func paramIndexOf(info *types.Info, params []types.Object, expr ast.Expr) int {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := info.Uses[id]
	if obj == nil {
		return -1
	}
	for i, p := range params {
		if p != nil && p == obj {
			return i
		}
	}
	return -1
}

// paramPath resolves expr to (parameter index, selector suffix): `a`
// -> (i, ""), `a.Score` -> (i, ".Score"), `a.X.Y` -> (i, ".X.Y").
func paramPath(info *types.Info, params []types.Object, expr ast.Expr) (int, string, bool) {
	var suffix []string
	e := ast.Unparen(expr)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if idx := paramIndexOf(info, params, x); idx >= 0 {
				path := ""
				for i := len(suffix) - 1; i >= 0; i-- {
					path += "." + suffix[i]
				}
				return idx, path, true
			}
			return -1, "", false
		case *ast.SelectorExpr:
			suffix = append(suffix, x.Sel.Name)
			e = ast.Unparen(x.X)
		default:
			return -1, "", false
		}
	}
}

func pairOf(info *types.Info, params []types.Object, x, y ast.Expr) (ParamPair, bool) {
	i1, p1, ok1 := paramPath(info, params, x)
	i2, p2, ok2 := paramPath(info, params, y)
	if !ok1 || !ok2 || i1 == i2 || p1 != p2 {
		return ParamPair{}, false
	}
	return normalizePair(i1, i2, p1), true
}

func normalizePair(i, j int, path string) ParamPair {
	if i > j {
		i, j = j, i
	}
	return ParamPair{I: i, J: j, Path: path}
}

// isSortCall recognises qualified calls into the sort and slices
// packages — the calls that launder map-iteration order out of a slice.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	return path == "sort" || path == "slices"
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	return t.String() == "context.Context"
}

// Render prints an expression for identity matching across functions.
func Render(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return ""
	}
	return b.String()
}

// Describe renders a node's summary as a stable one-line string for
// cmd/lint -summary and the unit tests.
func (n *Node) Describe() string {
	var parts []string
	s := n.Summary
	if s.HasCtxParam {
		parts = append(parts, "ctx-param")
	}
	if s.PropagatesCtx {
		parts = append(parts, "propagates-ctx")
	}
	if s.SpawnsGoroutine {
		parts = append(parts, "spawns-goroutine")
	}
	if len(s.SortsParams) > 0 {
		idxs := make([]int, 0, len(s.SortsParams))
		for i := range s.SortsParams {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		var ss []string
		for _, i := range idxs {
			ss = append(ss, itoa(i))
		}
		parts = append(parts, "sorts-param("+strings.Join(ss, ",")+")")
	}
	if len(s.MapRangedResults) > 0 {
		idxs := make([]int, 0, len(s.MapRangedResults))
		for i := range s.MapRangedResults {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		var ss []string
		for _, i := range idxs {
			ss = append(ss, itoa(i))
		}
		parts = append(parts, "returns-map-ranged-slice("+strings.Join(ss, ",")+")")
	}
	if len(s.RelFloatPairs) > 0 {
		var ss []string
		for pp := range s.RelFloatPairs {
			ss = append(ss, itoa(pp.I)+"~"+itoa(pp.J)+pp.Path)
		}
		sort.Strings(ss)
		parts = append(parts, "compares-float-pair("+strings.Join(ss, ";")+")")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

func itoa(i int) string {
	if i < 0 {
		return "-" + itoa(-i)
	}
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}
