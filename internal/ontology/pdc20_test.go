package ontology

import "testing"

func TestPDC20Structure(t *testing.T) {
	g := PDC20Beta()
	if len(g.Areas()) != 4 {
		t.Fatalf("PDC20 has %d areas, want 4", len(g.Areas()))
	}
	for _, want := range []string{"ARCH", "PROG", "ALGO", "XCUT"} {
		if g.Lookup(want) == nil {
			t.Errorf("PDC20 missing area %q", want)
		}
	}
	if PDC20Beta() != PDC20Beta() {
		t.Fatal("PDC20Beta must return the shared instance")
	}
	// Every topic carries a Bloom level.
	g.Walk(func(n *Node) bool {
		if n.Kind == KindTopic && n.Bloom == BloomNone {
			t.Errorf("PDC20 topic %q has no Bloom level", n.ID)
		}
		return true
	})
}

func TestPDC20AddsBetaContent(t *testing.T) {
	g := PDC20Beta()
	// Beta additions the 2012 version lacks.
	additions := []string{
		"ARCH/energy-and-power/power-as-a-first-class-architectural-constraint",
		"ARCH/classes-of-parallelism/domain-specific-accelerators-such-as-tensor-units",
		"PROG/parallel-programming-notations/gpu-kernel-programming-such-as-cuda-and-sycl",
		"XCUT/current-and-advanced-topics/big-data-processing-at-scale",
		"PROG/semantics-and-correctness-issues/race-detection-and-sanitizer-tooling",
	}
	for _, id := range additions {
		if g.Lookup(id) == nil {
			t.Errorf("PDC20 missing beta addition %q", id)
		}
		if PDC12().Lookup(id) != nil {
			t.Errorf("beta addition %q unexpectedly present in PDC12", id)
		}
	}
}

func TestPDC20KeepsSharedSkeleton(t *testing.T) {
	// Core entries common to both versions keep their IDs, so most course
	// classifications migrate unchanged.
	shared := []string{
		"PROG/parallel-programming-notations/parallel-for-loop-annotations-such-as-openmp",
		"PROG/semantics-and-correctness-issues/thread-safety-of-data-structures",
		"ALGO/algorithmic-paradigms/reduction-as-a-parallel-pattern",
		"ALGO/parallel-and-distributed-models-and-complexity/work-and-span-of-a-computation-dag",
	}
	for _, id := range shared {
		if PDC12().Lookup(id) == nil || PDC20Beta().Lookup(id) == nil {
			t.Errorf("shared entry %q missing from one version", id)
		}
	}
}

func TestCrosswalkResolves(t *testing.T) {
	cw := CrosswalkPDC12To20()
	if len(cw) == 0 {
		t.Fatal("empty crosswalk")
	}
	for from, to := range cw {
		if PDC12().Lookup(from) == nil {
			t.Errorf("crosswalk source %q not in PDC12", from)
		}
		if PDC20Beta().Lookup(to) == nil {
			t.Errorf("crosswalk target %q not in PDC20-beta", to)
		}
	}
}

func TestResolveAcrossVersions(t *testing.T) {
	// A shared entry resolves via PDC12.
	n, g := ResolveAcrossVersions("ALGO/algorithmic-paradigms/reduction-as-a-parallel-pattern")
	if n == nil || g != PDC12() {
		t.Fatal("shared entry should resolve in PDC12 first")
	}
	// A renamed entry resolves via the crosswalk.
	n, g = ResolveAcrossVersions("PROG/parallel-programming-notations/futures-and-promises")
	if n == nil || g != PDC12() {
		t.Fatal("PDC12 entry should resolve directly")
	}
	// A beta-only entry resolves in PDC20.
	n, g = ResolveAcrossVersions("ARCH/energy-and-power/power-as-a-first-class-architectural-constraint")
	if n == nil || g != PDC20Beta() {
		t.Fatal("beta-only entry should resolve in PDC20")
	}
	// Unknown tags resolve to nil.
	if n, _ := ResolveAcrossVersions("nope/nope"); n != nil {
		t.Fatal("unknown tag resolved")
	}
}

// TestAnchorTeachingsMigrate verifies that everything the anchor rules
// teach under PDC12 has a home (same ID or crosswalk) in PDC 2.0-beta —
// the content survives the guideline revision the paper anticipates.
func TestAnchorTeachingsMigrate(t *testing.T) {
	// The rule teachings are defined in internal/anchor; to avoid an
	// import cycle (anchor imports ontology), the IDs are spot-checked
	// here from the rule base's documented teachings.
	teachings := []string{
		"ARCH/floating-point-representation/non-associativity-of-floating-point-addition",
		"ARCH/floating-point-representation/error-propagation-in-parallel-reductions",
		"ALGO/algorithmic-paradigms/reduction-as-a-parallel-pattern",
		"PROG/parallel-programming-notations/parallel-for-loop-annotations-such-as-openmp",
		"PROG/parallel-programming-paradigms/programming-by-data-parallel-decomposition",
		"ALGO/parallel-and-distributed-models-and-complexity/speedup-efficiency-and-scalability",
		"PROG/parallel-programming-notations/futures-and-promises",
		"PROG/parallel-programming-paradigms/client-server-and-distributed-object-paradigms",
		"XCUT/concurrency-concepts/ordering-of-operations-on-shared-objects",
		"PROG/semantics-and-correctness-issues/thread-safety-of-data-structures",
		"PROG/semantics-and-correctness-issues/mutual-exclusion-with-locks",
		"PROG/semantics-and-correctness-issues/data-races-and-determinism",
		"PROG/parallel-programming-notations/concurrent-collections-and-thread-safe-containers",
		"PROG/parallel-programming-notations/task-spawn-constructs-such-as-cilk-spawn-and-sync",
		"ALGO/algorithmic-paradigms/recursive-task-based-parallelism",
		"ALGO/algorithmic-paradigms/bottom-up-dynamic-programming-in-parallel",
		"ALGO/parallel-and-distributed-models-and-complexity/dependencies-and-task-graphs-as-models-of-computation",
		"ALGO/parallel-and-distributed-models-and-complexity/critical-path-as-a-lower-bound-on-time",
		"ALGO/parallel-and-distributed-models-and-complexity/work-and-span-of-a-computation-dag",
		"ALGO/algorithmic-problems/list-scheduling-and-makespan-minimization",
		"ALGO/algorithmic-problems/topological-sort-for-dependency-resolution",
	}
	for _, tag := range teachings {
		direct := PDC20Beta().Lookup(tag) != nil
		_, mapped := CrosswalkPDC12To20()[tag]
		if !direct && !mapped {
			t.Errorf("teaching %q has no home in PDC 2.0-beta (neither same ID nor crosswalk)", tag)
		}
	}
}
